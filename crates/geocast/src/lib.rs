//! # geocast
//!
//! Decentralized construction of multicast trees embedded into P2P
//! overlay networks based on virtual geometric coordinates — a Rust
//! reproduction of Andreica, Drăguş, Sâmbotin & Ţăpuş (PODC 2010).
//!
//! Peers identify themselves with self-generated points in a
//! `D`-dimensional coordinate space, gossip their existence a bounded
//! number of hops, and select overlay neighbours with geometric rules.
//! On top of such overlays geocast builds:
//!
//! * **space-partitioning multicast trees** that reach all `N` peers
//!   with exactly `N − 1` messages and no duplicates (§2 of the paper),
//! * **stability-aware trees** in which a departing peer is always a
//!   leaf, given known departure times (§3).
//!
//! This crate is the user-facing facade: it re-exports the substrate
//! crates ([`geom`], [`sim`], [`overlay`], [`core`], [`metrics`]) and
//! hosts the [`figures`] module, whose harnesses regenerate every panel
//! of the paper's Figure 1 plus its in-text claims, ablations and
//! baselines.
//!
//! ## Quickstart
//!
//! ```
//! use geocast::prelude::*;
//!
//! // 1. A population of peers with random virtual coordinates.
//! let peers = PeerInfo::from_point_set(&uniform_points(200, 2, 1000.0, 7));
//!
//! // 2. The converged overlay under the paper's §2 neighbour rule.
//! let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
//!
//! // 3. A multicast tree from peer 0, zones split the paper's way.
//! let result = build_tree(&peers, &overlay, 0, &OrthantRectPartitioner::median());
//!
//! assert!(result.tree.is_spanning());
//! assert_eq!(result.messages, peers.len() - 1); // the N−1 claim
//! ```
//!
//! See `examples/` for scenario walkthroughs (cloud lease scheduling,
//! sensor networks, churn resilience) and `crates/bench` for the
//! figure-regeneration benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

/// Multicast tree construction, stability trees, baselines.
pub use geocast_core as core;
/// Geometry substrate: points, zones, orthants, metrics, generators.
pub use geocast_geom as geom;
/// Statistics, tables, charts.
pub use geocast_metrics as metrics;
/// Gossip overlay, neighbour selection, oracle equilibrium.
pub use geocast_overlay as overlay;
/// Deterministic discrete-event simulator.
pub use geocast_sim as sim;

/// The things almost every user of geocast needs, in one import.
pub mod prelude {
    pub use geocast_core::groups::{
        build_group_tree_grafted, build_group_tree_on_store, GroupBuild, GroupEngine, GroupId,
    };
    pub use geocast_core::{
        baseline, build_tree, protocol, stability, validate, BuildResult, MulticastTree,
        OrthantRectPartitioner, PickRule, ZonePartitioner,
    };
    pub use geocast_geom::gen::{embed_lifetimes, lifetimes, uniform_points};
    pub use geocast_geom::{Metric, MetricKind, Orthant, Point, PointSet, Rect};
    pub use geocast_metrics::{AsciiChart, Histogram, Summary, Table};
    pub use geocast_overlay::select::{
        EmptyRectSelection, HyperplanesSelection, NeighborSelection,
    };
    pub use geocast_overlay::{
        churn, oracle, ConvergenceReport, NetworkConfig, OverlayGraph, OverlayNetwork, PeerId,
        PeerInfo, ShardConfig, ShardedTopologyStore, TopologyStore,
    };
    pub use geocast_sim::{
        runner::ParallelRunner,
        workload::{ChurnPattern, GroupOp, GroupWorkload, MembershipPlacement},
        FaultModel, NodeId, SimDuration, SimTime, Simulation,
    };
}
