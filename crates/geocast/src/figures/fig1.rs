//! The five panels of the paper's Figure 1.

use geocast_core::{build_tree, stability, OrthantRectPartitioner};
use geocast_geom::gen::{embed_lifetimes, lifetimes, uniform_points};
use geocast_geom::MetricKind;
use geocast_metrics::{AsciiChart, Table};
use geocast_overlay::select::EmptyRectSelection;
use geocast_overlay::{oracle, PeerInfo};
use geocast_sim::runner::ParallelRunner;

use crate::figures::FigureReport;

fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let xs: Vec<f64> = xs.into_iter().collect();
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Configuration for Fig. 1(a) and 1(b): the empty-rectangle overlay and
/// §2 multicast trees as dimensionality varies.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// Number of peers (paper: 1000).
    pub n: usize,
    /// Dimensionalities to sweep (paper: 2..=5).
    pub dims: Vec<usize>,
    /// Trials; results are averaged across seeds (the paper averaged
    /// "multiple tests" without reporting the count).
    pub seeds: Vec<u64>,
    /// Coordinate bound `VMAX`.
    pub vmax: f64,
    /// For Fig. 1(b): construct a tree from every peer (the paper's
    /// procedure) or from a sample of this many roots.
    pub roots: Option<usize>,
    /// For Fig. 1(b): how many of the sampled roots also get a
    /// message-passing build under coordinate-derived latencies, to
    /// report construction *wall-clock* (virtual ms) alongside hop
    /// counts. Zero disables the wall-clock columns.
    pub latency_roots: usize,
}

impl Default for Fig1Config {
    /// Paper scale: `N = 1000`, `D = 2..5`, three seeds, all roots.
    fn default() -> Self {
        Fig1Config {
            n: 1000,
            dims: (2..=5).collect(),
            seeds: vec![1, 2, 3],
            vmax: 1000.0,
            roots: None,
            latency_roots: 5,
        }
    }
}

impl Fig1Config {
    /// Reduced scale for CI: `N = 150`, `D = 2..4`, one seed, 40 roots.
    #[must_use]
    pub fn quick() -> Self {
        Fig1Config {
            n: 150,
            dims: (2..=4).collect(),
            seeds: vec![1],
            vmax: 1000.0,
            roots: Some(40),
            latency_roots: 3,
        }
    }
}

/// **Fig. 1(a)** — maximum and average peer degree of the converged
/// empty-rectangle overlay, for each dimensionality.
///
/// The paper reports degrees growing steeply with `D` (max ≈ hundreds at
/// `D = 5` for `N = 1000`) — the per-orthant Pareto frontiers grow with
/// both the orthant count `2^D` and the frontier size per orthant.
#[must_use]
pub fn fig1a(cfg: &Fig1Config) -> FigureReport {
    let jobs: Vec<(usize, u64)> = cfg
        .dims
        .iter()
        .flat_map(|&d| cfg.seeds.iter().map(move |&s| (d, s)))
        .collect();
    let runner = ParallelRunner::default();
    let measured = runner.map(&jobs, |&(dim, seed)| {
        let peers = PeerInfo::from_point_set(&uniform_points(cfg.n, dim, cfg.vmax, seed));
        let graph = oracle::equilibrium(&peers, &EmptyRectSelection);
        let degrees = graph.undirected_degrees();
        let max = degrees.iter().copied().max().unwrap_or(0) as f64;
        let avg = mean(degrees.iter().map(|&d| d as f64));
        (max, avg)
    });

    let mut table = Table::new(vec!["D".into(), "max degree".into(), "avg degree".into()]);
    let mut max_series = Vec::new();
    let mut avg_series = Vec::new();
    for &dim in &cfg.dims {
        let rows: Vec<&(f64, f64)> = jobs
            .iter()
            .zip(&measured)
            .filter_map(|((d, _), m)| (*d == dim).then_some(m))
            .collect();
        let max = mean(rows.iter().map(|r| r.0));
        let avg = mean(rows.iter().map(|r| r.1));
        table.push_row(vec![
            dim.to_string(),
            format!("{max:.1}"),
            format!("{avg:.1}"),
        ]);
        max_series.push((dim as f64, max));
        avg_series.push((dim as f64, avg));
    }
    let mut chart = AsciiChart::new(48, 12);
    chart.add_series("max degree", max_series);
    chart.add_series("avg degree", avg_series);
    FigureReport::new(
        "fig1a",
        format!("overlay degree vs D (N={}, empty-rectangle rule)", cfg.n),
        table,
    )
    .with_chart(chart.render())
    .with_note(format!("seeds averaged: {:?}", cfg.seeds))
}

/// **Fig. 1(b)** — longest root-to-leaf path of the §2 multicast tree:
/// the maximum over initiating peers and the average of the per-root
/// maxima, for each dimensionality — plus, beyond the paper, the
/// construction **wall-clock** under coordinate-derived latencies: for
/// [`Fig1Config::latency_roots`] of the sampled roots the tree is built
/// by actual message passing ([`geocast_core::protocol::build_distributed`])
/// over a [`geocast_sim::CoordDistanceLatency`] network, and the virtual time from
/// injection to quiescence is reported in milliseconds. Hops say how
/// *deep* the tree is; the ms columns say how long a subscriber actually
/// waits for the build to reach everyone.
#[must_use]
pub fn fig1b(cfg: &Fig1Config) -> FigureReport {
    use std::sync::Arc;

    use geocast_core::protocol::build_distributed;
    use geocast_sim::{CoordDistanceLatency, FaultModel, SimDuration};

    let jobs: Vec<(usize, u64)> = cfg
        .dims
        .iter()
        .flat_map(|&d| cfg.seeds.iter().map(move |&s| (d, s)))
        .collect();
    let runner = ParallelRunner::default();
    let measured = runner.map(&jobs, |&(dim, seed)| {
        let point_set = uniform_points(cfg.n, dim, cfg.vmax, seed);
        let peers = PeerInfo::from_point_set(&point_set);
        let positions = point_set.into_points();
        let graph = oracle::equilibrium(&peers, &EmptyRectSelection);
        let partitioner = OrthantRectPartitioner::median();
        let roots: Vec<usize> = match cfg.roots {
            // Deterministic stride sample when not using every root.
            Some(r) if r < cfg.n => {
                let stride = cfg.n / r;
                (0..r).map(|i| i * stride).collect()
            }
            _ => (0..cfg.n).collect(),
        };
        let lengths: Vec<f64> = roots
            .iter()
            .map(|&root| {
                build_tree(&peers, &graph, root, &partitioner)
                    .tree
                    .longest_root_to_leaf() as f64
            })
            .collect();
        let max = lengths.iter().copied().fold(0.0, f64::max);
        // Wall-clock: message-passing builds over the coordinate-derived
        // network for a sample of roots (virtual ms, deterministic).
        let shared = Arc::new(OrthantRectPartitioner::median());
        let clock_ms: Vec<f64> = roots
            .iter()
            .take(cfg.latency_roots)
            .map(|&root| {
                build_distributed(
                    &peers,
                    &graph,
                    root,
                    Arc::clone(&shared) as _,
                    CoordDistanceLatency::new(
                        positions.clone(),
                        SimDuration::from_millis(2),
                        SimDuration::from_nanos(15_000),
                    ),
                    FaultModel::default(),
                    seed,
                )
                .elapsed
                .as_secs_f64()
                    * 1e3
            })
            .collect();
        let clock_max = clock_ms.iter().copied().fold(0.0, f64::max);
        (max, mean(lengths), clock_max, mean(clock_ms))
    });

    let mut table = Table::new(vec![
        "D".into(),
        "max root-to-leaf length".into(),
        "avg max root-to-leaf length".into(),
        "max build wall-clock (ms)".into(),
        "avg build wall-clock (ms)".into(),
    ]);
    let mut max_series = Vec::new();
    let mut avg_series = Vec::new();
    for &dim in &cfg.dims {
        let rows: Vec<&(f64, f64, f64, f64)> = jobs
            .iter()
            .zip(&measured)
            .filter_map(|((d, _), m)| (*d == dim).then_some(m))
            .collect();
        let max = mean(rows.iter().map(|r| r.0));
        let avg = mean(rows.iter().map(|r| r.1));
        let clock_max = mean(rows.iter().map(|r| r.2));
        let clock_avg = mean(rows.iter().map(|r| r.3));
        table.push_row(vec![
            dim.to_string(),
            format!("{max:.1}"),
            format!("{avg:.1}"),
            format!("{clock_max:.1}"),
            format!("{clock_avg:.1}"),
        ]);
        max_series.push((dim as f64, max));
        avg_series.push((dim as f64, avg));
    }
    let mut chart = AsciiChart::new(48, 12);
    chart.add_series("max length", max_series);
    chart.add_series("avg max length", avg_series);
    let roots_note = match cfg.roots {
        Some(r) if r < cfg.n => format!("{r} sampled roots"),
        _ => "every peer as root (paper procedure)".to_owned(),
    };
    FigureReport::new(
        "fig1b",
        format!("multicast-tree root-to-leaf paths vs D (N={})", cfg.n),
        table,
    )
    .with_chart(chart.render())
    .with_note(roots_note)
    .with_note(format!(
        "wall-clock: message-passing builds for {} roots over a \
         coordinate-distance network (2 ms base + 15 µs/unit)",
        cfg.latency_roots
    ))
    .with_note(format!("seeds averaged: {:?}", cfg.seeds))
}

/// Configuration for Fig. 1(c): degree scaling with network size at
/// `D = 2`.
#[derive(Debug, Clone)]
pub struct Fig1cConfig {
    /// Network sizes (paper axis: 100..5000).
    pub ns: Vec<usize>,
    /// Dimensionality (paper: 2).
    pub dim: usize,
    /// Trials per size.
    pub seeds: Vec<u64>,
    /// Coordinate bound.
    pub vmax: f64,
}

impl Default for Fig1cConfig {
    fn default() -> Self {
        Fig1cConfig {
            ns: vec![100, 250, 400, 700, 1000, 2000, 4000, 5000],
            dim: 2,
            seeds: vec![1, 2, 3],
            vmax: 1000.0,
        }
    }
}

impl Fig1cConfig {
    /// Reduced scale for CI.
    #[must_use]
    pub fn quick() -> Self {
        Fig1cConfig {
            ns: vec![50, 100, 200, 400],
            dim: 2,
            seeds: vec![1],
            vmax: 1000.0,
        }
    }
}

/// **Fig. 1(c)** — maximum and average overlay degree as `N` grows at
/// `D = 2`, against the paper's `10·log10(N)` reference curve (its claim:
/// both "seem to be proportional to log(N)").
#[must_use]
pub fn fig1c(cfg: &Fig1cConfig) -> FigureReport {
    let jobs: Vec<(usize, u64)> = cfg
        .ns
        .iter()
        .flat_map(|&n| cfg.seeds.iter().map(move |&s| (n, s)))
        .collect();
    let runner = ParallelRunner::default();
    let measured = runner.map(&jobs, |&(n, seed)| {
        let peers = PeerInfo::from_point_set(&uniform_points(n, cfg.dim, cfg.vmax, seed));
        let graph = oracle::equilibrium(&peers, &EmptyRectSelection);
        let degrees = graph.undirected_degrees();
        let max = degrees.iter().copied().max().unwrap_or(0) as f64;
        let avg = mean(degrees.iter().map(|&d| d as f64));
        (max, avg)
    });

    let mut table = Table::new(vec![
        "N".into(),
        "max degree".into(),
        "avg degree".into(),
        "10*log10(N)".into(),
    ]);
    let mut max_series = Vec::new();
    let mut avg_series = Vec::new();
    let mut log_series = Vec::new();
    for &n in &cfg.ns {
        let rows: Vec<&(f64, f64)> = jobs
            .iter()
            .zip(&measured)
            .filter_map(|((nn, _), m)| (*nn == n).then_some(m))
            .collect();
        let max = mean(rows.iter().map(|r| r.0));
        let avg = mean(rows.iter().map(|r| r.1));
        let reference = 10.0 * (n as f64).log10();
        table.push_row(vec![
            n.to_string(),
            format!("{max:.1}"),
            format!("{avg:.1}"),
            format!("{reference:.1}"),
        ]);
        max_series.push((n as f64, max));
        avg_series.push((n as f64, avg));
        log_series.push((n as f64, reference));
    }
    let mut chart = AsciiChart::new(56, 14);
    chart.add_series("max degree", max_series);
    chart.add_series("avg degree", avg_series);
    chart.add_series("10*log10(N)", log_series);
    FigureReport::new(
        "fig1c",
        format!("overlay degree vs N (D={}, empty-rectangle rule)", cfg.dim),
        table,
    )
    .with_chart(chart.render())
    .with_note(format!("seeds averaged: {:?}", cfg.seeds))
}

/// Configuration for Fig. 1(d)/(e): §3 stability trees over the
/// Orthogonal Hyperplanes overlay.
#[derive(Debug, Clone)]
pub struct StabilityConfig {
    /// Number of peers (paper: 1000).
    pub n: usize,
    /// Dimensionalities (paper: 2..=10).
    pub dims: Vec<usize>,
    /// `K` values (paper: 1..=50).
    pub ks: Vec<usize>,
    /// Trials.
    pub seeds: Vec<u64>,
    /// Coordinate bound; also the lifetime horizon.
    pub vmax: f64,
    /// Distance function for the overlay's per-orthant ranking.
    pub metric: MetricKind,
}

impl Default for StabilityConfig {
    fn default() -> Self {
        StabilityConfig {
            n: 1000,
            dims: (2..=10).collect(),
            ks: (1..=50).collect(),
            seeds: vec![1],
            vmax: 1000.0,
            metric: MetricKind::L1,
        }
    }
}

impl StabilityConfig {
    /// Reduced scale for CI.
    #[must_use]
    pub fn quick() -> Self {
        StabilityConfig {
            n: 120,
            dims: vec![2, 3, 5],
            ks: vec![1, 2, 5, 10],
            seeds: vec![1],
            vmax: 1000.0,
            metric: MetricKind::L1,
        }
    }
}

/// One measured point of the stability sweep (averaged across seeds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityRow {
    /// Dimensionality.
    pub d: usize,
    /// Per-orthant selection budget.
    pub k: usize,
    /// Multicast-tree diameter (Fig. 1d).
    pub diameter: f64,
    /// Maximum tree degree of a peer (Fig. 1e).
    pub max_degree: f64,
    /// Preferred links formed a single tree in every trial (§3 claim).
    pub tree_ok: bool,
    /// Heap property held in every trial (§3 claim).
    pub heap_ok: bool,
}

/// The full §3 sweep, from which both Fig. 1(d) and Fig. 1(e) are
/// formatted. Compute once, render twice.
#[derive(Debug, Clone)]
pub struct StabilitySweep {
    /// Measured points, ordered by (dim, k).
    pub rows: Vec<StabilityRow>,
    /// The config that produced them.
    pub config: StabilityConfig,
}

/// Runs the §3 experiment: for each `(D, seed)`, embed random lifetimes
/// as the first coordinate, build the Orthogonal-Hyperplanes equilibrium
/// for every `K`, select preferred neighbours (largest `T`), and measure
/// the resulting tree.
#[must_use]
pub fn stability_sweep(cfg: &StabilityConfig) -> StabilitySweep {
    let jobs: Vec<(usize, u64)> = cfg
        .dims
        .iter()
        .flat_map(|&d| cfg.seeds.iter().map(move |&s| (d, s)))
        .collect();
    let runner = ParallelRunner::default();
    // Per job: one row per K, in cfg.ks order.
    let measured: Vec<Vec<(f64, f64, bool, bool)>> = runner.map(&jobs, |&(dim, seed)| {
        let base = uniform_points(cfg.n, dim, cfg.vmax, seed);
        let times = lifetimes(cfg.n, cfg.vmax, seed ^ 0x5747_4142);
        let peers = PeerInfo::from_point_set(&embed_lifetimes(&base, &times));
        let mut rows = Vec::with_capacity(cfg.ks.len());
        oracle::orthogonal_k_sweep_with(&peers, cfg.metric, &cfg.ks, |_k, graph| {
            let forest =
                stability::preferred_links(&peers, graph, stability::PreferredPolicy::MaxT);
            let tree_ok = forest.is_tree();
            let heap_ok = forest.heap_property_holds(&peers);
            match forest.to_multicast_tree() {
                Some(tree) => {
                    let diameter = tree.diameter() as f64;
                    let max_degree = tree.degrees().into_iter().max().unwrap_or(0) as f64;
                    rows.push((diameter, max_degree, tree_ok, heap_ok));
                }
                None => rows.push((f64::NAN, f64::NAN, tree_ok, heap_ok)),
            }
        });
        rows
    });

    let mut rows = Vec::new();
    for &dim in &cfg.dims {
        for (ki, &k) in cfg.ks.iter().enumerate() {
            let trials: Vec<&(f64, f64, bool, bool)> = jobs
                .iter()
                .zip(&measured)
                .filter(|&((d, _), _per_k)| *d == dim)
                .map(|((_d, _), per_k)| &per_k[ki])
                .collect();
            rows.push(StabilityRow {
                d: dim,
                k,
                diameter: mean(trials.iter().map(|t| t.0)),
                max_degree: mean(trials.iter().map(|t| t.1)),
                tree_ok: trials.iter().all(|t| t.2),
                heap_ok: trials.iter().all(|t| t.3),
            });
        }
    }
    StabilitySweep {
        rows,
        config: cfg.clone(),
    }
}

impl StabilitySweep {
    fn panel(
        &self,
        id: &'static str,
        title: &str,
        value: impl Fn(&StabilityRow) -> f64,
        value_name: &str,
    ) -> FigureReport {
        let cfg = &self.config;
        let mut headers = vec!["K".to_owned()];
        headers.extend(cfg.dims.iter().map(|d| format!("D={d}")));
        let mut table = Table::new(headers);
        for &k in &cfg.ks {
            let mut row = vec![k.to_string()];
            for &d in &cfg.dims {
                let cell = self
                    .rows
                    .iter()
                    .find(|r| r.d == d && r.k == k)
                    .map_or("-".to_owned(), |r| format!("{:.1}", value(r)));
                row.push(cell);
            }
            table.push_row(row);
        }
        let mut chart = AsciiChart::new(52, 14);
        for &d in &cfg.dims {
            let series: Vec<(f64, f64)> = self
                .rows
                .iter()
                .filter(|r| r.d == d)
                .map(|r| (r.k as f64, value(r)))
                .collect();
            chart.add_series(format!("D={d}"), series);
        }
        let all_trees = self.rows.iter().all(|r| r.tree_ok && r.heap_ok);
        FigureReport::new(id, format!("{title} (N={})", cfg.n), table)
            .with_chart(chart.render())
            .with_note(format!(
                "preferred links formed a tree with the heap property in all cases: {all_trees}"
            ))
            .with_note(format!(
                "metric: {}, seeds: {:?}, y = {value_name}",
                cfg.metric, cfg.seeds
            ))
    }

    /// Formats the Fig. 1(d) panel (tree diameter vs `K`).
    #[must_use]
    pub fn fig1d_report(&self) -> FigureReport {
        self.panel(
            "fig1d",
            "stability-tree diameter vs K",
            |r| r.diameter,
            "diameter",
        )
    }

    /// Formats the Fig. 1(e) panel (max tree degree vs `K`).
    #[must_use]
    pub fn fig1e_report(&self) -> FigureReport {
        self.panel(
            "fig1e",
            "stability-tree max degree vs K",
            |r| r.max_degree,
            "max degree",
        )
    }
}

/// **Fig. 1(d)** — variation of the multicast-tree diameter with `K` for
/// each `D`. Convenience wrapper over [`stability_sweep`].
#[must_use]
pub fn fig1d(cfg: &StabilityConfig) -> FigureReport {
    stability_sweep(cfg).fig1d_report()
}

/// **Fig. 1(e)** — variation of the maximum tree degree with `K` for
/// each `D`. Convenience wrapper over [`stability_sweep`].
#[must_use]
pub fn fig1e(cfg: &StabilityConfig) -> FigureReport {
    stability_sweep(cfg).fig1e_report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_quick_produces_rows_per_dim() {
        let cfg = Fig1Config {
            n: 60,
            dims: vec![2, 3],
            seeds: vec![1],
            ..Fig1Config::quick()
        };
        let report = fig1a(&cfg);
        assert_eq!(report.table.len(), 2);
        assert!(report.chart.is_some());
        // Degrees grow with D.
        let d2: f64 = report.table.rows()[0][1].parse().unwrap();
        let d3: f64 = report.table.rows()[1][1].parse().unwrap();
        assert!(d3 >= d2, "degree should not shrink with D ({d2} vs {d3})");
    }

    #[test]
    fn fig1b_quick_reports_sane_path_lengths() {
        let cfg = Fig1Config {
            n: 50,
            dims: vec![2],
            seeds: vec![1],
            roots: Some(10),
            ..Fig1Config::quick()
        };
        let report = fig1b(&cfg);
        let max: f64 = report.table.rows()[0][1].parse().unwrap();
        let avg: f64 = report.table.rows()[0][2].parse().unwrap();
        assert!(max >= avg, "max must dominate the average of maxima");
        assert!((1.0..50.0).contains(&max));
        // The wall-clock satellite: virtual build time under the
        // coordinate-distance network, in sane milliseconds.
        let clock_max: f64 = report.table.rows()[0][3].parse().unwrap();
        let clock_avg: f64 = report.table.rows()[0][4].parse().unwrap();
        assert!(clock_max >= clock_avg);
        assert!(
            clock_avg > 2.0,
            "a multi-hop build cannot beat the base delay: {clock_avg}"
        );
        assert!(
            clock_max < 2_000.0,
            "build must settle quickly: {clock_max}"
        );
    }

    #[test]
    fn fig1b_wall_clock_columns_can_be_disabled() {
        let cfg = Fig1Config {
            n: 40,
            dims: vec![2],
            seeds: vec![1],
            roots: Some(8),
            latency_roots: 0,
            ..Fig1Config::quick()
        };
        let report = fig1b(&cfg);
        assert_eq!(report.table.rows()[0][3], "0.0", "no sampled builds");
    }

    #[test]
    fn fig1c_quick_includes_reference_curve() {
        let cfg = Fig1cConfig {
            ns: vec![50, 100],
            seeds: vec![1],
            ..Fig1cConfig::quick()
        };
        let report = fig1c(&cfg);
        assert_eq!(report.table.len(), 2);
        let reference: f64 = report.table.rows()[1][3].parse().unwrap();
        assert!((reference - 20.0).abs() < 1e-9, "10*log10(100) = 20");
    }

    #[test]
    fn stability_sweep_quick_always_forms_trees() {
        let cfg = StabilityConfig {
            n: 60,
            dims: vec![2, 4],
            ks: vec![1, 3],
            seeds: vec![1, 2],
            ..StabilityConfig::quick()
        };
        let sweep = stability_sweep(&cfg);
        assert_eq!(sweep.rows.len(), 4);
        for row in &sweep.rows {
            assert!(row.tree_ok, "D={} K={}", row.d, row.k);
            assert!(row.heap_ok, "D={} K={}", row.d, row.k);
            assert!(row.diameter >= 1.0);
            assert!(row.max_degree >= 1.0);
        }
        let d_report = sweep.fig1d_report();
        let e_report = sweep.fig1e_report();
        assert_eq!(d_report.table.len(), 2, "one row per K");
        assert_eq!(d_report.table.headers().len(), 3, "K column + one per D");
        assert!(e_report.notes.iter().any(|n| n.contains("true")));
    }

    #[test]
    fn fig1d_and_fig1e_wrappers_agree_with_sweep() {
        let cfg = StabilityConfig {
            n: 40,
            dims: vec![2],
            ks: vec![1, 2],
            seeds: vec![7],
            ..StabilityConfig::quick()
        };
        let sweep = stability_sweep(&cfg);
        assert_eq!(fig1d(&cfg).table, sweep.fig1d_report().table);
        assert_eq!(fig1e(&cfg).table, sweep.fig1e_report().table);
    }
}
