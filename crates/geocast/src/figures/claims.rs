//! Harnesses for the paper's in-text claims (§2 and §3).

use std::sync::Arc;

use geocast_core::{build_tree, protocol, validate, OrthantRectPartitioner};
use geocast_geom::gen::{embed_lifetimes, lifetimes, uniform_points};
use geocast_geom::MetricKind;
use geocast_metrics::Table;
use geocast_overlay::select::{EmptyRectSelection, HyperplanesSelection};
use geocast_overlay::{oracle, PeerInfo};
use geocast_sim::runner::ParallelRunner;

use crate::figures::FigureReport;

/// Configuration for the claim checks.
#[derive(Debug, Clone)]
pub struct ClaimsConfig {
    /// Network sizes to check §2 on.
    pub ns: Vec<usize>,
    /// Dimensionalities to check.
    pub dims: Vec<usize>,
    /// Trials.
    pub seeds: Vec<u64>,
    /// Coordinate bound.
    pub vmax: f64,
    /// §3: the `K` values of the Orthogonal-Hyperplanes overlay.
    pub ks: Vec<usize>,
}

impl Default for ClaimsConfig {
    fn default() -> Self {
        ClaimsConfig {
            ns: vec![100, 500, 1000],
            dims: vec![2, 3, 4, 5],
            seeds: vec![1, 2, 3],
            vmax: 1000.0,
            ks: vec![1, 5, 25, 50],
        }
    }
}

impl ClaimsConfig {
    /// Reduced scale for CI.
    #[must_use]
    pub fn quick() -> Self {
        ClaimsConfig {
            ns: vec![40, 120],
            dims: vec![2, 3],
            seeds: vec![1],
            vmax: 1000.0,
            ks: vec![1, 5],
        }
    }
}

/// **§2 claims** — "The algorithm sends N − 1 messages", every peer is
/// reached exactly once (no duplicates), and the per-node child count
/// stays within the `2^D` orthant bound.
///
/// Each row is one `(N, D)` configuration; the offline builder checks
/// the first three columns, a full message-passing run over the
/// simulator independently checks message and duplicate counts.
#[must_use]
pub fn claims_section2(cfg: &ClaimsConfig) -> FigureReport {
    let jobs: Vec<(usize, usize, u64)> = cfg
        .ns
        .iter()
        .flat_map(|&n| {
            cfg.dims
                .iter()
                .flat_map(move |&d| cfg.seeds.iter().map(move |&s| (n, d, s)))
        })
        .collect();
    let runner = ParallelRunner::default();
    let measured = runner.map(&jobs, |&(n, dim, seed)| {
        let peers = PeerInfo::from_point_set(&uniform_points(n, dim, cfg.vmax, seed));
        let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
        let offline = build_tree(&peers, &overlay, 0, &OrthantRectPartitioner::median());
        let verdict = validate::check_section2(&offline, n, dim);
        let dist = protocol::build_distributed_default(
            &peers,
            &overlay,
            0,
            Arc::new(OrthantRectPartitioner::median()),
            seed,
        );
        (
            offline.messages,
            verdict,
            offline.tree.max_children(),
            dist.messages,
            dist.duplicates,
        )
    });

    let mut table = Table::new(vec![
        "N".into(),
        "D".into(),
        "messages (offline)".into(),
        "N-1".into(),
        "spanning".into(),
        "max children".into(),
        "2^D bound".into(),
        "messages (protocol)".into(),
        "duplicates".into(),
    ]);
    let mut all_hold = true;
    for ((n, dim, _), (messages, verdict, max_children, dist_messages, duplicates)) in
        jobs.iter().zip(&measured)
    {
        all_hold &= verdict.all_hold() && *duplicates == 0 && *dist_messages as usize == n - 1;
        table.push_row(vec![
            n.to_string(),
            dim.to_string(),
            messages.to_string(),
            (n - 1).to_string(),
            verdict.all_peers_reached.to_string(),
            max_children.to_string(),
            (1usize << dim).to_string(),
            dist_messages.to_string(),
            duplicates.to_string(),
        ]);
    }
    FigureReport::new(
        "claims-s2",
        "§2 claims: N−1 messages, full delivery, degree bound",
        table,
    )
    .with_note(format!(
        "all claims hold across every configuration: {all_hold}"
    ))
}

/// **§3 claims** — the preferred links "indeed formed a tree", the
/// parent-child `T` ordering holds, and replaying all departures never
/// hits a non-leaf. Each row is one `(D, K)` configuration.
#[must_use]
pub fn claims_section3(cfg: &ClaimsConfig) -> FigureReport {
    let n = *cfg.ns.last().expect("at least one network size");
    let jobs: Vec<(usize, usize, u64)> = cfg
        .dims
        .iter()
        .flat_map(|&d| {
            cfg.ks
                .iter()
                .flat_map(move |&k| cfg.seeds.iter().map(move |&s| (d, k, s)))
        })
        .collect();
    let runner = ParallelRunner::default();
    let measured = runner.map(&jobs, |&(dim, k, seed)| {
        let base = uniform_points(n, dim, cfg.vmax, seed);
        let times = lifetimes(n, cfg.vmax, seed ^ 0x3353);
        let peers = PeerInfo::from_point_set(&embed_lifetimes(&base, &times));
        let overlay = oracle::equilibrium(
            &peers,
            &HyperplanesSelection::orthogonal(dim, k, MetricKind::L1),
        );
        validate::check_section3(
            &peers,
            &overlay,
            geocast_core::stability::PreferredPolicy::MaxT,
        )
    });

    let mut table = Table::new(vec![
        "D".into(),
        "K".into(),
        "links form tree".into(),
        "heap property".into(),
        "departures safe".into(),
    ]);
    let mut all_hold = true;
    for ((dim, k, _), verdict) in jobs.iter().zip(&measured) {
        all_hold &= verdict.all_hold();
        table.push_row(vec![
            dim.to_string(),
            k.to_string(),
            verdict.links_form_tree.to_string(),
            verdict.heap_property.to_string(),
            verdict.departures_never_disconnect.to_string(),
        ]);
    }
    FigureReport::new("claims-s3", format!("§3 claims on N={n} peers"), table)
        .with_note(format!(
            "all claims hold across every configuration: {all_hold}"
        ))
        .with_note("overlay: Orthogonal Hyperplanes, x1 = T(P), preferred = max-T neighbour")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section2_claims_all_hold_quick() {
        let report = claims_section2(&ClaimsConfig::quick());
        assert!(
            report.notes.iter().any(|n| n.contains("true")),
            "claims must hold: {report}"
        );
        // 2 sizes × 2 dims × 1 seed = 4 rows.
        assert_eq!(report.table.len(), 4);
    }

    #[test]
    fn section3_claims_all_hold_quick() {
        let report = claims_section3(&ClaimsConfig::quick());
        assert!(
            report.notes.iter().any(|n| n.contains("true")),
            "claims must hold: {report}"
        );
        assert_eq!(report.table.len(), 4); // 2 dims × 2 ks × 1 seed
    }
}
