//! Ablations and baselines beyond the paper's own figures.

use geocast_core::{baseline, build_tree, stability, OrthantRectPartitioner};
use geocast_geom::gen::{embed_lifetimes, lifetimes, uniform_points};
use geocast_geom::MetricKind;
use geocast_metrics::{Summary, Table};
use geocast_overlay::select::{EmptyRectSelection, HyperplanesSelection};
use geocast_overlay::{oracle, PeerInfo};
use geocast_sim::runner::ParallelRunner;

use crate::figures::FigureReport;

/// Configuration for the partitioner ablation.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Number of peers.
    pub n: usize,
    /// Dimensionalities.
    pub dims: Vec<usize>,
    /// Trials.
    pub seeds: Vec<u64>,
    /// Coordinate bound.
    pub vmax: f64,
    /// Roots sampled per trial.
    pub roots: usize,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            n: 1000,
            dims: vec![2, 3, 4, 5],
            seeds: vec![1, 2, 3],
            vmax: 1000.0,
            roots: 100,
        }
    }
}

impl AblationConfig {
    /// Reduced scale for CI.
    #[must_use]
    pub fn quick() -> Self {
        AblationConfig {
            n: 120,
            dims: vec![2, 3],
            seeds: vec![1],
            vmax: 1000.0,
            roots: 20,
        }
    }
}

/// **Ablation** — why does the paper pick the *median*-distance
/// neighbour per orthant? Compares median / closest / farthest child
/// picks on root-to-leaf path length and tree diameter. (All three span
/// with `N − 1` messages; the pick rule only shapes the tree.)
#[must_use]
pub fn ablation_partitioner(cfg: &AblationConfig) -> FigureReport {
    let partitioners = [
        ("median (paper)", OrthantRectPartitioner::median()),
        ("closest", OrthantRectPartitioner::closest()),
        ("farthest", OrthantRectPartitioner::farthest()),
    ];
    let jobs: Vec<(usize, u64)> = cfg
        .dims
        .iter()
        .flat_map(|&d| cfg.seeds.iter().map(move |&s| (d, s)))
        .collect();
    let runner = ParallelRunner::default();
    // Per job: per partitioner (avg longest path, avg diameter, spanning).
    let measured = runner.map(&jobs, |&(dim, seed)| {
        let peers = PeerInfo::from_point_set(&uniform_points(cfg.n, dim, cfg.vmax, seed));
        let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
        let stride = (cfg.n / cfg.roots.max(1)).max(1);
        let roots: Vec<usize> = (0..cfg.n).step_by(stride).take(cfg.roots).collect();
        partitioners
            .iter()
            .map(|(_, p)| {
                let mut paths = Summary::new();
                let mut diameters = Summary::new();
                let mut all_span = true;
                for &root in &roots {
                    let result = build_tree(&peers, &overlay, root, p);
                    all_span &= result.tree.is_spanning();
                    paths.add(result.tree.longest_root_to_leaf() as f64);
                    diameters.add(result.tree.diameter() as f64);
                }
                (paths.mean(), diameters.mean(), all_span)
            })
            .collect::<Vec<_>>()
    });

    let mut table = Table::new(vec![
        "D".into(),
        "pick rule".into(),
        "avg longest path".into(),
        "avg diameter".into(),
        "all spanning".into(),
    ]);
    for &dim in &cfg.dims {
        for (pi, (name, _)) in partitioners.iter().enumerate() {
            let trials: Vec<&(f64, f64, bool)> = jobs
                .iter()
                .zip(&measured)
                .filter(|&((d, _), _rows)| *d == dim)
                .map(|((_d, _), rows)| &rows[pi])
                .collect();
            let path = trials.iter().map(|t| t.0).sum::<f64>() / trials.len() as f64;
            let diam = trials.iter().map(|t| t.1).sum::<f64>() / trials.len() as f64;
            let span = trials.iter().all(|t| t.2);
            table.push_row(vec![
                dim.to_string(),
                (*name).to_owned(),
                format!("{path:.2}"),
                format!("{diam:.2}"),
                span.to_string(),
            ]);
        }
    }
    FigureReport::new(
        "ablation-pick",
        format!(
            "child-pick ablation (N={}, {} roots/trial)",
            cfg.n, cfg.roots
        ),
        table,
    )
    .with_note("all rules satisfy the §2 invariants; the pick only shapes depth/diameter")
}

/// Configuration for the baseline comparisons.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Network sizes.
    pub ns: Vec<usize>,
    /// Dimensionality.
    pub dim: usize,
    /// Trials.
    pub seeds: Vec<u64>,
    /// Coordinate bound / lifetime horizon.
    pub vmax: f64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            ns: vec![100, 500, 1000, 2000],
            dim: 2,
            seeds: vec![1, 2, 3],
            vmax: 1000.0,
        }
    }
}

impl BaselineConfig {
    /// Reduced scale for CI.
    #[must_use]
    pub fn quick() -> Self {
        BaselineConfig {
            ns: vec![60, 150],
            dim: 2,
            seeds: vec![1],
            vmax: 1000.0,
        }
    }
}

/// **Baseline: message cost** — the intro claims existing solutions
/// "send many messages for constructing the tree". Compares flooding's
/// message count against the §2 construction's `N − 1` on the same
/// overlay.
#[must_use]
pub fn baseline_messages(cfg: &BaselineConfig) -> FigureReport {
    let jobs: Vec<(usize, u64)> = cfg
        .ns
        .iter()
        .flat_map(|&n| cfg.seeds.iter().map(move |&s| (n, s)))
        .collect();
    let runner = ParallelRunner::default();
    let measured = runner.map(&jobs, |&(n, seed)| {
        let peers = PeerInfo::from_point_set(&uniform_points(n, cfg.dim, cfg.vmax, seed));
        let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
        let flood = baseline::flood(&overlay, 0);
        let ours = build_tree(&peers, &overlay, 0, &OrthantRectPartitioner::median());
        (
            ours.messages as f64,
            flood.messages as f64,
            flood.duplicates as f64,
        )
    });

    let mut table = Table::new(vec![
        "N".into(),
        "space-partitioning msgs".into(),
        "flooding msgs".into(),
        "flooding duplicates".into(),
        "overhead factor".into(),
    ]);
    for &n in &cfg.ns {
        let trials: Vec<&(f64, f64, f64)> = jobs
            .iter()
            .zip(&measured)
            .filter_map(|((nn, _), m)| (*nn == n).then_some(m))
            .collect();
        let ours = trials.iter().map(|t| t.0).sum::<f64>() / trials.len() as f64;
        let flood = trials.iter().map(|t| t.1).sum::<f64>() / trials.len() as f64;
        let dups = trials.iter().map(|t| t.2).sum::<f64>() / trials.len() as f64;
        table.push_row(vec![
            n.to_string(),
            format!("{ours:.0}"),
            format!("{flood:.0}"),
            format!("{dups:.0}"),
            format!("{:.2}x", flood / ours.max(1.0)),
        ]);
    }
    FigureReport::new(
        "baseline-msgs",
        format!("construction message cost vs flooding (D={})", cfg.dim),
        table,
    )
    .with_note("both run on the identical empty-rectangle equilibrium overlay")
}

/// **Baseline: departure sensitivity** — the intro claims existing trees
/// are "very sensitive to node departures". Replays the full departure
/// schedule on the §3 stability tree, the BFS tree and a random-parent
/// tree, counting departures that disconnect live peers.
#[must_use]
pub fn baseline_stability(cfg: &BaselineConfig) -> FigureReport {
    let jobs: Vec<(usize, u64)> = cfg
        .ns
        .iter()
        .flat_map(|&n| cfg.seeds.iter().map(move |&s| (n, s)))
        .collect();
    let runner = ParallelRunner::default();
    let measured = runner.map(&jobs, |&(n, seed)| {
        let base = uniform_points(n, cfg.dim, cfg.vmax, seed);
        let times = lifetimes(n, cfg.vmax, seed ^ 0x1234_5678);
        let peers = PeerInfo::from_point_set(&embed_lifetimes(&base, &times));
        let overlay = oracle::equilibrium(
            &peers,
            &HyperplanesSelection::orthogonal(cfg.dim, 2, MetricKind::L1),
        );
        let t: Vec<f64> = peers.iter().map(PeerInfo::departure_time).collect();

        let stability_tree =
            stability::preferred_links(&peers, &overlay, stability::PreferredPolicy::MaxT)
                .to_multicast_tree()
                .expect("equilibrium forms a tree");
        let bfs = baseline::bfs_tree(&overlay, stability_tree.root());
        let random = baseline::random_parent_tree(&overlay, stability_tree.root(), seed);
        (
            stability::non_leaf_departures(&stability_tree, &t) as f64,
            stability::non_leaf_departures(&bfs, &t) as f64,
            stability::non_leaf_departures(&random, &t) as f64,
        )
    });

    let mut table = Table::new(vec![
        "N".into(),
        "stability tree (§3)".into(),
        "BFS tree".into(),
        "random-parent tree".into(),
    ]);
    for &n in &cfg.ns {
        let trials: Vec<&(f64, f64, f64)> = jobs
            .iter()
            .zip(&measured)
            .filter_map(|((nn, _), m)| (*nn == n).then_some(m))
            .collect();
        let s = trials.iter().map(|t| t.0).sum::<f64>() / trials.len() as f64;
        let b = trials.iter().map(|t| t.1).sum::<f64>() / trials.len() as f64;
        let r = trials.iter().map(|t| t.2).sum::<f64>() / trials.len() as f64;
        table.push_row(vec![
            n.to_string(),
            format!("{s:.1}"),
            format!("{b:.1}"),
            format!("{r:.1}"),
        ]);
    }
    FigureReport::new(
        "baseline-stability",
        "disconnecting departures per full departure schedule".to_owned(),
        table,
    )
    .with_note(
        "cell = departures that split live peers apart (lower is better; §3 tree is provably 0)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_quick_spans_for_all_rules() {
        let report = ablation_partitioner(&AblationConfig::quick());
        assert_eq!(report.table.len(), 6); // 2 dims × 3 rules
        for row in report.table.rows() {
            assert_eq!(row[4], "true", "{row:?}");
        }
    }

    #[test]
    fn baseline_messages_shows_flooding_overhead() {
        let report = baseline_messages(&BaselineConfig::quick());
        for row in report.table.rows() {
            let ours: f64 = row[1].parse().unwrap();
            let flood: f64 = row[2].parse().unwrap();
            assert!(flood > ours, "flooding must cost more: {row:?}");
        }
    }

    #[test]
    fn baseline_stability_shows_zero_for_section3_tree() {
        let report = baseline_stability(&BaselineConfig::quick());
        for row in report.table.rows() {
            let ours: f64 = row[1].parse().unwrap();
            assert_eq!(ours, 0.0, "§3 tree must never disconnect: {row:?}");
            let random: f64 = row[3].parse().unwrap();
            assert!(
                random > 0.0,
                "random tree should disconnect sometimes: {row:?}"
            );
        }
    }
}
