//! Beyond-the-paper churn scenario: the incremental churn engine under
//! join waves, leave waves, flash crowds and sustained mixed churn.
//!
//! The paper's experimental procedure re-converges the whole overlay
//! after every single insertion, which caps churn studies at toy sizes.
//! The [`geocast_overlay::TopologyStore`] instead keeps the equilibrium
//! topology up to date incrementally — each membership event touches
//! only the peers whose candidate sets it can affect (the *dirty
//! region*). This harness replays the four canonical churn shapes of
//! [`geocast_sim::workload::ChurnPattern`] against a store, measures
//! event throughput and dirty-region locality, and cross-checks the
//! final topology against a from-scratch equilibrium rebuild.

use std::time::Instant;

use geocast_metrics::{AsciiChart, Table};
use geocast_overlay::churn::{run_schedule_on_store_with, ChurnSchedule};
use geocast_overlay::select::EmptyRectSelection;
use geocast_overlay::{oracle, OverlayGraph, PeerId, PeerInfo, TopologyStore};
use geocast_sim::workload::ChurnPattern;

use crate::figures::FigureReport;

/// Configuration for the churn scenario.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Base population each scenario starts from.
    pub initial: usize,
    /// Size of the join/leave waves (the flash crowd surges and drains
    /// this many peers).
    pub wave: usize,
    /// Events in the sustained mixed-churn scenario.
    pub mixed_events: usize,
    /// Join weight of the mixed scenario.
    pub join_rate: u32,
    /// Leave weight of the mixed scenario.
    pub leave_rate: u32,
    /// Dimensionality.
    pub dim: usize,
    /// Workload seed.
    pub seed: u64,
    /// Coordinate bound.
    pub vmax: f64,
}

impl Default for ChurnConfig {
    /// Paper-overreach scale: a 5000-peer base absorbing thousand-peer
    /// waves.
    fn default() -> Self {
        ChurnConfig {
            initial: 5_000,
            wave: 1_000,
            mixed_events: 2_000,
            join_rate: 1,
            leave_rate: 1,
            dim: 2,
            seed: 1,
            vmax: 1000.0,
        }
    }
}

impl ChurnConfig {
    /// Reduced scale for CI.
    #[must_use]
    pub fn quick() -> Self {
        ChurnConfig {
            initial: 300,
            wave: 80,
            mixed_events: 160,
            join_rate: 1,
            leave_rate: 1,
            dim: 2,
            seed: 1,
            vmax: 1000.0,
        }
    }
}

/// The from-scratch equilibrium over the store's live population,
/// expressed over the store's dense ids — the reference the incremental
/// engine must match exactly.
fn rebuilt_reference(store: &TopologyStore) -> OverlayGraph {
    let live: Vec<usize> = (0..store.len())
        .filter(|&i| !store.is_departed(PeerId(i as u64)))
        .collect();
    let live_peers: Vec<PeerInfo> = live
        .iter()
        .enumerate()
        .map(|(dense, &orig)| {
            PeerInfo::new(PeerId(dense as u64), store.peers()[orig].point().clone())
        })
        .collect();
    let dense = oracle::equilibrium(&live_peers, store.selection().as_ref());
    let mut out = vec![Vec::new(); store.len()];
    for (di, &oi) in live.iter().enumerate() {
        out[oi] = dense.out_neighbors(di).iter().map(|&dj| live[dj]).collect();
    }
    OverlayGraph::from_out_neighbors(out)
}

/// **Churn scenario** — incremental equilibrium maintenance under the
/// four canonical churn shapes, on the empty-rectangle rule.
///
/// Each scenario starts from a fresh `initial`-peer store, replays its
/// pattern through [`run_schedule_on_store_with`], and reports events/s,
/// dirty-region locality, and whether the incremental result equals a
/// from-scratch rebuild (it must — the engine is exact).
#[must_use]
pub fn churn_panel(cfg: &ChurnConfig) -> FigureReport {
    let scenarios: Vec<ChurnPattern> = vec![
        ChurnPattern::JoinWave { count: cfg.wave },
        ChurnPattern::LeaveWave { count: cfg.wave },
        ChurnPattern::FlashCrowd {
            surge: cfg.wave,
            exodus: cfg.wave,
        },
        ChurnPattern::Mixed {
            events: cfg.mixed_events,
            join_rate: cfg.join_rate,
            leave_rate: cfg.leave_rate,
        },
    ];

    let mut table = Table::new(vec![
        "scenario".into(),
        "events".into(),
        "events/s".into(),
        "touched mean".into(),
        "touched max".into(),
        "live N after".into(),
        "== rebuild".into(),
    ]);
    let mut mixed_series: Vec<(f64, f64)> = Vec::new();

    for (si, pattern) in scenarios.iter().enumerate() {
        let base = geocast_geom::gen::uniform_points(cfg.initial, cfg.dim, cfg.vmax, cfg.seed);
        let mut store = TopologyStore::from_peers(
            PeerInfo::from_point_set(&base),
            std::sync::Arc::new(EmptyRectSelection),
        );
        let schedule = ChurnSchedule::from_pattern(
            cfg.initial,
            pattern,
            cfg.dim,
            cfg.vmax,
            cfg.seed ^ (si as u64 + 1),
        );
        // lint:allow(D002, reason = "feeds the wall-clock column of the churn panel only; no control flow reads the clock")
        let start = Instant::now();
        // One shared replay implementation; the observer captures the
        // mixed scenario's per-event dirty-region trace for the chart.
        let chart_this = matches!(pattern, ChurnPattern::Mixed { .. });
        let report = run_schedule_on_store_with(&mut store, &schedule, |ei, touched| {
            if chart_this {
                mixed_series.push((ei as f64, touched as f64));
            }
        });
        let seconds = start.elapsed().as_secs_f64();
        let events = report.joins + report.leaves;
        let exact = store.graph() == rebuilt_reference(&store);
        let rate = if seconds > 0.0 {
            events as f64 / seconds
        } else {
            f64::INFINITY
        };
        table.push_row(vec![
            pattern.to_string(),
            events.to_string(),
            format!("{rate:.0}"),
            format!("{:.1}", report.touched_mean()),
            report.touched_max.to_string(),
            store.live_count().to_string(),
            exact.to_string(),
        ]);
    }

    let mut chart = AsciiChart::new(56, 12);
    chart.add_series("mixed-churn dirty region", mixed_series);
    FigureReport::new(
        "churn",
        format!(
            "incremental churn engine (N0={}, D={}, empty-rectangle rule)",
            cfg.initial, cfg.dim
        ),
        table,
    )
    .with_chart(chart.render())
    .with_note(
        "touched = peers whose adjacency a membership event changed \
         (the TopologyStore dirty region); every scenario must report \
         '== rebuild: true'",
    )
    .with_note(format!(
        "seed: {}, wave: {}, mixed: {} events @ {}:{}",
        cfg.seed, cfg.wave, cfg.mixed_events, cfg.join_rate, cfg.leave_rate
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_panel_reports_all_four_scenarios_exactly() {
        let cfg = ChurnConfig {
            initial: 60,
            wave: 15,
            mixed_events: 30,
            ..ChurnConfig::quick()
        };
        let report = churn_panel(&cfg);
        assert_eq!(report.table.len(), 4);
        for row in report.table.rows() {
            assert_eq!(row[6], "true", "{}: incremental != rebuild", row[0]);
        }
        assert!(report.chart.is_some());
    }

    #[test]
    fn join_wave_grows_and_leave_wave_shrinks() {
        let cfg = ChurnConfig {
            initial: 40,
            wave: 10,
            mixed_events: 10,
            ..ChurnConfig::quick()
        };
        let report = churn_panel(&cfg);
        let live_after: Vec<usize> = report
            .table
            .rows()
            .iter()
            .map(|row| row[5].parse().unwrap())
            .collect();
        assert_eq!(live_after[0], 50, "join wave adds wave peers");
        assert_eq!(live_after[1], 30, "leave wave removes wave peers");
        assert_eq!(live_after[2], 40, "flash crowd returns to base");
    }
}
