//! Beyond-the-paper scaling scenario: equilibrium overlay construction
//! at sizes the paper's framework never reached.
//!
//! The paper evaluates up to `N = 5000`; the ROADMAP's north star is
//! million-user scale. This harness measures the construction engine
//! (spatial index + parallel batch selection, see `docs/PERFORMANCE.md`)
//! across a size sweep in the paper's `D = 2` setting of Fig. 1(c), and
//! asserts the log-like degree growth continues to hold at scale.

use std::time::Instant;

use geocast_metrics::{AsciiChart, Table};
use geocast_overlay::select::EmptyRectSelection;
use geocast_overlay::{oracle, PeerInfo};

use crate::figures::FigureReport;

/// Configuration for the overlay-construction scaling scenario.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Network sizes to build.
    pub ns: Vec<usize>,
    /// Dimensionality (Fig. 1c setting: 2).
    pub dim: usize,
    /// Workload seed.
    pub seed: u64,
    /// Coordinate bound.
    pub vmax: f64,
}

impl Default for ScalingConfig {
    /// Paper-overreach scale, topping out at `N = 50_000` (an order of
    /// magnitude past Fig. 1(c)'s axis).
    fn default() -> Self {
        ScalingConfig {
            ns: vec![1_000, 5_000, 10_000, 20_000, 50_000],
            dim: 2,
            seed: 1,
            vmax: 1000.0,
        }
    }
}

impl ScalingConfig {
    /// Reduced scale for CI.
    #[must_use]
    pub fn quick() -> Self {
        ScalingConfig {
            ns: vec![500, 1_000, 2_000],
            dim: 2,
            seed: 1,
            vmax: 1000.0,
        }
    }
}

/// **Scaling scenario** — empty-rectangle equilibrium construction time
/// and topology shape as `N` grows at `D = 2`.
///
/// The engine keeps the topology *exactly* equal to the brute-force
/// definition (property-tested in `geocast-overlay`), so the measured
/// overlays are the same objects Fig. 1(c) reports — just built at
/// sizes where the `O(N²)` path stops being an option.
#[must_use]
pub fn overlay_scaling(cfg: &ScalingConfig) -> FigureReport {
    let mut table = Table::new(vec![
        "N".into(),
        "build seconds".into(),
        "directed edges".into(),
        "max degree".into(),
        "avg degree".into(),
    ]);
    let mut time_series = Vec::new();
    let mut degree_series = Vec::new();
    for &n in &cfg.ns {
        let peers = PeerInfo::from_point_set(&geocast_geom::gen::uniform_points(
            n, cfg.dim, cfg.vmax, cfg.seed,
        ));
        // lint:allow(D002, reason = "feeds the build_ms column of the scaling panel only; no control flow reads the clock")
        let start = Instant::now();
        let graph = oracle::equilibrium(&peers, &EmptyRectSelection);
        let seconds = start.elapsed().as_secs_f64();
        let degrees = graph.undirected_degrees();
        let max = degrees.iter().copied().max().unwrap_or(0);
        let avg = if degrees.is_empty() {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / degrees.len() as f64
        };
        table.push_row(vec![
            n.to_string(),
            format!("{seconds:.3}"),
            graph.directed_edge_count().to_string(),
            max.to_string(),
            format!("{avg:.1}"),
        ]);
        time_series.push((n as f64, seconds));
        degree_series.push((n as f64, avg));
    }
    let mut chart = AsciiChart::new(56, 12);
    chart.add_series("build seconds", time_series);
    FigureReport::new(
        "scaling",
        format!(
            "equilibrium construction scaling (D={}, empty-rectangle rule)",
            cfg.dim
        ),
        table,
    )
    .with_chart(chart.render())
    .with_note("engine: spatial index + parallel batch selection (docs/PERFORMANCE.md)")
    .with_note(format!("seed: {}, sizes: {:?}", cfg.seed, cfg.ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_quick_reports_one_row_per_size() {
        let cfg = ScalingConfig {
            ns: vec![100, 300],
            ..ScalingConfig::quick()
        };
        let report = overlay_scaling(&cfg);
        assert_eq!(report.table.len(), 2);
        assert!(report.chart.is_some());
        // Average degree stays in the log-like band the paper reports.
        let avg: f64 = report.table.rows()[1][4].parse().unwrap();
        assert!(
            avg > 2.0 && avg < 60.0,
            "avg degree {avg} out of the expected band"
        );
    }

    #[test]
    fn scaling_measures_positive_durations() {
        let cfg = ScalingConfig {
            ns: vec![200],
            ..ScalingConfig::quick()
        };
        let report = overlay_scaling(&cfg);
        let secs: f64 = report.table.rows()[0][1].parse().unwrap();
        assert!(secs >= 0.0);
        let edges: usize = report.table.rows()[0][2].parse().unwrap();
        assert!(edges > 0);
    }

    #[test]
    fn default_config_reaches_fifty_thousand() {
        assert_eq!(ScalingConfig::default().ns.last(), Some(&50_000));
        assert_eq!(ScalingConfig::default().dim, 2);
    }
}
