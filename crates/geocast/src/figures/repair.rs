//! Extension experiment: the cost of localized zone repair.

use geocast_core::repair::repair_after_departure;
use geocast_core::{build_tree, OrthantRectPartitioner};
use geocast_geom::gen::uniform_points;
use geocast_metrics::{Summary, Table};
use geocast_overlay::select::EmptyRectSelection;
use geocast_overlay::{oracle, OverlayGraph, PeerId, PeerInfo};
use geocast_sim::runner::ParallelRunner;

use crate::figures::FigureReport;

/// Configuration for the repair-cost experiment.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Network sizes.
    pub ns: Vec<usize>,
    /// Dimensionality.
    pub dim: usize,
    /// Trials (seed per trial; each trial repairs every non-root,
    /// non-leaf peer once).
    pub seeds: Vec<u64>,
    /// Coordinate bound.
    pub vmax: f64,
    /// Maximum departures sampled per trial (repairs are independent —
    /// each starts from the intact tree).
    pub departures: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            ns: vec![100, 500, 1000],
            dim: 2,
            seeds: vec![1, 2, 3],
            vmax: 1000.0,
            departures: 50,
        }
    }
}

impl RepairConfig {
    /// Reduced scale for CI.
    #[must_use]
    pub fn quick() -> Self {
        RepairConfig {
            ns: vec![50, 120],
            dim: 2,
            seeds: vec![1],
            vmax: 1000.0,
            departures: 10,
        }
    }
}

/// The survivor equilibrium expressed over original dense indices.
fn survivor_overlay(peers: &[PeerInfo], departed: usize) -> OverlayGraph {
    let live: Vec<usize> = (0..peers.len()).filter(|&i| i != departed).collect();
    let live_peers: Vec<PeerInfo> = live
        .iter()
        .enumerate()
        .map(|(dense, &orig)| PeerInfo::new(PeerId(dense as u64), peers[orig].point().clone()))
        .collect();
    let dense = oracle::equilibrium(&live_peers, &EmptyRectSelection);
    let mut out = vec![Vec::new(); peers.len()];
    for (di, &oi) in live.iter().enumerate() {
        out[oi] = dense.out_neighbors(di).iter().map(|&dj| live[dj]).collect();
    }
    OverlayGraph::from_out_neighbors(out)
}

/// **Extension (E11)** — repair cost after a departure: messages needed
/// by the parent-seeded zone reconstruction versus the `N − 1` full
/// rebuild, over sampled departures. Every repair is verified to re-span
/// the survivors.
#[must_use]
pub fn repair_cost(cfg: &RepairConfig) -> FigureReport {
    let jobs: Vec<(usize, u64)> = cfg
        .ns
        .iter()
        .flat_map(|&n| cfg.seeds.iter().map(move |&s| (n, s)))
        .collect();
    let runner = ParallelRunner::default();
    // Per job: (repair message summary, all spanned?, repairs done).
    let measured = runner.map(&jobs, |&(n, seed)| {
        let peers = PeerInfo::from_point_set(&uniform_points(n, cfg.dim, cfg.vmax, seed));
        let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
        let build = build_tree(&peers, &overlay, 0, &OrthantRectPartitioner::median());
        let mut costs = Summary::new();
        let mut all_spanned = true;
        let mut victims: Vec<usize> = (1..n)
            .filter(|&i| !build.tree.children(i).is_empty())
            .collect();
        // Deterministic stride sample of internal peers.
        if victims.len() > cfg.departures {
            let stride = victims.len() / cfg.departures;
            victims = victims
                .into_iter()
                .step_by(stride.max(1))
                .take(cfg.departures)
                .collect();
        }
        for &victim in &victims {
            let live = survivor_overlay(&peers, victim);
            let repaired = repair_after_departure(
                &peers,
                &live,
                &build,
                victim,
                &OrthantRectPartitioner::median(),
            )
            .expect("non-root repair succeeds");
            all_spanned &= (0..n).all(|i| i == victim || repaired.tree.is_reached(i));
            costs.add(repaired.repair_messages as f64);
        }
        (costs, all_spanned, victims.len())
    });

    let mut table = Table::new(vec![
        "N".into(),
        "repairs sampled".into(),
        "mean repair msgs".into(),
        "p95 repair msgs".into(),
        "max repair msgs".into(),
        "full rebuild (N-1)".into(),
        "all re-spanned".into(),
    ]);
    for &n in &cfg.ns {
        let trials: Vec<&(Summary, bool, usize)> = jobs
            .iter()
            .zip(&measured)
            .filter_map(|((nn, _), m)| (*nn == n).then_some(m))
            .collect();
        let mut merged = Summary::new();
        let mut repairs = 0usize;
        let mut spanned = true;
        for (s, ok, count) in &trials {
            // Aggregate across trials: mean of per-trial means, worst
            // p95/max across trials.
            merged.add(s.mean());
            spanned &= *ok;
            repairs += count;
        }
        let per_trial_p95: f64 = trials
            .iter()
            .map(|(s, _, _)| s.percentile(95.0))
            .fold(0.0, f64::max);
        let per_trial_max: f64 = trials.iter().map(|(s, _, _)| s.max()).fold(0.0, f64::max);
        table.push_row(vec![
            n.to_string(),
            repairs.to_string(),
            format!("{:.1}", merged.mean()),
            format!("{per_trial_p95:.0}"),
            format!("{per_trial_max:.0}"),
            (n - 1).to_string(),
            spanned.to_string(),
        ]);
    }
    FigureReport::new(
        "repair-cost",
        format!("localized zone repair vs full rebuild (D={})", cfg.dim),
        table,
    )
    .with_note("repair = parent re-runs the §2 delegation on the orphaned zone over the survivor equilibrium")
    .with_note("cost is proportional to the orphaned subtree, not to N")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_cost_quick_respans_everything_cheaply() {
        let report = repair_cost(&RepairConfig::quick());
        assert_eq!(report.table.len(), 2);
        for row in report.table.rows() {
            assert_eq!(row[6], "true", "{row:?}");
            let mean: f64 = row[2].parse().unwrap();
            let rebuild: f64 = row[5].parse().unwrap();
            assert!(
                mean < rebuild / 2.0,
                "repair should be far below rebuild: {row:?}"
            );
        }
    }
}
