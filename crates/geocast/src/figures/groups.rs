//! Beyond-the-paper multi-group scenario: N concurrent multicast trees
//! over one shared overlay, kept current by the delta-driven
//! [`GroupEngine`].
//!
//! A production deployment of the paper's overlay serves many groups at
//! once — topics, channels, sensor clusters — each a §2 tree rooted at
//! its own source. This harness sweeps the number of concurrent groups
//! **and the membership placement** (clustered sensor-field groups vs
//! uniformly scattered topic subscribers) at a fixed population and
//! fixed total subscription count (Zipf-distributed across groups),
//! replays identical overlay churn plus a subscribe/unsubscribe/publish
//! workload, and reports:
//!
//! * the engine's locality — groups actually repaired per churn event
//!   against the total a naive engine would rebuild;
//! * the **coverage-vs-scatter** outcome routing-based join buys: with
//!   relay grafting every publish must deliver to every subscriber
//!   (`stranded = 0`) even for scattered membership, at a measured
//!   relay overhead (extra payload-carrying edges per publish).
//!
//! The final state of every group is cross-checked against a
//! from-scratch [`geocast_core::groups::build_group_tree_grafted`]
//! rebuild — the engine is exact, not approximate.

use std::sync::Arc;
use std::time::Instant;

use geocast_core::groups::{AppliedOp, GroupEngine};
use geocast_core::OrthantRectPartitioner;
use geocast_metrics::{AsciiChart, Table};
use geocast_overlay::churn::{ChurnEvent, ChurnSchedule};
use geocast_overlay::select::EmptyRectSelection;
use geocast_overlay::{PeerInfo, TopologyStore};
use geocast_sim::workload::{zipf_group_sizes, ChurnPattern, GroupWorkload, MembershipPlacement};

use crate::figures::FigureReport;

/// Configuration for the multi-group scenario.
#[derive(Debug, Clone)]
pub struct GroupsConfig {
    /// Base overlay population.
    pub initial: usize,
    /// Concurrent-group counts to sweep (each a table row per
    /// placement).
    pub group_counts: Vec<usize>,
    /// Membership placements to sweep (the coverage-vs-scatter axis).
    pub placements: Vec<MembershipPlacement>,
    /// Total initial subscriptions, held fixed across the sweep and
    /// split across groups by Zipf popularity.
    pub subscriptions: usize,
    /// Zipf popularity exponent.
    pub exponent: f64,
    /// Overlay churn events (1:1 mixed joins/leaves) per scenario.
    pub churn_events: usize,
    /// Group-workload operations (subscribe/unsubscribe/publish) per
    /// scenario.
    pub group_events: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Workload seed.
    pub seed: u64,
    /// Coordinate bound.
    pub vmax: f64,
}

impl Default for GroupsConfig {
    /// Paper-overreach scale: a 2000-peer overlay carrying up to 128
    /// concurrent groups, clustered and scattered.
    fn default() -> Self {
        GroupsConfig {
            initial: 2_000,
            group_counts: vec![8, 32, 128],
            placements: vec![
                MembershipPlacement::Clustered,
                MembershipPlacement::Scattered,
            ],
            subscriptions: 4_000,
            exponent: 1.0,
            churn_events: 300,
            group_events: 300,
            dim: 2,
            seed: 1,
            vmax: 1000.0,
        }
    }
}

impl GroupsConfig {
    /// Reduced scale for CI.
    #[must_use]
    pub fn quick() -> Self {
        GroupsConfig {
            initial: 220,
            group_counts: vec![4, 8, 16],
            placements: vec![
                MembershipPlacement::Clustered,
                MembershipPlacement::Scattered,
            ],
            subscriptions: 440,
            exponent: 1.0,
            churn_events: 50,
            group_events: 50,
            dim: 2,
            seed: 1,
            vmax: 1000.0,
        }
    }
}

/// Per-scenario accounting the table reports.
struct ScenarioStats {
    groups: usize,
    placement: MembershipPlacement,
    memberships: usize,
    affected_sum: usize,
    repaired_members_sum: usize,
    churn_events: usize,
    group_events: usize,
    coverage_mean: f64,
    relays: usize,
    publishes: usize,
    publish_stranded: usize,
    publish_messages: usize,
    publish_relay_messages: usize,
    events_per_s: f64,
    exact: bool,
}

/// Replays one scenario at `num_groups` concurrent groups; pushes the
/// per-churn-event affected-group trace into `trace` when `chart` is
/// set.
fn run_scenario(
    cfg: &GroupsConfig,
    num_groups: usize,
    placement: MembershipPlacement,
    chart: bool,
    trace: &mut Vec<(f64, f64)>,
) -> ScenarioStats {
    let base = geocast_geom::gen::uniform_points(cfg.initial, cfg.dim, cfg.vmax, cfg.seed);
    let store = TopologyStore::from_peers(
        PeerInfo::from_point_set(&base),
        Arc::new(EmptyRectSelection),
    );
    let mut engine = GroupEngine::new(store, Arc::new(OrthantRectPartitioner::median()));
    let mut state = cfg.seed ^ 0x6d75_6c74_6963_6173; // "multicas"
    let sizes = zipf_group_sizes(num_groups, cfg.subscriptions.max(num_groups), cfg.exponent);
    let ids = engine.seed_groups_placed(placement, &sizes, &mut state);

    let churn = ChurnSchedule::from_pattern(
        cfg.initial,
        &ChurnPattern::Mixed {
            events: cfg.churn_events,
            join_rate: 1,
            leave_rate: 1,
        },
        cfg.dim,
        cfg.vmax,
        cfg.seed ^ (num_groups as u64),
    );
    let workload = GroupWorkload {
        groups: num_groups,
        exponent: cfg.exponent,
        events: cfg.group_events,
        subscribe_weight: 2,
        unsubscribe_weight: 1,
        publish_weight: 2,
    };
    let group_ops = workload.ops(cfg.seed ^ 0x67 ^ (num_groups as u64));

    let mut stats = ScenarioStats {
        groups: num_groups,
        placement,
        memberships: 0,
        affected_sum: 0,
        repaired_members_sum: 0,
        churn_events: 0,
        group_events: 0,
        coverage_mean: 0.0,
        relays: 0,
        publishes: 0,
        publish_stranded: 0,
        publish_messages: 0,
        publish_relay_messages: 0,
        events_per_s: 0.0,
        exact: true,
    };
    let absorb_publish = |stats: &mut ScenarioStats,
                          outcome: &geocast_core::groups::PublishOutcome| {
        stats.publishes += 1;
        stats.publish_stranded += outcome.stranded;
        stats.publish_messages += outcome.messages;
        stats.publish_relay_messages += outcome.relay_messages;
    };

    // Interleave overlay churn with the group workload, round-robin.
    // lint:allow(D002, reason = "feeds the wall-clock column of the groups panel only; no control flow reads the clock")
    let start = Instant::now();
    let mut churn_it = churn.events().iter();
    let mut ops_it = group_ops.into_iter();
    loop {
        let mut progressed = false;
        if let Some(event) = churn_it.next() {
            match event {
                ChurnEvent::Join(p) => {
                    engine.join(p.clone());
                }
                ChurnEvent::Leave(id) => engine.leave(*id),
            }
            let sync = *engine.last_sync();
            stats.churn_events += 1;
            stats.affected_sum += sync.affected_groups;
            stats.repaired_members_sum += sync.rebuilt_members;
            if chart {
                trace.push((stats.churn_events as f64, sync.affected_groups as f64));
            }
            progressed = true;
        }
        if let Some(op) = ops_it.next() {
            if let AppliedOp::Published(_, outcome) = engine.apply_workload_op(op, &mut state) {
                absorb_publish(&mut stats, &outcome);
            }
            stats.group_events += 1;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    // Final publish sweep: every group delivers once more so rows with
    // few workload publishes still report coverage at full confidence.
    for &g in &ids {
        if let Some(outcome) = engine.publish(g) {
            absorb_publish(&mut stats, &outcome);
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let total_events = stats.churn_events + stats.group_events;
    stats.events_per_s = if seconds > 0.0 {
        total_events as f64 / seconds
    } else {
        f64::INFINITY
    };

    // Final-state audit: memberships, coverage, relays, and exactness
    // against the from-scratch grafted reference.
    let mut coverage_sum = 0.0;
    for &g in &ids {
        stats.memberships += engine.members(g).len();
        stats.relays += engine.relays(g).len();
        coverage_sum += engine.coverage(g);
        stats.exact &= engine.matches_reference(g);
    }
    stats.coverage_mean = coverage_sum / ids.len() as f64;
    stats
}

/// **Multi-group scenario** — N concurrent group trees over one shared
/// store, delta-driven repair, Zipf-distributed group sizes, clustered
/// **and** scattered membership.
///
/// Per-event repair cost must track the *delta-affected* groups (the
/// `affected μ` column), not the group count (`naive` column); every
/// row must report `== rebuild: true`; and with relay grafting every
/// publish must report zero stranded members (`pub stranded` column)
/// at the measured relay overhead (`relay msg/pub`).
#[must_use]
pub fn groups_panel(cfg: &GroupsConfig) -> FigureReport {
    let mut table = Table::new(vec![
        "groups".into(),
        "place".into(),
        "members".into(),
        "events".into(),
        "affected μ".into(),
        "naive".into(),
        "repaired members μ".into(),
        "coverage".into(),
        "relays".into(),
        "pub stranded".into(),
        "relay msg/pub".into(),
        "events/s".into(),
        "== rebuild".into(),
    ]);
    let mut trace: Vec<(f64, f64)> = Vec::new();
    let largest = cfg.group_counts.iter().copied().max().unwrap_or(0);
    for &placement in &cfg.placements {
        for &num_groups in &cfg.group_counts {
            let chart_this = num_groups == largest && placement == MembershipPlacement::Scattered;
            if chart_this {
                trace.clear();
            }
            let s = run_scenario(cfg, num_groups, placement, chart_this, &mut trace);
            let churn = s.churn_events.max(1);
            table.push_row(vec![
                s.groups.to_string(),
                s.placement.to_string(),
                s.memberships.to_string(),
                format!("{}+{}", s.churn_events, s.group_events),
                format!("{:.2}", s.affected_sum as f64 / churn as f64),
                s.groups.to_string(),
                format!("{:.1}", s.repaired_members_sum as f64 / churn as f64),
                format!("{:.0}%", s.coverage_mean * 100.0),
                s.relays.to_string(),
                s.publish_stranded.to_string(),
                format!(
                    "{:.1}",
                    s.publish_relay_messages as f64 / s.publishes.max(1) as f64
                ),
                format!("{:.0}", s.events_per_s),
                s.exact.to_string(),
            ]);
        }
    }

    let mut chart = AsciiChart::new(56, 12);
    chart.add_series(
        format!("groups repaired per churn event (of {largest}, scattered)"),
        trace,
    );
    FigureReport::new(
        "groups",
        format!(
            "multi-group session engine (N0={}, D={}, {} subscriptions, zipf {:.1})",
            cfg.initial, cfg.dim, cfg.subscriptions, cfg.exponent
        ),
        table,
    )
    .with_chart(chart.render())
    .with_note(
        "affected μ = groups whose members or graft-support nodes \
         intersected a churn event's dirty region (only these are \
         repaired); naive = groups a rebuild-everything engine would \
         touch per event; every row must report '== rebuild: true'",
    )
    .with_note(
        "coverage-vs-scatter: relay grafting must hold 'pub stranded' \
         at 0 for both placements — scattered rows pay for it in \
         'relay msg/pub' (extra payload-carrying edges per publish)",
    )
    .with_note(format!(
        "seed: {}, churn: {} mixed events, workload: {} ops @ 2:1:2 \
         subscribe:unsubscribe:publish + one final publish per group",
        cfg.seed, cfg.churn_events, cfg.group_events
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GroupsConfig {
        GroupsConfig {
            initial: 80,
            group_counts: vec![4, 8],
            subscriptions: 120,
            churn_events: 20,
            group_events: 20,
            ..GroupsConfig::quick()
        }
    }

    #[test]
    fn groups_panel_is_exact_with_zero_stranded_for_every_row() {
        let report = groups_panel(&tiny());
        assert_eq!(report.table.len(), 4, "2 placements x 2 group counts");
        for row in report.table.rows() {
            assert_eq!(
                row[12], "true",
                "groups={} place={}: diverged from rebuild",
                row[0], row[1]
            );
            assert_eq!(
                row[9], "0",
                "groups={} place={}: published payloads stranded members",
                row[0], row[1]
            );
            assert_eq!(row[7], "100%", "coverage must close for {}", row[1]);
        }
        assert!(report.chart.is_some());
        // Scattered rows need relays; the sweep must show a non-zero
        // relay overhead somewhere.
        let scattered_relays: usize = report
            .table
            .rows()
            .iter()
            .filter(|r| r[1] == "scattered")
            .map(|r| r[8].parse::<usize>().unwrap())
            .sum();
        assert!(scattered_relays > 0, "scattered rows should graft relays");
    }

    #[test]
    fn repair_cost_does_not_scale_with_group_count() {
        // Fixed subscriptions, growing group count: the affected-group
        // mean must stay well below the naive all-groups cost. Needs a
        // population large enough that a churn event's dirty region is
        // a small fraction of the space. Clustered placement keeps
        // graft-support sets small, preserving PR 4's locality claim.
        let cfg = GroupsConfig {
            initial: 220,
            group_counts: vec![4, 16],
            placements: vec![MembershipPlacement::Clustered],
            subscriptions: 440,
            churn_events: 40,
            group_events: 40,
            ..GroupsConfig::quick()
        };
        let report = groups_panel(&cfg);
        let rows = report.table.rows();
        let affected: f64 = rows[1][4].parse().unwrap();
        let naive: f64 = rows[1][5].parse().unwrap();
        assert!(
            affected < 0.7 * naive,
            "affected μ {affected} vs naive {naive}: locality lost"
        );
    }
}
