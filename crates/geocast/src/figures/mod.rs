//! Harnesses regenerating every table, figure and in-text claim of the
//! paper's evaluation.
//!
//! One function per artifact (see DESIGN.md §4 for the experiment
//! index):
//!
//! | Paper artifact | Harness |
//! |---|---|
//! | Fig. 1(a) — overlay degree vs `D` | [`fig1a`] |
//! | Fig. 1(b) — root-to-leaf path lengths vs `D` | [`fig1b`] |
//! | Fig. 1(c) — overlay degree vs `N` at `D = 2` | [`fig1c`] |
//! | Fig. 1(d) — stability-tree diameter vs `K`, `D` | [`fig1d`] |
//! | Fig. 1(e) — stability-tree max degree vs `K`, `D` | [`fig1e`] |
//! | §2 claims (N−1 messages, no duplicates, degree bound) | [`claims_section2`] |
//! | §3 claims (tree, heap property, leaf departures) | [`claims_section3`] |
//! | Ablation: median vs closest vs farthest child pick | [`ablation_partitioner`] |
//! | Baseline: flooding message cost | [`baseline_messages`] |
//! | Baseline: departure sensitivity | [`baseline_stability`] |
//! | Beyond the paper: construction scaling to `N = 50_000` | [`overlay_scaling`] |
//! | Beyond the paper: incremental churn engine (waves, flash crowds, mixed rates) | [`churn_panel`] |
//! | Beyond the paper: multi-group session engine (N trees, one store, Zipf groups) | [`groups_panel`] |
//! | Beyond the paper: failure-detection plane (detection latency, coverage recovery) | [`detection_panel`] |
//! | Beyond the paper: batched data plane (payload batching, plan cache, eager/lazy) | [`publish_panel`] |
//!
//! Every harness takes an explicit config (with a paper-scale
//! [`Default`] and a reduced [`quick`](Fig1Config::quick) variant for
//! CI), runs deterministically from its seeds, and returns a
//! [`FigureReport`] holding the same rows/series the paper plots.

mod churn;
mod claims;
mod detection;
mod extra;
mod fig1;
mod groups;
mod publish;
mod repair;
mod report;
mod scaling;

pub use churn::{churn_panel, ChurnConfig};
pub use claims::{claims_section2, claims_section3, ClaimsConfig};
pub use detection::{detection_panel, DetectionConfig};
pub use extra::{
    ablation_partitioner, baseline_messages, baseline_stability, AblationConfig, BaselineConfig,
};
pub use fig1::{
    fig1a, fig1b, fig1c, fig1d, fig1e, stability_sweep, Fig1Config, Fig1cConfig, StabilityConfig,
    StabilityRow, StabilitySweep,
};
pub use groups::{groups_panel, GroupsConfig};
pub use publish::{publish_panel, PublishConfig};
pub use repair::{repair_cost, RepairConfig};
pub use report::FigureReport;
pub use scaling::{overlay_scaling, ScalingConfig};
