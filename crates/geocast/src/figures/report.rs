use std::fmt;

use geocast_metrics::Table;

/// The output of one figure/claim harness: an identifier tying it to the
/// paper artifact, the regenerated data as a [`Table`], an optional
/// ASCII rendering of the curves, and free-form notes (parameters,
/// substitutions, observed-vs-paper remarks).
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Artifact id, e.g. `"fig1a"` or `"claims-s2"`.
    pub id: &'static str,
    /// Human-readable title echoing the paper's caption.
    pub title: String,
    /// The regenerated rows/series.
    pub table: Table,
    /// Optional terminal rendering of the curves.
    pub chart: Option<String>,
    /// Parameters and observations worth recording in EXPERIMENTS.md.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Creates a report with empty chart/notes.
    #[must_use]
    pub fn new(id: &'static str, title: impl Into<String>, table: Table) -> Self {
        FigureReport {
            id,
            title: title.into(),
            table,
            chart: None,
            notes: Vec::new(),
        }
    }

    /// Attaches a rendered chart.
    #[must_use]
    pub fn with_chart(mut self, chart: String) -> Self {
        self.chart = Some(chart);
        self
    }

    /// Appends a note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.title)?;
        writeln!(f)?;
        write!(f, "{}", self.table.to_markdown())?;
        if let Some(chart) = &self.chart {
            writeln!(f)?;
            write!(f, "{chart}")?;
        }
        for note in &self.notes {
            writeln!(f, "- {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_all_parts() {
        let mut table = Table::new(vec!["x".into()]);
        table.push_row(vec!["1".into()]);
        let report = FigureReport::new("figX", "demo", table)
            .with_chart("CHART\n".into())
            .with_note("a note");
        let out = report.to_string();
        assert!(out.contains("## figX — demo"));
        assert!(out.contains("| x |"));
        assert!(out.contains("CHART"));
        assert!(out.contains("- a note"));
    }

    #[test]
    fn chartless_report_renders() {
        let report = FigureReport::new("f", "t", Table::new(vec!["h".into()]));
        assert!(!report.to_string().contains("CHART"));
    }
}
