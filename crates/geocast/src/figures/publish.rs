//! Beyond-the-paper data-plane throughput scenario: per-group payload
//! batching over the delivery-plan cache, swept over batch depth × Zipf
//! skew.
//!
//! The control-plane panels (`churn`, `groups`, `detection`) show the
//! trees staying correct under churn; this harness measures how cheaply
//! payloads ride them. Per scenario it drives a [`PublishWorkload`] —
//! `ticks` rounds of `batch` payloads landing on Zipf-popular groups —
//! through [`GroupEngine::enqueue`] / [`GroupEngine::flush_tick`], with
//! periodic overlay churn to exercise plan invalidation, and reports:
//!
//! * **messages/payload and the batching reduction** — a flush walks a
//!   group's delivery edges once however many payloads are queued, so
//!   the Zipf head (which gets both the most payloads and the biggest
//!   tree) collapses from `edges` to `edges / depth` per payload;
//! * **delivery-plan cache hit rate** — steady-state flushes are O(1)
//!   plan lookups; only the churn-repaired groups recompute;
//! * **aggregate payload throughput** (payloads/s through the flush
//!   path), plus stranded payload-deliveries (must be 0: relay grafting
//!   closes coverage, and batching must not reopen it);
//! * a **suspicion-window comparison**: eager/lazy epidemic payload
//!   copies vs the old flood-within-region cost, at equal coverage.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use geocast_core::dataplane::{flood_deliver, FlushReport};
use geocast_core::groups::GroupEngine;
use geocast_core::OrthantRectPartitioner;
use geocast_metrics::{AsciiChart, Table};
use geocast_overlay::churn::{ChurnEvent, ChurnSchedule};
use geocast_overlay::select::EmptyRectSelection;
use geocast_overlay::{PeerInfo, TopologyStore};
use geocast_sim::workload::{zipf_group_sizes, ChurnPattern, MembershipPlacement, PublishWorkload};

use crate::figures::FigureReport;

/// Configuration for the publish-throughput scenario.
#[derive(Debug, Clone)]
pub struct PublishConfig {
    /// Base overlay population.
    pub initial: usize,
    /// Concurrent groups payloads target.
    pub groups: usize,
    /// Total initial subscriptions, Zipf-split across groups.
    pub subscriptions: usize,
    /// Membership placement (clustered = the coverage-safe scenario the
    /// strict gate runs).
    pub placement: MembershipPlacement,
    /// Zipf skew exponents to sweep (0.0 = uniform payload spread).
    pub exponents: Vec<f64>,
    /// Batch depths (payloads per tick) to sweep.
    pub batch_sizes: Vec<usize>,
    /// Flush ticks per scenario.
    pub ticks: usize,
    /// Apply one overlay churn event every this many ticks (0 = steady
    /// state) — exercises plan invalidation mid-stream.
    pub churn_every: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Workload seed.
    pub seed: u64,
    /// Coordinate bound.
    pub vmax: f64,
}

impl Default for PublishConfig {
    /// Paper-overreach scale: a 2000-peer overlay, 256 Zipf groups,
    /// batch depths up to 256 payloads/tick.
    fn default() -> Self {
        PublishConfig {
            initial: 2_000,
            groups: 256,
            subscriptions: 4_000,
            placement: MembershipPlacement::Clustered,
            exponents: vec![0.0, 1.0, 1.5],
            batch_sizes: vec![1, 8, 64, 256],
            ticks: 200,
            churn_every: 25,
            dim: 2,
            seed: 1,
            vmax: 1000.0,
        }
    }
}

impl PublishConfig {
    /// Reduced scale for CI.
    #[must_use]
    pub fn quick() -> Self {
        PublishConfig {
            initial: 220,
            groups: 32,
            subscriptions: 440,
            placement: MembershipPlacement::Clustered,
            exponents: vec![0.0, 1.5],
            batch_sizes: vec![1, 64],
            ticks: 30,
            churn_every: 10,
            dim: 2,
            seed: 1,
            vmax: 1000.0,
        }
    }
}

/// One (exponent, batch) cell of the sweep.
pub(crate) struct ScenarioStats {
    pub(crate) exponent: f64,
    pub(crate) batch: usize,
    pub(crate) report: FlushReport,
    /// Payloads per second through the enqueue+flush path (churn
    /// application excluded — that cost belongs to the churn panels).
    pub(crate) payloads_per_s: f64,
    /// Every group byte-identical to its from-scratch reference at the
    /// end.
    pub(crate) exact: bool,
}

/// Drives one scenario: `ticks` rounds of `batch` Zipf-skewed payloads
/// through the flush engine, churning the overlay every
/// `cfg.churn_every` ticks.
pub(crate) fn run_scenario(cfg: &PublishConfig, exponent: f64, batch: usize) -> ScenarioStats {
    let base = geocast_geom::gen::uniform_points(cfg.initial, cfg.dim, cfg.vmax, cfg.seed);
    let store = TopologyStore::from_peers(
        PeerInfo::from_point_set(&base),
        Arc::new(EmptyRectSelection),
    );
    let mut engine = GroupEngine::new(store, Arc::new(OrthantRectPartitioner::median()));
    let mut state = cfg.seed ^ 0x0070_7562_6c69_7368; // "publish"
    let sizes = zipf_group_sizes(
        cfg.groups,
        cfg.subscriptions.max(cfg.groups),
        exponent.max(1.0),
    );
    let ids = engine.seed_groups_placed(cfg.placement, &sizes, &mut state);

    let churn_events = cfg.ticks.checked_div(cfg.churn_every).unwrap_or(0);
    let churn = ChurnSchedule::from_pattern(
        cfg.initial,
        &ChurnPattern::Mixed {
            events: churn_events,
            join_rate: 1,
            leave_rate: 1,
        },
        cfg.dim,
        cfg.vmax,
        cfg.seed ^ (batch as u64),
    );
    let mut churn_it = churn.events().iter();

    let workload = PublishWorkload {
        groups: cfg.groups,
        exponent,
        ticks: cfg.ticks,
        payloads_per_tick: batch,
    };

    let mut report = FlushReport::default();
    let mut flush_seconds = 0.0f64;
    for tick in 0..cfg.ticks {
        if cfg.churn_every > 0 && tick % cfg.churn_every == cfg.churn_every - 1 {
            match churn_it.next() {
                Some(ChurnEvent::Join(p)) => {
                    engine.join(p.clone());
                }
                Some(ChurnEvent::Leave(id)) => engine.leave(*id),
                None => {}
            }
        }
        let counts = workload.tick_payloads(cfg.seed, tick);
        // lint:allow(D002, reason = "feeds the wall-clock column of the publish panel only; no control flow reads the clock")
        let start = Instant::now();
        for (gi, &payloads) in counts.iter().enumerate() {
            if payloads > 0 {
                engine.enqueue(ids[gi], payloads);
            }
        }
        for b in engine.flush_tick() {
            report.absorb(&b);
        }
        flush_seconds += start.elapsed().as_secs_f64();
    }

    let payloads_per_s = if flush_seconds > 0.0 {
        report.payloads as f64 / flush_seconds
    } else {
        f64::INFINITY
    };
    let exact = ids.iter().all(|&g| engine.matches_reference(g));
    ScenarioStats {
        exponent,
        batch,
        report,
        payloads_per_s,
        exact,
    }
}

/// The suspicion-window comparison the panel's note reports: suspect
/// the Zipf-head group's root, publish once, and weigh eager/lazy
/// payload copies against the old flood-within-region cost.
fn suspicion_comparison(cfg: &PublishConfig, exponent: f64) -> String {
    let base = geocast_geom::gen::uniform_points(cfg.initial, cfg.dim, cfg.vmax, cfg.seed);
    let store = TopologyStore::from_peers(
        PeerInfo::from_point_set(&base),
        Arc::new(EmptyRectSelection),
    );
    let mut engine = GroupEngine::new(store, Arc::new(OrthantRectPartitioner::median()));
    let mut state = cfg.seed ^ 0x7375_7370; // "susp"
    let sizes = zipf_group_sizes(
        cfg.groups,
        cfg.subscriptions.max(cfg.groups),
        exponent.max(1.0),
    );
    let ids = engine.seed_groups_placed(cfg.placement, &sizes, &mut state);
    let head = ids[0];
    let root = engine.root(head).expect("seeded group is rooted");
    engine.set_suspects([root]);
    let outcome = engine
        .publish_with_failures(head, &BTreeSet::new())
        .expect("head group publishes");
    let epidemic = *engine
        .last_epidemic()
        .expect("degraded publish is epidemic");
    let flood = flood_deliver(
        engine.store(),
        engine.members(head),
        Some(root),
        &BTreeSet::new(),
    );
    format!(
        "suspicion window (head group, {} members, root suspected): eager/lazy \
         delivers {}/{} members with {} payload copies ({} eager + {} IWANT \
         pulls, {} IHAVE digests) vs {} flood copies at equal coverage ({})",
        engine.members(head).len(),
        outcome.delivered,
        engine.members(head).len(),
        outcome.messages,
        epidemic.eager_messages,
        epidemic.iwant_pulls,
        epidemic.ihave_digests,
        flood.messages,
        flood.delivered,
    )
}

/// **Publish-throughput scenario** — batched data plane over the
/// delivery-plan cache, batch depth × Zipf skew.
///
/// The acceptance shape: `msg/payload` must fall as batch depth grows
/// (≥ 5× reduction at depth 64 on the Zipf-head scenario — the bench
/// asserts it at full scale), `hit %` must stay high (only churn-
/// repaired groups recompute plans), and `stranded` must hold at 0.
#[must_use]
pub fn publish_panel(cfg: &PublishConfig) -> FigureReport {
    let mut table = Table::new(vec![
        "zipf".into(),
        "batch".into(),
        "payloads".into(),
        "flushes".into(),
        "frames".into(),
        "msg/payload".into(),
        "seq msg/payload".into(),
        "reduction".into(),
        "hit %".into(),
        "stranded".into(),
        "payloads/s".into(),
        "== rebuild".into(),
    ]);
    let mut chart = AsciiChart::new(56, 12);
    for &exponent in &cfg.exponents {
        let mut trace: Vec<(f64, f64)> = Vec::new();
        for &batch in &cfg.batch_sizes {
            let s = run_scenario(cfg, exponent, batch);
            let r = &s.report;
            trace.push((batch as f64, r.messages_per_payload()));
            table.push_row(vec![
                format!("{:.1}", s.exponent),
                s.batch.to_string(),
                r.payloads.to_string(),
                r.batches.to_string(),
                r.messages.to_string(),
                format!("{:.2}", r.messages_per_payload()),
                format!(
                    "{:.2}",
                    r.sequential_messages as f64 / r.payloads.max(1) as f64
                ),
                format!("{:.1}x", r.reduction()),
                format!("{:.0}%", r.cache_hit_rate() * 100.0),
                r.payload_strandings.to_string(),
                format!("{:.2e}", s.payloads_per_s),
                s.exact.to_string(),
            ]);
        }
        chart.add_series(
            format!("msg/payload vs batch depth (zipf {exponent:.1})"),
            trace,
        );
    }

    let head_exponent = cfg
        .exponents
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    FigureReport::new(
        "publish",
        format!(
            "data-plane throughput (N0={}, {} groups, {} subscriptions, {} ticks, churn every {})",
            cfg.initial, cfg.groups, cfg.subscriptions, cfg.ticks, cfg.churn_every
        ),
        table,
    )
    .with_chart(chart.render())
    .with_note(
        "a flush walks a group's delivery edges once per batch: frames = Σ \
         plan edges over flushed batches, seq msg/payload = what the same \
         payloads would cost published one at a time, reduction = their \
         ratio — the Zipf head piles payloads onto one plan, so skewed \
         rows collapse hardest",
    )
    .with_note(
        "hit % = flushes served by the epoch-keyed delivery-plan cache; \
         misses are first-touches and churn-repaired groups only — \
         'stranded' payload-deliveries must hold at 0 (grafted coverage, \
         batched or not)",
    )
    .with_note(suspicion_comparison(cfg, head_exponent))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PublishConfig {
        PublishConfig {
            initial: 80,
            groups: 8,
            subscriptions: 120,
            exponents: vec![0.0, 1.5],
            batch_sizes: vec![1, 32],
            ticks: 12,
            churn_every: 5,
            ..PublishConfig::quick()
        }
    }

    #[test]
    fn publish_panel_reduces_messages_and_strands_nothing() {
        let report = publish_panel(&tiny());
        assert_eq!(report.table.len(), 4, "2 exponents x 2 batch depths");
        for row in report.table.rows() {
            assert_eq!(row[9], "0", "zipf={} batch={}: stranded", row[0], row[1]);
            assert_eq!(
                row[11], "true",
                "zipf={} batch={}: diverged",
                row[0], row[1]
            );
        }
        // The skewed deep-batch row must show a real reduction and
        // cache hits; the batch=1 rows are the sequential baseline.
        let deep = report
            .table
            .rows()
            .iter()
            .find(|r| r[0] == "1.5" && r[1] == "32")
            .expect("deep skewed row")
            .clone();
        let reduction: f64 = deep[7].trim_end_matches('x').parse().unwrap();
        assert!(
            reduction >= 3.0,
            "zipf 1.5 @ batch 32: reduction {reduction}"
        );
        for row in report.table.rows().iter().filter(|r| r[1] == "1") {
            assert_eq!(row[7], "1.0x", "batch=1 must equal sequential cost");
        }
        assert!(report.chart.is_some());
        let notes = report.notes.join("\n");
        assert!(notes.contains("suspicion window"));
        assert!(notes.contains("IWANT"));
    }

    #[test]
    fn steady_state_hits_the_plan_cache() {
        let cfg = PublishConfig {
            churn_every: 0,
            ..tiny()
        };
        let s = run_scenario(&cfg, 1.5, 32);
        assert!(s.exact);
        assert_eq!(s.report.payload_strandings, 0);
        // No churn: every flush after a group's first is a cache hit.
        assert!(
            s.report.cache_hit_rate() > 0.8,
            "steady-state hit rate {:.2}",
            s.report.cache_hit_rate()
        );
    }
}
