//! Detection panels: wall-clock detection latency, false positives, and
//! payload-coverage recovery during a churn storm.
//!
//! Two views of the failure-detection plane
//! ([`geocast_core::detect::run_detection`]):
//!
//! * a **suspicion-timeout sweep** — the knob every SWIM deployment
//!   tunes: shorter suspicion detects faster but (under loss) convicts
//!   innocents; the table reports mean/max detection latency, false
//!   positives, refuted suspicions, and recovery wall-clock per setting;
//! * the **coverage-over-wall-clock curve** of the base scenario — the
//!   dip when the wave hits, the degraded-epidemic floor while suspicions
//!   are pending, and the climb back to 1.0 as verdicts land and trees
//!   re-graft (x-axis: virtual milliseconds).

use geocast_core::detect::{run_detection, DetectionReport, DetectionScenario};
use geocast_metrics::{AsciiChart, Table};
use geocast_sim::runner::ParallelRunner;
use geocast_sim::SimDuration;

use crate::figures::FigureReport;

/// Configuration of the detection panel.
#[derive(Debug, Clone)]
pub struct DetectionConfig {
    /// The base scenario (population, groups, fault matrix, wave); the
    /// sweep varies only its suspicion timeout.
    pub scenario: DetectionScenario,
    /// Suspicion timeouts to sweep, in milliseconds.
    pub suspicion_timeouts_ms: Vec<u64>,
}

impl Default for DetectionConfig {
    /// Paper-scale base scenario with a 0.5–4 s suspicion sweep under
    /// 5% uniform loss (loss is what makes the trade-off visible).
    fn default() -> Self {
        DetectionConfig {
            scenario: DetectionScenario {
                loss: 0.05,
                ..DetectionScenario::default()
            },
            suspicion_timeouts_ms: vec![500, 1000, 2000, 4000],
        }
    }
}

impl DetectionConfig {
    /// CI scale: the quick scenario and a three-point sweep.
    #[must_use]
    pub fn quick() -> Self {
        DetectionConfig {
            scenario: DetectionScenario::quick(),
            suspicion_timeouts_ms: vec![200, 400, 800],
        }
    }
}

fn fmt_opt_ms(value: Option<SimDuration>) -> String {
    value.map_or("-".to_owned(), |d| format!("{:.0}", d.as_secs_f64() * 1e3))
}

/// The detection panel: suspicion sweep table + coverage-recovery chart.
#[must_use]
pub fn detection_panel(cfg: &DetectionConfig) -> FigureReport {
    let runner = ParallelRunner::default();
    let reports: Vec<DetectionReport> = runner.map(&cfg.suspicion_timeouts_ms, |&timeout_ms| {
        let mut scenario = cfg.scenario.clone();
        scenario.detector.suspicion_timeout = SimDuration::from_millis(timeout_ms);
        run_detection(&scenario)
    });

    let mut table = Table::new(vec![
        "suspicion timeout (ms)".into(),
        "mean detect (ms)".into(),
        "max detect (ms)".into(),
        "detected".into(),
        "false positives".into(),
        "refutes".into(),
        "min coverage".into(),
        "recovery (ms)".into(),
    ]);
    for (&timeout_ms, report) in cfg.suspicion_timeouts_ms.iter().zip(&reports) {
        table.push_row(vec![
            timeout_ms.to_string(),
            format!("{:.0}", report.mean_detection_ms()),
            format!("{:.0}", report.max_detection_ms()),
            format!(
                "{}/{}",
                report.detected.len(),
                report.crashed.len() + report.silent.len()
            ),
            report.false_positives.to_string(),
            report.refute_events.to_string(),
            format!("{:.3}", report.min_coverage),
            fmt_opt_ms(report.recovered_after),
        ]);
    }

    // The recovery curve of the base scenario (the sweep entry closest
    // to the scenario's own suspicion timeout, or the first).
    let base_ms = cfg.scenario.detector.suspicion_timeout.as_nanos() / 1_000_000;
    let curve_idx = cfg
        .suspicion_timeouts_ms
        .iter()
        .enumerate()
        .min_by_key(|(_, &t)| t.abs_diff(base_ms))
        .map_or(0, |(i, _)| i);
    let curve = &reports[curve_idx];
    let coverage_series: Vec<(f64, f64)> = curve
        .timeline
        .iter()
        .map(|s| (s.at.as_secs_f64() * 1e3, s.coverage))
        .collect();
    let degraded_series: Vec<(f64, f64)> = curve
        .timeline
        .iter()
        .map(|s| {
            (
                s.at.as_secs_f64() * 1e3,
                s.degraded_groups as f64 / cfg.scenario.groups as f64,
            )
        })
        .collect();
    let mut chart = AsciiChart::new(56, 14);
    chart.add_series("coverage", coverage_series);
    chart.add_series("degraded groups (frac)", degraded_series);

    let sc = &cfg.scenario;
    FigureReport::new(
        "detection",
        format!(
            "detection latency & coverage recovery (N={}, {} groups, loss={})",
            sc.peers, sc.groups, sc.loss
        ),
        table,
    )
    .with_chart(chart.render())
    .with_note(format!(
        "wave at {:.0} ms: {} crash-stop + {} silent-drop peers; x-axis: virtual ms",
        sc.crash_at.as_secs_f64() * 1e3,
        sc.crash_count,
        sc.silent_count
    ))
    .with_note(format!(
        "chart shows the {} ms suspicion run; every run converged byte-identically \
         to the oracle: {}",
        cfg.suspicion_timeouts_ms[curve_idx],
        reports.iter().all(|r| r.converged)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_panel_quick_reports_the_sweep() {
        let cfg = DetectionConfig::quick();
        let report = detection_panel(&cfg);
        assert_eq!(report.table.len(), 3, "one row per suspicion timeout");
        assert!(report.chart.is_some());
        // Convergence note must confirm the referee passed everywhere.
        assert!(
            report.notes.iter().any(|n| n.ends_with("oracle: true")),
            "notes: {:?}",
            report.notes
        );
        // Detection latency grows with the suspicion timeout.
        let first: f64 = report.table.rows()[0][1].parse().unwrap();
        let last: f64 = report.table.rows()[2][1].parse().unwrap();
        assert!(
            first < last,
            "longer suspicion must detect later: {first} vs {last}"
        );
    }

    #[test]
    fn detection_panel_is_deterministic() {
        let cfg = DetectionConfig {
            suspicion_timeouts_ms: vec![300],
            ..DetectionConfig::quick()
        };
        let a = detection_panel(&cfg);
        let b = detection_panel(&cfg);
        assert_eq!(a.table.rows(), b.table.rows());
    }
}
