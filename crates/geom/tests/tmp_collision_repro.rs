use geocast_geom::index::GridIndex;
use geocast_geom::{MetricKind, Point};

#[test]
fn knn_detects_far_collision_beyond_prune_horizon() {
    // Point 0 is the query point; the last point shares y == 0.0 with it
    // but sits far away in x, beyond the k-NN prune horizon once each
    // orthant already holds a close best candidate.
    let mut pts = vec![
        Point::new(vec![0.0, 0.0]).unwrap(),
        Point::new(vec![1.0, 1.0]).unwrap(),
        Point::new(vec![1.5, -1.0]).unwrap(),
        Point::new(vec![-1.0, 2.0]).unwrap(),
        Point::new(vec![-1.5, -2.0]).unwrap(),
    ];
    for i in 0..11 {
        let x = 10.0 + 7.3 * i as f64;
        let y = -40.0 + 11.7 * i as f64;
        pts.push(Point::new(vec![x, y]).unwrap());
    }
    pts.push(Point::new(vec![100.0, 0.0]).unwrap()); // collides with point 0 in y
    let index = GridIndex::build(&pts);
    assert!(index.side() > 1, "need a multi-cell grid, side={}", index.side());
    let got = index.k_nearest_per_orthant(0, 1, MetricKind::L1);
    assert_eq!(got, None, "collision must make the query decline");
}
