//! Property-based tests for the geometry substrate.
//!
//! These pin down the invariants the overlay and partitioner lean on:
//! orthant totality, zone algebra closure, metric axioms, and — most
//! importantly — the equivalence between the paper's empty-rectangle
//! neighbour rule and the per-orthant Pareto frontier.

use geocast_geom::dominance::{empty_rect_neighbors, empty_rect_neighbors_naive, rect_dominates};
use geocast_geom::{Arrangement, Interval, Metric, MetricKind, Orthant, Point, Rect};
use proptest::collection::vec;
use proptest::prelude::*;

const DIM_RANGE: std::ops::RangeInclusive<usize> = 1..=5;

/// Strategy: a set of `n` points of dimension `dim` with distinct
/// coordinates per dimension (the paper's assumption). Built from integer
/// lattices + index-dependent jitter so distinctness is guaranteed by
/// construction.
fn distinct_points(dim: usize, n: usize) -> impl Strategy<Value = Vec<Point>> {
    vec(vec(-1000i32..1000, dim), n).prop_map(move |raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, coords)| {
                // Jitter breaks cross-point collisions deterministically:
                // i/(n+1) < 1 so integer parts stay ordered.
                let coords = coords
                    .into_iter()
                    .map(|c| f64::from(c) + i as f64 / (n as f64 + 1.0))
                    .collect();
                Point::from_validated(coords)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn orthant_classification_is_total_and_antisymmetric(
        dim in DIM_RANGE,
        pts in (2usize..6).prop_flat_map(|n| distinct_points(5, n)),
    ) {
        let project = |p: &Point| {
            Point::from_validated(p.coords()[..dim].to_vec())
        };
        let p = project(&pts[0]);
        for q in &pts[1..] {
            let q = project(q);
            let o = Orthant::classify(&p, &q).expect("distinct coords classify totally");
            let back = Orthant::classify(&q, &p).expect("reverse classifies too");
            prop_assert_eq!(o.opposite(dim), back);
            // The orthant rect contains q and excludes p.
            let hr = Rect::orthant_of(&p, o);
            prop_assert!(hr.contains(&q));
            prop_assert!(!hr.contains(&p));
        }
    }

    #[test]
    fn orthant_rects_partition_points(
        pts in (3usize..12).prop_flat_map(|n| distinct_points(3, n)),
    ) {
        let p = &pts[0];
        for q in &pts[1..] {
            let covering = Orthant::all(3)
                .filter(|&o| Rect::orthant_of(p, o).contains(q))
                .count();
            prop_assert_eq!(covering, 1, "each point lies in exactly one orthant rect");
        }
    }

    #[test]
    fn interval_intersection_is_idempotent_commutative_associative(
        a in -100.0f64..100.0, b in -100.0f64..100.0,
        c in -100.0f64..100.0, d in -100.0f64..100.0,
        e in -100.0f64..100.0, f in -100.0f64..100.0,
    ) {
        let x = Interval::new(a.min(b), a.max(b) + 1.0);
        let y = Interval::new(c.min(d), c.max(d) + 1.0);
        let z = Interval::new(e.min(f), e.max(f) + 1.0);
        prop_assert_eq!(x.intersect(x), x);
        prop_assert_eq!(x.intersect(y), y.intersect(x));
        prop_assert_eq!(x.intersect(y).intersect(z), x.intersect(y.intersect(z)));
    }

    #[test]
    fn rect_intersection_contained_in_both(
        pts in distinct_points(3, 4),
    ) {
        let a = Rect::spanned_open(&pts[0], &pts[1]).unwrap();
        let b = Rect::spanned_open(&pts[2], &pts[3]).unwrap();
        let i = a.intersect(&b);
        prop_assert!(a.contains_rect(&i));
        prop_assert!(b.contains_rect(&i));
        // Disjointness is symmetric and consistent with emptiness.
        prop_assert_eq!(a.is_disjoint(&b), b.is_disjoint(&a));
        prop_assert_eq!(a.is_disjoint(&b), i.is_empty());
    }

    #[test]
    fn metric_axioms_hold(
        dim in DIM_RANGE,
        pts in distinct_points(5, 3),
    ) {
        let project = |p: &Point| Point::from_validated(p.coords()[..dim].to_vec());
        let (a, b, c) = (project(&pts[0]), project(&pts[1]), project(&pts[2]));
        for kind in [MetricKind::L1, MetricKind::L2, MetricKind::LInf] {
            let dab = kind.dist(&a, &b);
            let dba = kind.dist(&b, &a);
            let dac = kind.dist(&a, &c);
            let dcb = kind.dist(&c, &b);
            prop_assert!(dab >= 0.0);
            prop_assert_eq!(dab, dba, "{} symmetry", kind);
            prop_assert_eq!(kind.dist(&a, &a), 0.0);
            // Triangle inequality with an epsilon for float rounding.
            prop_assert!(dab <= dac + dcb + 1e-9, "{} triangle", kind);
        }
    }

    /// THE load-bearing equivalence: empty-rectangle rule == per-orthant
    /// Pareto frontier (computed by two independent implementations).
    #[test]
    fn empty_rect_rule_equals_orthant_pareto_frontier(
        dim in 1usize..=4,
        pts in (2usize..20).prop_flat_map(|n| distinct_points(4, n)),
    ) {
        let project = |p: &Point| Point::from_validated(p.coords()[..dim].to_vec());
        let p = project(&pts[0]);
        let cands: Vec<Point> = pts[1..].iter().map(project).collect();
        let mut naive = empty_rect_neighbors_naive(&p, &cands);
        naive.sort_unstable();
        let fast = empty_rect_neighbors(&p, &cands);
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn domination_is_transitive(
        pts in distinct_points(3, 4),
    ) {
        let (p, a, b, c) = (&pts[0], &pts[1], &pts[2], &pts[3]);
        if rect_dominates(p, a, b) && rect_dominates(p, b, c) {
            prop_assert!(rect_dominates(p, a, c));
        }
    }

    #[test]
    fn spanned_rect_membership_matches_domination(
        pts in distinct_points(3, 3),
    ) {
        let (p, q, r) = (&pts[0], &pts[1], &pts[2]);
        let rect = Rect::spanned_open(p, q).unwrap();
        prop_assert_eq!(rect.contains(r), rect_dominates(p, r, q));
    }

    #[test]
    fn orthogonal_arrangement_agrees_with_orthants(
        dim in 1usize..=4,
        pts in distinct_points(4, 2),
    ) {
        let project = |p: &Point| Point::from_validated(p.coords()[..dim].to_vec());
        let p = project(&pts[0]);
        let q = project(&pts[1]);
        let arr = Arrangement::orthogonal(dim);
        let key = arr.classify(&p, &q);
        let orthant = Orthant::classify(&p, &q).unwrap();
        prop_assert_eq!(key.sides(), &orthant.signs(dim)[..]);
    }

    #[test]
    fn region_classification_is_deterministic(
        pts in distinct_points(3, 2),
    ) {
        let arr = Arrangement::signed(3);
        let k1 = arr.classify(&pts[0], &pts[1]);
        let k2 = arr.classify(&pts[0], &pts[1]);
        prop_assert_eq!(k1, k2);
    }
}
