//! Regression guard for the index's collision-decline contract.
//!
//! `GridIndex` queries must return `None` whenever another live point
//! shares a coordinate with the reference point in any dimension (the
//! paper's per-dimension distinctness assumption is violated and
//! callers must fall back to the brute-force rule). The original
//! implementation only noticed collisions while *scanning* a cell, so a
//! colliding point sitting beyond the k-NN prune horizon — every orthant
//! already saturated with closer candidates, its cell column cut by the
//! corner bound — was silently ignored and the query answered as if the
//! workload were distinct. Collisions are now detected from
//! per-dimension coordinate multiplicity tables before any cell is
//! walked, which this test pins down.

use geocast_geom::index::GridIndex;
use geocast_geom::{MetricKind, Point};

/// Builds the repro workload: a query point at the origin surrounded by
/// one close candidate per orthant, a diagonal streak of filler points
/// that keeps the grid multi-cell, and one far point sharing `y == 0.0`
/// with the query point.
fn colliding_workload() -> Vec<Point> {
    let mut pts = vec![
        Point::new(vec![0.0, 0.0]).unwrap(),
        Point::new(vec![1.0, 1.0]).unwrap(),
        Point::new(vec![1.5, -1.0]).unwrap(),
        Point::new(vec![-1.0, 2.0]).unwrap(),
        Point::new(vec![-1.5, -2.0]).unwrap(),
    ];
    for i in 0..11 {
        let x = 10.0 + 7.3 * f64::from(i);
        let y = -40.0 + 11.7 * f64::from(i);
        pts.push(Point::new(vec![x, y]).unwrap());
    }
    pts.push(Point::new(vec![100.0, 0.0]).unwrap()); // collides with point 0 in y
    pts
}

#[test]
fn knn_declines_on_collision_beyond_prune_horizon() {
    let pts = colliding_workload();
    let index = GridIndex::build(&pts);
    assert!(
        index.side() > 1,
        "repro needs a multi-cell grid (prune horizon must exist), side={}",
        index.side()
    );
    let got = index.k_nearest_per_orthant(0, 1, MetricKind::L1);
    assert_eq!(
        got, None,
        "point 17 at (100, 0) shares y == 0.0 with the query point at the \
         origin; with K=1 every orthant already holds a closer candidate, so \
         the corner bound cuts its cell column before it is scanned — the \
         collision must still make the query decline"
    );
}

#[test]
fn empty_rect_declines_on_the_same_far_collision() {
    let pts = colliding_workload();
    let index = GridIndex::build(&pts);
    assert_eq!(
        index.empty_rect_neighbors(0),
        None,
        "the empty-rectangle query shares the decline contract: a far \
         coordinate collision (pruned or not) voids per-dimension \
         distinctness for point 0"
    );
}
