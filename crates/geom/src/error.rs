use std::error::Error;
use std::fmt;

/// Errors produced by geometric constructions and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// A point was constructed with zero dimensions.
    EmptyPoint,
    /// A coordinate was NaN or infinite where a finite value is required.
    NonFiniteCoordinate {
        /// Index of the offending dimension.
        dim: usize,
        /// The offending value.
        value: f64,
    },
    /// Two objects of different dimensionality were combined.
    DimensionMismatch {
        /// Dimensionality of the left-hand operand.
        left: usize,
        /// Dimensionality of the right-hand operand.
        right: usize,
    },
    /// Two points share a coordinate in some dimension where the paper's
    /// distinctness assumption is required.
    DuplicateCoordinate {
        /// The dimension in which the coordinate collides.
        dim: usize,
        /// The colliding value.
        value: f64,
    },
    /// An orthant index was out of range for the given dimensionality.
    InvalidOrthant {
        /// The offending orthant bits.
        bits: u32,
        /// Dimensionality against which the bits were validated.
        dim: usize,
    },
    /// A hyperplane was constructed with an all-zero normal vector.
    ZeroNormal,
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::EmptyPoint => write!(f, "point must have at least one dimension"),
            GeomError::NonFiniteCoordinate { dim, value } => {
                write!(f, "coordinate {value} in dimension {dim} is not finite")
            }
            GeomError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            GeomError::DuplicateCoordinate { dim, value } => {
                write!(f, "coordinate {value} duplicated in dimension {dim}")
            }
            GeomError::InvalidOrthant { bits, dim } => {
                write!(f, "orthant bits {bits:#b} invalid for dimension {dim}")
            }
            GeomError::ZeroNormal => write!(f, "hyperplane normal must be non-zero"),
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let variants = [
            GeomError::EmptyPoint,
            GeomError::NonFiniteCoordinate {
                dim: 1,
                value: f64::NAN,
            },
            GeomError::DimensionMismatch { left: 2, right: 3 },
            GeomError::DuplicateCoordinate { dim: 0, value: 4.0 },
            GeomError::InvalidOrthant {
                bits: 0b100,
                dim: 2,
            },
            GeomError::ZeroNormal,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty(), "{v:?} renders empty");
        }
    }

    #[test]
    fn error_trait_object_is_usable() {
        let err: Box<dyn Error> = Box::new(GeomError::EmptyPoint);
        assert!(err.source().is_none());
    }
}
