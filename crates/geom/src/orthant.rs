use std::fmt;

use crate::{GeomError, Point};

/// One of the `2^D` open orthants around a reference point.
///
/// The Orthogonal-Hyperplanes neighbour-selection method and the paper's
/// space partitioner both classify peers by the *sign vector* of their
/// offset from a reference peer `P`: bit `i` of an `Orthant` is set when
/// the classified point lies on the **positive** side of `P` in dimension
/// `i` (`x(Q,i) > x(P,i)`).
///
/// Because coordinates are distinct within every dimension, no peer ever
/// lies *on* one of the axis hyperplanes through `P`, so the classification
/// is total over peers and the orthants partition the peer set.
///
/// Orthants support at most 32 dimensions, far beyond the paper's
/// `D ∈ [2, 10]`.
///
/// # Example
///
/// ```
/// use geocast_geom::{Orthant, Point};
///
/// # fn main() -> Result<(), geocast_geom::GeomError> {
/// let p = Point::new(vec![0.0, 0.0])?;
/// let q = Point::new(vec![3.0, -2.0])?;
/// let o = Orthant::classify(&p, &q)?;
/// assert!(o.is_positive(0));
/// assert!(!o.is_positive(1));
/// assert_eq!(Orthant::count(2), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Orthant(u32);

/// Maximum dimensionality supported by [`Orthant`].
pub const MAX_ORTHANT_DIM: usize = 32;

impl Orthant {
    /// Builds an orthant from raw sign bits.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidOrthant`] if bits at or above `dim` are
    /// set, or `dim` exceeds [`MAX_ORTHANT_DIM`].
    pub fn from_bits(bits: u32, dim: usize) -> Result<Self, GeomError> {
        if dim > MAX_ORTHANT_DIM || (dim < 32 && bits >> dim != 0) {
            return Err(GeomError::InvalidOrthant { bits, dim });
        }
        Ok(Orthant(bits))
    }

    /// Classifies `q` into an orthant around `p`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DimensionMismatch`] if the points disagree on
    /// dimensionality, and [`GeomError::DuplicateCoordinate`] if `q`
    /// shares a coordinate with `p` in some dimension (the paper's
    /// distinctness assumption is violated and the orthant would be
    /// ambiguous).
    pub fn classify(p: &Point, q: &Point) -> Result<Self, GeomError> {
        p.check_dim(q)?;
        let mut bits = 0u32;
        for dim in 0..p.dim() {
            if q[dim] > p[dim] {
                bits |= 1 << dim;
            } else if q[dim] == p[dim] {
                return Err(GeomError::DuplicateCoordinate { dim, value: q[dim] });
            }
        }
        Ok(Orthant(bits))
    }

    /// Number of orthants for dimensionality `dim` (`2^dim`).
    ///
    /// # Panics
    ///
    /// Panics if `dim > MAX_ORTHANT_DIM`.
    #[must_use]
    pub fn count(dim: usize) -> usize {
        assert!(
            dim <= MAX_ORTHANT_DIM,
            "dimension {dim} exceeds orthant capacity"
        );
        1usize << dim
    }

    /// Iterator over all orthants of dimensionality `dim`, in ascending
    /// bit order.
    ///
    /// # Panics
    ///
    /// Panics if `dim > MAX_ORTHANT_DIM` (via [`Orthant::count`]).
    pub fn all(dim: usize) -> impl Iterator<Item = Orthant> {
        (0..Self::count(dim)).map(|bits| Orthant(bits as u32))
    }

    /// Raw sign bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.0
    }

    /// `true` if the orthant lies on the positive side in dimension `dim`.
    #[must_use]
    pub fn is_positive(&self, dim: usize) -> bool {
        self.0 >> dim & 1 == 1
    }

    /// Sign vector of the orthant as `+1`/`-1` entries of length `dim`.
    #[must_use]
    pub fn signs(&self, dim: usize) -> Vec<i8> {
        (0..dim)
            .map(|d| if self.is_positive(d) { 1 } else { -1 })
            .collect()
    }

    /// The orthant directly opposite this one (all signs flipped).
    #[must_use]
    pub fn opposite(&self, dim: usize) -> Orthant {
        let mask = if dim >= 32 {
            u32::MAX
        } else {
            (1u32 << dim) - 1
        };
        Orthant(!self.0 & mask)
    }

    /// Index usable for dense per-orthant tables (identical to
    /// [`Orthant::bits`] as `usize`).
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Orthant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "orthant({:b})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(coords: &[f64]) -> Point {
        Point::new(coords.to_vec()).expect("valid point")
    }

    #[test]
    fn classify_sets_bits_for_positive_sides() {
        let p = pt(&[0.0, 0.0, 0.0]);
        let q = pt(&[1.0, -1.0, 2.0]);
        let o = Orthant::classify(&p, &q).unwrap();
        assert_eq!(o.bits(), 0b101);
        assert_eq!(o.signs(3), vec![1, -1, 1]);
    }

    #[test]
    fn classify_rejects_equal_coordinate() {
        let p = pt(&[0.0, 1.0]);
        let q = pt(&[5.0, 1.0]);
        let err = Orthant::classify(&p, &q).unwrap_err();
        assert_eq!(err, GeomError::DuplicateCoordinate { dim: 1, value: 1.0 });
    }

    #[test]
    fn classify_rejects_dim_mismatch() {
        let p = pt(&[0.0]);
        let q = pt(&[1.0, 2.0]);
        assert!(matches!(
            Orthant::classify(&p, &q),
            Err(GeomError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn all_enumerates_two_to_the_d() {
        assert_eq!(Orthant::all(0).count(), 1);
        assert_eq!(Orthant::all(3).count(), 8);
        let bits: Vec<u32> = Orthant::all(2).map(|o| o.bits()).collect();
        assert_eq!(bits, vec![0, 1, 2, 3]);
    }

    #[test]
    fn from_bits_validates_range() {
        assert!(Orthant::from_bits(0b11, 2).is_ok());
        assert!(matches!(
            Orthant::from_bits(0b100, 2),
            Err(GeomError::InvalidOrthant {
                bits: 0b100,
                dim: 2
            })
        ));
    }

    #[test]
    fn opposite_flips_every_sign() {
        let o = Orthant::from_bits(0b011, 3).unwrap();
        assert_eq!(o.opposite(3).bits(), 0b100);
        assert_eq!(o.opposite(3).opposite(3), o);
    }

    #[test]
    fn opposite_handles_full_width() {
        let o = Orthant::from_bits(0, 32).unwrap();
        assert_eq!(o.opposite(32).bits(), u32::MAX);
    }

    #[test]
    fn classification_is_antisymmetric() {
        let p = pt(&[0.0, 0.0]);
        let q = pt(&[1.0, -3.0]);
        let pq = Orthant::classify(&p, &q).unwrap();
        let qp = Orthant::classify(&q, &p).unwrap();
        assert_eq!(pq.opposite(2), qp);
    }

    #[test]
    fn index_matches_bits() {
        let o = Orthant::from_bits(5, 3).unwrap();
        assert_eq!(o.index(), 5);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Orthant::from_bits(2, 2).unwrap().to_string().is_empty());
    }
}
