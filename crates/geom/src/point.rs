use std::fmt;
use std::ops::Index;

use crate::GeomError;

/// A point in `D`-dimensional virtual-coordinate space.
///
/// Points are the self-generated identifiers of peers in the geocast
/// overlay. Construction validates that every coordinate is finite and
/// that the point has at least one dimension; the paper's additional
/// assumption — that coordinates are distinct *across peers* within each
/// dimension — is a property of point **sets**, enforced by
/// [`PointSet::ensure_distinct`] and by the generators in [`crate::gen`].
///
/// # Example
///
/// ```
/// use geocast_geom::Point;
///
/// # fn main() -> Result<(), geocast_geom::GeomError> {
/// let p = Point::new(vec![1.0, 2.5, 3.0])?;
/// assert_eq!(p.dim(), 3);
/// assert_eq!(p[1], 2.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::EmptyPoint`] if `coords` is empty and
    /// [`GeomError::NonFiniteCoordinate`] if any coordinate is NaN or
    /// infinite.
    pub fn new(coords: Vec<f64>) -> Result<Self, GeomError> {
        if coords.is_empty() {
            return Err(GeomError::EmptyPoint);
        }
        for (dim, &value) in coords.iter().enumerate() {
            if !value.is_finite() {
                return Err(GeomError::NonFiniteCoordinate { dim, value });
            }
        }
        Ok(Point { coords })
    }

    /// Creates a point without validation.
    ///
    /// Intended for hot paths that construct points from already-validated
    /// data (e.g. workload generators). Debug builds still assert the
    /// invariants.
    #[must_use]
    pub fn from_validated(coords: Vec<f64>) -> Self {
        debug_assert!(!coords.is_empty());
        debug_assert!(coords.iter().all(|c| c.is_finite()));
        Point { coords }
    }

    /// Number of dimensions of the point.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The coordinates as a slice.
    #[must_use]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The coordinate in dimension `dim`, or `None` if out of range.
    #[must_use]
    pub fn get(&self, dim: usize) -> Option<f64> {
        self.coords.get(dim).copied()
    }

    /// Consumes the point, returning the raw coordinate vector.
    #[must_use]
    pub fn into_coords(self) -> Vec<f64> {
        self.coords
    }

    /// Returns a copy of this point with dimension `dim` replaced by
    /// `value`.
    ///
    /// Used by the stability-tree construction of §3, which overwrites the
    /// first coordinate with the peer's departure time `T(P)`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range or `value` is not finite.
    #[must_use]
    pub fn with_coord(&self, dim: usize, value: f64) -> Self {
        assert!(dim < self.dim(), "dimension {dim} out of range");
        assert!(value.is_finite(), "coordinate must be finite");
        let mut coords = self.coords.clone();
        coords[dim] = value;
        Point { coords }
    }

    /// Checks that `self` and `other` have the same dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DimensionMismatch`] otherwise.
    pub fn check_dim(&self, other: &Point) -> Result<(), GeomError> {
        if self.dim() == other.dim() {
            Ok(())
        } else {
            Err(GeomError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            })
        }
    }
}

impl Index<usize> for Point {
    type Output = f64;

    fn index(&self, dim: usize) -> &f64 {
        &self.coords[dim]
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl AsRef<[f64]> for Point {
    fn as_ref(&self) -> &[f64] {
        &self.coords
    }
}

impl AsRef<Point> for Point {
    fn as_ref(&self) -> &Point {
        self
    }
}

impl TryFrom<Vec<f64>> for Point {
    type Error = GeomError;

    fn try_from(coords: Vec<f64>) -> Result<Self, GeomError> {
        Point::new(coords)
    }
}

/// An owned collection of same-dimensional points (one per peer).
///
/// `PointSet` is the workload handed to overlay and multicast experiments.
/// It validates the paper's standing assumptions: uniform dimensionality
/// and (optionally) per-dimension distinctness.
///
/// # Example
///
/// ```
/// use geocast_geom::{Point, PointSet};
///
/// # fn main() -> Result<(), geocast_geom::GeomError> {
/// let set = PointSet::new(vec![
///     Point::new(vec![0.0, 5.0])?,
///     Point::new(vec![1.0, 3.0])?,
/// ])?;
/// assert_eq!(set.len(), 2);
/// set.ensure_distinct()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointSet {
    points: Vec<Point>,
    dim: usize,
}

impl PointSet {
    /// Creates a point set, validating uniform dimensionality.
    ///
    /// An empty set is permitted and has dimension 0 until extended.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DimensionMismatch`] if the points disagree on
    /// dimensionality.
    pub fn new(points: Vec<Point>) -> Result<Self, GeomError> {
        let dim = points.first().map_or(0, Point::dim);
        for p in &points {
            if p.dim() != dim {
                return Err(GeomError::DimensionMismatch {
                    left: dim,
                    right: p.dim(),
                });
            }
        }
        Ok(PointSet { points, dim })
    }

    /// Number of points in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the set holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality shared by all points (0 for an empty set).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The points as a slice.
    #[must_use]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Borrowing iterator over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point> {
        self.points.iter()
    }

    /// Appends a point.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DimensionMismatch`] if `point` disagrees with
    /// the set's dimensionality (non-empty sets only).
    pub fn push(&mut self, point: Point) -> Result<(), GeomError> {
        if self.points.is_empty() {
            self.dim = point.dim();
        } else if point.dim() != self.dim {
            return Err(GeomError::DimensionMismatch {
                left: self.dim,
                right: point.dim(),
            });
        }
        self.points.push(point);
        Ok(())
    }

    /// Verifies the paper's distinctness assumption: within every
    /// dimension, no two points share a coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DuplicateCoordinate`] identifying the first
    /// collision found.
    pub fn ensure_distinct(&self) -> Result<(), GeomError> {
        for dim in 0..self.dim {
            let mut values: Vec<f64> = self.points.iter().map(|p| p[dim]).collect();
            values.sort_by(f64::total_cmp);
            for w in values.windows(2) {
                if w[0] == w[1] {
                    return Err(GeomError::DuplicateCoordinate { dim, value: w[0] });
                }
            }
        }
        Ok(())
    }

    /// Consumes the set, returning the points.
    #[must_use]
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }
}

impl Index<usize> for PointSet {
    type Output = Point;

    fn index(&self, i: usize) -> &Point {
        &self.points[i]
    }
}

impl<'a> IntoIterator for &'a PointSet {
    type Item = &'a Point;
    type IntoIter = std::slice::Iter<'a, Point>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl IntoIterator for PointSet {
    type Item = Point;
    type IntoIter = std::vec::IntoIter<Point>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(coords: &[f64]) -> Point {
        Point::new(coords.to_vec()).expect("valid point")
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(Point::new(vec![]), Err(GeomError::EmptyPoint));
    }

    #[test]
    fn new_rejects_nan() {
        let err = Point::new(vec![1.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, GeomError::NonFiniteCoordinate { dim: 1, .. }));
    }

    #[test]
    fn new_rejects_infinity() {
        let err = Point::new(vec![f64::INFINITY]).unwrap_err();
        assert!(matches!(err, GeomError::NonFiniteCoordinate { dim: 0, .. }));
    }

    #[test]
    fn accessors_agree() {
        let p = pt(&[1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
        assert_eq!(p.get(2), Some(3.0));
        assert_eq!(p.get(3), None);
        assert_eq!(p[0], 1.0);
    }

    #[test]
    fn with_coord_replaces_single_dimension() {
        let p = pt(&[1.0, 2.0]);
        let q = p.with_coord(0, 9.0);
        assert_eq!(q.coords(), &[9.0, 2.0]);
        assert_eq!(p.coords(), &[1.0, 2.0], "original untouched");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_coord_panics_out_of_range() {
        let _ = pt(&[1.0]).with_coord(1, 0.0);
    }

    #[test]
    fn check_dim_detects_mismatch() {
        let p = pt(&[1.0]);
        let q = pt(&[1.0, 2.0]);
        assert!(p.check_dim(&q).is_err());
        assert!(p.check_dim(&p).is_ok());
    }

    #[test]
    fn display_formats_tuple() {
        assert_eq!(pt(&[1.0, 2.5]).to_string(), "(1, 2.5)");
    }

    #[test]
    fn try_from_round_trips() {
        let p = Point::try_from(vec![4.0, 5.0]).unwrap();
        assert_eq!(p.into_coords(), vec![4.0, 5.0]);
    }

    #[test]
    fn point_set_validates_dimensions() {
        let err = PointSet::new(vec![pt(&[1.0]), pt(&[1.0, 2.0])]).unwrap_err();
        assert!(matches!(
            err,
            GeomError::DimensionMismatch { left: 1, right: 2 }
        ));
    }

    #[test]
    fn point_set_push_sets_dim_from_first() {
        let mut set = PointSet::default();
        assert_eq!(set.dim(), 0);
        set.push(pt(&[1.0, 2.0])).unwrap();
        assert_eq!(set.dim(), 2);
        assert!(set.push(pt(&[3.0])).is_err());
    }

    #[test]
    fn ensure_distinct_detects_collision() {
        let set = PointSet::new(vec![pt(&[1.0, 2.0]), pt(&[3.0, 2.0])]).unwrap();
        let err = set.ensure_distinct().unwrap_err();
        assert_eq!(err, GeomError::DuplicateCoordinate { dim: 1, value: 2.0 });
    }

    #[test]
    fn ensure_distinct_accepts_distinct() {
        let set = PointSet::new(vec![pt(&[1.0, 2.0]), pt(&[3.0, 4.0])]).unwrap();
        assert!(set.ensure_distinct().is_ok());
    }

    #[test]
    fn iteration_yields_all_points() {
        let set = PointSet::new(vec![pt(&[1.0]), pt(&[2.0])]).unwrap();
        let dims: Vec<f64> = set.iter().map(|p| p[0]).collect();
        assert_eq!(dims, vec![1.0, 2.0]);
        assert_eq!(set.clone().into_iter().count(), 2);
        assert_eq!(set[1][0], 2.0);
    }
}
