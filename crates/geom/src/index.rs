//! A uniform-grid spatial index over a mutable point population.
//!
//! [`GridIndex`] is the engine behind figure-scale overlay construction
//! and the incremental churn engine: it answers the two geometric
//! queries every neighbour-selection rule reduces to, **exactly**
//! (bit-for-bit the same answers as the brute-force formulations, which
//! property tests assert):
//!
//! * [`GridIndex::empty_rect_neighbors`] — the §2 empty-rectangle rule,
//!   i.e. the per-orthant Pareto frontier around a point
//!   (see [`crate::dominance`]), and
//! * [`GridIndex::k_nearest_per_orthant`] — the per-orthant `K` closest
//!   points, the kernel of the *Orthogonal Hyperplanes* method.
//!
//! Unlike a build-once index, the population is **mutable**:
//! [`GridIndex::insert`] and [`GridIndex::remove`] apply membership
//! churn in `O(1)` amortized time. Removed points keep their id (so
//! callers' dense id spaces stay stable) but stop contributing to every
//! query; the grid re-buckets itself automatically when the live
//! population outgrows or outshrinks the geometry it was built for.
//!
//! # How pruning works
//!
//! Points are bucketed into a `side^D` uniform grid (`side ≈ N^(1/D)`,
//! so cells hold `O(1)` points on uniform workloads). A query walks the
//! cells of each orthant around the reference point `p` outwards,
//! innermost dimension last, and cuts the walk with a *cell-corner
//! bound*: for a cell, the per-dimension minimum absolute offset from
//! `p` to any point inside it is known from the cell boundaries.
//!
//! * For the empty-rectangle query, a cell can be skipped when some
//!   already-collected point of the same orthant is strictly closer to
//!   `p` in **every** dimension than the cell's corner — every point in
//!   the cell is then rect-dominated ([`crate::dominance::rect_dominates`]),
//!   and by transitivity of domination, skipping it changes neither the
//!   frontier nor any later domination decision. Because the corner
//!   bound grows monotonically along the innermost walk direction, the
//!   first skippable cell ends the walk of that cell column.
//! * For the `K`-nearest query, a cell column is cut as soon as the
//!   metric applied to the corner bound exceeds (strictly) the current
//!   `K`-th best distance — a tie at equal distance is *not* cut, so
//!   the `(distance, tie-key)` order of the brute-force selection is
//!   reproduced exactly.
//!
//! Points inserted outside the built bounding box land in clamped edge
//! cells; the corner bound stays a valid *lower* bound for them, so
//! answers remain exact and only locality degrades until the next
//! re-bucketing.
//!
//! On uniform workloads each query touches `O(side)` cells per orthant
//! instead of all `N` points, which turns the `O(N²)`-per-topology
//! equilibrium construction into roughly `O(N^1.5)` in 2-D.
//!
//! Per-dimension coordinate collisions with the reference point make
//! orthant membership ambiguous (the paper's standing distinctness
//! assumption is violated); queries then return `None` and callers fall
//! back to their brute-force paths, matching the fallback semantics of
//! [`crate::dominance::empty_rect_neighbors`]. Collisions are detected
//! from per-dimension coordinate multiplicity tables maintained on
//! every insert/remove — **before** any cell is walked — so a collision
//! beyond the prune horizon declines exactly like a nearby one (the
//! regression `grid_collision_regression.rs` guards this).

use std::collections::HashMap;

use crate::{MetricKind, Point};

/// Orthant walks keep one frontier per orthant; beyond this many
/// dimensions the `2^D` tables would dwarf the point set and a linear
/// scan wins anyway, so queries decline (return `None`).
pub const MAX_INDEX_DIM: usize = 16;

/// Canonical bit pattern of a coordinate for the per-dimension
/// multiplicity tables (`-0.0` and `+0.0` collide, like `delta == 0.0`
/// does in the scan loops).
fn coord_bits(x: f64) -> u64 {
    (x + 0.0).to_bits()
}

/// A uniform grid over a mutable point population, supporting exact
/// per-orthant nearest-neighbour and empty-rectangle queries plus
/// incremental [`GridIndex::insert`] / [`GridIndex::remove`].
///
/// The index copies coordinates into a flat, cache-friendly layout; it
/// does not borrow the source points. Ids are dense insertion indices:
/// the `i`-th point of the build slice (and then each inserted point in
/// order) gets id `i`, and removal never reuses ids.
///
/// # Example
///
/// ```
/// use geocast_geom::gen::uniform_points;
/// use geocast_geom::index::GridIndex;
/// use geocast_geom::dominance::empty_rect_neighbors;
///
/// let points = uniform_points(200, 2, 1000.0, 7).into_points();
/// let index = GridIndex::build(&points);
///
/// // Exactly the brute-force empty-rectangle neighbours of point 3.
/// let fast = index.empty_rect_neighbors(3).expect("distinct coords");
/// let candidates: Vec<_> =
///     points.iter().enumerate().filter(|&(j, _)| j != 3).map(|(_, p)| p).collect();
/// let slow: Vec<usize> = empty_rect_neighbors(&points[3], &candidates)
///     .into_iter()
///     .map(|ci| if ci < 3 { ci } else { ci + 1 })
///     .collect();
/// assert_eq!(fast, slow);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    dim: usize,
    side: usize,
    lo: Vec<f64>,
    cell_size: Vec<f64>,
    /// Per-cell buckets of live point ids (removal-friendly, unlike the
    /// original CSR layout).
    cells: Vec<Vec<u32>>,
    /// Flattened coordinates, `coords[id * dim..][..dim]`; kept for
    /// removed ids too so id arithmetic never shifts.
    coords: Vec<f64>,
    /// Tombstones: `removed[id]` points contribute to no query.
    removed: Vec<bool>,
    /// Live point count (`removed` false entries).
    live: usize,
    /// Live count when the grid geometry was last computed; drifting a
    /// factor of 2 away from it triggers a re-bucketing.
    built_live: usize,
    /// Per-dimension multiplicity of each live coordinate value — the
    /// `O(D)` collision oracle behind the decline contract.
    // lint:allow(D001, reason = "per-dimension coordinate multiset on the hot incremental insert path; accessed by key only, never iterated")
    coord_counts: Vec<HashMap<u64, u32>>,
}

impl GridIndex {
    /// Builds the index over `points`.
    ///
    /// Accepts anything that dereferences to [`Point`] (e.g. peer
    /// records), so overlay code can index peers without copying them
    /// into a `PointSet` first.
    ///
    /// # Panics
    ///
    /// Panics if the points disagree on dimensionality or `points` is
    /// non-empty with zero-dimensional points (impossible for validated
    /// [`Point`]s).
    #[must_use]
    pub fn build<P: AsRef<Point>>(points: &[P]) -> Self {
        let n = points.len();
        let dim = points.first().map_or(1, |p| p.as_ref().dim());
        let mut coords = Vec::with_capacity(n * dim);
        for p in points {
            let p = p.as_ref();
            assert_eq!(p.dim(), dim, "index requires uniform dimensionality");
            coords.extend_from_slice(p.coords());
        }

        // lint:allow(D001, reason = "per-dimension coordinate multiset on the hot incremental insert path; accessed by key only, never iterated")
        let mut coord_counts = vec![HashMap::new(); dim];
        for id in 0..n {
            for (d, counts) in coord_counts.iter_mut().enumerate() {
                *counts.entry(coord_bits(coords[id * dim + d])).or_insert(0) += 1;
            }
        }

        let mut index = GridIndex {
            dim,
            side: 1,
            lo: vec![0.0; dim],
            cell_size: vec![1.0; dim],
            cells: vec![Vec::new()],
            coords,
            removed: vec![false; n],
            live: n,
            built_live: n,
            coord_counts,
        };
        index.regrid();
        index
    }

    /// Recomputes the grid geometry from the live population and
    /// re-buckets every live point. Ids, coordinates and tombstones are
    /// untouched.
    fn regrid(&mut self) {
        let n = self.live;
        let dim = self.dim;
        let mut lo = vec![0.0f64; dim];
        let mut hi = vec![0.0f64; dim];
        for d in 0..dim {
            let mut mn = f64::INFINITY;
            let mut mx = f64::NEG_INFINITY;
            for id in 0..self.removed.len() {
                if self.removed[id] {
                    continue;
                }
                let v = self.coords[id * dim + d];
                mn = mn.min(v);
                mx = mx.max(v);
            }
            lo[d] = if mn.is_finite() { mn } else { 0.0 };
            hi[d] = if mx.is_finite() { mx } else { 0.0 };
        }

        // ~1 point per cell on uniform data, capped so the cell table
        // never dwarfs the point set.
        let mut side = if n == 0 {
            1
        } else {
            (n as f64).powf(1.0 / dim as f64).floor() as usize
        }
        .max(1);
        while side > 1 && Self::cell_count(side, dim) > 4 * n.max(16) {
            side -= 1;
        }

        let cell_size: Vec<f64> = (0..dim)
            .map(|d| {
                let span = hi[d] - lo[d];
                if span > 0.0 {
                    span / side as f64
                } else {
                    1.0
                }
            })
            .collect();

        self.side = side;
        self.lo = lo;
        self.cell_size = cell_size;
        self.built_live = n;
        let cells = Self::cell_count(side, dim);
        self.cells = vec![Vec::new(); cells];
        for id in 0..self.removed.len() {
            if !self.removed[id] {
                let c = self.cell_of(id);
                self.cells[c].push(id as u32);
            }
        }
    }

    /// Adds a point to the population, returning its id (the next dense
    /// insertion index). Amortized `O(1)`: the grid re-buckets itself
    /// when the live population doubles past the built geometry or a
    /// point escapes the bounding box after meaningful growth.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch with the existing population
    /// (an empty index adopts the first point's dimensionality).
    pub fn insert(&mut self, point: &Point) -> usize {
        let adopting = self.coords.is_empty();
        if adopting {
            self.dim = point.dim();
            // lint:allow(D001, reason = "per-dimension coordinate multiset on the hot incremental insert path; accessed by key only, never iterated")
            self.coord_counts = vec![HashMap::new(); self.dim];
        }
        assert_eq!(
            point.dim(),
            self.dim,
            "index requires uniform dimensionality"
        );
        let id = self.removed.len();
        self.coords.extend_from_slice(point.coords());
        self.removed.push(false);
        self.live += 1;
        for (d, counts) in self.coord_counts.iter_mut().enumerate() {
            *counts.entry(coord_bits(point[d])).or_insert(0) += 1;
        }

        if adopting {
            // The empty-built geometry (lo/cell_size) may not even have
            // this dimensionality yet; rebuild it around the first point.
            self.regrid();
            return id;
        }
        let escaped = (0..self.dim).any(|d| {
            let x = point[d];
            x < self.lo[d] || x > self.lo[d] + self.side as f64 * self.cell_size[d]
        });
        let grown = self.live > 2 * self.built_live.max(8);
        if grown || (escaped && self.live > self.built_live + self.built_live / 8) {
            self.regrid();
        } else {
            let c = self.cell_of(id);
            self.cells[c].push(id as u32);
        }
        id
    }

    /// Removes a point: it keeps its id (no other id shifts) but stops
    /// contributing to every query, including collision detection.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already removed.
    pub fn remove(&mut self, id: usize) {
        assert!(id < self.removed.len(), "point id out of range");
        assert!(!self.removed[id], "point {id} already removed");
        self.removed[id] = true;
        self.live -= 1;
        for (d, counts) in self.coord_counts.iter_mut().enumerate() {
            let bits = coord_bits(self.coords[id * self.dim + d]);
            let slot = counts.get_mut(&bits).expect("live coordinate counted");
            *slot -= 1;
            if *slot == 0 {
                counts.remove(&bits);
            }
        }
        let c = self.cell_of(id);
        let pos = self.cells[c]
            .iter()
            .position(|&e| e as usize == id)
            .expect("live point bucketed");
        self.cells[c].swap_remove(pos);
        if self.live * 2 < self.built_live && self.built_live > 32 {
            self.regrid();
        }
    }

    fn cell_count(side: usize, dim: usize) -> usize {
        let mut cells = 1usize;
        for _ in 0..dim {
            cells = cells.saturating_mul(side);
        }
        cells
    }

    fn layer_raw(x: f64, lo: f64, cell_size: f64, side: usize) -> usize {
        let c = ((x - lo) / cell_size).floor();
        if c < 0.0 {
            0
        } else {
            (c as usize).min(side - 1)
        }
    }

    fn cell_of(&self, id: usize) -> usize {
        let mut cell = 0usize;
        for d in 0..self.dim {
            let c = self.layer_of(d, self.coords[id * self.dim + d]);
            cell = cell * self.side + c;
        }
        cell
    }

    /// Number of ids ever issued (removed points included); the valid
    /// query range is `0..len()`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.removed.len()
    }

    /// `true` if no points were ever indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty()
    }

    /// Number of live (non-removed) points.
    #[must_use]
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// `true` if the point has been removed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_removed(&self, id: usize) -> bool {
        self.removed[id]
    }

    /// Dimensionality of the indexed space.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Cells per axis.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    fn point_coords(&self, id: usize) -> &[f64] {
        &self.coords[id * self.dim..(id + 1) * self.dim]
    }

    fn layer_of(&self, d: usize, x: f64) -> usize {
        Self::layer_raw(x, self.lo[d], self.cell_size[d], self.side)
    }

    /// `true` if some *other* live point shares a coordinate with point
    /// `i` in any dimension — the exact condition under which queries
    /// must decline. `O(D)` against the multiplicity tables.
    fn collides(&self, i: usize) -> bool {
        self.collides_at(self.point_coords(i), Some(i))
    }

    /// `true` if some live point other than `skip` shares a coordinate
    /// with the external query position `q` in any dimension. The
    /// decline oracle of the `*_at` query variants, `O(D)` against the
    /// multiplicity tables.
    fn collides_at(&self, q: &[f64], skip: Option<usize>) -> bool {
        (0..self.dim).any(|d| {
            let bits = coord_bits(q[d]);
            let mut count = self.coord_counts[d].get(&bits).copied().unwrap_or(0);
            if let Some(s) = skip {
                if !self.removed[s] && coord_bits(self.coords[s * self.dim + d]) == bits {
                    count -= 1;
                }
            }
            count >= 1
        })
    }

    /// The indices of the exact empty-rectangle neighbours of point `i`
    /// among all other live indexed points, sorted ascending.
    ///
    /// Returns `None` when some other live point shares a coordinate
    /// with point `i` (per-dimension distinctness violated) or the
    /// dimensionality exceeds [`MAX_INDEX_DIM`]; callers then fall back
    /// to [`crate::dominance::empty_rect_neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or removed.
    #[must_use]
    pub fn empty_rect_neighbors(&self, i: usize) -> Option<Vec<usize>> {
        assert!(i < self.len(), "point index out of range");
        assert!(!self.removed[i], "query point {i} was removed");
        if self.dim > MAX_INDEX_DIM || self.collides(i) {
            return None;
        }
        let p = self.point_coords(i).to_vec();
        Some(self.empty_rect_walk(&p, i))
    }

    /// [`GridIndex::empty_rect_neighbors`] for an **external** query
    /// position: the exact empty-rectangle neighbours of `q` among all
    /// live indexed points except `skip`, sorted ascending. The
    /// cross-shard query of the sharded topology store — a peer resident
    /// in one shard interrogates another shard's index without being a
    /// member of it (passing `skip` when it *is* mirrored there).
    ///
    /// Returns `None` when some live point other than `skip` shares a
    /// coordinate with `q` (orthant membership would be ambiguous) or
    /// the dimensionality exceeds [`MAX_INDEX_DIM`]; callers fall back
    /// to their brute-force paths.
    ///
    /// # Panics
    ///
    /// Panics if the index is non-empty and `q`'s dimensionality
    /// disagrees, or `skip` is out of range.
    #[must_use]
    pub fn empty_rect_neighbors_at(&self, q: &Point, skip: Option<usize>) -> Option<Vec<usize>> {
        if self.live == 0 {
            return Some(Vec::new());
        }
        assert_eq!(q.dim(), self.dim, "query dimensionality mismatch");
        if let Some(s) = skip {
            assert!(s < self.len(), "skip id out of range");
        }
        if self.dim > MAX_INDEX_DIM || self.collides_at(q.coords(), skip) {
            return None;
        }
        Some(self.empty_rect_walk(q.coords(), skip.unwrap_or(usize::MAX)))
    }

    /// The shared walk behind both empty-rectangle entry points: exact
    /// frontier of the position `p` over live points, excluding `skip`
    /// (`usize::MAX` excludes nobody). Collision gating is the caller's
    /// job.
    fn empty_rect_walk(&self, p: &[f64], skip: usize) -> Vec<usize> {
        let dim = self.dim;
        let orthants = 1usize << dim;

        // Per orthant: collected candidate (offset vector, id) pairs and
        // the pruning frontier (indices into the collected list).
        let mut collected: Vec<Vec<(Vec<f64>, usize)>> = vec![Vec::new(); orthants];
        let mut frontier: Vec<Vec<usize>> = vec![Vec::new(); orthants];

        let p_layer: Vec<usize> = (0..dim).map(|d| self.layer_of(d, p[d])).collect();

        let mut prefix_cells = vec![0usize; dim];
        let mut prefix_offs = vec![0.0f64; dim];
        for o in 0..orthants {
            self.walk_empty_rect(
                o,
                0,
                p,
                &p_layer,
                &mut prefix_cells,
                &mut prefix_offs,
                skip,
                &mut collected,
                &mut frontier,
            );
        }

        // Exact per-orthant Pareto frontier over the (reduced) collected
        // sets — the same computation dominance::empty_rect_neighbors
        // runs over the full candidate set.
        let mut kept = Vec::new();
        for group in &mut collected {
            group.sort_by(|a, b| {
                let la: f64 = a.0.iter().sum();
                let lb: f64 = b.0.iter().sum();
                la.total_cmp(&lb).then(a.1.cmp(&b.1))
            });
            let mut local: Vec<usize> = Vec::new();
            for qi in 0..group.len() {
                let dominated = local
                    .iter()
                    .any(|&ri| group[ri].0.iter().zip(&group[qi].0).all(|(r, q)| r < q));
                if !dominated {
                    local.push(qi);
                    kept.push(group[qi].1);
                }
            }
        }
        kept.sort_unstable();
        kept
    }

    /// Walks the cells of orthant `o` (bit `d` set = positive side in
    /// dimension `d`), collecting candidate points and pruning cells
    /// whose corner is rect-dominated by an already-collected point.
    /// Collisions cannot occur: [`GridIndex::collides`] gates the walk.
    #[allow(clippy::too_many_arguments)]
    fn walk_empty_rect(
        &self,
        o: usize,
        depth: usize,
        p: &[f64],
        p_layer: &[usize],
        prefix_cells: &mut [usize],
        prefix_offs: &mut [f64],
        skip: usize,
        collected: &mut [Vec<(Vec<f64>, usize)>],
        frontier: &mut [Vec<usize>],
    ) {
        let d = depth;
        let positive = o >> d & 1 == 1;
        let innermost = depth + 1 == self.dim;
        for t in 0.. {
            let Some((cell, offmin)) = self.layer_step(d, p, p_layer, positive, t) else {
                break;
            };
            prefix_cells[d] = cell;
            prefix_offs[d] = offmin;
            if innermost {
                // Full corner bound available: prune and, because the
                // bound is monotone in `t`, stop the column at the first
                // dominated cell.
                let dominated = frontier[o].iter().any(|&ri| {
                    collected[o][ri]
                        .0
                        .iter()
                        .zip(prefix_offs.iter())
                        .all(|(r, c)| r < c)
                });
                if dominated {
                    break;
                }
                self.scan_cell_empty_rect(o, p, prefix_cells, skip, collected, frontier);
            } else {
                self.walk_empty_rect(
                    o,
                    depth + 1,
                    p,
                    p_layer,
                    prefix_cells,
                    prefix_offs,
                    skip,
                    collected,
                    frontier,
                );
            }
        }
    }

    /// The cell layer `t` steps from `p`'s layer along `d` (direction
    /// `positive`), paired with the minimum absolute offset from `p` to
    /// any point of that layer. `None` once the grid edge is passed.
    fn layer_step(
        &self,
        d: usize,
        p: &[f64],
        p_layer: &[usize],
        positive: bool,
        t: usize,
    ) -> Option<(usize, f64)> {
        let base = p_layer[d];
        let cell = if positive {
            let c = base + t;
            if c >= self.side {
                return None;
            }
            c
        } else {
            if t > base {
                return None;
            }
            base - t
        };
        let offmin = if t == 0 {
            0.0
        } else if positive {
            (self.lo[d] + cell as f64 * self.cell_size[d]) - p[d]
        } else {
            p[d] - (self.lo[d] + (cell + 1) as f64 * self.cell_size[d])
        };
        Some((cell, offmin.max(0.0)))
    }

    /// Scans one cell for orthant `o` candidates, updating the collected
    /// set and its pruning frontier.
    fn scan_cell_empty_rect(
        &self,
        o: usize,
        p: &[f64],
        cell: &[usize],
        skip: usize,
        collected: &mut [Vec<(Vec<f64>, usize)>],
        frontier: &mut [Vec<usize>],
    ) {
        let dim = self.dim;
        let mut flat = 0usize;
        for &c in cell {
            flat = flat * self.side + c;
        }
        for &entry in &self.cells[flat] {
            let id = entry as usize;
            if id == skip {
                continue;
            }
            debug_assert!(!self.removed[id], "buckets hold live points only");
            let q = self.point_coords(id);
            let mut offsets = Vec::with_capacity(dim);
            let mut in_orthant = true;
            for d in 0..dim {
                let delta = q[d] - p[d];
                debug_assert!(delta != 0.0, "collides() must gate the walk");
                if (delta > 0.0) != (o >> d & 1 == 1) {
                    in_orthant = false;
                    break;
                }
                offsets.push(delta.abs());
            }
            if !in_orthant {
                continue;
            }
            // Maintain the pruning frontier: a Pareto set of collected
            // offsets (sound to prune with any collected point; keeping
            // only non-dominated ones keeps the corner tests short).
            let dominated = frontier[o]
                .iter()
                .any(|&ri| collected[o][ri].0.iter().zip(&offsets).all(|(r, q)| r < q));
            collected[o].push((offsets, id));
            if !dominated {
                let new_ri = collected[o].len() - 1;
                frontier[o].retain(|&ri| {
                    !collected[o][new_ri]
                        .0
                        .iter()
                        .zip(&collected[o][ri].0)
                        .all(|(n, r)| n < r)
                });
                frontier[o].push(new_ri);
            }
        }
    }

    /// The `k` nearest live indexed points to point `i` within each
    /// orthant around it, under `metric`, each orthant sorted by
    /// `(distance, index)` ascending — exactly the per-orthant ranking
    /// of the *Orthogonal Hyperplanes* selection when point indices are
    /// the tie-break key.
    ///
    /// Returns `None` on a per-dimension coordinate collision with any
    /// other live point or when the dimensionality exceeds
    /// [`MAX_INDEX_DIM`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range, removed, or `k == 0`.
    #[must_use]
    pub fn k_nearest_per_orthant(
        &self,
        i: usize,
        k: usize,
        metric: MetricKind,
    ) -> Option<Vec<Vec<usize>>> {
        assert!(i < self.len(), "point index out of range");
        assert!(!self.removed[i], "query point {i} was removed");
        assert!(k > 0, "K must be at least 1");
        if self.dim > MAX_INDEX_DIM || self.collides(i) {
            return None;
        }
        let p = self.point_coords(i).to_vec();
        Some(self.knn_walk(&p, k, metric, i))
    }

    /// [`GridIndex::k_nearest_per_orthant`] for an **external** query
    /// position: the `k` nearest live points to `q` within each orthant
    /// around `q`, excluding `skip` — the cross-shard query of the
    /// sharded topology store.
    ///
    /// Returns `None` on a per-dimension coordinate collision between
    /// `q` and any live point other than `skip`, or when the
    /// dimensionality exceeds [`MAX_INDEX_DIM`].
    ///
    /// # Panics
    ///
    /// Panics if the index is non-empty and `q`'s dimensionality
    /// disagrees, `skip` is out of range, or `k == 0`.
    #[must_use]
    pub fn k_nearest_per_orthant_at(
        &self,
        q: &Point,
        k: usize,
        metric: MetricKind,
        skip: Option<usize>,
    ) -> Option<Vec<Vec<usize>>> {
        assert!(k > 0, "K must be at least 1");
        if self.live == 0 {
            let orthants = 1usize << self.dim.min(MAX_INDEX_DIM);
            return Some(vec![Vec::new(); orthants]);
        }
        assert_eq!(q.dim(), self.dim, "query dimensionality mismatch");
        if let Some(s) = skip {
            assert!(s < self.len(), "skip id out of range");
        }
        if self.dim > MAX_INDEX_DIM || self.collides_at(q.coords(), skip) {
            return None;
        }
        Some(self.knn_walk(q.coords(), k, metric, skip.unwrap_or(usize::MAX)))
    }

    /// The shared walk behind both per-orthant KNN entry points,
    /// excluding `skip` (`usize::MAX` excludes nobody). Collision gating
    /// is the caller's job.
    fn knn_walk(&self, p: &[f64], k: usize, metric: MetricKind, skip: usize) -> Vec<Vec<usize>> {
        let dim = self.dim;
        let orthants = 1usize << dim;
        let p_layer: Vec<usize> = (0..dim).map(|d| self.layer_of(d, p[d])).collect();

        let mut best: Vec<Vec<(f64, usize)>> = vec![Vec::new(); orthants];
        let mut prefix_cells = vec![0usize; dim];
        let mut prefix_offs = vec![0.0f64; dim];
        for o in 0..orthants {
            self.walk_knn(
                o,
                0,
                p,
                &p_layer,
                &mut prefix_cells,
                &mut prefix_offs,
                skip,
                k,
                metric,
                &mut best,
            );
        }
        best.into_iter()
            .map(|group| group.into_iter().map(|(_, id)| id).collect())
            .collect()
    }

    fn corner_dist(&self, metric: MetricKind, offs: &[f64], upto: usize) -> f64 {
        metric.norm(&offs[..upto])
    }

    fn point_dist(&self, metric: MetricKind, p: &[f64], q: &[f64]) -> f64 {
        metric.dist_coords(p, q)
    }

    /// Walks orthant `o` cells for the `k`-nearest query. The column
    /// walk along each dimension stops once the corner bound (remaining
    /// dimensions at zero offset) strictly exceeds the current `k`-th
    /// best distance. Collisions cannot occur: [`GridIndex::collides`]
    /// gates the walk.
    #[allow(clippy::too_many_arguments)]
    fn walk_knn(
        &self,
        o: usize,
        depth: usize,
        p: &[f64],
        p_layer: &[usize],
        prefix_cells: &mut [usize],
        prefix_offs: &mut [f64],
        skip: usize,
        k: usize,
        metric: MetricKind,
        best: &mut [Vec<(f64, usize)>],
    ) {
        let d = depth;
        let positive = o >> d & 1 == 1;
        let innermost = depth + 1 == self.dim;
        for t in 0.. {
            let Some((cell, offmin)) = self.layer_step(d, p, p_layer, positive, t) else {
                break;
            };
            prefix_cells[d] = cell;
            prefix_offs[d] = offmin;
            // Lower bound on the distance of any point in this column
            // (remaining dimensions contribute nothing); monotone in `t`.
            if best[o].len() == k {
                let bound = self.corner_dist(metric, prefix_offs, depth + 1);
                if bound > best[o][k - 1].0 {
                    break;
                }
            }
            if innermost {
                let mut flat = 0usize;
                for &c in prefix_cells.iter() {
                    flat = flat * self.side + c;
                }
                for &entry in &self.cells[flat] {
                    let id = entry as usize;
                    if id == skip {
                        continue;
                    }
                    debug_assert!(!self.removed[id], "buckets hold live points only");
                    let q = self.point_coords(id);
                    let mut in_orthant = true;
                    for dd in 0..self.dim {
                        let delta = q[dd] - p[dd];
                        debug_assert!(delta != 0.0, "collides() must gate the walk");
                        if (delta > 0.0) != (o >> dd & 1 == 1) {
                            in_orthant = false;
                            break;
                        }
                    }
                    if !in_orthant {
                        continue;
                    }
                    let dist = self.point_dist(metric, p, q);
                    let entry = (dist, id);
                    let group = &mut best[o];
                    if group.len() == k {
                        let worst = group[k - 1];
                        if (entry.0, entry.1) >= (worst.0, worst.1) {
                            continue;
                        }
                        group.pop();
                    }
                    let pos = group.partition_point(|&(gd, gid)| (gd, gid) < (entry.0, entry.1));
                    group.insert(pos, entry);
                }
            } else {
                self.walk_knn(
                    o,
                    depth + 1,
                    p,
                    p_layer,
                    prefix_cells,
                    prefix_offs,
                    skip,
                    k,
                    metric,
                    best,
                );
            }
        }
    }

    /// The nearest live indexed point to `q` (an arbitrary point, not
    /// necessarily indexed) among those the `accept` predicate admits,
    /// under `metric`, ties broken by the smaller id — exactly the
    /// brute-force `(distance, id)` minimum, which property tests
    /// assert. `None` when no live point is accepted.
    ///
    /// Unlike the selection queries this one needs no per-dimension
    /// distinctness (a `(distance, id)` minimum is well-defined under
    /// collisions), so it never declines. The walk expands cell columns
    /// outward from `q` and cuts each column once its corner bound
    /// strictly exceeds the best accepted distance; with a selective
    /// predicate (few accepted points) it degrades towards a full scan,
    /// which is the honest lower bound for that workload.
    ///
    /// # Panics
    ///
    /// Panics if the index is non-empty and `q`'s dimensionality
    /// disagrees, or the dimensionality exceeds [`MAX_INDEX_DIM`].
    pub fn nearest_where<F: FnMut(usize) -> bool>(
        &self,
        q: &Point,
        metric: MetricKind,
        mut accept: F,
    ) -> Option<usize> {
        if self.live == 0 {
            return None;
        }
        assert_eq!(q.dim(), self.dim, "query dimensionality mismatch");
        assert!(self.dim <= MAX_INDEX_DIM, "dimensionality not indexable");
        let qc = q.coords();
        let q_layer: Vec<usize> = (0..self.dim).map(|d| self.layer_of(d, qc[d])).collect();
        let mut prefix_cells = vec![0usize; self.dim];
        let mut prefix_offs = vec![0.0f64; self.dim];
        let mut best: Option<(f64, usize)> = None;
        for o in 0..1usize << self.dim {
            self.walk_nearest(
                o,
                0,
                qc,
                &q_layer,
                &mut prefix_cells,
                &mut prefix_offs,
                metric,
                &mut accept,
                &mut best,
            );
        }
        best.map(|(_, id)| id)
    }

    /// Walks the cells of direction-combination `o` (bit `d` set =
    /// ascending layers in dimension `d`) for the nearest-accepted
    /// query. Descending walks skip the seam layer (`t = 0`), so every
    /// cell is scanned exactly once across the `2^D` combinations. The
    /// column walk along each dimension stops once the corner bound
    /// strictly exceeds the best accepted distance (a tie is not cut, so
    /// the `(distance, id)` tie-break survives).
    #[allow(clippy::too_many_arguments)]
    fn walk_nearest<F: FnMut(usize) -> bool>(
        &self,
        o: usize,
        depth: usize,
        q: &[f64],
        q_layer: &[usize],
        prefix_cells: &mut [usize],
        prefix_offs: &mut [f64],
        metric: MetricKind,
        accept: &mut F,
        best: &mut Option<(f64, usize)>,
    ) {
        let d = depth;
        let positive = o >> d & 1 == 1;
        let innermost = depth + 1 == self.dim;
        for t in usize::from(!positive).. {
            let Some((cell, offmin)) = self.layer_step(d, q, q_layer, positive, t) else {
                break;
            };
            prefix_cells[d] = cell;
            prefix_offs[d] = offmin;
            // Lower bound on the distance of any point in this column
            // (remaining dimensions contribute nothing); monotone in `t`,
            // and valid for clamped edge cells too (points outside the
            // built box still lie beyond the cell's inner boundary).
            if let Some((bd, _)) = *best {
                if self.corner_dist(metric, prefix_offs, depth + 1) > bd {
                    break;
                }
            }
            if innermost {
                let mut flat = 0usize;
                for &c in prefix_cells.iter() {
                    flat = flat * self.side + c;
                }
                for &entry in &self.cells[flat] {
                    let id = entry as usize;
                    debug_assert!(!self.removed[id], "buckets hold live points only");
                    if !accept(id) {
                        continue;
                    }
                    let dist = self.point_dist(metric, q, self.point_coords(id));
                    let better = match *best {
                        None => true,
                        Some((bd, bi)) => dist < bd || (dist == bd && id < bi),
                    };
                    if better {
                        *best = Some((dist, id));
                    }
                }
            } else {
                self.walk_nearest(
                    o,
                    depth + 1,
                    q,
                    q_layer,
                    prefix_cells,
                    prefix_offs,
                    metric,
                    accept,
                    best,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::empty_rect_neighbors;
    use crate::gen::uniform_points;
    use crate::{Metric, Orthant};

    fn reindexed_brute(points: &[Point], i: usize) -> Vec<usize> {
        let candidates: Vec<&Point> = points
            .iter()
            .enumerate()
            .filter_map(|(j, p)| (j != i).then_some(p))
            .collect();
        empty_rect_neighbors(&points[i], &candidates)
            .into_iter()
            .map(|ci| if ci < i { ci } else { ci + 1 })
            .collect()
    }

    #[test]
    fn empty_rect_matches_brute_force_across_dims_and_sizes() {
        for &(n, dim, seed) in &[
            (2usize, 1usize, 1u64),
            (40, 1, 2),
            (60, 2, 3),
            (120, 2, 4),
            (50, 3, 5),
            (40, 4, 6),
            (30, 5, 7),
        ] {
            let points = uniform_points(n, dim, 1000.0, seed).into_points();
            let index = GridIndex::build(&points);
            for i in 0..n {
                assert_eq!(
                    index.empty_rect_neighbors(i).expect("distinct workload"),
                    reindexed_brute(&points, i),
                    "n={n} dim={dim} seed={seed} i={i}"
                );
            }
        }
    }

    #[test]
    fn empty_rect_detects_collisions_and_declines() {
        let points = vec![
            Point::new(vec![0.0, 0.0]).unwrap(),
            Point::new(vec![1.0, 0.0]).unwrap(), // shares y with point 0
            Point::new(vec![2.0, 3.0]).unwrap(),
        ];
        let index = GridIndex::build(&points);
        assert_eq!(index.empty_rect_neighbors(0), None);
    }

    #[test]
    fn knn_matches_brute_force_ranking() {
        for &(n, dim, seed) in &[
            (80usize, 2usize, 11u64),
            (60, 3, 12),
            (30, 4, 13),
            (50, 1, 14),
        ] {
            let points = uniform_points(n, dim, 1000.0, seed).into_points();
            let index = GridIndex::build(&points);
            for metric in [MetricKind::L1, MetricKind::L2, MetricKind::LInf] {
                for k in [1usize, 2, 5, 64] {
                    for i in 0..n.min(12) {
                        let got = index.k_nearest_per_orthant(i, k, metric).unwrap();
                        // Reference: group all others by orthant, sort by
                        // (distance, index), truncate to k.
                        let mut want: Vec<Vec<(f64, usize)>> =
                            vec![Vec::new(); Orthant::count(dim)];
                        for (j, q) in points.iter().enumerate() {
                            if j == i {
                                continue;
                            }
                            let o = Orthant::classify(&points[i], q).unwrap();
                            want[o.index()].push((metric.dist(&points[i], q), j));
                        }
                        for group in &mut want {
                            group.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                            group.truncate(k);
                        }
                        let want: Vec<Vec<usize>> = want
                            .into_iter()
                            .map(|g| g.into_iter().map(|(_, j)| j).collect())
                            .collect();
                        assert_eq!(got, want, "n={n} dim={dim} k={k} {metric} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn knn_declines_on_collision() {
        let points = vec![
            Point::new(vec![0.0, 5.0]).unwrap(),
            Point::new(vec![3.0, 5.0]).unwrap(),
        ];
        let index = GridIndex::build(&points);
        assert_eq!(index.k_nearest_per_orthant(0, 1, MetricKind::L1), None);
    }

    #[test]
    fn build_handles_tiny_and_empty_sets() {
        let empty: [Point; 0] = [];
        let index = GridIndex::build(&empty);
        assert!(index.is_empty());

        let one = [Point::new(vec![3.0, 4.0]).unwrap()];
        let index = GridIndex::build(&one);
        assert_eq!(index.len(), 1);
        assert_eq!(index.empty_rect_neighbors(0), Some(vec![]));
        assert_eq!(
            index.k_nearest_per_orthant(0, 3, MetricKind::L1),
            Some(vec![vec![]; 4])
        );
    }

    #[test]
    fn grid_side_scales_with_population() {
        let small = GridIndex::build(&uniform_points(16, 2, 1000.0, 1).into_points());
        let large = GridIndex::build(&uniform_points(4096, 2, 1000.0, 1).into_points());
        assert!(large.side() > small.side());
        assert_eq!(large.dim(), 2);
    }

    #[test]
    fn clustered_degenerate_extents_still_exact() {
        // All points on a narrow band: grid degenerates in one dimension
        // but answers must stay exact.
        let points: Vec<Point> = (0..50)
            .map(|i| {
                Point::new(vec![f64::from(i) * 7.0 + 0.13, 500.0 + f64::from(i) * 1e-6]).unwrap()
            })
            .collect();
        let index = GridIndex::build(&points);
        for i in 0..points.len() {
            assert_eq!(
                index.empty_rect_neighbors(i).unwrap(),
                reindexed_brute(&points, i),
                "i={i}"
            );
        }
    }

    #[test]
    fn empty_built_index_adopts_first_point_dimensionality() {
        // Regression: build(&[]) defaults to dim 1; the first insert of a
        // higher-dimensional point must rebuild the geometry instead of
        // indexing stale 1-D bounds (this used to panic whenever the
        // first coordinate happened to land inside the default bounds).
        let mut index = GridIndex::build::<Point>(&[]);
        let id = index.insert(&Point::new(vec![0.5, 0.5]).unwrap());
        assert_eq!(id, 0);
        assert_eq!(index.dim(), 2);
        index.insert(&Point::new(vec![0.25, 0.75]).unwrap());
        assert_eq!(index.empty_rect_neighbors(0), Some(vec![1]));
    }

    #[test]
    fn incremental_inserts_match_fresh_build() {
        // Insert one point at a time starting from an empty index; after
        // every insertion the answers equal a from-scratch build's.
        let points = uniform_points(120, 2, 1000.0, 41).into_points();
        let mut index = GridIndex::build(&points[..0]);
        for (next, point) in points.iter().enumerate() {
            assert_eq!(index.insert(point), next);
            let fresh = GridIndex::build(&points[..=next]);
            for i in [0, next / 2, next] {
                assert_eq!(
                    index.empty_rect_neighbors(i),
                    fresh.empty_rect_neighbors(i),
                    "after inserting {next}, query {i}"
                );
                assert_eq!(
                    index.k_nearest_per_orthant(i, 2, MetricKind::L1),
                    fresh.k_nearest_per_orthant(i, 2, MetricKind::L1),
                    "after inserting {next}, query {i}"
                );
            }
        }
        assert_eq!(index.live_len(), points.len());
    }

    #[test]
    fn removal_expires_points_from_answers() {
        let points = uniform_points(80, 2, 1000.0, 43).into_points();
        let mut index = GridIndex::build(&points);
        // Remove every third point; answers must equal the brute force
        // over the survivors (in original ids).
        let victims: Vec<usize> = (0..points.len()).step_by(3).collect();
        for &v in &victims {
            index.remove(v);
        }
        assert_eq!(index.live_len(), points.len() - victims.len());
        let live: Vec<usize> = (0..points.len()).filter(|i| !victims.contains(i)).collect();
        for &i in live.iter().take(10) {
            let got = index.empty_rect_neighbors(i).expect("distinct workload");
            let cand_ids: Vec<usize> = live.iter().copied().filter(|&j| j != i).collect();
            let candidates: Vec<&Point> = cand_ids.iter().map(|&j| &points[j]).collect();
            let want: Vec<usize> = empty_rect_neighbors(&points[i], &candidates)
                .into_iter()
                .map(|ci| cand_ids[ci])
                .collect();
            assert_eq!(got, want, "query {i}");
            assert!(got.iter().all(|n| !victims.contains(n)));
        }
    }

    #[test]
    fn heavy_removal_triggers_shrink_and_stays_exact() {
        let points = uniform_points(200, 2, 1000.0, 47).into_points();
        let mut index = GridIndex::build(&points);
        let side_before = index.side();
        for v in 40..200 {
            index.remove(v);
        }
        assert!(index.side() < side_before, "grid must re-bucket smaller");
        let fresh = GridIndex::build(&points[..40]);
        for i in 0..40 {
            assert_eq!(
                index.empty_rect_neighbors(i),
                fresh.empty_rect_neighbors(i),
                "query {i}"
            );
        }
    }

    #[test]
    fn removing_a_colliding_point_restores_index_answers() {
        // Points 0 and 1 share y: both decline. Removing point 1 makes
        // point 0's queries answer again.
        let points = vec![
            Point::new(vec![0.0, 5.0]).unwrap(),
            Point::new(vec![90.0, 5.0]).unwrap(),
            Point::new(vec![3.0, 8.0]).unwrap(),
        ];
        let mut index = GridIndex::build(&points);
        assert_eq!(index.empty_rect_neighbors(0), None);
        index.remove(1);
        assert_eq!(index.empty_rect_neighbors(0), Some(vec![2]));
        assert_eq!(
            index.k_nearest_per_orthant(0, 1, MetricKind::L1),
            Some(vec![vec![], vec![], vec![], vec![2]])
        );
    }

    #[test]
    fn insert_outside_built_bounds_stays_exact() {
        // Clamped edge cells keep the corner bound a valid lower bound.
        let mut points = uniform_points(60, 2, 100.0, 51).into_points();
        let mut index = GridIndex::build(&points);
        let far = Point::new(vec![5000.5, -3000.25]).unwrap();
        index.insert(&far);
        points.push(far);
        for i in 0..points.len() {
            assert_eq!(
                index.empty_rect_neighbors(i).expect("distinct workload"),
                reindexed_brute(&points, i),
                "query {i}"
            );
        }
    }

    #[test]
    fn at_queries_match_brute_force_for_external_points() {
        for &(n, dim, seed) in &[(80usize, 2usize, 71u64), (50, 3, 72), (40, 1, 73)] {
            let points = uniform_points(n, dim, 1000.0, seed).into_points();
            let mut index = GridIndex::build(&points);
            for &gone in &[5usize, 9] {
                index.remove(gone);
            }
            let live: Vec<usize> = (0..n).filter(|i| ![5, 9].contains(i)).collect();
            // External query positions, some outside the built box.
            let queries = uniform_points(10, dim, 1700.0, seed ^ 0xb2).into_points();
            for q in &queries {
                let got = index
                    .empty_rect_neighbors_at(q, None)
                    .expect("distinct workload");
                let candidates: Vec<&Point> = live.iter().map(|&j| &points[j]).collect();
                let want: Vec<usize> = empty_rect_neighbors(q, &candidates)
                    .into_iter()
                    .map(|ci| live[ci])
                    .collect();
                assert_eq!(got, want, "n={n} dim={dim} q={q:?}");

                for metric in [MetricKind::L1, MetricKind::L2, MetricKind::LInf] {
                    for k in [1usize, 3] {
                        let got = index.k_nearest_per_orthant_at(q, k, metric, None).unwrap();
                        let mut want: Vec<Vec<(f64, usize)>> =
                            vec![Vec::new(); Orthant::count(dim)];
                        for &j in &live {
                            let o = Orthant::classify(q, &points[j]).unwrap();
                            want[o.index()].push((metric.dist(q, &points[j]), j));
                        }
                        for group in &mut want {
                            group.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                            group.truncate(k);
                        }
                        let want: Vec<Vec<usize>> = want
                            .into_iter()
                            .map(|g| g.into_iter().map(|(_, j)| j).collect())
                            .collect();
                        assert_eq!(got, want, "n={n} dim={dim} k={k} {metric}");
                    }
                }
            }
        }
    }

    #[test]
    fn at_queries_with_skip_match_id_based_queries() {
        let points = uniform_points(60, 2, 1000.0, 77).into_points();
        let index = GridIndex::build(&points);
        for (i, p) in points.iter().enumerate().take(10) {
            assert_eq!(
                index.empty_rect_neighbors_at(p, Some(i)),
                index.empty_rect_neighbors(i),
                "query {i}"
            );
            assert_eq!(
                index.k_nearest_per_orthant_at(p, 2, MetricKind::L1, Some(i)),
                index.k_nearest_per_orthant(i, 2, MetricKind::L1),
                "query {i}"
            );
        }
    }

    #[test]
    fn at_queries_decline_on_external_collision_unless_skipped() {
        let points = vec![
            Point::new(vec![0.0, 5.0]).unwrap(),
            Point::new(vec![3.0, 8.0]).unwrap(),
        ];
        let index = GridIndex::build(&points);
        // Shares y with live point 0: ambiguous, decline…
        let q = Point::new(vec![7.0, 5.0]).unwrap();
        assert_eq!(index.empty_rect_neighbors_at(&q, None), None);
        assert_eq!(
            index.k_nearest_per_orthant_at(&q, 1, MetricKind::L1, None),
            None
        );
        // …unless point 0 is the one being excluded (a mirrored self).
        assert_eq!(index.empty_rect_neighbors_at(&q, Some(0)), Some(vec![1]));
        // A clean external point answers.
        let q = Point::new(vec![7.0, 6.0]).unwrap();
        assert_eq!(index.empty_rect_neighbors_at(&q, None), Some(vec![0, 1]));
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_removal_is_rejected() {
        let points = uniform_points(4, 2, 100.0, 3).into_points();
        let mut index = GridIndex::build(&points);
        index.remove(2);
        index.remove(2);
    }

    /// Brute-force reference for [`GridIndex::nearest_where`]: the
    /// `(distance, id)` minimum over live accepted points.
    fn brute_nearest(
        points: &[Point],
        removed: &[bool],
        q: &Point,
        metric: MetricKind,
        accept: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        points
            .iter()
            .enumerate()
            .filter(|&(i, _)| !removed[i] && accept(i))
            .map(|(i, p)| (metric.dist(q, p), i))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, i)| i)
    }

    #[test]
    fn nearest_where_matches_brute_force_with_filters_and_removals() {
        for &(n, dim, seed) in &[(80usize, 2usize, 61u64), (50, 3, 62), (40, 1, 63)] {
            let mut points = uniform_points(n, dim, 1000.0, seed).into_points();
            let mut index = GridIndex::build(&points);
            let mut removed = vec![false; n];
            for &gone in &[3usize, 7, 11] {
                index.remove(gone);
                removed[gone] = true;
            }
            // A point outside the built bounding box lands in a clamped
            // edge cell; the walk must still find it when it is nearest.
            let far_coords: Vec<f64> = (0..dim).map(|d| 2000.0 + d as f64).collect();
            let far = Point::new(far_coords).unwrap();
            index.insert(&far);
            points.push(far);
            removed.push(false);

            let queries = uniform_points(12, dim, 1500.0, seed ^ 0xa1).into_points();
            for metric in [MetricKind::L1, MetricKind::L2, MetricKind::LInf] {
                for q in &queries {
                    // Unfiltered, a sparse filter, and an empty filter.
                    for (name, accept) in [
                        (
                            "all",
                            Box::new(|_: usize| true) as Box<dyn Fn(usize) -> bool>,
                        ),
                        ("thirds", Box::new(|i: usize| i.is_multiple_of(3))),
                        ("none", Box::new(|_: usize| false)),
                    ] {
                        assert_eq!(
                            index.nearest_where(q, metric, &*accept),
                            brute_nearest(&points, &removed, q, metric, &*accept),
                            "n={n} dim={dim} {metric} filter={name}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn nearest_where_breaks_distance_ties_by_smaller_id() {
        // Four L1-equidistant points around the query; ids decide.
        let points = vec![
            Point::new(vec![10.0, 0.0]).unwrap(),
            Point::new(vec![0.0, 10.0]).unwrap(),
            Point::new(vec![-10.0, 0.0]).unwrap(),
            Point::new(vec![0.0, -10.0]).unwrap(),
        ];
        let index = GridIndex::build(&points);
        let q = Point::new(vec![0.0, 0.0]).unwrap();
        assert_eq!(index.nearest_where(&q, MetricKind::L1, |_| true), Some(0));
        assert_eq!(index.nearest_where(&q, MetricKind::L1, |i| i >= 2), Some(2));
    }

    #[test]
    fn nearest_where_on_empty_population_is_none() {
        let index = GridIndex::build::<Point>(&[]);
        let q = Point::new(vec![1.0, 2.0]).unwrap();
        assert_eq!(index.nearest_where(&q, MetricKind::L1, |_| true), None);
        // Fully removed populations answer None as well.
        let points = vec![Point::new(vec![3.0, 4.0]).unwrap()];
        let mut index = GridIndex::build(&points);
        index.remove(0);
        assert_eq!(index.nearest_where(&q, MetricKind::L1, |_| true), None);
    }
}
