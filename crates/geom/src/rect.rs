use std::fmt;

use crate::{GeomError, Interval, Orthant, Point};

/// An **open** axis-aligned hyper-rectangle — the representation of the
/// paper's *responsibility zones*.
///
/// A `Rect` is a product of open [`Interval`]s, one per dimension. The
/// paper's zone algebra needs exactly three constructions, all closed
/// under intersection:
///
/// * the full space (the root's zone),
/// * the open orthant rectangle `HR` around a peer
///   ([`Rect::orthant_of`]): side `i` is `(x(P,i), +∞)` or `(-∞, x(P,i))`
///   depending on the orthant sign,
/// * intersections `Z(Q) = Z(P) ∩ HR`.
///
/// A rectangle with any empty side is empty; emptiness is always
/// detectable exactly because sides are open intervals over distinct
/// coordinates.
///
/// # Example
///
/// ```
/// use geocast_geom::{Point, Rect, Orthant};
///
/// # fn main() -> Result<(), geocast_geom::GeomError> {
/// let space = Rect::full(2);
/// let p = Point::new(vec![5.0, 5.0])?;
/// let q = Point::new(vec![7.0, 9.0])?;
///
/// let zone = space.intersect(&Rect::orthant_of(&p, Orthant::classify(&p, &q)?));
/// assert!(zone.contains(&q));
/// assert!(!zone.contains(&p)); // zones always exclude the forwarding peer
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    sides: Vec<Interval>,
}

impl Rect {
    /// Creates a rectangle from explicit sides.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::EmptyPoint`] if `sides` is empty (a
    /// 0-dimensional rectangle is not meaningful for zones).
    pub fn new(sides: Vec<Interval>) -> Result<Self, GeomError> {
        if sides.is_empty() {
            return Err(GeomError::EmptyPoint);
        }
        Ok(Rect { sides })
    }

    /// The entire `dim`-dimensional space — the root's responsibility
    /// zone.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn full(dim: usize) -> Self {
        assert!(dim > 0, "rectangles require at least one dimension");
        Rect {
            sides: vec![Interval::unbounded(); dim],
        }
    }

    /// The canonical empty rectangle of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn empty(dim: usize) -> Self {
        assert!(dim > 0, "rectangles require at least one dimension");
        Rect {
            sides: vec![Interval::EMPTY; dim],
        }
    }

    /// The open orthant rectangle `HR` of the paper: around reference
    /// point `p`, side `i` is `(x(p,i), +∞)` when the orthant is positive
    /// in dimension `i` and `(-∞, x(p,i))` otherwise.
    #[must_use]
    pub fn orthant_of(p: &Point, orthant: Orthant) -> Self {
        let sides = (0..p.dim())
            .map(|d| {
                if orthant.is_positive(d) {
                    Interval::above(p[d])
                } else {
                    Interval::below(p[d])
                }
            })
            .collect();
        Rect { sides }
    }

    /// The open rectangle spanned by two corner points: side `i` is
    /// `(min(p_i, q_i), max(p_i, q_i))`.
    ///
    /// This is the rectangle of the §2 neighbour-selection rule: `q` is a
    /// neighbour of `p` iff `Rect::spanned_open(p, q)` contains no other
    /// candidate. Under the per-dimension distinctness assumption, a third
    /// peer can never lie on the boundary, so testing the open interior is
    /// exact.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DimensionMismatch`] if the points disagree on
    /// dimensionality.
    pub fn spanned_open(p: &Point, q: &Point) -> Result<Self, GeomError> {
        p.check_dim(q)?;
        let sides = (0..p.dim())
            .map(|d| Interval::new(p[d].min(q[d]), p[d].max(q[d])))
            .collect();
        Ok(Rect { sides })
    }

    /// Dimensionality of the rectangle.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.sides.len()
    }

    /// The sides as a slice of intervals.
    #[must_use]
    pub fn sides(&self) -> &[Interval] {
        &self.sides
    }

    /// The side in dimension `dim`, or `None` if out of range.
    #[must_use]
    pub fn side(&self, dim: usize) -> Option<Interval> {
        self.sides.get(dim).copied()
    }

    /// `true` if the rectangle contains no point (some side is empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sides.iter().any(Interval::is_empty)
    }

    /// `true` if `p` lies strictly inside the rectangle.
    ///
    /// # Panics
    ///
    /// Panics if `p` has a different dimensionality (programming error in
    /// zone plumbing, not a data error).
    #[must_use]
    pub fn contains(&self, p: &Point) -> bool {
        assert_eq!(p.dim(), self.dim(), "dimension mismatch in Rect::contains");
        self.sides
            .iter()
            .enumerate()
            .all(|(d, side)| side.contains(p[d]))
    }

    /// The intersection of two rectangles.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    #[must_use]
    pub fn intersect(&self, other: &Rect) -> Rect {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dimension mismatch in Rect::intersect"
        );
        let sides = self
            .sides
            .iter()
            .zip(&other.sides)
            .map(|(a, b)| a.intersect(*b))
            .collect();
        Rect { sides }
    }

    /// `true` if the rectangles share no point.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    #[must_use]
    pub fn is_disjoint(&self, other: &Rect) -> bool {
        self.intersect(other).is_empty()
    }

    /// The point of the rectangle's closure nearest to `p` (coordinates
    /// clamped into each side's closed hull). For `p` inside, returns
    /// `p` itself.
    ///
    /// The clamp is the geometric target used by region routing: the
    /// distance from `p` to its clamp equals the distance from `p` to
    /// the box under any coordinate-wise metric.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch or if the rectangle is empty.
    #[must_use]
    pub fn clamp(&self, p: &Point) -> Point {
        assert_eq!(p.dim(), self.dim(), "dimension mismatch in Rect::clamp");
        assert!(!self.is_empty(), "cannot clamp into an empty rectangle");
        let coords = (0..self.dim())
            .map(|d| {
                let side = self.sides[d];
                // Clamping against ±∞ endpoints leaves the (finite)
                // coordinate unchanged.
                p[d].clamp(side.lo(), side.hi())
            })
            .collect();
        Point::from_validated(coords)
    }

    /// `true` if every point of `other` lies inside `self`.
    ///
    /// Empty rectangles are contained in everything.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dimension mismatch in Rect::contains_rect"
        );
        other.is_empty()
            || self
                .sides
                .iter()
                .zip(&other.sides)
                .all(|(a, b)| a.contains_interval(*b))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        for (i, side) in self.sides.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{side}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(coords: &[f64]) -> Point {
        Point::new(coords.to_vec()).expect("valid point")
    }

    #[test]
    fn full_contains_everything() {
        let r = Rect::full(3);
        assert!(r.contains(&pt(&[0.0, -1e9, 1e9])));
        assert!(!r.is_empty());
    }

    #[test]
    fn empty_rect_contains_nothing() {
        let r = Rect::empty(2);
        assert!(r.is_empty());
        assert!(!r.contains(&pt(&[0.0, 0.0])));
    }

    #[test]
    fn new_rejects_zero_dims() {
        assert!(Rect::new(vec![]).is_err());
    }

    #[test]
    fn orthant_rect_excludes_reference_point() {
        let p = pt(&[1.0, 2.0]);
        for o in Orthant::all(2) {
            let hr = Rect::orthant_of(&p, o);
            assert!(!hr.contains(&p), "orthant rect must exclude p");
        }
    }

    #[test]
    fn orthant_rects_cover_offset_points() {
        let p = pt(&[0.0, 0.0]);
        let q = pt(&[-3.0, 7.0]);
        let o = Orthant::classify(&p, &q).unwrap();
        assert!(Rect::orthant_of(&p, o).contains(&q));
        // ... and only that orthant's rect contains q.
        let covering = Orthant::all(2)
            .filter(|&oo| Rect::orthant_of(&p, oo).contains(&q))
            .count();
        assert_eq!(covering, 1);
    }

    #[test]
    fn orthant_rects_are_pairwise_disjoint() {
        let p = pt(&[1.0, -1.0, 0.5]);
        let rects: Vec<Rect> = Orthant::all(3).map(|o| Rect::orthant_of(&p, o)).collect();
        for i in 0..rects.len() {
            for j in 0..i {
                assert!(
                    rects[i].is_disjoint(&rects[j]),
                    "orthants {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn spanned_open_is_symmetric_and_excludes_corners() {
        let p = pt(&[0.0, 5.0]);
        let q = pt(&[4.0, 1.0]);
        let r1 = Rect::spanned_open(&p, &q).unwrap();
        let r2 = Rect::spanned_open(&q, &p).unwrap();
        assert_eq!(r1, r2);
        assert!(!r1.contains(&p));
        assert!(!r1.contains(&q));
        assert!(r1.contains(&pt(&[2.0, 3.0])));
    }

    #[test]
    fn spanned_open_checks_dimensions() {
        let p = pt(&[0.0]);
        let q = pt(&[0.0, 1.0]);
        assert!(Rect::spanned_open(&p, &q).is_err());
    }

    #[test]
    fn intersect_commutes_and_shrinks() {
        let a = Rect::new(vec![Interval::new(0.0, 10.0), Interval::new(0.0, 10.0)]).unwrap();
        let b = Rect::orthant_of(&pt(&[5.0, 5.0]), Orthant::from_bits(0b11, 2).unwrap());
        let i1 = a.intersect(&b);
        let i2 = b.intersect(&a);
        assert_eq!(i1, i2);
        assert!(a.contains_rect(&i1));
        assert!(b.contains_rect(&i1));
        assert_eq!(i1.side(0).unwrap(), Interval::new(5.0, 10.0));
    }

    #[test]
    fn disjointness_via_single_dimension() {
        let a = Rect::new(vec![Interval::new(0.0, 1.0), Interval::unbounded()]).unwrap();
        let b = Rect::new(vec![Interval::new(1.0, 2.0), Interval::unbounded()]).unwrap();
        assert!(
            a.is_disjoint(&b),
            "open rects touching at a face are disjoint"
        );
    }

    #[test]
    fn contains_rect_handles_empty_and_full() {
        let full = Rect::full(2);
        let empty = Rect::empty(2);
        let a = Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)]).unwrap();
        assert!(full.contains_rect(&a));
        assert!(a.contains_rect(&empty));
        assert!(!a.contains_rect(&full));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn contains_panics_on_dim_mismatch() {
        let _ = Rect::full(2).contains(&pt(&[1.0]));
    }

    #[test]
    fn clamp_projects_onto_the_box() {
        let r = Rect::new(vec![Interval::new(0.0, 10.0), Interval::new(5.0, 6.0)]).unwrap();
        assert_eq!(r.clamp(&pt(&[-3.0, 5.5])).coords(), &[0.0, 5.5]);
        assert_eq!(r.clamp(&pt(&[20.0, 20.0])).coords(), &[10.0, 6.0]);
        // Inside points are fixed points of the clamp.
        let inside = pt(&[4.0, 5.5]);
        assert_eq!(r.clamp(&inside), inside);
    }

    #[test]
    fn clamp_handles_unbounded_sides() {
        let r = Rect::new(vec![Interval::above(5.0), Interval::unbounded()]).unwrap();
        assert_eq!(r.clamp(&pt(&[0.0, -1e9])).coords(), &[5.0, -1e9]);
    }

    #[test]
    #[should_panic(expected = "empty rectangle")]
    fn clamp_rejects_empty_rect() {
        let _ = Rect::empty(2).clamp(&pt(&[0.0, 0.0]));
    }

    #[test]
    fn display_renders_product_and_empty() {
        let a = Rect::new(vec![Interval::new(0.0, 1.0), Interval::unbounded()]).unwrap();
        assert_eq!(a.to_string(), "(0, 1)×(-inf, inf)");
        assert_eq!(Rect::empty(2).to_string(), "∅");
    }
}
