//! Rectangle dominance and per-orthant Pareto frontiers.
//!
//! The §2 simulation selects as overlay neighbours of `P` every candidate
//! `Q` whose spanned rectangle with `P` contains no other candidate (the
//! *empty-rectangle rule*). This module provides both the definition-based
//! test and the equivalent — and much faster — characterisation that this
//! repository proves and property-tests:
//!
//! > `Q` is an empty-rectangle neighbour of `P` **iff** `Q` is
//! > Pareto-minimal within its orthant around `P` under per-dimension
//! > absolute offset.
//!
//! *Why:* a third candidate `R` lies strictly inside the rectangle spanned
//! by `P` and `Q` exactly when, in every dimension, `R` is strictly
//! between them — i.e. `R` sits in the same orthant as `Q` and strictly
//! closer to `P` in **every** dimension ([`rect_dominates`]). Hence
//! "rectangle non-empty" ⇔ "dominated within the orthant".
//!
//! The frontier view also explains why the §2 partitioner is complete at
//! equilibrium: any non-empty orthant of any zone contains at least one
//! frontier point (take a candidate minimising the number of others in its
//! spanned rectangle), so a peer always has an overlay neighbour to
//! delegate each populated region to.

use crate::{Orthant, Point};

/// `true` if `a` *rect-dominates* `b` relative to reference `p`: `a` lies
/// strictly inside the open rectangle spanned by `p` and `b`.
///
/// Equivalently (under per-dimension distinctness): `a` is in the same
/// orthant of `p` as `b` and strictly closer to `p` in every dimension.
///
/// # Panics
///
/// Panics on dimensionality mismatch (debug builds).
#[must_use]
pub fn rect_dominates(p: &Point, a: &Point, b: &Point) -> bool {
    debug_assert_eq!(p.dim(), a.dim());
    debug_assert_eq!(p.dim(), b.dim());
    (0..p.dim()).all(|d| {
        let lo = p[d].min(b[d]);
        let hi = p[d].max(b[d]);
        lo < a[d] && a[d] < hi
    })
}

/// Indices of the empty-rectangle neighbours of `p` among `candidates`,
/// computed directly from the definition (`O(n²)` rectangle tests).
///
/// `candidates` must not contain `p` itself; callers filter beforehand.
/// Kept as the executable specification for property tests; prefer
/// [`empty_rect_neighbors`] in production code.
#[must_use]
pub fn empty_rect_neighbors_naive<P: AsRef<Point>>(p: &Point, candidates: &[P]) -> Vec<usize> {
    let mut kept = Vec::new();
    'outer: for (qi, q) in candidates.iter().enumerate() {
        for (ri, r) in candidates.iter().enumerate() {
            if ri != qi && rect_dominates(p, r.as_ref(), q.as_ref()) {
                continue 'outer;
            }
        }
        kept.push(qi);
    }
    kept
}

/// Indices of the empty-rectangle neighbours of `p` among `candidates`,
/// computed as per-orthant Pareto frontiers.
///
/// Candidates are grouped by orthant; within each orthant they are
/// processed in ascending L1 distance, and a candidate is kept iff no
/// already-kept candidate rect-dominates it. Dominators are strictly
/// closer in every dimension (hence in L1), and domination is transitive,
/// so checking only kept candidates is sufficient. Complexity is
/// `O(n log n + n · f)` where `f` is the frontier size.
///
/// `candidates` must not contain `p` itself and must respect the
/// per-dimension distinctness assumption (orthant classification is then
/// total; coordinate collisions with `p` fall back to the naive test for
/// robustness).
#[must_use]
pub fn empty_rect_neighbors<P: AsRef<Point>>(p: &Point, candidates: &[P]) -> Vec<usize> {
    let dim = p.dim();
    let mut by_orthant: Vec<Vec<usize>> = vec![Vec::new(); Orthant::count(dim)];
    for (i, q) in candidates.iter().enumerate() {
        match Orthant::classify(p, q.as_ref()) {
            Ok(o) => by_orthant[o.index()].push(i),
            // Distinctness violated: fall back to the specification.
            Err(_) => return empty_rect_neighbors_naive(p, candidates),
        }
    }

    let l1 = |q: &Point| -> f64 { (0..dim).map(|d| (q[d] - p[d]).abs()).sum() };

    let mut kept = Vec::new();
    for group in &mut by_orthant {
        group.sort_by(|&a, &b| {
            l1(candidates[a].as_ref())
                .total_cmp(&l1(candidates[b].as_ref()))
                .then(a.cmp(&b))
        });
        let mut frontier: Vec<usize> = Vec::new();
        for &qi in group.iter() {
            let dominated = frontier
                .iter()
                .any(|&ri| rect_dominates(p, candidates[ri].as_ref(), candidates[qi].as_ref()));
            if !dominated {
                frontier.push(qi);
            }
        }
        kept.extend(frontier);
    }
    kept.sort_unstable();
    kept
}

/// Groups candidate indices by the orthant they occupy around `p`.
///
/// Returns a dense table of `2^D` buckets indexed by
/// [`Orthant::index`]. Candidates colliding with `p` in some coordinate
/// are returned separately in the second component (they belong to no
/// orthant; under the paper's assumptions this list is empty).
#[must_use]
pub fn group_by_orthant<P: AsRef<Point>>(
    p: &Point,
    candidates: &[P],
) -> (Vec<Vec<usize>>, Vec<usize>) {
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); Orthant::count(p.dim())];
    let mut colliding = Vec::new();
    for (i, q) in candidates.iter().enumerate() {
        match Orthant::classify(p, q.as_ref()) {
            Ok(o) => buckets[o.index()].push(i),
            Err(_) => colliding.push(i),
        }
    }
    (buckets, colliding)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(coords: &[f64]) -> Point {
        Point::new(coords.to_vec()).expect("valid point")
    }

    #[test]
    fn domination_requires_every_dimension() {
        let p = pt(&[0.0, 0.0]);
        let b = pt(&[4.0, 4.0]);
        assert!(rect_dominates(&p, &pt(&[1.0, 2.0]), &b));
        // Closer in x but farther in y: not dominating.
        assert!(!rect_dominates(&p, &pt(&[1.0, 5.0]), &b));
        // Different orthant: not dominating.
        assert!(!rect_dominates(&p, &pt(&[-1.0, 2.0]), &b));
    }

    #[test]
    fn domination_is_irreflexive_on_distinct_points() {
        let p = pt(&[0.0, 0.0]);
        let a = pt(&[1.0, 1.0]);
        assert!(!rect_dominates(&p, &a, &a));
    }

    #[test]
    fn naive_keeps_all_in_general_position() {
        // Three points in three different orthants: all kept.
        let p = pt(&[0.0, 0.0]);
        let cands = vec![pt(&[1.0, 2.0]), pt(&[-1.0, 3.0]), pt(&[2.0, -1.0])];
        assert_eq!(empty_rect_neighbors_naive(&p, &cands), vec![0, 1, 2]);
    }

    #[test]
    fn naive_drops_shadowed_point() {
        let p = pt(&[0.0, 0.0]);
        // (3,3) is shadowed by (1,1); (1,1) survives.
        let cands = vec![pt(&[3.0, 3.0]), pt(&[1.0, 1.0])];
        assert_eq!(empty_rect_neighbors_naive(&p, &cands), vec![1]);
    }

    #[test]
    fn staircase_points_all_survive() {
        // Pareto staircase in the first quadrant: nobody dominates anybody.
        let p = pt(&[0.0, 0.0]);
        let cands = vec![
            pt(&[1.0, 8.0]),
            pt(&[2.0, 5.0]),
            pt(&[4.0, 3.0]),
            pt(&[7.0, 1.0]),
        ];
        let fast = empty_rect_neighbors(&p, &cands);
        assert_eq!(fast, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fast_matches_naive_on_fixed_example() {
        let p = pt(&[5.0, 5.0]);
        let cands = vec![
            pt(&[6.0, 6.5]),
            pt(&[8.0, 9.0]), // dominated by (6, 6.5)
            pt(&[6.5, 4.0]),
            pt(&[9.0, 3.0]), // NOT dominated by (6.5, 4): 3 < 4 in y
            pt(&[1.0, 1.0]),
            pt(&[2.0, 2.0]), // dominated by ... nothing: (1,1) is farther
            pt(&[0.0, 0.0]), // dominated by (1,1) and (2,2)
        ];
        let mut naive = empty_rect_neighbors_naive(&p, &cands);
        naive.sort_unstable();
        assert_eq!(empty_rect_neighbors(&p, &cands), naive);
    }

    #[test]
    fn fast_falls_back_on_coordinate_collision() {
        let p = pt(&[0.0, 0.0]);
        // Second candidate shares y with p: frontier path would error,
        // must still agree with the naive specification.
        let cands = vec![pt(&[1.0, 1.0]), pt(&[2.0, 0.0])];
        let mut naive = empty_rect_neighbors_naive(&p, &cands);
        naive.sort_unstable();
        let mut fast = empty_rect_neighbors(&p, &cands);
        fast.sort_unstable();
        assert_eq!(fast, naive);
    }

    #[test]
    fn group_by_orthant_partitions_candidates() {
        let p = pt(&[0.0, 0.0]);
        let cands = vec![pt(&[1.0, 1.0]), pt(&[-1.0, 2.0]), pt(&[3.0, -4.0])];
        let (buckets, colliding) = group_by_orthant(&p, &cands);
        assert!(colliding.is_empty());
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        assert_eq!(buckets[0b11], vec![0]); // (+,+)
        assert_eq!(buckets[0b10], vec![1]); // (-,+)
        assert_eq!(buckets[0b01], vec![2]); // (+,-)
    }

    #[test]
    fn group_by_orthant_reports_collisions() {
        let p = pt(&[0.0, 0.0]);
        let cands = vec![pt(&[0.0, 1.0])];
        let (_, colliding) = group_by_orthant(&p, &cands);
        assert_eq!(colliding, vec![0]);
    }

    #[test]
    fn empty_candidates_give_empty_result() {
        let p = pt(&[0.0, 0.0]);
        let none: [Point; 0] = [];
        assert!(empty_rect_neighbors(&p, &none).is_empty());
        assert!(empty_rect_neighbors_naive(&p, &none).is_empty());
    }

    #[test]
    fn three_dimensional_domination() {
        let p = pt(&[0.0, 0.0, 0.0]);
        let cands = vec![
            pt(&[1.0, 1.0, 1.0]),
            pt(&[2.0, 2.0, 2.0]), // dominated
            pt(&[2.0, 2.0, 0.5]), // closer in z: kept
        ];
        assert_eq!(empty_rect_neighbors(&p, &cands), vec![0, 2]);
    }
}
