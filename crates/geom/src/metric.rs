//! Distance functions over virtual coordinates.
//!
//! The paper's Hyperplanes neighbour-selection method ranks candidates per
//! region "using a distance function"; the §2 simulation sorts neighbours
//! by **L1** distance. The [`Metric`] trait keeps the choice pluggable;
//! [`MetricKind`] is a plain-data configuration handle for experiment
//! configs.

use std::fmt;

use crate::Point;

/// A distance function over same-dimensional points.
///
/// Implementations must be symmetric and non-negative; the selection
/// algorithms additionally rely on `dist(p, p) == 0`.
///
/// # Example
///
/// ```
/// use geocast_geom::{Point, metric::{Metric, L1, L2, LInf}};
///
/// # fn main() -> Result<(), geocast_geom::GeomError> {
/// let a = Point::new(vec![0.0, 0.0])?;
/// let b = Point::new(vec![3.0, 4.0])?;
/// assert_eq!(L1.dist(&a, &b), 7.0);
/// assert_eq!(L2.dist(&a, &b), 5.0);
/// assert_eq!(LInf.dist(&a, &b), 4.0);
/// # Ok(())
/// # }
/// ```
pub trait Metric {
    /// The distance between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Implementations may panic on dimensionality mismatch; callers in
    /// this workspace always pass validated same-dimensional points.
    fn dist(&self, a: &Point, b: &Point) -> f64;
}

/// Manhattan distance (the paper's choice for sorting neighbours in §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct L1;

impl Metric for L1 {
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        a.coords()
            .iter()
            .zip(b.coords())
            .map(|(x, y)| (x - y).abs())
            .sum()
    }
}

/// Euclidean distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct L2;

impl Metric for L2 {
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        a.coords()
            .iter()
            .zip(b.coords())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

/// Chebyshev (maximum-coordinate) distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LInf;

impl Metric for LInf {
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        a.coords()
            .iter()
            .zip(b.coords())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

/// Plain-data selector for a metric, convenient in experiment configs.
///
/// # Example
///
/// ```
/// use geocast_geom::{Point, MetricKind, Metric};
///
/// # fn main() -> Result<(), geocast_geom::GeomError> {
/// let a = Point::new(vec![0.0])?;
/// let b = Point::new(vec![2.0])?;
/// assert_eq!(MetricKind::L1.dist(&a, &b), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricKind {
    /// Manhattan distance (paper default).
    #[default]
    L1,
    /// Euclidean distance.
    L2,
    /// Chebyshev distance.
    LInf,
}

impl Metric for MetricKind {
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        match self {
            MetricKind::L1 => L1.dist(a, b),
            MetricKind::L2 => L2.dist(a, b),
            MetricKind::LInf => LInf.dist(a, b),
        }
    }
}

impl MetricKind {
    /// The metric's norm of a raw offset vector — `dist(0, offsets)`
    /// without building points. Spatial-index pruning bounds are
    /// per-dimension gap vectors, not point pairs, so they need the norm
    /// directly.
    #[must_use]
    pub fn norm(&self, offsets: &[f64]) -> f64 {
        match self {
            MetricKind::L1 => offsets.iter().map(|x| x.abs()).sum(),
            MetricKind::L2 => offsets.iter().map(|x| x * x).sum::<f64>().sqrt(),
            MetricKind::LInf => offsets.iter().map(|x| x.abs()).fold(0.0, f64::max),
        }
    }

    /// The norm of the offset vector between two raw coordinate slices.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on length mismatch.
    #[must_use]
    pub fn dist_coords(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            MetricKind::L1 => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            MetricKind::L2 => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            MetricKind::LInf => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricKind::L1 => write!(f, "L1"),
            MetricKind::L2 => write!(f, "L2"),
            MetricKind::LInf => write!(f, "Linf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(coords: &[f64]) -> Point {
        Point::new(coords.to_vec()).expect("valid point")
    }

    #[test]
    fn l1_sums_absolute_differences() {
        assert_eq!(L1.dist(&pt(&[1.0, 2.0]), &pt(&[4.0, -2.0])), 7.0);
    }

    #[test]
    fn l2_is_euclidean() {
        assert_eq!(L2.dist(&pt(&[0.0, 0.0]), &pt(&[3.0, 4.0])), 5.0);
    }

    #[test]
    fn linf_takes_max_component() {
        assert_eq!(LInf.dist(&pt(&[0.0, 0.0]), &pt(&[3.0, -4.0])), 4.0);
    }

    #[test]
    fn all_metrics_are_symmetric_and_zero_on_identity() {
        let a = pt(&[1.5, -2.5, 3.0]);
        let b = pt(&[0.0, 4.0, -1.0]);
        for kind in [MetricKind::L1, MetricKind::L2, MetricKind::LInf] {
            assert_eq!(kind.dist(&a, &b), kind.dist(&b, &a), "{kind} not symmetric");
            assert_eq!(kind.dist(&a, &a), 0.0, "{kind} not zero on identity");
        }
    }

    #[test]
    fn metric_ordering_l1_ge_l2_ge_linf() {
        let a = pt(&[0.2, -0.7, 1.1]);
        let b = pt(&[-1.0, 0.3, 2.2]);
        let l1 = MetricKind::L1.dist(&a, &b);
        let l2 = MetricKind::L2.dist(&a, &b);
        let li = MetricKind::LInf.dist(&a, &b);
        assert!(
            l1 >= l2 && l2 >= li,
            "norm ordering violated: {l1} {l2} {li}"
        );
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(MetricKind::L1.to_string(), "L1");
        assert_eq!(MetricKind::L2.to_string(), "L2");
        assert_eq!(MetricKind::LInf.to_string(), "Linf");
    }

    #[test]
    fn default_kind_is_l1() {
        assert_eq!(MetricKind::default(), MetricKind::L1);
    }

    #[test]
    fn norm_and_dist_coords_agree_with_dist() {
        let a = pt(&[1.5, -2.5, 3.0]);
        let b = pt(&[0.0, 4.0, -1.0]);
        let offsets: Vec<f64> = a
            .coords()
            .iter()
            .zip(b.coords())
            .map(|(x, y)| x - y)
            .collect();
        for kind in [MetricKind::L1, MetricKind::L2, MetricKind::LInf] {
            assert_eq!(kind.norm(&offsets), kind.dist(&a, &b), "{kind} norm");
            assert_eq!(
                kind.dist_coords(a.coords(), b.coords()),
                kind.dist(&a, &b),
                "{kind} dist_coords"
            );
        }
        assert_eq!(MetricKind::L1.norm(&[]), 0.0);
    }
}
