//! D-dimensional virtual-coordinate geometry for geocast.
//!
//! This crate is the geometric substrate of the geocast project, a
//! reproduction of *"Decentralized Construction of Multicast Trees Embedded
//! into P2P Overlay Networks based on Virtual Geometric Coordinates"*
//! (Andreica et al., PODC 2010).
//!
//! Peers in a geocast overlay identify themselves with self-generated
//! points in a `D`-dimensional space whose coordinates lie in `[0, VMAX]`
//! and are **distinct within each dimension**. Everything the overlay and
//! the multicast-tree construction need from geometry lives here:
//!
//! * [`Point`] — validated `D`-dimensional coordinates.
//! * [`Interval`] / [`Rect`] — open axis-aligned boxes with unbounded ends,
//!   the representation of the paper's *responsibility zones*.
//! * [`Orthant`] — the `2^D` sign regions around a peer, used both by the
//!   Orthogonal-Hyperplanes neighbour selection and by the space
//!   partitioner.
//! * [`Arrangement`] — general hyperplane arrangements through the origin
//!   (the paper's generic "Hyperplanes" neighbour-selection method).
//! * [`Metric`] — pluggable distance functions (L1 is the paper's choice).
//! * [`dominance`] — per-orthant Pareto frontiers, the efficient
//!   characterisation of the paper's empty-rectangle neighbour rule.
//! * [`index::GridIndex`] — a uniform-grid spatial index answering the
//!   per-orthant nearest-neighbour and empty-rectangle queries exactly,
//!   the engine behind figure-scale overlay construction.
//! * [`gen`] — reproducible workload generators (uniform, clustered, grid)
//!   that guarantee per-dimension distinctness.
//!
//! # Example
//!
//! ```
//! use geocast_geom::{Point, Rect, Orthant, metric::{Metric, L1}};
//!
//! # fn main() -> Result<(), geocast_geom::GeomError> {
//! let p = Point::new(vec![2.0, 3.0])?;
//! let q = Point::new(vec![5.0, 1.0])?;
//!
//! // q lies in p's (+x, -y) orthant.
//! let orthant = Orthant::classify(&p, &q)?;
//! assert_eq!(orthant.signs(2), vec![1, -1]);
//!
//! // The open rectangle of that orthant contains q but not p.
//! let zone = Rect::orthant_of(&p, orthant);
//! assert!(zone.contains(&q));
//! assert!(!zone.contains(&p));
//!
//! assert_eq!(L1.dist(&p, &q), 5.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod interval;
mod orthant;
mod point;
mod rect;

pub mod arrangement;
pub mod dominance;
pub mod gen;
pub mod index;
pub mod metric;

pub use arrangement::{Arrangement, RegionKey};
pub use error::GeomError;
pub use index::GridIndex;
pub use interval::Interval;
pub use metric::{LInf, Metric, MetricKind, L1, L2};
pub use orthant::{Orthant, MAX_ORTHANT_DIM};
pub use point::{Point, PointSet};
pub use rect::Rect;

/// Default upper bound of the virtual coordinate space used by the paper
/// (`VMAX`). Coordinates are drawn from `[0, VMAX]`.
pub const VMAX: f64 = 1000.0;
