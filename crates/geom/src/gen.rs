//! Reproducible workload generators.
//!
//! All generators take an explicit seed and guarantee the paper's standing
//! assumption that coordinates are **distinct within every dimension**
//! (collisions are re-drawn; with `f64` coordinates they are already
//! astronomically unlikely, but the guarantee is load-bearing for the
//! orthant classification, so it is enforced rather than assumed).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Point, PointSet, VMAX};

/// Draws one coordinate that is distinct (as a bit pattern) from every
/// value already used in its dimension.
// lint:allow(D001, reason = "bit-pattern membership set for rejection sampling; queried only, never iterated, so no order reaches the replay stream")
fn draw_distinct(rng: &mut StdRng, lo: f64, hi: f64, used: &mut HashSet<u64>) -> f64 {
    loop {
        let v: f64 = rng.random_range(lo..hi);
        if used.insert(v.to_bits()) {
            return v;
        }
    }
}

/// `n` points drawn uniformly from `[0, vmax)^dim` with per-dimension
/// distinct coordinates — the workload of every experiment in the paper.
///
/// # Example
///
/// ```
/// use geocast_geom::gen::uniform_points;
///
/// let set = uniform_points(100, 3, 1000.0, 42);
/// assert_eq!(set.len(), 100);
/// assert_eq!(set.dim(), 3);
/// set.ensure_distinct().expect("generators guarantee distinctness");
/// ```
///
/// # Panics
///
/// Panics if `dim == 0` or `vmax` is not strictly positive.
#[must_use]
pub fn uniform_points(n: usize, dim: usize, vmax: f64, seed: u64) -> PointSet {
    assert!(dim > 0, "points need at least one dimension");
    assert!(vmax > 0.0, "vmax must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    // lint:allow(D001, reason = "bit-pattern membership set for rejection sampling; queried only, never iterated, so no order reaches the replay stream")
    let mut used: Vec<HashSet<u64>> = vec![HashSet::with_capacity(n); dim];
    let points = (0..n)
        .map(|_| {
            let coords = (0..dim)
                .map(|d| draw_distinct(&mut rng, 0.0, vmax, &mut used[d]))
                .collect();
            Point::from_validated(coords)
        })
        .collect();
    PointSet::new(points).expect("generated points share dimensionality")
}

/// Like [`uniform_points`] with the paper's default coordinate bound
/// [`VMAX`].
#[must_use]
pub fn uniform_points_default(n: usize, dim: usize, seed: u64) -> PointSet {
    uniform_points(n, dim, VMAX, seed)
}

/// `n` points grouped around `clusters` uniformly-placed centres with the
/// given per-coordinate `spread`, clamped to `[0, vmax)` and re-drawn
/// until distinct.
///
/// Clustered identifiers model peers that self-generate coordinates from
/// correlated sources (e.g. landmark-based latency embeddings); they
/// stress the selection methods' behaviour away from the uniform
/// assumption.
///
/// # Panics
///
/// Panics if `dim == 0`, `clusters == 0`, `vmax <= 0`, or `spread < 0`.
#[must_use]
pub fn clustered_points(
    n: usize,
    dim: usize,
    vmax: f64,
    clusters: usize,
    spread: f64,
    seed: u64,
) -> PointSet {
    assert!(dim > 0, "points need at least one dimension");
    assert!(clusters > 0, "need at least one cluster");
    assert!(vmax > 0.0, "vmax must be positive");
    assert!(spread >= 0.0, "spread must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.random_range(0.0..vmax)).collect())
        .collect();
    // lint:allow(D001, reason = "bit-pattern membership set for rejection sampling; queried only, never iterated, so no order reaches the replay stream")
    let mut used: Vec<HashSet<u64>> = vec![HashSet::with_capacity(n); dim];
    let points = (0..n)
        .map(|i| {
            let centre = &centres[i % clusters];
            let coords = (0..dim)
                .map(|d| loop {
                    let offset = rng.random_range(-spread..=spread);
                    let v = (centre[d] + offset).clamp(0.0, vmax - f64::EPSILON * vmax);
                    if used[d].insert(v.to_bits()) {
                        break v;
                    }
                })
                .collect();
            Point::from_validated(coords)
        })
        .collect();
    PointSet::new(points).expect("generated points share dimensionality")
}

/// A jittered grid of `side^dim` points spanning `[0, vmax)`:
/// regular structure (worst case for space partitioning balance) with
/// just enough per-coordinate jitter to preserve distinctness.
///
/// # Panics
///
/// Panics if `dim == 0`, `side == 0`, or `vmax <= 0`.
#[must_use]
pub fn grid_points_jittered(side: usize, dim: usize, vmax: f64, seed: u64) -> PointSet {
    assert!(dim > 0, "points need at least one dimension");
    assert!(side > 0, "grid side must be positive");
    assert!(vmax > 0.0, "vmax must be positive");
    let n = side.pow(dim as u32);
    let cell = vmax / side as f64;
    let jitter = cell / 1000.0;
    let mut rng = StdRng::seed_from_u64(seed);
    // lint:allow(D001, reason = "bit-pattern membership set for rejection sampling; queried only, never iterated, so no order reaches the replay stream")
    let mut used: Vec<HashSet<u64>> = vec![HashSet::with_capacity(n); dim];
    let points = (0..n)
        .map(|mut idx| {
            let coords = (0..dim)
                .map(|d| {
                    let step = idx % side;
                    idx /= side;
                    loop {
                        let v = (step as f64 + 0.5) * cell + rng.random_range(-jitter..jitter);
                        if used[d].insert(v.to_bits()) {
                            break v;
                        }
                    }
                })
                .collect();
            Point::from_validated(coords)
        })
        .collect();
    PointSet::new(points).expect("generated points share dimensionality")
}

/// `n` distinct departure times `T(*)` drawn uniformly from
/// `(0, max_t)` — the §3 lifetime workload (cloud lease expiries, sensor
/// battery depletion times).
///
/// # Panics
///
/// Panics if `max_t` is not strictly positive.
#[must_use]
pub fn lifetimes(n: usize, max_t: f64, seed: u64) -> Vec<f64> {
    assert!(max_t > 0.0, "max_t must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    // lint:allow(D001, reason = "bit-pattern membership set for rejection sampling; queried only, never iterated, so no order reaches the replay stream")
    let mut used = HashSet::with_capacity(n);
    (0..n)
        .map(|_| loop {
            let v: f64 = rng.random_range(f64::MIN_POSITIVE..max_t);
            if used.insert(v.to_bits()) {
                break v;
            }
        })
        .collect()
}

/// Embeds departure times into identifiers per §3 of the paper: the first
/// coordinate of each point is replaced by its `T(*)` value.
///
/// # Panics
///
/// Panics if `times.len() != set.len()` or the set is empty of
/// dimensions.
#[must_use]
pub fn embed_lifetimes(set: &PointSet, times: &[f64]) -> PointSet {
    assert_eq!(
        set.len(),
        times.len(),
        "one departure time per point required"
    );
    let points = set
        .iter()
        .zip(times)
        .map(|(p, &t)| p.with_coord(0, t))
        .collect();
    PointSet::new(points).expect("embedding preserves dimensionality")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_points_are_distinct_and_in_range() {
        let set = uniform_points(500, 4, 100.0, 7);
        assert_eq!(set.len(), 500);
        assert_eq!(set.dim(), 4);
        set.ensure_distinct().unwrap();
        for p in &set {
            for d in 0..4 {
                assert!((0.0..100.0).contains(&p[d]));
            }
        }
    }

    #[test]
    fn uniform_points_are_reproducible_per_seed() {
        let a = uniform_points(50, 2, VMAX, 13);
        let b = uniform_points(50, 2, VMAX, 13);
        let c = uniform_points(50, 2, VMAX, 14);
        assert_eq!(a, b, "same seed must reproduce bit-for-bit");
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn default_variant_uses_vmax() {
        let set = uniform_points_default(10, 2, 1);
        for p in &set {
            assert!(p[0] < VMAX && p[1] < VMAX);
        }
    }

    #[test]
    fn clustered_points_are_distinct() {
        let set = clustered_points(300, 3, 1000.0, 5, 20.0, 99);
        assert_eq!(set.len(), 300);
        set.ensure_distinct().unwrap();
    }

    #[test]
    fn clustered_points_actually_cluster() {
        // With tiny spread, points of the same cluster are much closer to
        // their centre than vmax.
        let set = clustered_points(100, 2, 1000.0, 2, 1.0, 3);
        // Points alternate clusters (i % clusters); consecutive same-cluster
        // points are within 2*spread per coordinate.
        let p0 = &set[0];
        let p2 = &set[2];
        for d in 0..2 {
            assert!((p0[d] - p2[d]).abs() <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn grid_points_have_expected_count_and_distinctness() {
        let set = grid_points_jittered(4, 2, 100.0, 5);
        assert_eq!(set.len(), 16);
        set.ensure_distinct().unwrap();
    }

    #[test]
    fn lifetimes_are_distinct_positive() {
        let ts = lifetimes(1000, 3600.0, 21);
        assert_eq!(ts.len(), 1000);
        let mut sorted = ts.clone();
        sorted.sort_by(f64::total_cmp);
        for w in sorted.windows(2) {
            assert!(w[0] < w[1], "lifetimes must be strictly distinct");
        }
        assert!(ts.iter().all(|&t| t > 0.0 && t < 3600.0));
    }

    #[test]
    fn embed_lifetimes_overwrites_first_coordinate() {
        let set = uniform_points(5, 3, 100.0, 8);
        let ts = lifetimes(5, 50.0, 9);
        let embedded = embed_lifetimes(&set, &ts);
        for (i, p) in embedded.iter().enumerate() {
            assert_eq!(p[0], ts[i]);
            assert_eq!(p[1], set[i][1]);
            assert_eq!(p[2], set[i][2]);
        }
    }

    #[test]
    #[should_panic(expected = "one departure time per point")]
    fn embed_lifetimes_requires_matching_lengths() {
        let set = uniform_points(3, 2, 10.0, 0);
        let _ = embed_lifetimes(&set, &[1.0]);
    }
}
