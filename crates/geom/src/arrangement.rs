//! Hyperplane arrangements through the origin — the paper's generic
//! "Hyperplanes" neighbour-selection machinery.
//!
//! A peer `P` conceptually translates every candidate `Q` so that `P`
//! becomes the origin; a set of `H` hyperplanes through the origin then
//! divides space into regions, and `P` keeps the `K` closest candidates
//! per region. This module provides the arrangement and region
//! classification; the selection logic itself lives in `geocast-overlay`.
//!
//! Three arrangements from the paper are built in:
//!
//! * [`Arrangement::orthogonal`] — the `D` axis planes `x(i) = 0`
//!   (regions = orthants; the *Orthogonal Hyperplanes* method),
//! * [`Arrangement::signed`] — all normals with coefficients in
//!   `{-1, 0, +1}` (from the authors' prior storage architecture),
//! * [`Arrangement::none`] — `H = 0`, a single region (the *K-closest*
//!   method).

use std::fmt;

use crate::{GeomError, Orthant, Point};

/// A hyperplane through the origin, `normal · x = 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperplane {
    normal: Vec<f64>,
}

impl Hyperplane {
    /// Creates a hyperplane from its normal vector.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::ZeroNormal`] for an all-zero normal,
    /// [`GeomError::EmptyPoint`] for an empty one, and
    /// [`GeomError::NonFiniteCoordinate`] for NaN/infinite components.
    pub fn new(normal: Vec<f64>) -> Result<Self, GeomError> {
        if normal.is_empty() {
            return Err(GeomError::EmptyPoint);
        }
        for (dim, &value) in normal.iter().enumerate() {
            if !value.is_finite() {
                return Err(GeomError::NonFiniteCoordinate { dim, value });
            }
        }
        if normal.iter().all(|&c| c == 0.0) {
            return Err(GeomError::ZeroNormal);
        }
        Ok(Hyperplane { normal })
    }

    /// The normal vector.
    #[must_use]
    pub fn normal(&self) -> &[f64] {
        &self.normal
    }

    /// Dimensionality of the ambient space.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.normal.len()
    }

    /// Which side of the plane the **offset** vector lies on: `+1` for a
    /// positive dot product, `-1` for negative, `0` exactly on the plane.
    #[must_use]
    pub fn side(&self, offset: &[f64]) -> i8 {
        debug_assert_eq!(offset.len(), self.normal.len());
        let dot: f64 = self.normal.iter().zip(offset).map(|(n, x)| n * x).sum();
        if dot > 0.0 {
            1
        } else if dot < 0.0 {
            -1
        } else {
            0
        }
    }
}

/// Identifier of a region of a hyperplane arrangement: the vector of
/// sides (`+1`/`-1`) relative to each plane.
///
/// Points lying exactly on a plane are deterministically assigned to the
/// positive side, so region classification is total. (Per-dimension
/// distinctness rules this out for the orthogonal arrangement; oblique
/// arrangements such as [`Arrangement::signed`] can still produce exact
/// hits.)
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionKey(Vec<i8>);

impl RegionKey {
    /// The per-plane sides defining the region.
    #[must_use]
    pub fn sides(&self) -> &[i8] {
        &self.0
    }
}

impl fmt::Display for RegionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region[")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", if *s >= 0 { '+' } else { '-' })?;
        }
        write!(f, "]")
    }
}

/// A set of hyperplanes through the origin dividing space into regions.
///
/// # Example
///
/// ```
/// use geocast_geom::{Arrangement, Point};
///
/// # fn main() -> Result<(), geocast_geom::GeomError> {
/// let arr = Arrangement::orthogonal(2);
/// let p = Point::new(vec![0.0, 0.0])?;
/// let a = Point::new(vec![1.0, 1.0])?;
/// let b = Point::new(vec![-1.0, 1.0])?;
/// assert_ne!(arr.classify(&p, &a), arr.classify(&p, &b));
/// assert_eq!(arr.max_regions(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Arrangement {
    planes: Vec<Hyperplane>,
    dim: usize,
}

impl Arrangement {
    /// Builds an arrangement from explicit hyperplanes.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DimensionMismatch`] if the planes disagree
    /// with `dim`.
    pub fn new(dim: usize, planes: Vec<Hyperplane>) -> Result<Self, GeomError> {
        for plane in &planes {
            if plane.dim() != dim {
                return Err(GeomError::DimensionMismatch {
                    left: dim,
                    right: plane.dim(),
                });
            }
        }
        Ok(Arrangement { planes, dim })
    }

    /// The *Orthogonal Hyperplanes* arrangement: the `D` planes
    /// `x(i) = 0`. Its regions are exactly the [`Orthant`]s.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn orthogonal(dim: usize) -> Self {
        assert!(dim > 0, "arrangements require at least one dimension");
        let planes = (0..dim)
            .map(|d| {
                let mut normal = vec![0.0; dim];
                normal[d] = 1.0;
                Hyperplane { normal }
            })
            .collect();
        Arrangement { planes, dim }
    }

    /// The signed-coefficient arrangement: one plane per normal
    /// `a ∈ {-1, 0, +1}^D` (excluding zero, deduplicated up to sign by
    /// requiring the first non-zero coefficient to be `+1`), i.e.
    /// `(3^D - 1) / 2` planes.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `dim > 12` (3^12 ≈ 531k planes is already
    /// far past anything useful; the guard catches accidental
    /// misconfiguration).
    #[must_use]
    pub fn signed(dim: usize) -> Self {
        assert!(dim > 0, "arrangements require at least one dimension");
        assert!(dim <= 12, "signed arrangement would have 3^{dim}/2 planes");
        let mut planes = Vec::new();
        let total = 3usize.pow(dim as u32);
        for code in 1..total {
            let mut digits = Vec::with_capacity(dim);
            let mut rest = code;
            for _ in 0..dim {
                digits.push((rest % 3) as i8 - 1); // -1, 0, +1
                rest /= 3;
            }
            // Keep one representative per ± pair: first non-zero digit +1.
            match digits.iter().find(|&&d| d != 0) {
                Some(1) => {}
                _ => continue,
            }
            planes.push(Hyperplane {
                normal: digits.iter().map(|&d| f64::from(d)).collect(),
            });
        }
        Arrangement { planes, dim }
    }

    /// The empty arrangement (`H = 0`): a single region containing all
    /// candidates, yielding the paper's *K-closest* method.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn none(dim: usize) -> Self {
        assert!(dim > 0, "arrangements require at least one dimension");
        Arrangement {
            planes: Vec::new(),
            dim,
        }
    }

    /// Dimensionality of the ambient space.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of hyperplanes `H`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.planes.len()
    }

    /// `true` if the arrangement has no planes (single region).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.planes.is_empty()
    }

    /// The hyperplanes.
    #[must_use]
    pub fn planes(&self) -> &[Hyperplane] {
        &self.planes
    }

    /// Upper bound on the number of distinct region keys (`2^H`, saturating).
    #[must_use]
    pub fn max_regions(&self) -> usize {
        1usize
            .checked_shl(self.planes.len() as u32)
            .unwrap_or(usize::MAX)
    }

    /// `true` if this arrangement is exactly the orthogonal one for its
    /// dimensionality — `D` axis planes `x(i) = 0` in axis order, whose
    /// regions are the orthants. Index-accelerated selection paths use
    /// this to recognise when per-orthant queries apply.
    #[must_use]
    pub fn is_orthogonal(&self) -> bool {
        self.planes.len() == self.dim
            && self.planes.iter().enumerate().all(|(d, plane)| {
                plane
                    .normal
                    .iter()
                    .enumerate()
                    .all(|(j, &c)| if j == d { c == 1.0 } else { c == 0.0 })
            })
    }

    /// Classifies `q` into a region relative to reference point `p`
    /// (conceptually translating `p` to the origin, as the paper
    /// describes).
    ///
    /// Points exactly on a plane are assigned to its positive side, so the
    /// classification is total and deterministic.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch with the arrangement.
    #[must_use]
    pub fn classify(&self, p: &Point, q: &Point) -> RegionKey {
        assert_eq!(p.dim(), self.dim, "reference point dimension mismatch");
        assert_eq!(q.dim(), self.dim, "candidate point dimension mismatch");
        let offset: Vec<f64> = (0..self.dim).map(|d| q[d] - p[d]).collect();
        RegionKey(
            self.planes
                .iter()
                .map(|plane| if plane.side(&offset) >= 0 { 1 } else { -1 })
                .collect(),
        )
    }
}

/// Converts an orthant into the region key produced by the orthogonal
/// arrangement of the same dimensionality, enabling cross-validation of
/// the two classification paths.
#[must_use]
pub fn orthant_region_key(orthant: Orthant, dim: usize) -> RegionKey {
    RegionKey(orthant.signs(dim))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(coords: &[f64]) -> Point {
        Point::new(coords.to_vec()).expect("valid point")
    }

    #[test]
    fn hyperplane_rejects_bad_normals() {
        assert_eq!(Hyperplane::new(vec![]), Err(GeomError::EmptyPoint));
        assert_eq!(Hyperplane::new(vec![0.0, 0.0]), Err(GeomError::ZeroNormal));
        assert!(matches!(
            Hyperplane::new(vec![f64::NAN]),
            Err(GeomError::NonFiniteCoordinate { .. })
        ));
    }

    #[test]
    fn hyperplane_side_signs() {
        let h = Hyperplane::new(vec![1.0, -1.0]).unwrap();
        assert_eq!(h.side(&[2.0, 1.0]), 1);
        assert_eq!(h.side(&[1.0, 2.0]), -1);
        assert_eq!(h.side(&[3.0, 3.0]), 0);
    }

    #[test]
    fn orthogonal_matches_orthant_classification() {
        let arr = Arrangement::orthogonal(3);
        let p = pt(&[1.0, 2.0, 3.0]);
        let q = pt(&[0.5, 7.0, 2.0]);
        let via_arrangement = arr.classify(&p, &q);
        let via_orthant = orthant_region_key(Orthant::classify(&p, &q).unwrap(), 3);
        assert_eq!(via_arrangement, via_orthant);
    }

    #[test]
    fn signed_has_expected_plane_count() {
        // (3^D - 1) / 2 planes.
        assert_eq!(Arrangement::signed(1).len(), 1);
        assert_eq!(Arrangement::signed(2).len(), 4);
        assert_eq!(Arrangement::signed(3).len(), 13);
    }

    #[test]
    fn signed_first_nonzero_coefficient_is_positive() {
        for plane in Arrangement::signed(3).planes() {
            let first = plane.normal().iter().find(|&&c| c != 0.0).copied();
            assert_eq!(first, Some(1.0));
        }
    }

    #[test]
    fn signed_contains_orthogonal_planes() {
        let signed = Arrangement::signed(2);
        let has_x = signed.planes().iter().any(|p| p.normal() == [1.0, 0.0]);
        let has_y = signed.planes().iter().any(|p| p.normal() == [0.0, 1.0]);
        assert!(has_x && has_y);
    }

    #[test]
    fn none_classifies_everything_together() {
        let arr = Arrangement::none(4);
        assert!(arr.is_empty());
        assert_eq!(arr.max_regions(), 1);
        let p = pt(&[0.0, 0.0, 0.0, 0.0]);
        let a = pt(&[1.0, 2.0, 3.0, 4.0]);
        let b = pt(&[-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(arr.classify(&p, &a), arr.classify(&p, &b));
    }

    #[test]
    fn on_plane_points_go_to_positive_side() {
        let arr = Arrangement::signed(2);
        let p = pt(&[0.0, 0.0]);
        // (1,1) lies exactly on the plane x - y = 0.
        let q = pt(&[1.0, 1.0]);
        let key = arr.classify(&p, &q);
        assert!(key.sides().iter().all(|&s| s == 1 || s == -1));
    }

    #[test]
    fn new_validates_plane_dims() {
        let h = Hyperplane::new(vec![1.0, 0.0]).unwrap();
        assert!(Arrangement::new(3, vec![h]).is_err());
    }

    #[test]
    fn signed_2d_produces_eight_regions() {
        let arr = Arrangement::signed(2);
        let p = pt(&[0.0, 0.0]);
        // Eight points, one per 45° sector.
        let probes = [
            [2.0, 1.0],
            [1.0, 2.0],
            [-1.0, 2.0],
            [-2.0, 1.0],
            [-2.0, -1.0],
            [-1.0, -2.0],
            [1.0, -2.0],
            [2.0, -1.0],
        ];
        let keys: std::collections::BTreeSet<RegionKey> =
            probes.iter().map(|c| arr.classify(&p, &pt(c))).collect();
        assert_eq!(
            keys.len(),
            8,
            "2D signed arrangement must separate the 8 sectors"
        );
    }

    #[test]
    fn region_key_display() {
        let arr = Arrangement::orthogonal(2);
        let key = arr.classify(&pt(&[0.0, 0.0]), &pt(&[1.0, -1.0]));
        assert_eq!(key.to_string(), "region[+,-]");
    }
}
