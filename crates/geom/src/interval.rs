use std::fmt;

/// An **open** interval `(lo, hi)` over the reals, with `±∞` endpoints
/// permitted.
///
/// Responsibility zones in the paper are strict interiors of axis-aligned
/// hyper-rectangles; each side of such a rectangle is an `Interval`.
/// Because peer coordinates are distinct within every dimension, open
/// versus closed boundaries never create membership ambiguity for peer
/// coordinates, and open intervals compose exactly under intersection.
///
/// The empty interval is represented canonically: any construction where
/// `lo >= hi` yields [`Interval::EMPTY`].
///
/// # Example
///
/// ```
/// use geocast_geom::Interval;
///
/// let i = Interval::new(1.0, 5.0);
/// assert!(i.contains(3.0));
/// assert!(!i.contains(1.0)); // open at both ends
///
/// let everything = Interval::unbounded();
/// assert_eq!(everything.intersect(i), i);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The canonical empty interval.
    pub const EMPTY: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// Creates the open interval `(lo, hi)`.
    ///
    /// If `lo >= hi` the result is the canonical empty interval. `lo` may
    /// be `-∞` and `hi` may be `+∞`; NaN endpoints yield the empty
    /// interval (NaN comparisons are false, so `lo >= hi` fails — we check
    /// explicitly).
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo.is_nan() || hi.is_nan() || lo >= hi {
            Interval::EMPTY
        } else {
            Interval { lo, hi }
        }
    }

    /// The interval `(-∞, +∞)`.
    #[must_use]
    pub fn unbounded() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// The interval `(-∞, hi)`.
    #[must_use]
    pub fn below(hi: f64) -> Self {
        Interval::new(f64::NEG_INFINITY, hi)
    }

    /// The interval `(lo, +∞)`.
    #[must_use]
    pub fn above(lo: f64) -> Self {
        Interval::new(lo, f64::INFINITY)
    }

    /// Lower endpoint (exclusive); `-∞` when unbounded below.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint (exclusive); `+∞` when unbounded above.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// `true` if the interval contains no real number.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// `true` if `x` lies strictly between the endpoints.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        self.lo < x && x < self.hi
    }

    /// The intersection of two open intervals (also open).
    #[must_use]
    pub fn intersect(&self, other: Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// `true` if the two intervals share no point.
    #[must_use]
    pub fn is_disjoint(&self, other: Interval) -> bool {
        self.intersect(other).is_empty()
    }

    /// `true` if every point of `other` lies in `self`.
    ///
    /// The empty interval is contained in everything.
    #[must_use]
    pub fn contains_interval(&self, other: Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Length of the interval; `0` when empty, `+∞` when unbounded.
    #[must_use]
    pub fn length(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }
}

impl Default for Interval {
    /// The default interval is unbounded, matching the root responsibility
    /// zone (the entire coordinate space).
    fn default() -> Self {
        Interval::unbounded()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "({}, {})", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_endpoints_are_excluded() {
        let i = Interval::new(1.0, 2.0);
        assert!(!i.contains(1.0));
        assert!(!i.contains(2.0));
        assert!(i.contains(1.5));
    }

    #[test]
    fn inverted_bounds_collapse_to_empty() {
        assert!(Interval::new(2.0, 1.0).is_empty());
        assert!(Interval::new(1.0, 1.0).is_empty());
        assert_eq!(Interval::new(5.0, 3.0), Interval::EMPTY);
    }

    #[test]
    fn nan_bounds_collapse_to_empty() {
        assert!(Interval::new(f64::NAN, 1.0).is_empty());
        assert!(Interval::new(0.0, f64::NAN).is_empty());
    }

    #[test]
    fn unbounded_contains_everything_finite() {
        let u = Interval::unbounded();
        assert!(u.contains(0.0));
        assert!(u.contains(-1e300));
        assert!(u.contains(1e300));
        assert!(!u.is_empty());
    }

    #[test]
    fn half_bounded_constructors() {
        assert!(Interval::below(0.0).contains(-1.0));
        assert!(!Interval::below(0.0).contains(0.0));
        assert!(Interval::above(0.0).contains(1.0));
        assert!(!Interval::above(0.0).contains(0.0));
    }

    #[test]
    fn intersection_is_commutative_and_shrinks() {
        let a = Interval::new(0.0, 10.0);
        let b = Interval::new(5.0, 15.0);
        assert_eq!(a.intersect(b), Interval::new(5.0, 10.0));
        assert_eq!(b.intersect(a), a.intersect(b));
        assert!(a.contains_interval(a.intersect(b)));
        assert!(b.contains_interval(a.intersect(b)));
    }

    #[test]
    fn intersection_with_empty_is_empty() {
        let a = Interval::new(0.0, 1.0);
        assert!(a.intersect(Interval::EMPTY).is_empty());
    }

    #[test]
    fn touching_open_intervals_are_disjoint() {
        // (0,1) and (1,2) share only the excluded point 1.
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.0, 2.0);
        assert!(a.is_disjoint(b));
    }

    #[test]
    fn overlapping_intervals_are_not_disjoint() {
        let a = Interval::new(0.0, 1.5);
        let b = Interval::new(1.0, 2.0);
        assert!(!a.is_disjoint(b));
    }

    #[test]
    fn containment_includes_empty() {
        let a = Interval::new(0.0, 1.0);
        assert!(a.contains_interval(Interval::EMPTY));
        assert!(Interval::unbounded().contains_interval(a));
        assert!(!a.contains_interval(Interval::unbounded()));
    }

    #[test]
    fn length_handles_all_cases() {
        assert_eq!(Interval::new(1.0, 4.0).length(), 3.0);
        assert_eq!(Interval::EMPTY.length(), 0.0);
        assert_eq!(Interval::unbounded().length(), f64::INFINITY);
    }

    #[test]
    fn display_renders_empty_and_regular() {
        assert_eq!(Interval::EMPTY.to_string(), "∅");
        assert_eq!(Interval::new(0.0, 1.0).to_string(), "(0, 1)");
    }
}
