//! The distributed overlay-maintenance protocol of §1.
//!
//! Every peer periodically broadcasts its existence (identifier and
//! network address) a fixed number `BR ≥ 2` of hops away along the
//! current overlay edges. Each peer `P` collects the announcements it
//! received during the last `Tmax` into the candidate set `I(P)`
//! (`Tmax` larger than the gossip period) and periodically re-runs its
//! neighbour-selection method on `I(P)` to pick its overlay neighbours.
//!
//! Under stable membership this iteration reaches a fixpoint; the paper
//! requires the fixpoint to equal ("or be close to") the full-knowledge
//! equilibrium computed by [`crate::oracle`]. Integration tests assert
//! exact agreement on small networks when `BR` covers the overlay
//! diameter.

use std::collections::BTreeMap;
use std::sync::Arc;

use geocast_sim::{Context, Message, Node, NodeId, SimDuration, SimTime, TimerId};

use crate::peer::PeerInfo;
use crate::select::NeighborSelection;

/// Protocol timing and reach parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Existence announcements travel this many overlay hops (`BR`).
    /// The paper requires `BR ≥ 2`.
    pub br: u8,
    /// Interval between a peer's announcements.
    pub announce_period: SimDuration,
    /// Age limit of entries in `I(P)`; must exceed `announce_period`.
    pub tmax: SimDuration,
    /// Interval between re-runs of the neighbour-selection method.
    pub reselect_period: SimDuration,
}

impl GossipConfig {
    /// Validates the paper's parameter constraints (`BR ≥ 2`,
    /// `Tmax > announce_period`).
    ///
    /// # Panics
    ///
    /// Panics if the constraints are violated.
    pub fn validate(&self) {
        assert!(self.br >= 2, "the paper requires BR >= 2");
        assert!(
            self.tmax > self.announce_period,
            "Tmax must exceed the gossiping period"
        );
    }
}

impl Default for GossipConfig {
    /// `BR = 3`, 1 s announcements, 4 s expiry, 1 s reselection.
    fn default() -> Self {
        GossipConfig {
            br: 3,
            announce_period: SimDuration::from_secs(1),
            tmax: SimDuration::from_secs(4),
            reselect_period: SimDuration::from_secs(1),
        }
    }
}

/// Overlay-maintenance traffic.
#[derive(Debug, Clone)]
pub enum OverlayMsg {
    /// "I exist": `origin`'s identifier and address, flooded up to `ttl`
    /// further hops. `seq` deduplicates flood copies.
    Announce {
        /// The peer announcing itself.
        origin: PeerInfo,
        /// Per-origin announcement counter.
        seq: u64,
        /// Remaining hop budget.
        ttl: u8,
    },
}

impl Message for OverlayMsg {
    fn tag(&self) -> &'static str {
        match self {
            OverlayMsg::Announce { .. } => "announce",
        }
    }
}

/// A peer running the gossip protocol.
///
/// Simulation node ids and peer ids coincide (`NodeId(i)` ⇔ `PeerId(i)`);
/// [`crate::OverlayNetwork`] maintains that invariant.
pub struct GossipNode {
    info: PeerInfo,
    config: GossipConfig,
    selection: Arc<dyn NeighborSelection + Send + Sync>,
    /// Current overlay out-neighbours (peer indices).
    neighbors: Vec<usize>,
    /// Peers that recently sent us traffic directly (incoming side of
    /// overlay connections). Selection is asymmetric, but links are
    /// *connections*: gossip flows both ways, so a peer nobody selects
    /// still receives existence announcements. Pruned with `Tmax`.
    in_links: BTreeMap<usize, SimTime>,
    /// `I(P)`: candidate peers and when each was last heard.
    known: BTreeMap<usize, (PeerInfo, SimTime)>,
    /// Highest announcement sequence number seen per origin (flood dedup).
    seen_seq: BTreeMap<u64, u64>,
    /// Every peer ever heard of (host cache). Not part of the paper's
    /// protocol: used only as a **re-bootstrap fallback** when all
    /// overlay neighbours have departed, so that a peer whose entire
    /// neighbourhood crashes can rejoin instead of staying orphaned
    /// (cf. DESIGN.md §5). Entries here never enter `I(P)` directly.
    address_book: Vec<usize>,
    /// Round-robin cursor into the address book for fallback announces.
    fallback_cursor: usize,
    /// Rolling fingerprint of `neighbors` (see
    /// [`crate::topology_hash`]); lets convergence checks compare
    /// topologies without snapshotting adjacency lists.
    neighbors_hash: u64,
    next_seq: u64,
    announce_timer: Option<TimerId>,
    reselect_timer: Option<TimerId>,
}

impl GossipNode {
    /// Creates a peer that will bootstrap from the given existing peers
    /// (it knows their identifiers and addresses, per the paper's join
    /// procedure).
    #[must_use]
    pub fn new(
        info: PeerInfo,
        bootstrap: Vec<PeerInfo>,
        selection: Arc<dyn NeighborSelection + Send + Sync>,
        config: GossipConfig,
    ) -> Self {
        config.validate();
        let neighbors: Vec<usize> = bootstrap.iter().map(|p| p.id().index()).collect();
        let known = bootstrap
            .into_iter()
            .map(|p| (p.id().index(), (p, SimTime::ZERO)))
            .collect();
        let neighbors_hash = crate::store::topology_hash(info.id().index(), &neighbors);
        GossipNode {
            info,
            config,
            selection,
            address_book: neighbors.clone(),
            neighbors,
            in_links: BTreeMap::new(),
            known,
            seen_seq: BTreeMap::new(),
            fallback_cursor: 0,
            neighbors_hash,
            next_seq: 0,
            announce_timer: None,
            reselect_timer: None,
        }
    }

    /// This peer's own description.
    #[must_use]
    pub fn info(&self) -> &PeerInfo {
        &self.info
    }

    /// Current overlay out-neighbours as peer indices (sorted).
    #[must_use]
    pub fn neighbors(&self) -> &[usize] {
        &self.neighbors
    }

    /// Rolling fingerprint of the current out-neighbour list
    /// ([`crate::topology_hash`]); maintained on every re-selection so
    /// convergence checks read one `u64` per peer instead of cloning
    /// adjacency.
    #[must_use]
    pub fn neighbors_hash(&self) -> u64 {
        self.neighbors_hash
    }

    /// Size of the current candidate set `I(P)`.
    #[must_use]
    pub fn known_count(&self) -> usize {
        self.known.len()
    }

    /// `true` if `idx` is currently in this peer's candidate set `I(P)`.
    #[must_use]
    pub fn knows(&self, idx: usize) -> bool {
        self.known.contains_key(&idx)
    }

    /// Hands this peer another peer's description out of band — the
    /// driver-side locate handshake of a localized membership change
    /// ([`crate::OverlayNetwork::add_peer_localized`]). Equivalent to
    /// hearing an existence announcement at `now`.
    pub(crate) fn learn(&mut self, info: PeerInfo, now: SimTime) {
        let idx = info.id().index();
        if self.known.insert(idx, (info, now)).is_none() && !self.address_book.contains(&idx) {
            self.address_book.push(idx);
        }
    }

    /// Expires a departed peer from the candidate set immediately (the
    /// localized-leave counterpart of the `Tmax` timeout).
    pub(crate) fn forget(&mut self, idx: usize) {
        self.known.remove(&idx);
        self.in_links.remove(&idx);
    }

    /// Driver-side overwrite of the selected out-neighbours (the result
    /// of a localized re-selection); keeps the fingerprint in step.
    pub(crate) fn set_neighbors(&mut self, neighbors: Vec<usize>) {
        self.neighbors = neighbors;
        self.neighbors_hash = crate::store::topology_hash(self.info.id().index(), &self.neighbors);
    }

    /// All live link partners: selected out-neighbours plus unexpired
    /// incoming connections, minus any exclusions. Gossip traffic flows
    /// over these.
    fn link_partners(&self, now: SimTime, exclude: &[usize]) -> Vec<usize> {
        let tmax = self.config.tmax;
        let mut partners: Vec<usize> = self
            .neighbors
            .iter()
            .copied()
            .chain(
                self.in_links
                    .iter()
                    .filter(|(_, &heard)| now.since(heard) <= tmax)
                    .map(|(&idx, _)| idx),
            )
            .filter(|idx| !exclude.contains(idx))
            .collect();
        partners.sort_unstable();
        partners.dedup();
        partners
    }

    fn announce(&mut self, ctx: &mut Context<'_, OverlayMsg>) {
        self.next_seq += 1;
        let msg = OverlayMsg::Announce {
            origin: self.info.clone(),
            seq: self.next_seq,
            ttl: self.config.br,
        };
        let partners = self.link_partners(ctx.now(), &[]);
        if partners.is_empty() && !self.address_book.is_empty() {
            // Re-bootstrap fallback: all neighbours departed; try a few
            // cached contacts round-robin until someone live hears us.
            for _ in 0..3.min(self.address_book.len()) {
                let target = self.address_book[self.fallback_cursor % self.address_book.len()];
                self.fallback_cursor = self.fallback_cursor.wrapping_add(1);
                ctx.send(NodeId(target), msg.clone());
            }
        } else {
            for nbr in partners {
                ctx.send(NodeId(nbr), msg.clone());
            }
        }
        self.announce_timer = Some(ctx.set_timer(self.config.announce_period));
    }

    fn reselect(&mut self, ctx: &mut Context<'_, OverlayMsg>) {
        let now = ctx.now();
        let tmax = self.config.tmax;
        self.known.retain(|_, (_, heard)| now.since(*heard) <= tmax);

        let mut indices: Vec<usize> = self.known.keys().copied().collect();
        indices.sort_unstable(); // deterministic candidate order
        let candidates: Vec<&PeerInfo> = indices.iter().map(|i| &self.known[i].0).collect();
        let picked = self.selection.select(&self.info, &candidates);
        let neighbors = picked.into_iter().map(|ci| indices[ci]).collect();
        self.set_neighbors(neighbors);
        self.reselect_timer = Some(ctx.set_timer(self.config.reselect_period));
    }
}

impl Node for GossipNode {
    type Msg = OverlayMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, OverlayMsg>) {
        self.announce(ctx);
        self.reselect_timer = Some(ctx.set_timer(self.config.reselect_period));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, OverlayMsg>, from: NodeId, msg: OverlayMsg) {
        let OverlayMsg::Announce { origin, seq, ttl } = msg;
        if from.index() != self.info.id().index() {
            self.in_links.insert(from.index(), ctx.now());
        }
        if origin.id() == self.info.id() {
            return; // own announcement echoed back
        }
        let origin_idx = origin.id().index();
        if self
            .known
            .insert(origin_idx, (origin.clone(), ctx.now()))
            .is_none()
            && !self.address_book.contains(&origin_idx)
        {
            self.address_book.push(origin_idx);
        }

        // Forward only the first copy of each announcement, BR-hop bounded.
        let newest = self.seen_seq.entry(origin.id().0).or_insert(0);
        if seq <= *newest {
            return;
        }
        *newest = seq;
        if ttl > 1 {
            let targets = self.link_partners(ctx.now(), &[from.index(), origin_idx]);
            let fwd = OverlayMsg::Announce {
                origin,
                seq,
                ttl: ttl - 1,
            };
            for nbr in targets {
                ctx.send(NodeId(nbr), fwd.clone());
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, OverlayMsg>, timer: TimerId) {
        if Some(timer) == self.announce_timer {
            self.announce(ctx);
        } else if Some(timer) == self.reselect_timer {
            self.reselect(ctx);
        }
    }
}

impl std::fmt::Debug for GossipNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GossipNode")
            .field("info", &self.info)
            .field("neighbors", &self.neighbors)
            .field("known", &self.known.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::EmptyRectSelection;
    use geocast_geom::gen::uniform_points;
    use geocast_sim::Simulation;

    fn selection() -> Arc<dyn NeighborSelection + Send + Sync> {
        Arc::new(EmptyRectSelection)
    }

    fn star_network(n: usize, seed: u64) -> Simulation<GossipNode> {
        // Peer 0 is everyone's bootstrap.
        let points = uniform_points(n, 2, 1000.0, seed);
        let peers = PeerInfo::from_point_set(&points);
        let nodes: Vec<GossipNode> = peers
            .iter()
            .map(|p| {
                let bootstrap = if p.id().index() == 0 {
                    Vec::new()
                } else {
                    vec![peers[0].clone()]
                };
                GossipNode::new(p.clone(), bootstrap, selection(), GossipConfig::default())
            })
            .collect();
        Simulation::builder(nodes).seed(seed).build()
    }

    #[test]
    fn announcements_populate_candidate_sets() {
        let mut sim = star_network(6, 4);
        sim.run_until(geocast_sim::SimTime::ZERO + SimDuration::from_secs(10));
        // Everyone announced to peer 0, so peer 0 knows all 5 others.
        assert_eq!(sim.node(NodeId(0)).known_count(), 5);
        // And peer 0's re-announcements + flooding spread knowledge out.
        for i in 1..6 {
            assert!(
                sim.node(NodeId(i)).known_count() >= 1,
                "peer {i} learned nothing"
            );
        }
    }

    #[test]
    fn reselection_prunes_expired_entries() {
        let mut sim = star_network(4, 9);
        sim.run_until(geocast_sim::SimTime::ZERO + SimDuration::from_secs(8));
        let before = sim.node(NodeId(0)).known_count();
        assert!(before > 0);
        // Crash everyone else; their entries age out of I(0) after Tmax.
        for i in 1..4 {
            sim.crash(NodeId(i));
        }
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(
            sim.node(NodeId(0)).known_count(),
            0,
            "stale entries must expire"
        );
        assert!(sim.node(NodeId(0)).neighbors().is_empty());
    }

    #[test]
    fn ttl_bounds_flood_reach() {
        // A chain bootstrap: peer i bootstraps from peer i-1. With BR=2,
        // an announcement from peer 4 can reach at most 2 hops along the
        // initial chain before reselection rewires things; peer 0 at
        // distance 4 must not know peer 4 after one announce round if no
        // rewiring shortens the path. We test the dedup/ttl mechanics on
        // the very first delivery wave (before any reselect timer fires).
        let points = uniform_points(5, 2, 1000.0, 31);
        let peers = PeerInfo::from_point_set(&points);
        let config = GossipConfig {
            br: 2,
            announce_period: SimDuration::from_secs(100), // one round only
            tmax: SimDuration::from_secs(1000),
            reselect_period: SimDuration::from_secs(500), // never fires
        };
        let nodes: Vec<GossipNode> = peers
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let bootstrap = if i == 0 {
                    Vec::new()
                } else {
                    vec![peers[i - 1].clone()]
                };
                GossipNode::new(p.clone(), bootstrap, selection(), config)
            })
            .collect();
        let mut sim = Simulation::builder(nodes).build();
        sim.run_until(geocast_sim::SimTime::ZERO + SimDuration::from_secs(50));
        // Peer 4's announcement goes to 3 (hop 1) and is forwarded to 2
        // (hop 2) and stops (ttl exhausted).
        let knows = |i: usize, j: usize| sim.node(NodeId(i)).known.contains_key(&j);
        assert!(knows(3, 4), "direct neighbour must learn origin");
        assert!(knows(2, 4), "2-hop peer must learn origin (BR=2)");
        assert!(!knows(1, 4), "3-hop peer must NOT learn origin with BR=2");
        assert!(!knows(0, 4), "4-hop peer must NOT learn origin with BR=2");
    }

    #[test]
    fn duplicate_floods_are_not_reforwarded() {
        // Fully-meshed bootstrap of 3 peers: each announcement reaches
        // every peer directly and via one forward; the dedup must keep
        // traffic finite and well below the unbounded-flood blowup.
        let points = uniform_points(3, 2, 1000.0, 77);
        let peers = PeerInfo::from_point_set(&points);
        let config = GossipConfig {
            br: 3,
            announce_period: SimDuration::from_secs(100),
            tmax: SimDuration::from_secs(1000),
            reselect_period: SimDuration::from_secs(500),
        };
        let nodes: Vec<GossipNode> = peers
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let bootstrap: Vec<PeerInfo> = peers
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, q)| q.clone())
                    .collect();
                GossipNode::new(p.clone(), bootstrap, selection(), config)
            })
            .collect();
        let mut sim = Simulation::builder(nodes).build();
        sim.run_until(geocast_sim::SimTime::ZERO + SimDuration::from_secs(50));
        // 3 origins × 2 direct sends = 6 first-wave messages; each
        // receiver forwards a *new* announcement to at most 1 other peer
        // (excluding sender and origin) = at most 6 forwards, of which
        // only the first copy per (origin, receiver) triggers anything.
        let announced = sim.counters().sent_with_tag("announce");
        assert!(announced <= 18, "flood dedup failed: {announced} messages");
        assert!(announced >= 6, "first wave must have gone out");
    }

    #[test]
    fn config_validation_enforces_paper_constraints() {
        let bad_br = GossipConfig {
            br: 1,
            ..GossipConfig::default()
        };
        assert!(std::panic::catch_unwind(|| bad_br.validate()).is_err());
        let bad_tmax = GossipConfig {
            tmax: SimDuration::from_millis(500),
            announce_period: SimDuration::from_secs(1),
            ..GossipConfig::default()
        };
        assert!(std::panic::catch_unwind(|| bad_tmax.validate()).is_err());
        GossipConfig::default().validate(); // must not panic
    }
}
