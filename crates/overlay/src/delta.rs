//! The epoch-numbered delta stream of a [`crate::TopologyStore`].
//!
//! PR 3's consumer contract was *pull-by-courtesy*: after every mutation
//! the caller had to read [`crate::TopologyStore::last_delta`] before the
//! next event overwrote it, which works for exactly one lock-step
//! consumer. The multi-group session engine needs N independent
//! consumers (one tree per multicast group, a stability forest, live
//! gossip sync) that each absorb membership change *at their own pace*.
//!
//! The [`DeltaLog`] turns the dirty region into a durable, epoch-numbered
//! stream: every [`crate::TopologyStore::insert`] / `remove` appends one
//! [`TopologyDelta`] tagged with the store's post-mutation epoch.
//! Consumers remember the last epoch they absorbed and call
//! [`DeltaLog::deltas_since`]; the log answers with exactly the missed
//! deltas — or `None` when the consumer fell behind the log's bounded
//! retention, in which case it must resynchronise from the full store
//! state (every consumer in this workspace has such a path: trees
//! rebuild, forests re-pick, gossip re-syncs).

use std::collections::VecDeque;

/// What kind of membership event produced a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Peer `0` joined (the value is its dense index).
    Join(usize),
    /// Peer `0` departed (crash-stop).
    Leave(usize),
}

impl DeltaKind {
    /// The dense index of the joining/leaving peer.
    #[must_use]
    pub fn peer(&self) -> usize {
        match *self {
            DeltaKind::Join(p) | DeltaKind::Leave(p) => p,
        }
    }
}

/// One membership event's full effect on the topology: the event itself
/// plus the **dirty region** — every peer whose out-list, reverse list
/// or membership changed, sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyDelta {
    /// The store epoch this delta produced (the first mutation after
    /// construction is epoch 1).
    pub epoch: u64,
    /// The membership event.
    pub kind: DeltaKind,
    /// The dirty region (sorted dense peer indices).
    pub dirty: Vec<usize>,
}

/// Bounded retention buffer of [`TopologyDelta`]s, newest last.
#[derive(Debug, Clone)]
pub struct DeltaLog {
    deltas: VecDeque<TopologyDelta>,
    capacity: usize,
    /// Epoch of the newest recorded delta (0 before any mutation).
    head: u64,
}

/// Default number of deltas a store retains; far above what the
/// lock-step consumers need, small enough to be free at N = 100k.
pub const DEFAULT_DELTA_CAPACITY: usize = 1024;

impl DeltaLog {
    /// Creates an empty log retaining at most `capacity` deltas.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a log that can never answer).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "delta log capacity must be positive");
        DeltaLog {
            deltas: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            head: 0,
        }
    }

    /// Creates an empty log whose next recorded delta must carry epoch
    /// `head + 1` — how a store re-anchors the stream after dropping
    /// history.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn anchored(capacity: usize, head: u64) -> Self {
        let mut log = DeltaLog::new(capacity);
        log.head = head;
        log
    }

    /// Epoch of the newest recorded delta (0 before any mutation).
    #[must_use]
    pub fn head_epoch(&self) -> u64 {
        self.head
    }

    /// Oldest epoch still retained, if any delta is retained at all.
    #[must_use]
    pub fn tail_epoch(&self) -> Option<u64> {
        self.deltas.front().map(|d| d.epoch)
    }

    /// Number of retained deltas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// `true` if no delta was recorded yet (or all were evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Appends a delta, evicting the oldest beyond capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `delta.epoch == head_epoch() + 1` — epochs are a
    /// gap-free sequence by construction.
    pub fn record(&mut self, delta: TopologyDelta) {
        assert_eq!(delta.epoch, self.head + 1, "delta epochs must be gap-free");
        self.head = delta.epoch;
        if self.deltas.len() == self.capacity {
            self.deltas.pop_front();
        }
        self.deltas.push_back(delta);
    }

    /// The deltas strictly after `epoch`, oldest first — everything a
    /// consumer that last absorbed `epoch` has missed.
    ///
    /// Returns `None` when the consumer is too far behind (the log has
    /// evicted a delta it would need) or claims an epoch from the
    /// future; the consumer must then resynchronise from the full store
    /// state instead of replaying deltas.
    #[must_use]
    pub fn deltas_since(&self, epoch: u64) -> Option<impl Iterator<Item = &TopologyDelta>> {
        if epoch > self.head {
            return None;
        }
        if epoch == self.head {
            return Some(self.deltas.iter().skip(self.deltas.len()));
        }
        // Retained epochs are the contiguous run tail..=head; the oldest
        // delta the consumer needs is epoch + 1.
        let tail = self.tail_epoch()?;
        if tail > epoch + 1 {
            return None;
        }
        Some(self.deltas.iter().skip((epoch + 1 - tail) as usize))
    }
}

impl Default for DeltaLog {
    fn default() -> Self {
        DeltaLog::new(DEFAULT_DELTA_CAPACITY)
    }
}

/// What one [`DeltaCursor::catch_up`] found in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CursorCatchUp {
    /// The cursor already sat at the log head: nothing to absorb.
    UpToDate,
    /// The deltas recorded since the cursor's epoch, oldest first. The
    /// cursor has advanced past them.
    Deltas(Vec<TopologyDelta>),
    /// The log evicted a delta the cursor needed: the consumer must
    /// resynchronise from full store state. The cursor has jumped to
    /// the log head and the resync was counted.
    Resync,
}

/// One consumer's position in a [`DeltaLog`], with its own absorption
/// and resync ledger.
///
/// PR 8 left every consumer tracking a bare `u64` epoch, which made the
/// eviction-horizon fallback *silent*: a laggard rebuilt from full
/// store state without anything counting how often. A `DeltaCursor`
/// owns both the position and the accounting — each consumer (gossip
/// sync, group repair, data-plane flush) advances at its own cadence
/// and reports `absorbed` / `resyncs` per consumer.
///
/// ```
/// use geocast_overlay::delta::{CursorCatchUp, DeltaCursor, DeltaLog};
///
/// let log = DeltaLog::default();
/// let mut cursor = DeltaCursor::new("gossip");
/// assert_eq!(cursor.catch_up(&log), CursorCatchUp::UpToDate);
/// assert_eq!(cursor.resyncs(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaCursor {
    name: &'static str,
    epoch: u64,
    absorbed: u64,
    resyncs: u64,
}

impl DeltaCursor {
    /// A cursor named for its consumer, starting at epoch 0 (a store
    /// fresh from construction).
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        DeltaCursor::at(name, 0)
    }

    /// A cursor starting at a given epoch — how a consumer adopts a
    /// store that already has history it considers absorbed.
    #[must_use]
    pub fn at(name: &'static str, epoch: u64) -> Self {
        DeltaCursor {
            name,
            epoch,
            absorbed: 0,
            resyncs: 0,
        }
    }

    /// The consumer this cursor belongs to.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The last epoch this consumer absorbed.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total deltas absorbed through [`DeltaCursor::catch_up`].
    #[must_use]
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Times the consumer fell past the log's eviction horizon and was
    /// told to resynchronise from full store state.
    #[must_use]
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Advances the cursor to the log head and reports what the
    /// consumer must do to get there: nothing, replay the returned
    /// deltas, or — when the log evicted a needed delta — resync from
    /// full store state (counted in [`DeltaCursor::resyncs`]).
    ///
    /// The cursor always lands on the head, so consecutive calls
    /// without intervening mutations are no-ops.
    pub fn catch_up(&mut self, log: &DeltaLog) -> CursorCatchUp {
        if self.epoch == log.head_epoch() {
            return CursorCatchUp::UpToDate;
        }
        match log.deltas_since(self.epoch) {
            Some(it) => {
                let deltas: Vec<TopologyDelta> = it.cloned().collect();
                self.absorbed += deltas.len() as u64;
                self.epoch = log.head_epoch();
                CursorCatchUp::Deltas(deltas)
            }
            None => {
                self.resyncs += 1;
                self.epoch = log.head_epoch();
                CursorCatchUp::Resync
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(epoch: u64) -> TopologyDelta {
        TopologyDelta {
            epoch,
            kind: DeltaKind::Join(epoch as usize),
            dirty: vec![epoch as usize],
        }
    }

    #[test]
    fn records_and_replays_in_order() {
        let mut log = DeltaLog::new(8);
        for e in 1..=5 {
            log.record(delta(e));
        }
        assert_eq!(log.head_epoch(), 5);
        let missed: Vec<u64> = log.deltas_since(2).unwrap().map(|d| d.epoch).collect();
        assert_eq!(missed, vec![3, 4, 5]);
        let all: Vec<u64> = log.deltas_since(0).unwrap().map(|d| d.epoch).collect();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn up_to_date_consumer_gets_empty_stream() {
        let mut log = DeltaLog::new(4);
        log.record(delta(1));
        assert_eq!(log.deltas_since(1).unwrap().count(), 0);
        // A brand-new log is trivially up to date at epoch 0.
        assert_eq!(DeltaLog::new(4).deltas_since(0).unwrap().count(), 0);
    }

    #[test]
    fn eviction_forces_resync_for_laggards_only() {
        let mut log = DeltaLog::new(3);
        for e in 1..=5 {
            log.record(delta(e));
        }
        // Epochs 1 and 2 are evicted: a consumer at epoch 1 needs delta
        // 2, which is gone.
        assert!(log.deltas_since(1).is_none());
        // A consumer at epoch 2 needs deltas 3..=5, all retained.
        let missed: Vec<u64> = log.deltas_since(2).unwrap().map(|d| d.epoch).collect();
        assert_eq!(missed, vec![3, 4, 5]);
    }

    #[test]
    fn future_epochs_are_rejected() {
        let mut log = DeltaLog::new(4);
        log.record(delta(1));
        assert!(log.deltas_since(2).is_none());
    }

    #[test]
    #[should_panic(expected = "gap-free")]
    fn gapped_epochs_are_rejected() {
        let mut log = DeltaLog::new(4);
        log.record(delta(1));
        log.record(delta(3));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = DeltaLog::new(0);
    }

    #[test]
    fn kind_exposes_the_peer() {
        assert_eq!(DeltaKind::Join(7).peer(), 7);
        assert_eq!(DeltaKind::Leave(9).peer(), 9);
    }

    #[test]
    fn cursor_absorbs_in_order_and_idempotently() {
        let mut log = DeltaLog::new(8);
        let mut cursor = DeltaCursor::new("repair");
        assert_eq!(cursor.catch_up(&log), CursorCatchUp::UpToDate);
        for e in 1..=3 {
            log.record(delta(e));
        }
        match cursor.catch_up(&log) {
            CursorCatchUp::Deltas(ds) => {
                assert_eq!(
                    ds.iter().map(|d| d.epoch).collect::<Vec<_>>(),
                    vec![1, 2, 3]
                );
            }
            other => panic!("expected deltas, got {other:?}"),
        }
        assert_eq!(cursor.epoch(), 3);
        assert_eq!(cursor.absorbed(), 3);
        // Caught up: a second call is a no-op.
        assert_eq!(cursor.catch_up(&log), CursorCatchUp::UpToDate);
        assert_eq!(cursor.absorbed(), 3);
    }

    #[test]
    fn cursor_counts_eviction_horizon_resyncs() {
        let mut log = DeltaLog::new(2);
        let mut cursor = DeltaCursor::new("flush");
        for e in 1..=5 {
            log.record(delta(e));
        }
        // Needs epoch 1, retained tail is 4: forced resync, counted.
        assert_eq!(cursor.catch_up(&log), CursorCatchUp::Resync);
        assert_eq!(cursor.resyncs(), 1);
        assert_eq!(cursor.epoch(), 5);
        // After the resync the cursor rides the log again.
        log.record(delta(6));
        match cursor.catch_up(&log) {
            CursorCatchUp::Deltas(ds) => assert_eq!(ds.len(), 1),
            other => panic!("expected deltas, got {other:?}"),
        }
        assert_eq!(cursor.resyncs(), 1);
    }

    #[test]
    fn cursor_can_adopt_existing_history() {
        let mut log = DeltaLog::new(8);
        for e in 1..=4 {
            log.record(delta(e));
        }
        let mut cursor = DeltaCursor::at("gossip", 3);
        match cursor.catch_up(&log) {
            CursorCatchUp::Deltas(ds) => {
                assert_eq!(ds.iter().map(|d| d.epoch).collect::<Vec<_>>(), vec![4]);
            }
            other => panic!("expected deltas, got {other:?}"),
        }
    }
}
