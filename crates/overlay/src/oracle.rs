//! Equilibrium topologies computed with full knowledge.
//!
//! The paper defines the target of gossip convergence as the topology
//! "obtained when every peer P knows all the other peers in the system
//! (i.e. when I(P) contains all the peers except P)". This module
//! computes that topology directly, which is how the figure-scale
//! experiments (up to N = 5000) stay tractable; the integration tests
//! cross-validate it against the actual gossip protocol on small
//! networks.

use geocast_geom::{Metric, MetricKind, Orthant};

use crate::graph::OverlayGraph;
use crate::peer::PeerInfo;
use crate::select::NeighborSelection;

/// The equilibrium overlay: every peer applies `selection` to the full
/// candidate set (everyone but itself).
///
/// Peer `i` of the slice becomes graph vertex `i`.
#[must_use]
pub fn equilibrium(peers: &[PeerInfo], selection: &dyn NeighborSelection) -> OverlayGraph {
    let out = peers
        .iter()
        .enumerate()
        .map(|(i, who)| {
            let candidates: Vec<&PeerInfo> = peers
                .iter()
                .enumerate()
                .filter_map(|(j, p)| (j != i).then_some(p))
                .collect();
            selection
                .select(who, &candidates)
                .into_iter()
                .map(|ci| if ci < i { ci } else { ci + 1 }) // undo the self-gap
                .collect()
        })
        .collect();
    OverlayGraph::from_out_neighbors(out)
}

/// Equilibrium topologies of the *Orthogonal Hyperplanes* method for a
/// whole sweep of `K` values at once.
///
/// The §3 experiments vary `K` from 1 to 50 for each dimensionality;
/// sorting each peer's orthant groups once and taking prefixes makes the
/// sweep `O(N² D + N·Σk)` instead of 50 independent selections. The
/// result pairs each requested `K` with its topology, in input order.
///
/// Equivalence with [`equilibrium`] over
/// [`crate::select::HyperplanesSelection::orthogonal`] is asserted by
/// tests.
///
/// # Panics
///
/// Panics if any `k == 0` or peers disagree on dimensionality.
#[must_use]
pub fn orthogonal_k_sweep(
    peers: &[PeerInfo],
    metric: MetricKind,
    ks: &[usize],
) -> Vec<(usize, OverlayGraph)> {
    let mut out = Vec::with_capacity(ks.len());
    orthogonal_k_sweep_with(peers, metric, ks, |k, graph| out.push((k, graph.clone())));
    out
}

/// Streaming variant of [`orthogonal_k_sweep`]: invokes `visit` with each
/// `(K, topology)` pair in input order, holding only one topology in
/// memory at a time. Use this for large sweeps (e.g. `D = 10`,
/// `K = 1..50` would otherwise hold hundreds of MB of adjacency lists).
///
/// # Panics
///
/// Panics if any `k == 0` or peers disagree on dimensionality.
pub fn orthogonal_k_sweep_with(
    peers: &[PeerInfo],
    metric: MetricKind,
    ks: &[usize],
    mut visit: impl FnMut(usize, &OverlayGraph),
) {
    assert!(ks.iter().all(|&k| k > 0), "K must be at least 1");
    if peers.is_empty() {
        let empty = OverlayGraph::from_out_neighbors(Vec::new());
        for &k in ks {
            visit(k, &empty);
        }
        return;
    }
    let dim = peers[0].point().dim();
    // For each peer: orthant groups sorted by (distance, id).
    let sorted_groups: Vec<Vec<Vec<usize>>> = peers
        .iter()
        .enumerate()
        .map(|(i, who)| {
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); Orthant::count(dim)];
            for (j, cand) in peers.iter().enumerate() {
                if j == i {
                    continue;
                }
                let o = Orthant::classify(who.point(), cand.point())
                    .expect("distinct coordinates classify totally");
                groups[o.index()].push(j);
            }
            for group in &mut groups {
                group.sort_by(|&a, &b| {
                    let da = metric.dist(who.point(), peers[a].point());
                    let db = metric.dist(who.point(), peers[b].point());
                    da.total_cmp(&db).then_with(|| peers[a].id().cmp(&peers[b].id()))
                });
            }
            groups
        })
        .collect();

    for &k in ks {
        let out: Vec<Vec<usize>> = sorted_groups
            .iter()
            .map(|groups| {
                groups
                    .iter()
                    .flat_map(|group| group.iter().copied().take(k))
                    .collect()
            })
            .collect();
        let graph = OverlayGraph::from_out_neighbors(out);
        visit(k, &graph);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{EmptyRectSelection, HyperplanesSelection};
    use geocast_geom::gen::uniform_points;

    fn peers(n: usize, dim: usize, seed: u64) -> Vec<PeerInfo> {
        PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed))
    }

    #[test]
    fn empty_rect_equilibrium_is_symmetric_and_connected() {
        let population = peers(120, 2, 3);
        let g = equilibrium(&population, &EmptyRectSelection);
        assert!(g.is_symmetric(), "empty-rect links are mutual at equilibrium");
        assert!(g.is_connected_undirected());
    }

    #[test]
    fn orthogonal_equilibrium_is_connected() {
        let population = peers(100, 3, 5);
        let sel = HyperplanesSelection::orthogonal(3, 1, MetricKind::L1);
        let g = equilibrium(&population, &sel);
        assert!(g.is_connected_undirected());
    }

    #[test]
    fn equilibrium_indices_skip_self_correctly() {
        // Regression guard for the self-gap re-indexing: no peer may be
        // its own neighbour, and all indices must be valid.
        let population = peers(30, 2, 9);
        let g = equilibrium(&population, &EmptyRectSelection);
        for i in 0..g.len() {
            assert!(!g.out_neighbors(i).contains(&i));
        }
    }

    #[test]
    fn k_sweep_matches_generic_equilibrium() {
        let population = peers(40, 3, 13);
        for &k in &[1usize, 2, 5, 40] {
            let generic = equilibrium(
                &population,
                &HyperplanesSelection::orthogonal(3, k, MetricKind::L1),
            );
            let swept = orthogonal_k_sweep(&population, MetricKind::L1, &[k]);
            assert_eq!(swept.len(), 1);
            assert_eq!(swept[0].0, k);
            assert_eq!(swept[0].1, generic, "K={k}");
        }
    }

    #[test]
    fn k_sweep_returns_requested_ks_in_order() {
        let population = peers(20, 2, 17);
        let ks = [3usize, 1, 2];
        let swept = orthogonal_k_sweep(&population, MetricKind::L1, &ks);
        let got: Vec<usize> = swept.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, ks);
    }

    #[test]
    fn k_sweep_monotone_in_k() {
        // Larger K can only add neighbours.
        let population = peers(50, 2, 19);
        let swept = orthogonal_k_sweep(&population, MetricKind::L1, &[1, 3, 10]);
        for i in 0..population.len() {
            let d1 = swept[0].1.out_neighbors(i).len();
            let d3 = swept[1].1.out_neighbors(i).len();
            let d10 = swept[2].1.out_neighbors(i).len();
            assert!(d1 <= d3 && d3 <= d10);
        }
    }

    #[test]
    fn k_sweep_handles_empty_population() {
        let swept = orthogonal_k_sweep(&[], MetricKind::L1, &[1, 2]);
        assert_eq!(swept.len(), 2);
        assert!(swept[0].1.is_empty());
    }

    #[test]
    fn equilibrium_is_insertion_order_independent() {
        // The equilibrium is a function of the point set only: permuting
        // peer order permutes the graph accordingly.
        let population = peers(25, 2, 23);
        let g1 = equilibrium(&population, &EmptyRectSelection);
        let mut reversed: Vec<PeerInfo> = population.clone();
        reversed.reverse();
        let g2 = equilibrium(&reversed, &EmptyRectSelection);
        let n = population.len();
        for i in 0..n {
            let mapped: Vec<usize> =
                g2.out_neighbors(n - 1 - i).iter().map(|&j| n - 1 - j).rev().collect();
            assert_eq!(g1.out_neighbors(i), &mapped[..], "peer {i}");
        }
    }
}
