//! Equilibrium topologies computed with full knowledge.
//!
//! The paper defines the target of gossip convergence as the topology
//! "obtained when every peer P knows all the other peers in the system
//! (i.e. when I(P) contains all the peers except P)". This module
//! computes that topology directly, which is how the figure-scale
//! experiments stay tractable; the integration tests cross-validate it
//! against the actual gossip protocol on small networks.
//!
//! # The construction engine
//!
//! [`equilibrium`] is the hot path of every figure sweep, bench and
//! churn scenario. It builds a [`geocast_geom::GridIndex`] over the population once
//! and lets each selection method answer from it through the batch
//! [`NeighborSelection::select_in`] API — no `O(N)` candidate vector
//! per peer, no `O(N²)` aggregate allocation — and fans the per-peer
//! selection out across CPU cores (the `parallel` feature, on by
//! default). Results are **exactly** the brute-force topology:
//! [`equilibrium_brute_force`] keeps the definitional path alive, and
//! property tests assert graph equality between the two on every
//! selection rule. See `docs/PERFORMANCE.md` for the numbers.

use geocast_geom::{Metric, MetricKind, Orthant};

use crate::graph::OverlayGraph;
use crate::par;
use crate::peer::PeerInfo;
use crate::select::{ids_in_slice_order, NeighborSelection, SelectContext};
use crate::store;

/// The equilibrium overlay: every peer applies `selection` to the full
/// candidate set (everyone but itself), accelerated by a spatial index
/// and per-peer parallelism. This is the [`crate::TopologyStore`] bulk
/// path — the same engine that maintains the equilibrium incrementally
/// under churn.
///
/// Peer `i` of the slice becomes graph vertex `i`. Exactly equivalent
/// to [`equilibrium_brute_force`] (property-tested).
#[must_use]
pub fn equilibrium<S>(peers: &[PeerInfo], selection: &S) -> OverlayGraph
where
    S: NeighborSelection + Sync + ?Sized,
{
    let index = store::build_shared_index(peers);
    let out = store::bulk_out_neighbors(peers, selection, index.as_ref(), None);
    OverlayGraph::from_out_neighbors(out)
}

/// The definitional equilibrium: sequential, no index — each peer runs
/// plain [`NeighborSelection::select`] over a materialized candidate
/// slice. Kept as the executable specification the engine is
/// property-tested against, and as the baseline the scaling bench
/// measures speedups over.
#[must_use]
pub fn equilibrium_brute_force(
    peers: &[PeerInfo],
    selection: &dyn NeighborSelection,
) -> OverlayGraph {
    let ctx = SelectContext::without_index();
    let out = (0..peers.len())
        .map(|i| selection.select_in(peers, i, &ctx))
        .collect();
    OverlayGraph::from_out_neighbors(out)
}

/// Equilibrium topologies of the *Orthogonal Hyperplanes* method for a
/// whole sweep of `K` values at once.
///
/// The §3 experiments vary `K` from 1 to 50 for each dimensionality;
/// ranking each peer's orthant groups once (truncated to the largest
/// requested `K`) and taking prefixes makes the sweep one ranking pass
/// plus `O(N·Σk)` assembly instead of 50 independent selections. The
/// result pairs each requested `K` with its topology, in input order.
///
/// Equivalence with [`equilibrium`] over
/// [`crate::select::HyperplanesSelection::orthogonal`] is asserted by
/// tests.
///
/// # Panics
///
/// Panics if any `k == 0` or peers disagree on dimensionality.
#[must_use]
pub fn orthogonal_k_sweep(
    peers: &[PeerInfo],
    metric: MetricKind,
    ks: &[usize],
) -> Vec<(usize, OverlayGraph)> {
    let mut out = Vec::with_capacity(ks.len());
    orthogonal_k_sweep_with(peers, metric, ks, |k, graph| out.push((k, graph.clone())));
    out
}

/// Streaming variant of [`orthogonal_k_sweep`]: invokes `visit` with each
/// `(K, topology)` pair in input order, holding only one topology in
/// memory at a time. Use this for large sweeps (e.g. `D = 10`,
/// `K = 1..50` would otherwise hold hundreds of MB of adjacency lists).
///
/// # Panics
///
/// Panics if any `k == 0` or peers disagree on dimensionality.
pub fn orthogonal_k_sweep_with(
    peers: &[PeerInfo],
    metric: MetricKind,
    ks: &[usize],
    mut visit: impl FnMut(usize, &OverlayGraph),
) {
    assert!(ks.iter().all(|&k| k > 0), "K must be at least 1");
    if peers.is_empty() {
        let empty = OverlayGraph::from_out_neighbors(Vec::new());
        for &k in ks {
            visit(k, &empty);
        }
        return;
    }
    let Some(kmax) = ks.iter().copied().max() else {
        return; // an empty sweep visits nothing
    };
    let sorted_groups = ranked_orthant_groups(peers, metric, kmax);

    for &k in ks {
        let out: Vec<Vec<usize>> = sorted_groups
            .iter()
            .map(|groups| {
                groups
                    .iter()
                    .flat_map(|group| group.iter().copied().take(k))
                    .collect()
            })
            .collect();
        let graph = OverlayGraph::from_out_neighbors(out);
        visit(k, &graph);
    }
}

/// For each peer: per-orthant candidate indices ranked by
/// `(distance, id)` ascending, truncated to the best `kmax`. Uses the
/// spatial index when distance ties broken by id and by slice position
/// coincide; falls back to the full ranking pass otherwise.
fn ranked_orthant_groups(
    peers: &[PeerInfo],
    metric: MetricKind,
    kmax: usize,
) -> Vec<Vec<Vec<usize>>> {
    let dim = peers[0].point().dim();
    let index = if ids_in_slice_order(peers) {
        store::build_shared_index(peers)
    } else {
        None
    };
    par::map_indexed(peers.len(), |i| {
        if let Some(ix) = &index {
            if let Some(groups) = ix.k_nearest_per_orthant(i, kmax, metric) {
                return groups;
            }
        }
        ranked_orthant_groups_brute(peers, i, dim, metric, kmax)
    })
}

/// The definitional ranking for one peer: classify every other peer
/// into an orthant, sort each group by `(distance, id)`, truncate.
fn ranked_orthant_groups_brute(
    peers: &[PeerInfo],
    i: usize,
    dim: usize,
    metric: MetricKind,
    kmax: usize,
) -> Vec<Vec<usize>> {
    let who = &peers[i];
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); Orthant::count(dim)];
    for (j, cand) in peers.iter().enumerate() {
        if j == i {
            continue;
        }
        let o = Orthant::classify(who.point(), cand.point())
            .expect("distinct coordinates classify totally");
        groups[o.index()].push(j);
    }
    for group in &mut groups {
        group.sort_by(|&a, &b| {
            let da = metric.dist(who.point(), peers[a].point());
            let db = metric.dist(who.point(), peers[b].point());
            da.total_cmp(&db)
                .then_with(|| peers[a].id().cmp(&peers[b].id()))
        });
        group.truncate(kmax);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{EmptyRectSelection, HyperplanesSelection};
    use geocast_geom::gen::uniform_points;

    fn peers(n: usize, dim: usize, seed: u64) -> Vec<PeerInfo> {
        PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed))
    }

    #[test]
    fn empty_rect_equilibrium_is_symmetric_and_connected() {
        let population = peers(120, 2, 3);
        let g = equilibrium(&population, &EmptyRectSelection);
        assert!(
            g.is_symmetric(),
            "empty-rect links are mutual at equilibrium"
        );
        assert!(g.is_connected_undirected());
    }

    #[test]
    fn empty_k_sweep_is_a_no_op() {
        let population = peers(20, 2, 3);
        assert!(orthogonal_k_sweep(&population, MetricKind::L1, &[]).is_empty());
        assert!(orthogonal_k_sweep(&[], MetricKind::L1, &[]).is_empty());
    }

    #[test]
    fn orthogonal_equilibrium_is_connected() {
        let population = peers(100, 3, 5);
        let sel = HyperplanesSelection::orthogonal(3, 1, MetricKind::L1);
        let g = equilibrium(&population, &sel);
        assert!(g.is_connected_undirected());
    }

    #[test]
    fn equilibrium_indices_skip_self_correctly() {
        // Regression guard for the self-gap re-indexing: no peer may be
        // its own neighbour, and all indices must be valid.
        let population = peers(30, 2, 9);
        let g = equilibrium(&population, &EmptyRectSelection);
        for i in 0..g.len() {
            assert!(!g.out_neighbors(i).contains(&i));
        }
    }

    #[test]
    fn engine_equals_brute_force_on_both_rules() {
        for &(n, dim, seed) in &[(60usize, 2usize, 21u64), (80, 3, 22), (40, 4, 23)] {
            let population = peers(n, dim, seed);
            assert_eq!(
                equilibrium(&population, &EmptyRectSelection),
                equilibrium_brute_force(&population, &EmptyRectSelection),
                "empty-rect n={n} dim={dim}"
            );
            for k in [1usize, 3] {
                let sel = HyperplanesSelection::orthogonal(dim, k, MetricKind::L1);
                assert_eq!(
                    equilibrium(&population, &sel),
                    equilibrium_brute_force(&population, &sel),
                    "orthogonal K={k} n={n} dim={dim}"
                );
            }
        }
    }

    #[test]
    fn engine_handles_non_dense_peer_ids() {
        // Shuffled / sparse ids must not break the accelerated paths:
        // the id-order gate routes Hyperplanes to the brute path while
        // empty-rect (id-independent) still uses the index.
        let mut population = peers(50, 2, 31);
        population.reverse(); // ids now descend: 49, 48, ...
        assert_eq!(
            equilibrium(&population, &EmptyRectSelection),
            equilibrium_brute_force(&population, &EmptyRectSelection),
        );
        let sel = HyperplanesSelection::orthogonal(2, 2, MetricKind::L2);
        assert_eq!(
            equilibrium(&population, &sel),
            equilibrium_brute_force(&population, &sel),
        );
    }

    #[test]
    fn k_sweep_matches_generic_equilibrium() {
        let population = peers(40, 3, 13);
        for &k in &[1usize, 2, 5, 40] {
            let generic = equilibrium(
                &population,
                &HyperplanesSelection::orthogonal(3, k, MetricKind::L1),
            );
            let swept = orthogonal_k_sweep(&population, MetricKind::L1, &[k]);
            assert_eq!(swept.len(), 1);
            assert_eq!(swept[0].0, k);
            assert_eq!(swept[0].1, generic, "K={k}");
        }
    }

    #[test]
    fn k_sweep_returns_requested_ks_in_order() {
        let population = peers(20, 2, 17);
        let ks = [3usize, 1, 2];
        let swept = orthogonal_k_sweep(&population, MetricKind::L1, &ks);
        let got: Vec<usize> = swept.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, ks);
    }

    #[test]
    fn k_sweep_monotone_in_k() {
        // Larger K can only add neighbours.
        let population = peers(50, 2, 19);
        let swept = orthogonal_k_sweep(&population, MetricKind::L1, &[1, 3, 10]);
        for i in 0..population.len() {
            let d1 = swept[0].1.out_neighbors(i).len();
            let d3 = swept[1].1.out_neighbors(i).len();
            let d10 = swept[2].1.out_neighbors(i).len();
            assert!(d1 <= d3 && d3 <= d10);
        }
    }

    #[test]
    fn k_sweep_handles_empty_population() {
        let swept = orthogonal_k_sweep(&[], MetricKind::L1, &[1, 2]);
        assert_eq!(swept.len(), 2);
        assert!(swept[0].1.is_empty());
    }

    #[test]
    fn equilibrium_is_insertion_order_independent() {
        // The equilibrium is a function of the point set only: permuting
        // peer order permutes the graph accordingly.
        let population = peers(25, 2, 23);
        let g1 = equilibrium(&population, &EmptyRectSelection);
        let mut reversed: Vec<PeerInfo> = population.clone();
        reversed.reverse();
        let g2 = equilibrium(&reversed, &EmptyRectSelection);
        let n = population.len();
        for i in 0..n {
            let mapped: Vec<usize> = g2
                .out_neighbors(n - 1 - i)
                .iter()
                .map(|&j| n - 1 - j)
                .rev()
                .collect();
            assert_eq!(g1.out_neighbors(i), &mapped[..], "peer {i}");
        }
    }
}
