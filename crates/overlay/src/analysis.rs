//! Structural analysis of converged overlays.
//!
//! Beyond the degree measurements of Fig. 1a/1c, an overlay's usefulness
//! for multicast embedding depends on its hop distances, clustering and
//! how faithfully hops track geometric distance. This module computes
//! those properties; the CLI and the analysis example report them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use geocast_geom::{Metric, MetricKind};

use crate::graph::OverlayGraph;
use crate::peer::PeerInfo;

/// A structural profile of an overlay topology.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayProfile {
    /// Number of peers.
    pub peers: usize,
    /// Directed edges (selections).
    pub directed_edges: usize,
    /// Undirected links (mutual closure).
    pub undirected_edges: usize,
    /// Minimum / mean / maximum undirected degree.
    pub degree_min: usize,
    /// Mean undirected degree.
    pub degree_mean: f64,
    /// Maximum undirected degree.
    pub degree_max: usize,
    /// Fraction of selections that are mutual.
    pub link_symmetry: f64,
    /// `true` if all peers are mutually reachable.
    pub connected: bool,
    /// Mean hop distance over sampled pairs.
    pub mean_hop_distance: f64,
    /// Largest hop distance observed over sampled sources (lower bound
    /// on the diameter; exact when every source is sampled).
    pub hop_eccentricity_max: usize,
    /// Mean local clustering coefficient.
    pub clustering_coefficient: f64,
}

/// Computes an overlay profile. `sample_sources` bounds the number of
/// BFS sources used for distance statistics (all peers when `None`),
/// chosen deterministically from `seed`.
///
/// # Panics
///
/// Panics if the graph is empty.
#[must_use]
pub fn profile(graph: &OverlayGraph, sample_sources: Option<usize>, seed: u64) -> OverlayProfile {
    assert!(!graph.is_empty(), "cannot profile an empty overlay");
    let n = graph.len();
    let adj = graph.undirected_closure();
    let degrees: Vec<usize> = (0..n).map(|i| adj.out_neighbors(i).len()).collect();
    let undirected_edges = degrees.iter().sum::<usize>() / 2;

    // Symmetry: fraction of directed selections whose reverse exists.
    let mut mutual = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for &j in graph.out_neighbors(i) {
            total += 1;
            if graph.out_neighbors(j).binary_search(&i).is_ok() {
                mutual += 1;
            }
        }
    }
    let link_symmetry = if total == 0 {
        1.0
    } else {
        mutual as f64 / total as f64
    };

    // Hop distances over sampled sources.
    let mut rng = StdRng::seed_from_u64(seed);
    let sources: Vec<usize> = match sample_sources {
        Some(k) if k < n => {
            let mut picked: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.random_range(i..n);
                picked.swap(i, j);
            }
            picked.truncate(k);
            picked
        }
        _ => (0..n).collect(),
    };
    let mut connected = true;
    let mut hop_sum = 0u64;
    let mut hop_count = 0u64;
    let mut ecc_max = 0usize;
    for &s in &sources {
        let dist = graph.bfs_distances(s);
        for (i, d) in dist.iter().enumerate() {
            match d {
                Some(d) => {
                    if i != s {
                        hop_sum += *d as u64;
                        hop_count += 1;
                        ecc_max = ecc_max.max(*d);
                    }
                }
                None => connected = false,
            }
        }
    }
    let mean_hop_distance = if hop_count == 0 {
        0.0
    } else {
        hop_sum as f64 / hop_count as f64
    };

    // Local clustering: fraction of a peer's neighbour pairs that are
    // themselves linked.
    let mut clustering_sum = 0.0;
    let mut clustering_count = 0usize;
    for i in 0..n {
        let nbrs = adj.out_neighbors(i);
        if nbrs.len() < 2 {
            continue;
        }
        let mut closed = 0usize;
        let mut pairs = 0usize;
        for (a_idx, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[a_idx + 1..] {
                pairs += 1;
                if adj.out_neighbors(a).binary_search(&b).is_ok() {
                    closed += 1;
                }
            }
        }
        clustering_sum += closed as f64 / pairs as f64;
        clustering_count += 1;
    }
    let clustering_coefficient = if clustering_count == 0 {
        0.0
    } else {
        clustering_sum / clustering_count as f64
    };

    OverlayProfile {
        peers: n,
        directed_edges: graph.directed_edge_count(),
        undirected_edges,
        degree_min: degrees.iter().copied().min().unwrap_or(0),
        degree_mean: degrees.iter().sum::<usize>() as f64 / n as f64,
        degree_max: degrees.iter().copied().max().unwrap_or(0),
        link_symmetry,
        connected,
        mean_hop_distance,
        hop_eccentricity_max: ecc_max,
        clustering_coefficient,
    }
}

/// Geometric stretch: for sampled peer pairs, the ratio between the
/// overlay hop distance and the (normalised) geometric distance —
/// quantifying how well hops track the virtual coordinates. Returns the
/// mean ratio of hop distance to `dist / mean_link_length` (values near
/// 1 mean hops are geometrically efficient).
///
/// # Panics
///
/// Panics if sizes disagree or fewer than 2 peers exist.
#[must_use]
pub fn geometric_stretch(
    peers: &[PeerInfo],
    graph: &OverlayGraph,
    metric: MetricKind,
    pairs: usize,
    seed: u64,
) -> f64 {
    assert_eq!(peers.len(), graph.len(), "peer/overlay size mismatch");
    assert!(peers.len() >= 2, "stretch needs at least two peers");
    let adj = graph.undirected_closure();

    // Mean geometric length of an overlay link, the natural yardstick.
    let mut link_len_sum = 0.0;
    let mut link_count = 0usize;
    for i in 0..peers.len() {
        for &j in adj.out_neighbors(i) {
            if j > i {
                link_len_sum += metric.dist(peers[i].point(), peers[j].point());
                link_count += 1;
            }
        }
    }
    if link_count == 0 {
        return f64::INFINITY;
    }
    let mean_link = link_len_sum / link_count as f64;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut ratio_sum = 0.0;
    let mut measured = 0usize;
    for _ in 0..pairs {
        let a = rng.random_range(0..peers.len());
        let b = rng.random_range(0..peers.len());
        if a == b {
            continue;
        }
        let Some(hops) = graph.bfs_distances(a)[b] else {
            continue;
        };
        let geo = metric.dist(peers[a].point(), peers[b].point());
        if geo > 0.0 {
            ratio_sum += hops as f64 / (geo / mean_link);
            measured += 1;
        }
    }
    if measured == 0 {
        f64::INFINITY
    } else {
        ratio_sum / measured as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::select::EmptyRectSelection;
    use geocast_geom::gen::uniform_points;

    fn overlay(n: usize, seed: u64) -> (Vec<PeerInfo>, OverlayGraph) {
        let peers = PeerInfo::from_point_set(&uniform_points(n, 2, 1000.0, seed));
        let graph = oracle::equilibrium(&peers, &EmptyRectSelection);
        (peers, graph)
    }

    #[test]
    fn profile_of_equilibrium_overlay_is_sane() {
        let (_, graph) = overlay(80, 1);
        let p = profile(&graph, None, 0);
        assert_eq!(p.peers, 80);
        assert!(p.connected);
        assert_eq!(p.link_symmetry, 1.0, "empty-rect equilibrium is symmetric");
        assert!(p.degree_min >= 1);
        assert!(p.degree_mean > 1.0);
        assert!(p.degree_max >= p.degree_min);
        assert!(p.mean_hop_distance >= 1.0);
        assert!(p.hop_eccentricity_max >= p.mean_hop_distance as usize);
        assert!((0.0..=1.0).contains(&p.clustering_coefficient));
    }

    #[test]
    fn sampled_profile_matches_exhaustive_on_connectivity() {
        let (_, graph) = overlay(60, 3);
        let full = profile(&graph, None, 0);
        let sampled = profile(&graph, Some(10), 7);
        assert_eq!(full.connected, sampled.connected);
        assert_eq!(full.degree_max, sampled.degree_max);
        // Sampled mean hop distance approximates the exhaustive one.
        assert!((full.mean_hop_distance - sampled.mean_hop_distance).abs() < 1.5);
    }

    #[test]
    fn profile_detects_disconnection() {
        let graph = OverlayGraph::from_out_neighbors(vec![vec![1], vec![0], vec![]]);
        let p = profile(&graph, None, 0);
        assert!(!p.connected);
    }

    #[test]
    fn path_graph_statistics_are_exact() {
        // 0 - 1 - 2: mean hops = (1+2+1+1+2+1)/6 = 4/3, ecc 2, clustering 0.
        let graph = OverlayGraph::from_out_neighbors(vec![vec![1], vec![0, 2], vec![1]]);
        let p = profile(&graph, None, 0);
        assert!((p.mean_hop_distance - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.hop_eccentricity_max, 2);
        assert_eq!(p.clustering_coefficient, 0.0);
        assert_eq!(p.undirected_edges, 2);
    }

    #[test]
    fn triangle_has_full_clustering() {
        let graph = OverlayGraph::from_out_neighbors(vec![vec![1, 2], vec![0, 2], vec![0, 1]]);
        let p = profile(&graph, None, 0);
        assert_eq!(p.clustering_coefficient, 1.0);
        assert_eq!(p.mean_hop_distance, 1.0);
    }

    #[test]
    fn stretch_is_finite_and_reasonable_on_equilibrium() {
        let (peers, graph) = overlay(100, 5);
        let s = geometric_stretch(&peers, &graph, MetricKind::L1, 200, 11);
        assert!(s.is_finite());
        // Hops should track geometry within a small constant factor on
        // the frontier overlay.
        assert!(s > 0.3 && s < 10.0, "stretch {s}");
    }

    #[test]
    fn stretch_of_linkless_graph_is_infinite() {
        let peers = PeerInfo::from_point_set(&uniform_points(3, 2, 100.0, 7));
        let graph = OverlayGraph::from_out_neighbors(vec![vec![], vec![], vec![]]);
        assert_eq!(
            geometric_stretch(&peers, &graph, MetricKind::L1, 10, 0),
            f64::INFINITY
        );
    }

    #[test]
    fn stretch_is_seed_deterministic() {
        let (peers, graph) = overlay(50, 9);
        let a = geometric_stretch(&peers, &graph, MetricKind::L2, 100, 3);
        let b = geometric_stretch(&peers, &graph, MetricKind::L2, 100, 3);
        assert_eq!(a, b);
    }
}
