//! Neighbour-selection methods.
//!
//! A neighbour-selection method is the pure heart of the overlay: given a
//! peer `P` and the candidate set `I(P)` it has gossip knowledge of,
//! produce the overlay out-neighbours of `P`. The paper requires that, as
//! long as membership is stable, iterating a method converges to an
//! equilibrium — all methods here are deterministic functions of
//! `(P, I(P))`, so a fixpoint of the gossip loop is exactly a topology on
//! which re-selection changes nothing.
//!
//! Implemented methods:
//!
//! * [`HyperplanesSelection`] — the generic method of §1: `H` hyperplanes
//!   through `P` divide space into regions; keep the `K` closest
//!   candidates per region. Instances: [`HyperplanesSelection::orthogonal`]
//!   (the *Orthogonal Hyperplanes* method), [`HyperplanesSelection::signed`]
//!   (coefficients in `{-1, 0, +1}`), and [`HyperplanesSelection::k_closest`]
//!   (`H = 0`).
//! * [`EmptyRectSelection`] — the §2 simulation's rule: keep `Q` iff the
//!   axis-aligned rectangle spanned by `P` and `Q` contains no other
//!   candidate.

mod empty_rect;
mod hyperplanes;

pub use empty_rect::EmptyRectSelection;
pub use hyperplanes::HyperplanesSelection;

use geocast_geom::{GridIndex, MetricKind};

use crate::peer::PeerInfo;

/// How a selection rule's geometry can be exploited by the sharded
/// topology store ([`crate::shard`]): which per-shard shortlist query
/// answers it and which cross-shard skip test is sound for it.
///
/// The profile never affects *what* is selected — only how many shard
/// indexes a cross-shard selection has to interrogate. Rules that fit
/// neither shape run under [`ShardProfile::Generic`], which queries
/// every shard brute-force (still exact, no pruning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardProfile {
    /// The §2 empty-rectangle rule: shard shortlists are per-orthant
    /// Pareto frontiers, and a whole shard is skippable when one
    /// already-collected candidate rect-dominates its entire uncovered
    /// bounding box.
    EmptyRect,
    /// Per-orthant `K`-closest under `metric` (the *Orthogonal
    /// Hyperplanes* method): shard shortlists are per-orthant KNN, and
    /// a shard is skippable when its uncovered box lies in a single
    /// saturated orthant strictly beyond the `K`-th collected distance.
    OrthantTopK {
        /// Per-region selection budget.
        k: usize,
        /// Ranking metric.
        metric: MetricKind,
    },
    /// No exploitable shape: every shard is queried by brute force.
    Generic,
}

/// Shared acceleration state for batch selection over a fixed peer
/// population ([`NeighborSelection::select_in`]).
///
/// Built once per topology construction (by [`crate::oracle`]) and
/// shared by every per-peer call; methods that cannot exploit it simply
/// ignore it.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelectContext<'a> {
    index: Option<&'a GridIndex>,
    ids_in_slice_order: bool,
    departed: Option<&'a [bool]>,
}

impl<'a> SelectContext<'a> {
    /// A context with no acceleration: every `select_in` call takes its
    /// brute-force path.
    #[must_use]
    pub fn without_index() -> Self {
        SelectContext {
            index: None,
            ids_in_slice_order: false,
            departed: None,
        }
    }

    /// A context backed by a spatial index built over exactly the peer
    /// slice handed to `select_in`, in the same order.
    ///
    /// `ids_in_slice_order` must be `true` iff `peers[j].id().index() == j`
    /// for every `j` (check with [`ids_in_slice_order`]); it gates
    /// accelerated paths whose distance tie-breaking uses slice
    /// positions in place of peer ids.
    #[must_use]
    pub fn with_index(index: &'a GridIndex, ids_in_slice_order: bool) -> Self {
        SelectContext {
            index: Some(index),
            ids_in_slice_order,
            departed: None,
        }
    }

    /// Marks slice positions as departed: masked candidates are skipped
    /// by every selection path ([`crate::TopologyStore`]'s churn
    /// bookkeeping). Index-backed paths expect the same peers to be
    /// tombstoned in the index; the brute path filters by the mask.
    ///
    /// # Panics
    ///
    /// `select_in` panics later if the mask is shorter than the peer
    /// slice.
    #[must_use]
    pub fn masked(mut self, departed: &'a [bool]) -> Self {
        self.departed = Some(departed);
        self
    }

    /// The spatial index over the peer slice, if one was built.
    #[must_use]
    pub fn index(&self) -> Option<&'a GridIndex> {
        self.index
    }

    /// `true` if peer ids coincide with slice positions.
    #[must_use]
    pub fn ids_in_slice_order(&self) -> bool {
        self.ids_in_slice_order
    }

    /// The departed mask, if one was set.
    #[must_use]
    pub fn departed(&self) -> Option<&'a [bool]> {
        self.departed
    }
}

/// `true` iff every peer's id equals its slice position — the standard
/// experiment workload shape ([`PeerInfo::from_point_set`]), under which
/// id-based and position-based distance tie-breaking agree.
#[must_use]
pub fn ids_in_slice_order(peers: &[PeerInfo]) -> bool {
    peers.iter().enumerate().all(|(j, p)| p.id().index() == j)
}

/// The uniform brute-force batch path: materialize the candidate slice
/// (everyone but `i`, minus any departed-mask exclusions), run
/// [`NeighborSelection::select`], and translate candidate indices back
/// to slice positions. This is the one place the self-gap re-indexing
/// lives.
pub(crate) fn select_in_brute<S: NeighborSelection + ?Sized>(
    selection: &S,
    peers: &[PeerInfo],
    i: usize,
    ctx: &SelectContext<'_>,
) -> Vec<usize> {
    match ctx.departed() {
        None => {
            let candidates: Vec<&PeerInfo> = peers
                .iter()
                .enumerate()
                .filter_map(|(j, p)| (j != i).then_some(p))
                .collect();
            selection
                .select(&peers[i], &candidates)
                .into_iter()
                .map(|ci| if ci < i { ci } else { ci + 1 }) // undo the self-gap
                .collect()
        }
        Some(departed) => {
            // Masked populations have irregular gaps: carry the explicit
            // candidate-position table instead of the self-gap dance.
            let positions: Vec<usize> = (0..peers.len())
                .filter(|&j| j != i && !departed[j])
                .collect();
            let candidates: Vec<&PeerInfo> = positions.iter().map(|&j| &peers[j]).collect();
            selection
                .select(&peers[i], &candidates)
                .into_iter()
                .map(|ci| positions[ci])
                .collect()
        }
    }
}

/// A neighbour-selection method: a deterministic map from
/// `(peer, candidate set)` to selected out-neighbours.
///
/// `candidates` must not contain the peer itself; the returned values are
/// indices into `candidates`, sorted ascending.
pub trait NeighborSelection {
    /// Selects overlay out-neighbours of `who` among `candidates`.
    fn select(&self, who: &PeerInfo, candidates: &[&PeerInfo]) -> Vec<usize>;

    /// Batch path: selects the out-neighbours of `peers[i]` among all
    /// other peers of the slice, returning slice positions sorted
    /// ascending.
    ///
    /// Semantically identical to running [`NeighborSelection::select`]
    /// on the candidate slice `peers \ {peers[i]}` (property tests
    /// assert equality); implementations override it to answer from
    /// `ctx`'s spatial index without materializing the `O(N)` candidate
    /// vector per peer.
    fn select_in(&self, peers: &[PeerInfo], i: usize, ctx: &SelectContext<'_>) -> Vec<usize> {
        select_in_brute(self, peers, i, ctx)
    }

    /// Human-readable method name for reports.
    fn name(&self) -> String;

    /// How the sharded store may prune cross-shard queries for this
    /// rule (see [`ShardProfile`]). The default claims no exploitable
    /// shape, which is always sound.
    fn shard_profile(&self) -> ShardProfile {
        ShardProfile::Generic
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use geocast_geom::gen::uniform_points;

    use crate::peer::PeerInfo;

    /// A reproducible peer population for selection tests.
    pub fn peers(n: usize, dim: usize, seed: u64) -> Vec<PeerInfo> {
        PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed))
    }

    /// Borrowed candidate list excluding peer `skip`.
    pub fn candidates_excluding(peers: &[PeerInfo], skip: usize) -> Vec<&PeerInfo> {
        peers
            .iter()
            .enumerate()
            .filter_map(|(i, p)| (i != skip).then_some(p))
            .collect()
    }
}
