//! Neighbour-selection methods.
//!
//! A neighbour-selection method is the pure heart of the overlay: given a
//! peer `P` and the candidate set `I(P)` it has gossip knowledge of,
//! produce the overlay out-neighbours of `P`. The paper requires that, as
//! long as membership is stable, iterating a method converges to an
//! equilibrium — all methods here are deterministic functions of
//! `(P, I(P))`, so a fixpoint of the gossip loop is exactly a topology on
//! which re-selection changes nothing.
//!
//! Implemented methods:
//!
//! * [`HyperplanesSelection`] — the generic method of §1: `H` hyperplanes
//!   through `P` divide space into regions; keep the `K` closest
//!   candidates per region. Instances: [`HyperplanesSelection::orthogonal`]
//!   (the *Orthogonal Hyperplanes* method), [`HyperplanesSelection::signed`]
//!   (coefficients in `{-1, 0, +1}`), and [`HyperplanesSelection::k_closest`]
//!   (`H = 0`).
//! * [`EmptyRectSelection`] — the §2 simulation's rule: keep `Q` iff the
//!   axis-aligned rectangle spanned by `P` and `Q` contains no other
//!   candidate.

mod empty_rect;
mod hyperplanes;

pub use empty_rect::EmptyRectSelection;
pub use hyperplanes::HyperplanesSelection;

use crate::peer::PeerInfo;

/// A neighbour-selection method: a deterministic map from
/// `(peer, candidate set)` to selected out-neighbours.
///
/// `candidates` must not contain the peer itself; the returned values are
/// indices into `candidates`, sorted ascending.
pub trait NeighborSelection {
    /// Selects overlay out-neighbours of `who` among `candidates`.
    fn select(&self, who: &PeerInfo, candidates: &[&PeerInfo]) -> Vec<usize>;

    /// Human-readable method name for reports.
    fn name(&self) -> String;
}

#[cfg(test)]
pub(crate) mod test_support {
    use geocast_geom::gen::uniform_points;

    use crate::peer::PeerInfo;

    /// A reproducible peer population for selection tests.
    pub fn peers(n: usize, dim: usize, seed: u64) -> Vec<PeerInfo> {
        PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed))
    }

    /// Borrowed candidate list excluding peer `skip`.
    pub fn candidates_excluding(peers: &[PeerInfo], skip: usize) -> Vec<&PeerInfo> {
        peers
            .iter()
            .enumerate()
            .filter_map(|(i, p)| (i != skip).then_some(p))
            .collect()
    }
}
