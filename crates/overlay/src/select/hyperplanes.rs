use std::collections::BTreeMap;

use geocast_geom::{Arrangement, Metric, MetricKind, RegionKey};

use crate::peer::PeerInfo;
use crate::select::{select_in_brute, NeighborSelection, SelectContext, ShardProfile};

/// The paper's generic *Hyperplanes* neighbour-selection method.
///
/// A set of `H` hyperplanes, all containing the (translated) origin,
/// divides the space around peer `P` into regions; `P` keeps the `K`
/// closest candidates from each region under a configurable distance
/// function. Ties in distance are broken by peer id, keeping selection
/// deterministic.
///
/// The three instances named in the paper:
///
/// * [`HyperplanesSelection::orthogonal`] — `D` axis planes `x(i) = 0`
///   (regions are the `2^D` orthants). Used by the §3 stability-tree
///   experiments.
/// * [`HyperplanesSelection::signed`] — one plane per coefficient vector
///   `a ∈ {-1, 0, +1}^D`.
/// * [`HyperplanesSelection::k_closest`] — `H = 0`: one region, keep the
///   `K` closest candidates overall.
///
/// # Example
///
/// ```
/// use geocast_overlay::select::{HyperplanesSelection, NeighborSelection};
/// use geocast_overlay::{PeerId, PeerInfo};
/// use geocast_geom::{MetricKind, Point};
///
/// # fn main() -> Result<(), geocast_geom::GeomError> {
/// let sel = HyperplanesSelection::orthogonal(2, 1, MetricKind::L1);
/// let p = PeerInfo::new(PeerId(0), Point::new(vec![0.0, 0.0])?);
/// let ne = PeerInfo::new(PeerId(1), Point::new(vec![1.0, 1.0])?);
/// let ne_far = PeerInfo::new(PeerId(2), Point::new(vec![5.0, 5.0])?);
/// let sw = PeerInfo::new(PeerId(3), Point::new(vec![-1.0, -1.0])?);
/// // One per populated orthant: the close north-east peer and the south-west one.
/// assert_eq!(sel.select(&p, &[&ne, &ne_far, &sw]), vec![0, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HyperplanesSelection {
    arrangement: Arrangement,
    k: usize,
    metric: MetricKind,
}

impl HyperplanesSelection {
    /// Builds the method from an explicit arrangement.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (a method that selects nothing cannot form an
    /// overlay).
    #[must_use]
    pub fn new(arrangement: Arrangement, k: usize, metric: MetricKind) -> Self {
        assert!(k > 0, "K must be at least 1");
        HyperplanesSelection {
            arrangement,
            k,
            metric,
        }
    }

    /// Instance 1: the *Orthogonal Hyperplanes* method.
    #[must_use]
    pub fn orthogonal(dim: usize, k: usize, metric: MetricKind) -> Self {
        Self::new(Arrangement::orthogonal(dim), k, metric)
    }

    /// Instance 2: coefficients in `{-1, 0, +1}`.
    #[must_use]
    pub fn signed(dim: usize, k: usize, metric: MetricKind) -> Self {
        Self::new(Arrangement::signed(dim), k, metric)
    }

    /// Instance 3: `H = 0`, the *K-closest* method.
    #[must_use]
    pub fn k_closest(dim: usize, k: usize, metric: MetricKind) -> Self {
        Self::new(Arrangement::none(dim), k, metric)
    }

    /// The per-region selection budget `K`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The distance function used for ranking.
    #[must_use]
    pub fn metric(&self) -> MetricKind {
        self.metric
    }

    /// The underlying arrangement.
    #[must_use]
    pub fn arrangement(&self) -> &Arrangement {
        &self.arrangement
    }
}

impl NeighborSelection for HyperplanesSelection {
    fn select(&self, who: &PeerInfo, candidates: &[&PeerInfo]) -> Vec<usize> {
        let mut regions: BTreeMap<RegionKey, Vec<usize>> = BTreeMap::new();
        for (i, cand) in candidates.iter().enumerate() {
            let key = self.arrangement.classify(who.point(), cand.point());
            regions.entry(key).or_default().push(i);
        }
        let mut picked = Vec::new();
        for group in regions.values_mut() {
            group.sort_by(|&a, &b| {
                let da = self.metric.dist(who.point(), candidates[a].point());
                let db = self.metric.dist(who.point(), candidates[b].point());
                da.total_cmp(&db)
                    .then_with(|| candidates[a].id().cmp(&candidates[b].id()))
            });
            picked.extend(group.iter().take(self.k));
        }
        picked.sort_unstable();
        picked
    }

    fn select_in(&self, peers: &[PeerInfo], i: usize, ctx: &SelectContext<'_>) -> Vec<usize> {
        // The index answers per-orthant K-nearest queries, which match
        // this method exactly when (a) the arrangement is the orthogonal
        // one (regions = orthants), and (b) distance ties broken by peer
        // id coincide with ties broken by slice position. The index
        // declines (None) on coordinate collisions, where region
        // classification and orthant classification part ways.
        if let Some(index) = ctx.index() {
            if ctx.ids_in_slice_order() && self.arrangement.is_orthogonal() {
                if let Some(groups) = index.k_nearest_per_orthant(i, self.k, self.metric) {
                    let mut picked: Vec<usize> = groups.into_iter().flatten().collect();
                    picked.sort_unstable();
                    return picked;
                }
            }
        }
        select_in_brute(self, peers, i, ctx)
    }

    fn name(&self) -> String {
        format!(
            "hyperplanes(H={}, K={}, {})",
            self.arrangement.len(),
            self.k,
            self.metric
        )
    }

    fn shard_profile(&self) -> ShardProfile {
        // Only the orthogonal arrangement maps regions onto orthants,
        // which is what the per-shard KNN shortlist query answers;
        // other arrangements fall back to the brute (but exact) path.
        if self.arrangement.is_orthogonal() {
            ShardProfile::OrthantTopK {
                k: self.k,
                metric: self.metric,
            }
        } else {
            ShardProfile::Generic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::test_support::{candidates_excluding, peers};
    use geocast_geom::Orthant;

    #[test]
    fn orthogonal_keeps_at_most_k_per_orthant() {
        let population = peers(60, 3, 17);
        let who = &population[0];
        let cands = candidates_excluding(&population, 0);
        for k in [1usize, 2, 5] {
            let sel = HyperplanesSelection::orthogonal(3, k, MetricKind::L1);
            let picked = sel.select(who, &cands);
            let mut per_orthant: BTreeMap<u32, usize> = BTreeMap::new();
            for &ci in &picked {
                let o = Orthant::classify(who.point(), cands[ci].point()).unwrap();
                *per_orthant.entry(o.bits()).or_default() += 1;
            }
            assert!(per_orthant.values().all(|&c| c <= k), "K={k} violated");
        }
    }

    #[test]
    fn orthogonal_picks_closest_candidate_per_orthant() {
        let population = peers(50, 2, 23);
        let who = &population[0];
        let cands = candidates_excluding(&population, 0);
        let sel = HyperplanesSelection::orthogonal(2, 1, MetricKind::L1);
        let picked = sel.select(who, &cands);
        // For every picked candidate, nothing in its orthant is closer.
        for &ci in &picked {
            let o = Orthant::classify(who.point(), cands[ci].point()).unwrap();
            let d = MetricKind::L1.dist(who.point(), cands[ci].point());
            for (oi, other) in cands.iter().enumerate() {
                if oi == ci {
                    continue;
                }
                if Orthant::classify(who.point(), other.point()).unwrap() == o {
                    assert!(
                        MetricKind::L1.dist(who.point(), other.point()) >= d,
                        "picked candidate is not the orthant minimum"
                    );
                }
            }
        }
    }

    #[test]
    fn every_populated_orthant_is_represented() {
        let population = peers(80, 2, 31);
        let who = &population[5];
        let cands = candidates_excluding(&population, 5);
        let sel = HyperplanesSelection::orthogonal(2, 1, MetricKind::L2);
        let picked = sel.select(who, &cands);
        let populated: std::collections::BTreeSet<u32> = cands
            .iter()
            .map(|c| Orthant::classify(who.point(), c.point()).unwrap().bits())
            .collect();
        let represented: std::collections::BTreeSet<u32> = picked
            .iter()
            .map(|&ci| {
                Orthant::classify(who.point(), cands[ci].point())
                    .unwrap()
                    .bits()
            })
            .collect();
        assert_eq!(populated, represented);
    }

    #[test]
    fn k_closest_equals_truncated_sort() {
        let population = peers(40, 4, 41);
        let who = &population[0];
        let cands = candidates_excluding(&population, 0);
        let sel = HyperplanesSelection::k_closest(4, 7, MetricKind::L1);
        let picked = sel.select(who, &cands);
        assert_eq!(picked.len(), 7);
        let mut order: Vec<usize> = (0..cands.len()).collect();
        order.sort_by(|&a, &b| {
            MetricKind::L1
                .dist(who.point(), cands[a].point())
                .total_cmp(&MetricKind::L1.dist(who.point(), cands[b].point()))
        });
        let mut expected: Vec<usize> = order[..7].to_vec();
        expected.sort_unstable();
        assert_eq!(picked, expected);
    }

    #[test]
    fn fewer_candidates_than_k_selects_all() {
        let population = peers(4, 2, 2);
        let who = &population[0];
        let cands = candidates_excluding(&population, 0);
        let sel = HyperplanesSelection::k_closest(2, 50, MetricKind::L1);
        assert_eq!(sel.select(who, &cands), vec![0, 1, 2]);
    }

    #[test]
    fn signed_refines_orthogonal() {
        // The signed arrangement contains the axis planes, so its regions
        // are sub-regions of orthants: with K=1 it selects at least as
        // many neighbours as orthogonal with K=1.
        let population = peers(100, 2, 53);
        let who = &population[0];
        let cands = candidates_excluding(&population, 0);
        let orth = HyperplanesSelection::orthogonal(2, 1, MetricKind::L1).select(who, &cands);
        let signed = HyperplanesSelection::signed(2, 1, MetricKind::L1).select(who, &cands);
        assert!(signed.len() >= orth.len());
    }

    #[test]
    fn selection_is_deterministic() {
        let population = peers(30, 3, 60);
        let who = &population[0];
        let cands = candidates_excluding(&population, 0);
        let sel = HyperplanesSelection::orthogonal(3, 2, MetricKind::L1);
        assert_eq!(sel.select(who, &cands), sel.select(who, &cands));
    }

    #[test]
    #[should_panic(expected = "K must be at least 1")]
    fn zero_k_rejected() {
        let _ = HyperplanesSelection::orthogonal(2, 0, MetricKind::L1);
    }

    #[test]
    fn name_reports_parameters() {
        let sel = HyperplanesSelection::orthogonal(3, 2, MetricKind::L1);
        assert_eq!(sel.name(), "hyperplanes(H=3, K=2, L1)");
    }

    #[test]
    fn accessors_expose_configuration() {
        let sel = HyperplanesSelection::signed(2, 3, MetricKind::L2);
        assert_eq!(sel.k(), 3);
        assert_eq!(sel.metric(), MetricKind::L2);
        assert_eq!(sel.arrangement().len(), 4);
    }
}
