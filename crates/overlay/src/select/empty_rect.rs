use geocast_geom::dominance;

use crate::peer::PeerInfo;
use crate::select::{select_in_brute, NeighborSelection, SelectContext, ShardProfile};

/// The §2 neighbour-selection rule: `Q ∈ I(P)` becomes a neighbour iff
/// the axis-aligned hyper-rectangle having `P` and `Q` as corners
/// contains no other member of `I(P)` in its interior.
///
/// Implemented as per-orthant Pareto frontiers
/// ([`geocast_geom::dominance::empty_rect_neighbors`]); the equivalence
/// with the definitional rule is property-tested in `geocast-geom`.
///
/// Selection under this rule is *symmetric at equilibrium*: when `P` and
/// `Q` see the same candidate universe, the spanned rectangle (and hence
/// the emptiness test) is identical from both ends, so overlay links are
/// mutual — tests assert this on the oracle topology.
///
/// # Example
///
/// ```
/// use geocast_overlay::select::{EmptyRectSelection, NeighborSelection};
/// use geocast_overlay::{PeerId, PeerInfo};
/// use geocast_geom::Point;
///
/// # fn main() -> Result<(), geocast_geom::GeomError> {
/// let p = PeerInfo::new(PeerId(0), Point::new(vec![0.0, 0.0])?);
/// let near = PeerInfo::new(PeerId(1), Point::new(vec![1.0, 1.0])?);
/// let far = PeerInfo::new(PeerId(2), Point::new(vec![2.0, 2.0])?); // shadowed by `near`
/// let picked = EmptyRectSelection.select(&p, &[&near, &far]);
/// assert_eq!(picked, vec![0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmptyRectSelection;

impl NeighborSelection for EmptyRectSelection {
    fn select(&self, who: &PeerInfo, candidates: &[&PeerInfo]) -> Vec<usize> {
        dominance::empty_rect_neighbors(who.point(), candidates)
    }

    fn select_in(&self, peers: &[PeerInfo], i: usize, ctx: &SelectContext<'_>) -> Vec<usize> {
        // The frontier is a function of coordinates only (no id
        // tie-breaking), so the index path applies whenever an index
        // exists; it declines (None) on coordinate collisions, exactly
        // when `dominance::empty_rect_neighbors` would fall back to the
        // naive rule, which `select_in_brute` then reproduces.
        if let Some(index) = ctx.index() {
            if let Some(picked) = index.empty_rect_neighbors(i) {
                return picked;
            }
        }
        select_in_brute(self, peers, i, ctx)
    }

    fn name(&self) -> String {
        "empty-rect".to_owned()
    }

    fn shard_profile(&self) -> ShardProfile {
        ShardProfile::EmptyRect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::test_support::{candidates_excluding, peers};
    use geocast_geom::Rect;

    #[test]
    fn selected_rectangles_are_empty_nonselected_are_not() {
        let population = peers(40, 3, 11);
        let cands = candidates_excluding(&population, 0);
        let who = &population[0];
        let picked = EmptyRectSelection.select(who, &cands);
        assert!(!picked.is_empty());
        for (ci, cand) in cands.iter().enumerate() {
            let rect = Rect::spanned_open(who.point(), cand.point()).unwrap();
            let occupied = cands
                .iter()
                .enumerate()
                .any(|(oi, other)| oi != ci && rect.contains(other.point()));
            assert_eq!(
                !occupied,
                picked.contains(&ci),
                "candidate {ci}: emptiness and selection must agree"
            );
        }
    }

    #[test]
    fn selection_is_symmetric_under_shared_knowledge() {
        let population = peers(30, 2, 5);
        // For each ordered pair (i, j): i selects j iff j selects i.
        let selects = |i: usize, j: usize| -> bool {
            let cands = candidates_excluding(&population, i);
            let picked = EmptyRectSelection.select(&population[i], &cands);
            picked
                .iter()
                .any(|&ci| std::ptr::eq(cands[ci], &population[j]))
        };
        for i in 0..population.len() {
            for j in (i + 1)..population.len() {
                assert_eq!(selects(i, j), selects(j, i), "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn single_candidate_is_always_selected() {
        let population = peers(2, 4, 3);
        let cands = candidates_excluding(&population, 0);
        assert_eq!(EmptyRectSelection.select(&population[0], &cands), vec![0]);
    }

    #[test]
    fn no_candidates_no_neighbors() {
        let population = peers(1, 2, 0);
        assert!(EmptyRectSelection.select(&population[0], &[]).is_empty());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(EmptyRectSelection.name(), "empty-rect");
    }
}
