use std::fmt;

use geocast_geom::{Point, PointSet};

/// Globally-unique identifier of a peer.
///
/// In experiments peer ids are dense indices (`PeerId(i)` for the `i`-th
/// inserted peer), which also serve as simulation node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u64);

impl PeerId {
    /// The id as a dense index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

impl From<u64> for PeerId {
    fn from(v: u64) -> Self {
        PeerId(v)
    }
}

/// A peer's network address (public IP and port, per the paper's join
/// description).
///
/// Inside the simulation, addresses are opaque routing tokens derived
/// from the peer id; they exist so the protocol structs carry exactly the
/// information the paper says existence announcements carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeerAddr {
    octets: [u8; 4],
    port: u16,
}

impl PeerAddr {
    /// Derives a deterministic fake address from a peer id.
    #[must_use]
    pub fn from_id(id: PeerId) -> Self {
        let v = id.0;
        PeerAddr {
            octets: [10, (v >> 16) as u8, (v >> 8) as u8, v as u8],
            port: 4000 + (v % 20_000) as u16,
        }
    }

    /// The IPv4 octets.
    #[must_use]
    pub fn octets(&self) -> [u8; 4] {
        self.octets
    }

    /// The port.
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }
}

impl fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets;
        write!(f, "{a}.{b}.{c}.{d}:{}", self.port)
    }
}

/// Everything an existence announcement carries about a peer: identifier
/// (virtual coordinates), id, and network address.
///
/// For §3 stability trees the departure time `T(P)` **is** the first
/// coordinate of the identifier (the paper sets `x(P,1) = T(P)`);
/// [`PeerInfo::departure_time`] reads it back.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerInfo {
    id: PeerId,
    point: Point,
    addr: PeerAddr,
}

impl PeerInfo {
    /// Creates a peer description.
    #[must_use]
    pub fn new(id: PeerId, point: Point) -> Self {
        PeerInfo {
            id,
            addr: PeerAddr::from_id(id),
            point,
        }
    }

    /// Builds dense-id peers from a point set (peer `i` gets `PeerId(i)`),
    /// the standard experiment workload shape.
    #[must_use]
    pub fn from_point_set(points: &PointSet) -> Vec<PeerInfo> {
        points
            .iter()
            .enumerate()
            .map(|(i, p)| PeerInfo::new(PeerId(i as u64), p.clone()))
            .collect()
    }

    /// The peer's id.
    #[must_use]
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The peer's virtual coordinates.
    #[must_use]
    pub fn point(&self) -> &Point {
        &self.point
    }

    /// The peer's network address.
    #[must_use]
    pub fn addr(&self) -> PeerAddr {
        self.addr
    }

    /// The departure time `T(P)` under the §3 embedding
    /// (`x(P,1) = T(P)`), i.e. the first coordinate.
    #[must_use]
    pub fn departure_time(&self) -> f64 {
        self.point[0]
    }
}

impl AsRef<Point> for PeerInfo {
    fn as_ref(&self) -> &Point {
        &self.point
    }
}

impl fmt::Display for PeerInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} {}", self.id, self.addr, self.point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocast_geom::gen::uniform_points;

    #[test]
    fn peer_id_index_roundtrip() {
        assert_eq!(PeerId::from(9u64).index(), 9);
        assert_eq!(PeerId(3).to_string(), "peer3");
    }

    #[test]
    fn addr_is_deterministic_per_id() {
        let a = PeerAddr::from_id(PeerId(300));
        let b = PeerAddr::from_id(PeerId(300));
        let c = PeerAddr::from_id(PeerId(301));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.port() >= 4000);
    }

    #[test]
    fn addr_display_looks_like_socket_addr() {
        let a = PeerAddr::from_id(PeerId(1));
        let s = a.to_string();
        assert!(s.contains(':'), "{s}");
        assert_eq!(s.matches('.').count(), 3, "{s}");
    }

    #[test]
    fn from_point_set_assigns_dense_ids() {
        let points = uniform_points(5, 2, 100.0, 1);
        let peers = PeerInfo::from_point_set(&points);
        assert_eq!(peers.len(), 5);
        for (i, peer) in peers.iter().enumerate() {
            assert_eq!(peer.id().index(), i);
            assert_eq!(peer.point(), &points[i]);
        }
    }

    #[test]
    fn departure_time_reads_first_coordinate() {
        let p = PeerInfo::new(PeerId(0), Point::new(vec![17.5, 3.0]).unwrap());
        assert_eq!(p.departure_time(), 17.5);
    }

    #[test]
    fn as_ref_point_enables_geom_interop() {
        let p = PeerInfo::new(PeerId(0), Point::new(vec![1.0, 2.0]).unwrap());
        let r: &Point = p.as_ref();
        assert_eq!(r[1], 2.0);
    }
}
