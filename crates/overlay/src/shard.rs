//! Region-sharded topology state: the million-peer scale-out path.
//!
//! [`ShardedTopologyStore`] partitions the coordinate space into
//! grid-aligned tiles and gives every tile its own incremental
//! [`GridIndex`], membership tables, and epoch-numbered delta log
//! ([`ShardDeltaLog`]). A [`crate::TopologyStore`] built through
//! [`crate::TopologyStore::from_peers_sharded`] carries this state next
//! to its usual global tables, so every existing consumer (group trees,
//! detect/repair, the data plane) keeps reading the same adjacency,
//! fingerprint and merged delta stream — only the *engine* that
//! computes selections changes.
//!
//! # Halo exchange
//!
//! Each shard mirrors into its index every peer within `halo` (L∞) of
//! its tile — the **halo band**. The band width is a pure performance
//! knob: the guarantee it buys is that every live peer inside
//! `expand(tile_s, halo)` is present in shard `s`'s index, so a peer's
//! **home query** already sees everything near its own tile.
//!
//! # Why the cross-shard fold is exact
//!
//! A peer's selection over the full live population is recovered from
//! per-shard *shortlists* by one final merge-select:
//!
//! 1. **Shortlists keep every winner.** Both shipped rule families are
//!    monotone under candidate restriction: a globally selected
//!    neighbour restricted to any candidate subset containing it is
//!    still selected (an empty rectangle stays empty over a subset; a
//!    per-region top-`K` member stays top-`K` when candidates are
//!    removed). So `shortlist(s) ⊇ winners ∩ members(s)`, and every
//!    live peer is resident in exactly one shard.
//! 2. **Skip tests are sound.** A foreign shard is only skipped when
//!    its *uncovered box* — its conservative bounding box minus the
//!    home halo band — provably contains no winner: for the
//!    empty-rectangle rule, a single home candidate lying strictly
//!    between the peer and the entire box blocks every point in it
//!    (rectangle nesting); for per-orthant top-`K`, the box must fall
//!    in a single saturated orthant strictly beyond the current `K`-th
//!    distance. Any geometry the tests cannot decide — including
//!    coordinate collisions, which make a dimension's sign indefinite —
//!    falls through to querying the shard.
//! 3. **The final merge is a selection over a superset of winners**,
//!    and selections are stable between their own output and the full
//!    candidate set (same monotonicity both ways), so the merged result
//!    equals the single-store selection — byte for byte, tie-breaks
//!    included, because shard-local ids are assigned in ascending
//!    global order.
//!
//! # Churn
//!
//! Joins exploit rule structure instead of the single-store full
//! recheck: under the empty-rectangle rule the affected set of a join
//! is exactly the newcomer's own selection (equilibrium links are
//! mutual, and an eviction witness is always a mutual edge), dropping
//! the per-join cost from `O(N)` selection re-runs to `O(degree)`;
//! per-orthant top-`K` rules prune the recheck scan with a saturation
//! test per peer (`O(degree)` arithmetic, no selection call); other
//! rules keep the exact full recheck. Leaves re-select exactly the
//! departed peer's selectors, as in the single store.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::time::{Duration, Instant};

use geocast_geom::{Metric, MetricKind, Point};

use crate::delta::DeltaKind;
use crate::par;
use crate::peer::{PeerId, PeerInfo};
use crate::select::{NeighborSelection, ShardProfile};
use crate::store::{topology_hash, TopologyStore};

use geocast_geom::GridIndex;

/// How a [`ShardedTopologyStore`] is laid out: shard count, halo band
/// width, and per-shard delta retention.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    shards: usize,
    halo_width: Option<f64>,
    shard_log_capacity: usize,
}

impl ShardConfig {
    /// A configuration with `shards` tiles, an automatic halo width
    /// (a few expected nearest-neighbour spacings, derived from the
    /// bulk population), and default per-shard delta retention.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        ShardConfig {
            shards,
            halo_width: None,
            shard_log_capacity: crate::delta::DEFAULT_DELTA_CAPACITY,
        }
    }

    /// Overrides the halo band width (absolute coordinate units).
    /// Width only affects how many shards a query can prune, never
    /// what is selected.
    ///
    /// # Panics
    ///
    /// Panics unless `width` is finite and non-negative.
    #[must_use]
    pub fn with_halo_width(mut self, width: f64) -> Self {
        assert!(
            width.is_finite() && width >= 0.0,
            "halo width must be finite and non-negative"
        );
        self.halo_width = Some(width);
        self
    }

    /// Overrides the per-shard delta log retention.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_shard_log_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "shard log capacity must be positive");
        self.shard_log_capacity = capacity;
        self
    }

    /// The configured shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }
}

/// The grid tiling of the coordinate domain: per-dimension tile counts
/// whose product is the shard count, over the bulk population's
/// bounding box. Peers outside the domain (late joins) clamp to the
/// nearest tile; exactness never depends on where a peer is assigned.
#[derive(Debug, Clone)]
pub(crate) struct Tiling {
    pub(crate) dim: usize,
    lo: Vec<f64>,
    tile_size: Vec<f64>,
    pub(crate) tiles: Vec<usize>,
    strides: Vec<usize>,
}

impl Tiling {
    fn build(peers: &[PeerInfo], shards: usize) -> Tiling {
        let dim = peers[0].point().dim();
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for p in peers {
            for (d, &x) in p.point().coords().iter().enumerate() {
                lo[d] = lo[d].min(x);
                hi[d] = hi[d].max(x);
            }
        }
        let extents: Vec<f64> = (0..dim).map(|d| (hi[d] - lo[d]).max(0.0)).collect();
        let tiles = factor_tiles(shards, &extents);
        let tile_size: Vec<f64> = (0..dim).map(|d| extents[d] / tiles[d] as f64).collect();
        let mut strides = vec![1usize; dim];
        for d in 1..dim {
            strides[d] = strides[d - 1] * tiles[d - 1];
        }
        Tiling {
            dim,
            lo,
            tile_size,
            tiles,
            strides,
        }
    }

    /// The home shard of a point (clamped to the nearest tile).
    pub(crate) fn shard_of(&self, coords: &[f64]) -> usize {
        let mut idx = 0;
        for (d, &x) in coords.iter().enumerate().take(self.dim) {
            let t = if self.tile_size[d] > 0.0 {
                // Negative and NaN quotients saturate to tile 0.
                (((x - self.lo[d]) / self.tile_size[d]).floor() as usize).min(self.tiles[d] - 1)
            } else {
                0
            };
            idx += t * self.strides[d];
        }
        idx
    }

    /// The geometric box of tile `s` (per-dim closed intervals).
    fn tile_box(&self, s: usize) -> (Vec<f64>, Vec<f64>) {
        let mut lo = Vec::with_capacity(self.dim);
        let mut hi = Vec::with_capacity(self.dim);
        for d in 0..self.dim {
            let t = (s / self.strides[d]) % self.tiles[d];
            lo.push(self.lo[d] + t as f64 * self.tile_size[d]);
            hi.push(self.lo[d] + (t + 1) as f64 * self.tile_size[d]);
        }
        (lo, hi)
    }

    /// Every shard whose halo-expanded tile contains the point — the
    /// home tile plus the mirror targets. Tiles within `halo` form a
    /// contiguous per-dimension index range, so this is a small
    /// cartesian product, never a scan over all shards.
    pub(crate) fn shards_near(&self, coords: &[f64], halo: f64) -> Vec<usize> {
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(self.dim);
        for (d, &c) in coords.iter().enumerate().take(self.dim) {
            let (a, b) = if self.tile_size[d] > 0.0 {
                let ts = self.tile_size[d];
                let x = c - self.lo[d];
                // Saturating casts clamp negative quotients to tile 0.
                let mut a = (((x - halo) / ts).floor() as usize).min(self.tiles[d] - 1);
                let mut b = (((x + halo) / ts).floor() as usize).min(self.tiles[d] - 1);
                // The band is CLOSED on both edges — `uncovered_box`
                // skips a shard on `cover_hi <= g_hi` — but the floor
                // divisions above land one tile short of an exact
                // band-edge tie (e.g. a peer at exactly tile_hi +
                // halo). Re-check the adjacent tiles with the same
                // tile-box arithmetic the skip test uses, so the two
                // boundary semantics always agree.
                while a > 0 && c <= self.lo[d] + a as f64 * ts + halo {
                    a -= 1;
                }
                while b + 1 < self.tiles[d] && c >= self.lo[d] + (b + 1) as f64 * ts - halo {
                    b += 1;
                }
                (a, b)
            } else {
                (0, 0)
            };
            ranges.push((a, b));
        }
        let mut out = vec![0usize];
        for (d, &(a, b)) in ranges.iter().enumerate() {
            let mut next = Vec::with_capacity(out.len() * (b - a + 1));
            for base in &out {
                for t in a..=b {
                    next.push(base + t * self.strides[d]);
                }
            }
            out = next;
        }
        out
    }
}

/// Splits `shards` into per-dimension tile counts: prime factors are
/// assigned, largest first, to the dimension with the widest current
/// tile, so tiles stay as square as the factorization allows.
fn factor_tiles(shards: usize, extents: &[f64]) -> Vec<usize> {
    let dim = extents.len();
    let mut tiles = vec![1usize; dim];
    let mut factors = Vec::new();
    let mut n = shards;
    let mut f = 2usize;
    while f * f <= n {
        while n.is_multiple_of(f) {
            factors.push(f);
            n /= f;
        }
        f += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors.reverse(); // largest first
    for f in factors {
        let mut best = 0usize;
        for d in 1..dim {
            let wd = extents[d] / tiles[d] as f64;
            let wb = extents[best] / tiles[best] as f64;
            if wd > wb {
                best = d;
            }
        }
        tiles[best] *= f;
    }
    tiles
}

/// One tile's worth of state: geometric box, conservative resident
/// bounding box (grow-only), membership tables, spatial index, and the
/// shard-scoped delta log.
#[derive(Debug)]
pub(crate) struct Shard {
    pub(crate) tile_lo: Vec<f64>,
    pub(crate) tile_hi: Vec<f64>,
    /// Grow-only bounding box of every resident ever assigned, unioned
    /// with the tile box — the conservative "where this shard's
    /// residents can be" region the skip tests subtract from.
    pub(crate) cover_lo: Vec<f64>,
    pub(crate) cover_hi: Vec<f64>,
    /// Local id → global id, ascending (insertion order is global id
    /// order, which keeps shard-local distance tie-breaks identical to
    /// global ones).
    pub(crate) members: Vec<usize>,
    /// Global id → local id for every member (residents and mirrors).
    // lint:allow(D001, reason = "global-id -> local-slot lookup on the shortlist hot path; queried by key only, never iterated, so hash order cannot reach replay state")
    pub(crate) local_of: HashMap<usize, usize>,
    /// Global ids of residents ever assigned, ascending (departures
    /// stay listed; the index tombstones them).
    pub(crate) resident_ids: Vec<usize>,
    pub(crate) index: GridIndex,
    pub(crate) log: ShardDeltaLog,
}

impl Shard {
    pub(crate) fn add_member(&mut self, global: usize, point: &Point, resident: bool) {
        let local = self.index.insert(point);
        debug_assert_eq!(local, self.members.len(), "index ids track member ids");
        self.members.push(global);
        self.local_of.insert(global, local);
        if resident {
            self.resident_ids.push(global);
            for (d, &x) in point.coords().iter().enumerate() {
                self.cover_lo[d] = self.cover_lo[d].min(x);
                self.cover_hi[d] = self.cover_hi[d].max(x);
            }
        }
    }

    /// This shard's shortlist for peer `i` at `query`: a candidate set
    /// guaranteed to contain every globally selected neighbour among
    /// the shard's members. Index-answered per profile; any decline
    /// (coordinate collisions, unprofiled rules) falls back to a
    /// per-shard brute selection, which is always a sound shortlist.
    ///
    /// Member infos and departure flags are supplied through accessors
    /// over *local* ids, so the caller can back them with the global
    /// peer tables (the serial engine) or a worker-local replica (the
    /// thread-per-shard runtime) — one implementation for both, which
    /// is what makes the runtime byte-identical by construction.
    pub(crate) fn shortlist<'a>(
        &self,
        profile: ShardProfile,
        selection: &dyn NeighborSelection,
        i: usize,
        query: &PeerInfo,
        info_of: impl Fn(usize) -> &'a PeerInfo,
        departed_local: impl Fn(usize) -> bool,
    ) -> Vec<usize> {
        if self.index.live_len() == 0 {
            return Vec::new();
        }
        let local_skip = self.local_of.get(&i).copied();
        match profile {
            ShardProfile::EmptyRect => {
                let got = match local_skip {
                    Some(li) => self.index.empty_rect_neighbors(li),
                    None => self.index.empty_rect_neighbors_at(query.point(), None),
                };
                if let Some(locals) = got {
                    return locals.into_iter().map(|l| self.members[l]).collect();
                }
            }
            ShardProfile::OrthantTopK { k, metric } => {
                let got = match local_skip {
                    Some(li) => self.index.k_nearest_per_orthant(li, k, metric),
                    None => self
                        .index
                        .k_nearest_per_orthant_at(query.point(), k, metric, None),
                };
                if let Some(groups) = got {
                    return groups
                        .into_iter()
                        .flatten()
                        .map(|l| self.members[l])
                        .collect();
                }
            }
            ShardProfile::Generic => {}
        }
        let cand_locals: Vec<usize> = (0..self.members.len())
            .filter(|&l| self.members[l] != i && !departed_local(l))
            .collect();
        let refs: Vec<&PeerInfo> = cand_locals.iter().map(|&l| info_of(l)).collect();
        selection
            .select(query, &refs)
            .into_iter()
            .map(|ci| self.members[cand_locals[ci]])
            .collect()
    }
}

/// One entry of a shard's delta stream: the shard-local epoch (gap-free
/// per shard), the global store epoch it corresponds to, and the dirty
/// region restricted to the shard's residents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDelta {
    /// Shard-local epoch (the `n`-th mutation that touched this shard).
    pub local_epoch: u64,
    /// The global [`crate::TopologyStore::epoch`] of the mutation.
    pub global_epoch: u64,
    /// The membership event.
    pub kind: DeltaKind,
    /// Dirty peers that are residents of this shard, sorted ascending.
    pub dirty: Vec<usize>,
}

/// A shard-scoped delta log: the subsequence of global mutations that
/// touched a shard's residents, with bounded retention.
///
/// Shard-local epochs are gap-free *per shard*, but consumers track
/// progress in **global** epochs (one cursor works across shards).
/// Because a shard only records the mutations that touched it, a
/// truncated retained suffix is indistinguishable from a sparse stream
/// — the naive "return whatever is retained after the cursor" answer
/// silently drops evicted deltas. This log therefore remembers the
/// highest global epoch it ever evicted and answers `None` whenever a
/// consumer's cursor predates it: the deterministic full-resync signal
/// (regression-tested in `laggards_get_a_resync_signal_not_a_gap`).
#[derive(Debug, Clone)]
pub struct ShardDeltaLog {
    deltas: VecDeque<ShardDelta>,
    capacity: usize,
    local_head: u64,
    global_head: u64,
    /// Highest global epoch among evicted deltas (`None` = nothing
    /// evicted yet).
    evicted_global: Option<u64>,
}

impl ShardDeltaLog {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shard delta log capacity must be positive");
        ShardDeltaLog {
            deltas: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            local_head: 0,
            global_head: 0,
            evicted_global: None,
        }
    }

    pub(crate) fn record(&mut self, kind: DeltaKind, dirty: Vec<usize>, global_epoch: u64) {
        assert!(global_epoch > self.global_head, "global epochs ascend");
        self.local_head += 1;
        self.global_head = global_epoch;
        if self.deltas.len() == self.capacity {
            let evicted = self.deltas.pop_front().expect("at capacity");
            self.evicted_global = Some(evicted.global_epoch);
        }
        self.deltas.push_back(ShardDelta {
            local_epoch: self.local_head,
            global_epoch,
            kind,
            dirty,
        });
    }

    /// Number of retained deltas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// `true` if nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Shard-local epoch of the newest recorded delta (0 before any).
    #[must_use]
    pub fn local_head(&self) -> u64 {
        self.local_head
    }

    /// Global epoch of the newest mutation that touched this shard
    /// (0 before any).
    #[must_use]
    pub fn global_head(&self) -> u64 {
        self.global_head
    }

    /// The shard deltas with global epoch strictly after
    /// `global_epoch`, oldest first — everything a consumer whose
    /// global cursor is `global_epoch` has missed *in this shard*.
    ///
    /// Returns `None` only when the answer cannot be complete: the log
    /// has evicted a delta newer than the cursor. `None` always means
    /// "resynchronise from full store state". A cursor beyond this
    /// shard's [`global_head`](Self::global_head) is routine under the
    /// one-global-cursor consumption model — an idle shard's head lags
    /// the store epoch — and answers the empty suffix: the shard has
    /// recorded nothing after it, so the consumer is caught up here.
    /// Cursors that outrun the *store's* epoch are the caller's to
    /// validate, against [`crate::TopologyStore::epoch`].
    #[must_use]
    pub fn deltas_since_global(&self, global_epoch: u64) -> Option<Vec<&ShardDelta>> {
        if let Some(evicted) = self.evicted_global {
            if global_epoch < evicted {
                return None;
            }
        }
        Some(
            self.deltas
                .iter()
                .filter(|d| d.global_epoch > global_epoch)
                .collect(),
        )
    }
}

/// Sizes and per-phase wall times of a sharded bulk build. Per-shard
/// vectors are indexed by shard id; on a single-core host the
/// per-shard times still measure each shard's isolated work, which is
/// what the critical-path speedup model in `bench_shard` consumes.
#[derive(Debug, Clone, Default)]
pub struct ShardBuildStats {
    /// Domain scan + membership/halo assignment (sequential prologue).
    pub assign: Duration,
    /// Per-shard index construction time.
    pub shard_index: Vec<Duration>,
    /// Per-shard selection (fold) time over the shard's residents.
    pub shard_select: Vec<Duration>,
    /// Reverse lists, hashes and fingerprint (sequential epilogue).
    pub finalize: Duration,
    /// Residents per shard.
    pub residents: Vec<usize>,
    /// Halo mirrors per shard.
    pub mirrors: Vec<usize>,
}

/// The sharded engine a [`TopologyStore`] runs on when built with
/// [`TopologyStore::from_peers_sharded`]: the tiling, the halo width,
/// and one [`GridIndex`]-backed shard per tile. See the module docs
/// for the exactness argument.
#[derive(Debug)]
pub struct ShardedTopologyStore {
    tiling: Tiling,
    halo: f64,
    profile: ShardProfile,
    shards: Vec<Shard>,
    /// Global peer id → home shard.
    home: Vec<u32>,
    stats: ShardBuildStats,
}

impl ShardedTopologyStore {
    /// Bulk-builds the sharded engine and every peer's selection:
    /// membership + halo assignment, shard-parallel index builds, then
    /// shard-parallel selection folds. Returns the engine and the
    /// per-peer out-lists (indexed by global id).
    pub(crate) fn build(
        peers: &[PeerInfo],
        selection: &(dyn NeighborSelection + Send + Sync),
        config: &ShardConfig,
    ) -> (Self, Vec<Vec<usize>>) {
        // lint:allow(D002, reason = "feeds ShardBuildStats phase timings only; no control flow reads the clock")
        let t0 = Instant::now();
        let tiling = Tiling::build(peers, config.shards);
        let halo = config
            .halo_width
            .unwrap_or_else(|| auto_halo(&tiling, peers.len()));
        let k = config.shards;
        let mut home: Vec<u32> = Vec::with_capacity(peers.len());
        // Per-shard membership, ascending global order: (global, resident).
        let mut assignment: Vec<Vec<(usize, bool)>> = vec![Vec::new(); k];
        for (g, p) in peers.iter().enumerate() {
            let coords = p.point().coords();
            let h = tiling.shard_of(coords);
            home.push(h as u32);
            assignment[h].push((g, true));
            for s in tiling.shards_near(coords, halo) {
                if s != h {
                    assignment[s].push((g, false));
                }
            }
        }
        let assign = t0.elapsed();

        let built: Vec<(Shard, Duration)> = par::map_shards(k, |s| {
            // lint:allow(D002, reason = "feeds ShardBuildStats phase timings only; no control flow reads the clock")
            let t = Instant::now();
            let member_refs: Vec<&PeerInfo> =
                assignment[s].iter().map(|&(g, _)| &peers[g]).collect();
            let index = GridIndex::build(&member_refs);
            let (tile_lo, tile_hi) = tiling.tile_box(s);
            let mut shard = Shard {
                cover_lo: tile_lo.clone(),
                cover_hi: tile_hi.clone(),
                tile_lo,
                tile_hi,
                members: Vec::with_capacity(assignment[s].len()),
                // lint:allow(D001, reason = "global-id -> local-slot lookup on the shortlist hot path; queried by key only, never iterated, so hash order cannot reach replay state")
                local_of: HashMap::with_capacity(assignment[s].len()),
                resident_ids: Vec::new(),
                index,
                log: ShardDeltaLog::new(config.shard_log_capacity),
            };
            for (local, &(g, resident)) in assignment[s].iter().enumerate() {
                shard.members.push(g);
                shard.local_of.insert(g, local);
                if resident {
                    shard.resident_ids.push(g);
                    for (d, &x) in peers[g].point().coords().iter().enumerate() {
                        shard.cover_lo[d] = shard.cover_lo[d].min(x);
                        shard.cover_hi[d] = shard.cover_hi[d].max(x);
                    }
                }
            }
            (shard, t.elapsed())
        });
        let mut shards = Vec::with_capacity(k);
        let mut shard_index = Vec::with_capacity(k);
        for (shard, dur) in built {
            shards.push(shard);
            shard_index.push(dur);
        }

        let mut engine = ShardedTopologyStore {
            tiling,
            halo,
            profile: selection.shard_profile(),
            shards,
            home,
            stats: ShardBuildStats::default(),
        };
        let departed = vec![false; peers.len()];
        // Per shard: each resident's (global id, folded selection), plus
        // the shard's select-phase duration.
        #[allow(clippy::type_complexity)]
        let folded: Vec<(Vec<(usize, Vec<usize>)>, Duration)> = {
            let engine = &engine;
            let departed = &departed;
            par::map_shards(k, |s| {
                // lint:allow(D002, reason = "feeds ShardBuildStats phase timings only; no control flow reads the clock")
                let t = Instant::now();
                let outs: Vec<(usize, Vec<usize>)> = engine.shards[s]
                    .resident_ids
                    .iter()
                    .map(|&g| (g, engine.fold_select(peers, departed, selection, g)))
                    .collect();
                (outs, t.elapsed())
            })
        };
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); peers.len()];
        let mut shard_select = Vec::with_capacity(k);
        for (pairs, dur) in folded {
            shard_select.push(dur);
            for (g, o) in pairs {
                out[g] = o;
            }
        }
        engine.stats = ShardBuildStats {
            assign,
            shard_index,
            shard_select,
            finalize: Duration::ZERO,
            residents: engine.shards.iter().map(|s| s.resident_ids.len()).collect(),
            mirrors: engine
                .shards
                .iter()
                .map(|s| s.members.len() - s.resident_ids.len())
                .collect(),
        };
        (engine, out)
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The halo band width in coordinate units.
    #[must_use]
    pub fn halo_width(&self) -> f64 {
        self.halo
    }

    /// Per-dimension tile counts (product = shard count).
    #[must_use]
    pub fn tiles_per_dim(&self) -> &[usize] {
        &self.tiling.tiles
    }

    /// The home shard of a peer.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range.
    #[must_use]
    pub fn home_shard(&self, peer: usize) -> usize {
        self.home[peer] as usize
    }

    /// Residents ever assigned to shard `s` (departures not deducted).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn resident_count(&self, s: usize) -> usize {
        self.shards[s].resident_ids.len()
    }

    /// Halo mirrors ever assigned to shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn mirror_count(&self, s: usize) -> usize {
        self.shards[s].members.len() - self.shards[s].resident_ids.len()
    }

    /// Shard `s`'s scoped delta stream.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn shard_log(&self, s: usize) -> &ShardDeltaLog {
        &self.shards[s].log
    }

    /// Sizes and phase timings of the bulk build.
    #[must_use]
    pub fn build_stats(&self) -> &ShardBuildStats {
        &self.stats
    }

    pub(crate) fn note_finalize(&mut self, elapsed: Duration) {
        self.stats.finalize = elapsed;
    }

    /// The nearest live accepted peer to `q` across every shard index,
    /// ties broken by the smaller global id. Every live peer is in its
    /// home shard's index, so the union of per-shard answers is
    /// complete even though each shard's query considers only the
    /// shard's *residents*; local ids ascend with global ids, so
    /// per-shard tie-breaking agrees with the global rule.
    ///
    /// Halo mirrors are filtered out before `accept` runs, so — like
    /// the single-store path, whose index scans each cell exactly once
    /// — the (possibly stateful) predicate is consulted at most once
    /// per live peer.
    pub(crate) fn nearest_live_where(
        &self,
        peers: &[PeerInfo],
        q: &Point,
        metric: MetricKind,
        accept: &mut dyn FnMut(usize) -> bool,
    ) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for (s, shard) in self.shards.iter().enumerate() {
            if shard.index.live_len() == 0 {
                continue;
            }
            let got = shard.index.nearest_where(q, metric, |local| {
                let g = shard.members[local];
                self.home[g] as usize == s && accept(g)
            });
            if let Some(local) = got {
                let g = shard.members[local];
                let d = metric.dist(peers[g].point(), q);
                if best.is_none_or(|(bd, bg)| (d, g) < (bd, bg)) {
                    best = Some((d, g));
                }
            }
        }
        best.map(|(_, g)| g)
    }

    /// Peer `i`'s exact selection over the full live population,
    /// assembled from per-shard shortlists (see module docs).
    pub(crate) fn fold_select(
        &self,
        peers: &[PeerInfo],
        departed: &[bool],
        selection: &dyn NeighborSelection,
        i: usize,
    ) -> Vec<usize> {
        let home = self.home[i] as usize;
        let base = self.shard_shortlist(peers, departed, selection, home, i);
        let mut pool = base.clone();
        let knn = match self.profile {
            ShardProfile::OrthantTopK { k, metric } => {
                Some(orthant_stats(peers, i, &base, k, metric))
            }
            _ => None,
        };
        for s in 0..self.shards.len() {
            if s == home || self.shards[s].index.live_len() == 0 {
                continue;
            }
            match self.uncovered_box(s, home) {
                // Every resident of `s` lies inside the home halo band,
                // so the home shortlist already considered them all.
                None => continue,
                Some((ulo, uhi)) => {
                    if self.skippable(peers, i, &base, knn.as_ref(), &ulo, &uhi) {
                        continue;
                    }
                }
            }
            pool.extend(self.shard_shortlist(peers, departed, selection, s, i));
        }
        pool.sort_unstable();
        pool.dedup();
        pool.retain(|&j| j != i && !departed[j]);
        let refs: Vec<&PeerInfo> = pool.iter().map(|&j| &peers[j]).collect();
        selection
            .select(&peers[i], &refs)
            .into_iter()
            .map(|ci| pool[ci])
            .collect()
    }

    /// Shard `s`'s shortlist for peer `i`: [`Shard::shortlist`] backed
    /// by the global peer tables.
    fn shard_shortlist(
        &self,
        peers: &[PeerInfo],
        departed: &[bool],
        selection: &dyn NeighborSelection,
        s: usize,
        i: usize,
    ) -> Vec<usize> {
        let shard = &self.shards[s];
        shard.shortlist(
            self.profile,
            selection,
            i,
            &peers[i],
            |l| &peers[shard.members[l]],
            |l| departed[shard.members[l]],
        )
    }

    /// The conservative box of shard `s`'s residents minus the home
    /// halo band. `None` means `s` is entirely inside the band — every
    /// one of its residents is mirrored into the home shard.
    fn uncovered_box(&self, s: usize, home: usize) -> Option<(Vec<f64>, Vec<f64>)> {
        uncovered_box_of(
            &self.shards[s].cover_lo,
            &self.shards[s].cover_hi,
            &self.shards[home].tile_lo,
            &self.shards[home].tile_hi,
            self.halo,
        )
    }

    /// `true` when no point of the box `[ulo, uhi]` can enter peer
    /// `i`'s selection, certified from the home shortlist alone.
    fn skippable(
        &self,
        peers: &[PeerInfo],
        i: usize,
        base: &[usize],
        knn: Option<&BTreeMap<u32, (usize, f64)>>,
        ulo: &[f64],
        uhi: &[f64],
    ) -> bool {
        skip_certified(self.profile, peers, i, base, knn, ulo, uhi)
    }

    /// Registers a freshly inserted peer: home assignment, resident
    /// bookkeeping, and halo mirrors into every shard whose band
    /// contains it.
    fn add_peer(&mut self, g: usize, peers: &[PeerInfo]) {
        let point = peers[g].point();
        let coords = point.coords();
        let h = self.tiling.shard_of(coords);
        self.home.push(h as u32);
        debug_assert_eq!(self.home.len(), g + 1, "peers register in id order");
        self.shards[h].add_member(g, point, true);
        for s in self.tiling.shards_near(coords, self.halo) {
            if s != h {
                self.shards[s].add_member(g, point, false);
            }
        }
    }

    /// Tombstones a departed peer in its home index and every mirror.
    fn remove_peer(&mut self, g: usize) {
        for shard in &mut self.shards {
            if let Some(&local) = shard.local_of.get(&g) {
                shard.index.remove(local);
            }
        }
    }

    /// Fans the global dirty region out into the scoped shard logs:
    /// each shard records the event iff the dirty region touches one
    /// of its residents, with the dirty list restricted accordingly.
    fn record_shard_deltas(&mut self, global_epoch: u64, kind: DeltaKind, dirty: &[usize]) {
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &p in dirty {
            by_shard.entry(self.home[p] as usize).or_default().push(p);
        }
        for (s, shard_dirty) in by_shard {
            self.shards[s].log.record(kind, shard_dirty, global_epoch);
        }
    }

    /// The grid tiling (for the runtime's coordinator replica).
    pub(crate) fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    /// The selection's shard profile.
    pub(crate) fn profile(&self) -> ShardProfile {
        self.profile
    }

    /// Moves every [`Shard`] out of the engine — how a
    /// [`crate::runtime::ShardRuntime`] hands each shard to its worker
    /// thread. While detached the engine keeps the tiling and home
    /// table (the runtime updates `home` through
    /// [`ShardedTopologyStore::register_home`]) but cannot answer
    /// queries; the serial mutation paths panic until
    /// [`ShardedTopologyStore::attach_shards`] puts the shards back.
    ///
    /// # Panics
    ///
    /// Panics if the engine is already detached.
    pub(crate) fn detach_shards(&mut self) -> Vec<Shard> {
        assert!(
            !self.is_detached(),
            "shards already detached (another runtime owns them)"
        );
        std::mem::take(&mut self.shards)
    }

    /// Restores shards detached by
    /// [`ShardedTopologyStore::detach_shards`], in shard-id order.
    ///
    /// # Panics
    ///
    /// Panics if the engine is not detached or the shard count differs
    /// from the tiling.
    pub(crate) fn attach_shards(&mut self, shards: Vec<Shard>) {
        assert!(self.is_detached(), "engine already holds its shards");
        assert_eq!(
            shards.len(),
            self.tiling.tiles.iter().product::<usize>(),
            "shard count must match the tiling"
        );
        self.shards = shards;
    }

    /// `true` while the shards live in runtime worker threads.
    pub(crate) fn is_detached(&self) -> bool {
        self.shards.is_empty()
    }

    /// Registers the home shard of a freshly inserted peer without
    /// touching shard state — the runtime's counterpart of the
    /// assignment half of `add_peer` (membership itself travels to the
    /// workers as commands).
    pub(crate) fn register_home(&mut self, g: usize, h: usize) {
        self.home.push(h as u32);
        debug_assert_eq!(self.home.len(), g + 1, "peers register in id order");
    }
}

/// The conservative resident box of a foreign shard minus the home
/// halo band (free-function form shared by the serial engine and the
/// runtime coordinator's shard replicas). `None` means the shard is
/// entirely inside the band — every one of its residents is mirrored
/// into the home shard.
pub(crate) fn uncovered_box_of(
    cover_lo: &[f64],
    cover_hi: &[f64],
    home_tile_lo: &[f64],
    home_tile_hi: &[f64],
    halo: f64,
) -> Option<(Vec<f64>, Vec<f64>)> {
    let dim = cover_lo.len();
    let g_lo: Vec<f64> = home_tile_lo.iter().map(|x| x - halo).collect();
    let g_hi: Vec<f64> = home_tile_hi.iter().map(|x| x + halo).collect();
    let uncovered: Vec<usize> = (0..dim)
        .filter(|&d| !(g_lo[d] <= cover_lo[d] && cover_hi[d] <= g_hi[d]))
        .collect();
    if uncovered.is_empty() {
        return None;
    }
    let mut ulo = cover_lo.to_vec();
    let mut uhi = cover_hi.to_vec();
    // With exactly one uncovered dimension the band removes a
    // full-width slab, so that dimension can be clipped; with more,
    // the difference is not a box and the full cover stays.
    if let [d] = uncovered[..] {
        if g_lo[d] <= ulo[d] && g_hi[d] < uhi[d] {
            ulo[d] = g_hi[d];
        } else if ulo[d] < g_lo[d] && uhi[d] <= g_hi[d] {
            uhi[d] = g_lo[d];
        }
    }
    Some((ulo, uhi))
}

/// `true` when no point of the box `[ulo, uhi]` can enter peer `i`'s
/// selection, certified from the home shortlist alone (free-function
/// form shared by the serial engine and the runtime coordinator).
pub(crate) fn skip_certified(
    profile: ShardProfile,
    peers: &[PeerInfo],
    i: usize,
    base: &[usize],
    knn: Option<&BTreeMap<u32, (usize, f64)>>,
    ulo: &[f64],
    uhi: &[f64],
) -> bool {
    let pc = peers[i].point().coords();
    match profile {
        // One candidate strictly between `i` and the entire box (in
        // every dimension) sits inside the open rectangle spanned
        // by `i` and any box point, so nothing there survives the
        // emptiness test. Frontier reduction preserves blockers:
        // a candidate dominated out of the shortlist is dominated
        // by a strictly-closer one that blocks at least as much.
        ShardProfile::EmptyRect => base.iter().any(|&c| {
            let cc = peers[c].point().coords();
            (0..pc.len()).all(|d| {
                (ulo[d] > pc[d] && pc[d] < cc[d] && cc[d] < ulo[d])
                    || (uhi[d] < pc[d] && uhi[d] < cc[d] && cc[d] < pc[d])
            })
        }),
        // The box must fall in one definite orthant (any dimension
        // straddling `i` — including a potential coordinate
        // collision — makes region membership ambiguous and vetoes
        // the skip), that orthant must already hold K candidates,
        // and the box's closest point must be strictly beyond the
        // K-th distance: a later tie loses to incumbents because
        // the candidate id is larger.
        ShardProfile::OrthantTopK { k, metric } => {
            let Some(stats) = knn else { return false };
            let mut bits = 0u32;
            for d in 0..pc.len() {
                if ulo[d] > pc[d] {
                    bits |= 1 << d;
                } else if uhi[d] < pc[d] {
                    // negative side: bit stays 0
                } else {
                    return false;
                }
            }
            let Some(&(count, kth)) = stats.get(&bits) else {
                return false;
            };
            if count < k {
                return false;
            }
            let clamped: Vec<f64> = (0..pc.len()).map(|d| pc[d].clamp(ulo[d], uhi[d])).collect();
            let nearest = Point::new(clamped).expect("clamped coordinates are finite");
            metric.dist(peers[i].point(), &nearest) > kth
        }
        ShardProfile::Generic => false,
    }
}

/// The default halo band: three expected nearest-neighbour spacings of
/// a uniform population over the domain (geometric-mean extent over
/// non-degenerate dimensions, divided by `n^(1/D)`). Thin enough that
/// mirrors stay a few percent of membership, wide enough that most
/// selections finish inside the home shard.
fn auto_halo(tiling: &Tiling, n: usize) -> f64 {
    let mut log_sum = 0.0;
    let mut live_dims = 0usize;
    for d in 0..tiling.dim {
        let extent = tiling.tile_size[d] * tiling.tiles[d] as f64;
        if extent > 0.0 {
            log_sum += extent.ln();
            live_dims += 1;
        }
    }
    if live_dims == 0 || n == 0 {
        return 0.0;
    }
    let mean_extent = (log_sum / live_dims as f64).exp();
    let spacing = mean_extent / (n as f64).powf(1.0 / live_dims as f64);
    if spacing.is_finite() {
        3.0 * spacing
    } else {
        0.0
    }
}

/// Per-orthant `(count, K-th distance)` of a candidate shortlist
/// around peer `i`. Candidates sharing a coordinate with `i` belong to
/// on-hyperplane regions, not orthants, and are excluded — the skip
/// test independently refuses any box that could reach such a region.
pub(crate) fn orthant_stats(
    peers: &[PeerInfo],
    i: usize,
    base: &[usize],
    k: usize,
    metric: MetricKind,
) -> BTreeMap<u32, (usize, f64)> {
    let pc = peers[i].point().coords();
    let mut dists: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    'cand: for &c in base {
        let cc = peers[c].point().coords();
        let mut bits = 0u32;
        for d in 0..pc.len() {
            if cc[d] > pc[d] {
                bits |= 1 << d;
            } else if cc[d] == pc[d] {
                continue 'cand;
            }
        }
        dists
            .entry(bits)
            .or_default()
            .push(metric.dist(peers[i].point(), peers[c].point()));
    }
    dists
        .into_iter()
        .map(|(bits, mut v)| {
            v.sort_unstable_by(f64::total_cmp);
            let count = v.len();
            let kth = if count >= k { v[k - 1] } else { f64::INFINITY };
            (bits, (count, kth))
        })
        .collect()
}

/// Join recheck prune for per-orthant top-`K` rules: peer `i`'s
/// selection can only change if the newcomer `q` enters it, which
/// requires `q`'s region (w.r.t. `i`) to be unsaturated or `q` to be
/// strictly closer than the region's current `K`-th member — `q` has
/// the largest id, so it loses every distance tie. `out[i]` restricted
/// to an orthant *is* that region's full top-`K` (at equilibrium), so
/// the `K`-th distance is just the max over those members: `O(degree)`
/// arithmetic, no selection call.
pub(crate) fn topk_join_recheck(
    peers: &[PeerInfo],
    out: &[Vec<usize>],
    i: usize,
    q: usize,
    k: usize,
    metric: MetricKind,
) -> bool {
    let pc = peers[i].point().coords();
    let qc = peers[q].point().coords();
    let mut bits = 0u32;
    for d in 0..pc.len() {
        if qc[d] > pc[d] {
            bits |= 1 << d;
        } else if qc[d] == pc[d] {
            // On-hyperplane region: no saturation info, recheck.
            return true;
        }
    }
    let mut count = 0usize;
    let mut kth = f64::NEG_INFINITY;
    'nbr: for &j in &out[i] {
        let jc = peers[j].point().coords();
        let mut jb = 0u32;
        for d in 0..pc.len() {
            if jc[d] > pc[d] {
                jb |= 1 << d;
            } else if jc[d] == pc[d] {
                continue 'nbr; // different region
            }
        }
        if jb == bits {
            count += 1;
            kth = kth.max(metric.dist(peers[i].point(), peers[j].point()));
        }
    }
    count < k || metric.dist(peers[i].point(), peers[q].point()) < kth
}

/// The sharded [`TopologyStore::insert`] path. Global tables update
/// exactly as on the single-store path; the affected-set computation
/// and every selection go through the sharded engine.
pub(crate) fn sharded_insert(store: &mut TopologyStore, point: Point) -> PeerId {
    if let Some(first) = store.peers.first() {
        assert_eq!(
            point.dim(),
            first.point().dim(),
            "population dimensionality is fixed per overlay"
        );
    }
    let mut engine = store.sharding.take().expect("sharded backend present");
    assert!(
        !engine.is_detached(),
        "store is driven by a ShardRuntime; route mutations through it"
    );
    let id = store.peers.len();
    store.peers.push(PeerInfo::new(PeerId(id as u64), point));
    store.departed.push(false);
    store.live += 1;
    store.out.push(Vec::new());
    store.rev.push(Vec::new());
    store.peer_hash.push(topology_hash(id, &[]));
    store.fingerprint ^= store.peer_hash[id];
    engine.add_peer(id, &store.peers);

    let selection = store.selection.clone();
    let own = engine.fold_select(&store.peers, &store.departed, selection.as_ref(), id);

    // The affected set, by rule structure (module docs): the newcomer's
    // own selection for the empty-rectangle rule; the saturation-pruned
    // scan for per-orthant top-K; everyone for unprofiled rules.
    let affected: Vec<usize> = match engine.profile {
        ShardProfile::EmptyRect => own.clone(),
        ShardProfile::OrthantTopK { k, metric } => {
            let peers = &store.peers;
            let departed = &store.departed;
            let out = &store.out;
            par::map_indexed(id, |i| {
                (!departed[i] && topk_join_recheck(peers, out, i, id, k, metric)).then_some(i)
            })
            .into_iter()
            .flatten()
            .collect()
        }
        ShardProfile::Generic => (0..id).filter(|&i| !store.departed[i]).collect(),
    };
    let updates: Vec<Option<Vec<usize>>> = {
        let peers = &store.peers;
        let out = &store.out;
        let sel = selection.as_ref();
        par::map_indexed(affected.len(), |a| {
            let i = affected[a];
            // `id` is the largest index, so appending keeps the
            // candidate id list sorted.
            let mut cand_ids: Vec<usize> = Vec::with_capacity(out[i].len() + 1);
            cand_ids.extend_from_slice(&out[i]);
            cand_ids.push(id);
            let refs: Vec<&PeerInfo> = cand_ids.iter().map(|&j| &peers[j]).collect();
            let picked = sel.select(&peers[i], &refs);
            let new_out: Vec<usize> = picked.into_iter().map(|ci| cand_ids[ci]).collect();
            (new_out != out[i]).then_some(new_out)
        })
    };

    let mut delta = BTreeSet::new();
    delta.insert(id);
    store.apply_out(id, own, &mut delta);
    for (a, update) in updates.into_iter().enumerate() {
        if let Some(new_out) = update {
            store.apply_out(affected[a], new_out, &mut delta);
        }
    }
    store.last_delta = delta.into_iter().collect();
    store.record_delta(DeltaKind::Join(id));
    engine.record_shard_deltas(store.epoch, DeltaKind::Join(id), &store.last_delta);
    store.sharding = Some(engine);
    PeerId(id as u64)
}

/// The sharded [`TopologyStore::remove`] path: identical affected set
/// to the single store (the departed peer's selectors), with every
/// re-selection answered by the sharded fold.
pub(crate) fn sharded_remove(store: &mut TopologyStore, id: PeerId) {
    let v = id.index();
    assert!(v < store.peers.len(), "peer id out of range");
    assert!(!store.departed[v], "{id} already departed");
    let mut engine = store.sharding.take().expect("sharded backend present");
    assert!(
        !engine.is_detached(),
        "store is driven by a ShardRuntime; route mutations through it"
    );
    store.departed[v] = true;
    store.live -= 1;
    engine.remove_peer(v);

    let mut delta = BTreeSet::new();
    delta.insert(v);
    store.apply_out(v, Vec::new(), &mut delta);
    let affected = store.rev[v].clone();
    let selection = store.selection.clone();
    for i in affected {
        let new_out = engine.fold_select(&store.peers, &store.departed, selection.as_ref(), i);
        store.apply_out(i, new_out, &mut delta);
    }
    debug_assert!(store.rev[v].is_empty(), "survivors must drop the departed");
    store.last_delta = delta.into_iter().collect();
    store.record_delta(DeltaKind::Leave(v));
    engine.record_shard_deltas(store.epoch, DeltaKind::Leave(v), &store.last_delta);
    store.sharding = Some(engine);
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::select::{EmptyRectSelection, HyperplanesSelection};
    use crate::TopologyDelta;
    use geocast_geom::gen::uniform_points;

    fn peers(n: usize, dim: usize, seed: u64) -> Vec<PeerInfo> {
        PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed))
    }

    fn selections() -> Vec<Arc<dyn NeighborSelection + Send + Sync>> {
        vec![
            Arc::new(EmptyRectSelection),
            Arc::new(HyperplanesSelection::orthogonal(2, 2, MetricKind::L1)),
            Arc::new(HyperplanesSelection::signed(2, 1, MetricKind::L2)),
            Arc::new(HyperplanesSelection::k_closest(2, 4, MetricKind::L2)),
        ]
    }

    #[test]
    fn sharded_bulk_build_matches_single_store() {
        for selection in selections() {
            for shards in [1usize, 3, 4, 16] {
                let single = TopologyStore::from_peers(peers(90, 2, 5), selection.clone());
                let sharded = TopologyStore::from_peers_sharded(
                    peers(90, 2, 5),
                    selection.clone(),
                    &ShardConfig::new(shards),
                );
                assert_eq!(
                    single.graph(),
                    sharded.graph(),
                    "{} @ {shards} shards",
                    selection.name()
                );
                assert_eq!(single.fingerprint(), sharded.fingerprint());
            }
        }
    }

    #[test]
    fn sharded_churn_matches_single_store() {
        for selection in selections() {
            let mut single = TopologyStore::from_peers(peers(60, 2, 9), selection.clone());
            let mut sharded = TopologyStore::from_peers_sharded(
                peers(60, 2, 9),
                selection.clone(),
                &ShardConfig::new(4),
            );
            let joins = uniform_points(25, 2, 1000.0, 10).into_points();
            for (step, p) in joins.iter().enumerate() {
                single.insert(p.clone());
                sharded.insert(p.clone());
                if step % 3 == 1 {
                    let gone = PeerId((step * 7 % 60) as u64);
                    if !single.is_departed(gone) {
                        single.remove(gone);
                        sharded.remove(gone);
                    }
                }
                assert_eq!(
                    single.graph(),
                    sharded.graph(),
                    "{} step {step}",
                    selection.name()
                );
                assert_eq!(single.fingerprint(), sharded.fingerprint());
                assert_eq!(single.last_delta(), sharded.last_delta());
            }
        }
    }

    #[test]
    fn colliding_coordinates_stay_exact_under_sharding() {
        // Shared coordinates force the per-shard index queries to
        // decline and veto every skip test along the collision axes.
        let pts = [
            Point::new(vec![0.0, 0.0]).unwrap(),
            Point::new(vec![500.0, 0.0]).unwrap(),
            Point::new(vec![200.0, 300.0]).unwrap(),
            Point::new(vec![500.0, 700.0]).unwrap(),
            Point::new(vec![900.0, 400.0]).unwrap(),
            Point::new(vec![900.0, 900.0]).unwrap(),
        ];
        let infos: Vec<PeerInfo> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| PeerInfo::new(PeerId(i as u64), p.clone()))
            .collect();
        for selection in selections() {
            let mut single = TopologyStore::from_peers(infos.clone(), selection.clone());
            let mut sharded = TopologyStore::from_peers_sharded(
                infos.clone(),
                selection.clone(),
                &ShardConfig::new(4),
            );
            assert_eq!(single.graph(), sharded.graph(), "{}", selection.name());
            single.insert(Point::new(vec![200.0, 900.0]).unwrap());
            sharded.insert(Point::new(vec![200.0, 900.0]).unwrap());
            single.remove(PeerId(1));
            sharded.remove(PeerId(1));
            assert_eq!(single.graph(), sharded.graph(), "{}", selection.name());
            assert_eq!(single.fingerprint(), sharded.fingerprint());
        }
    }

    #[test]
    fn identical_points_degenerate_to_one_tile_exactly() {
        let p = Point::new(vec![5.0, 5.0]).unwrap();
        let infos: Vec<PeerInfo> = (0..5)
            .map(|i| PeerInfo::new(PeerId(i as u64), p.clone()))
            .collect();
        let selection: Arc<dyn NeighborSelection + Send + Sync> = Arc::new(EmptyRectSelection);
        let single = TopologyStore::from_peers(infos.clone(), selection.clone());
        let sharded = TopologyStore::from_peers_sharded(infos, selection, &ShardConfig::new(4));
        assert_eq!(single.graph(), sharded.graph());
    }

    #[test]
    fn halo_mirror_invariant_holds_through_churn() {
        let mut store = TopologyStore::from_peers_sharded(
            peers(80, 2, 21),
            Arc::new(EmptyRectSelection),
            &ShardConfig::new(9).with_halo_width(60.0),
        );
        let joins = uniform_points(20, 2, 1000.0, 22).into_points();
        for (step, p) in joins.iter().enumerate() {
            store.insert(p.clone());
            if step % 4 == 2 {
                store.remove(PeerId((step * 11 % 80) as u64));
            }
        }
        let engine = store.sharding().expect("sharded");
        for s in 0..engine.shard_count() {
            let shard = &engine.shards[s];
            for (g, info) in store.peers().iter().enumerate() {
                if store.is_departed(PeerId(g as u64)) {
                    continue;
                }
                let inside = info
                    .point()
                    .coords()
                    .iter()
                    .zip(shard.tile_lo.iter().zip(&shard.tile_hi))
                    .all(|(&x, (&lo, &hi))| x >= lo - 60.0 && x <= hi + 60.0);
                if inside {
                    assert!(
                        shard.local_of.contains_key(&g),
                        "live peer {g} inside shard {s}'s halo band must be a member"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_logs_record_resident_scoped_dirty_regions() {
        let mut store = TopologyStore::from_peers_sharded(
            peers(50, 2, 31),
            Arc::new(EmptyRectSelection),
            &ShardConfig::new(4),
        );
        let joins = uniform_points(12, 2, 1000.0, 32).into_points();
        for p in &joins {
            store.insert(p.clone());
        }
        let engine = store.sharding().expect("sharded");
        let mut recorded = 0usize;
        for s in 0..engine.shard_count() {
            let log = engine.shard_log(s);
            recorded += log.len();
            let mut last_global = 0;
            for d in log.deltas_since_global(0).expect("no eviction yet") {
                assert!(d.global_epoch > last_global, "global epochs ascend");
                last_global = d.global_epoch;
                assert!(!d.dirty.is_empty());
                for &p in &d.dirty {
                    assert_eq!(engine.home_shard(p), s, "dirty lists are resident-scoped");
                }
            }
        }
        assert!(recorded >= 12, "every join lands in at least one shard log");
        // Cross-check: the union of shard streams at each global epoch
        // partitions that epoch's global dirty region by home shard.
        let global: Vec<&TopologyDelta> = store.delta_log().deltas_since(0).unwrap().collect();
        for gd in global {
            let mut reassembled: Vec<usize> = (0..engine.shard_count())
                .filter_map(|s| {
                    engine
                        .shard_log(s)
                        .deltas_since_global(gd.epoch - 1)
                        .unwrap()
                        .into_iter()
                        .find(|d| d.global_epoch == gd.epoch)
                        .map(|d| d.dirty.clone())
                })
                .flatten()
                .collect();
            reassembled.sort_unstable();
            assert_eq!(reassembled, gd.dirty, "epoch {}", gd.epoch);
        }
    }

    #[test]
    fn laggards_get_a_resync_signal_not_a_gap() {
        // Regression: a truncated shard log must answer `None` for any
        // cursor that predates an evicted delta, never a silent suffix.
        let mut store = TopologyStore::from_peers_sharded(
            peers(40, 2, 41),
            Arc::new(EmptyRectSelection),
            &ShardConfig::new(1).with_shard_log_capacity(3),
        );
        let joins = uniform_points(10, 2, 1000.0, 42).into_points();
        for p in &joins {
            store.insert(p.clone());
        }
        let log = store.sharding().unwrap().shard_log(0);
        assert_eq!(log.local_head(), 10);
        assert_eq!(log.len(), 3, "capacity bounds retention");
        // Epochs 1..=7 were evicted. A consumer at global epoch 5 is
        // missing evicted deltas 6 and 7: deterministic resync.
        assert!(log.deltas_since_global(5).is_none());
        // A consumer exactly at the eviction horizon proceeds.
        let ok = log.deltas_since_global(7).expect("retained suffix");
        assert_eq!(ok.len(), 3);
        assert_eq!(
            ok.iter().map(|d| d.global_epoch).collect::<Vec<_>>(),
            vec![8, 9, 10]
        );
        // A cursor past everything this shard recorded is caught up
        // *here* — the empty suffix, not a spurious resync (one global
        // cursor polls idle shards whose heads lag the store epoch).
        assert!(log.deltas_since_global(11).expect("caught up").is_empty());
        // An untouched-but-truncated log in a multi-shard store: the
        // sparse stream still reports eviction, not an empty answer.
        let mut sparse = TopologyStore::from_peers_sharded(
            peers(40, 2, 43),
            Arc::new(EmptyRectSelection),
            &ShardConfig::new(4).with_shard_log_capacity(1),
        );
        for p in &joins {
            sparse.insert(p.clone());
        }
        let engine = sparse.sharding().unwrap();
        for s in 0..engine.shard_count() {
            let log = engine.shard_log(s);
            if log.local_head() > 1 {
                assert!(
                    log.deltas_since_global(0).is_none(),
                    "shard {s} evicted history and must demand a resync"
                );
            }
        }
    }

    #[test]
    fn idle_shards_answer_caught_up_cursors_with_an_empty_suffix() {
        // The documented consumption model is ONE global cursor across
        // all shard logs: after catching up with the merged stream, the
        // cursor exceeds the global head of every shard the recent
        // mutations did not touch. Those shards must answer the empty
        // suffix, not demand a full resync.
        let mut store = TopologyStore::from_peers_sharded(
            peers(40, 2, 44),
            Arc::new(EmptyRectSelection),
            &ShardConfig::new(4),
        );
        let joins = uniform_points(3, 2, 1000.0, 45).into_points();
        for p in &joins {
            store.insert(p.clone());
        }
        let cursor = store.epoch();
        let engine = store.sharding().unwrap();
        let mut idle = 0usize;
        for s in 0..engine.shard_count() {
            let log = engine.shard_log(s);
            if log.global_head() < cursor {
                idle += 1;
            }
            let got = log
                .deltas_since_global(cursor)
                .expect("nothing evicted: a caught-up cursor never resyncs");
            assert!(got.is_empty(), "shard {s} has nothing after the cursor");
        }
        assert!(idle > 0, "some shard's head lags the store epoch");
    }

    #[test]
    fn band_edge_peers_mirror_into_the_closed_halo_band() {
        // Regression: the halo band is closed — `uncovered_box` skips a
        // foreign shard once its resident cover fits `cover_hi <= g_hi`
        // — so a peer lying *exactly* on a tile's band edge must be
        // mirrored into that tile, or the skip hides it from the fold.
        // Integer coordinates with the halo a multiple of the tile
        // width make the tie exact: in a 2x1 tiling of [0,1000]^2 with
        // halo 500, peer (1000,1000) sits at tile 0's band edge
        // tile_hi + halo = 500 + 500.
        let pts = [
            Point::new(vec![0.0, 0.0]).unwrap(),
            Point::new(vec![200.0, 300.0]).unwrap(),
            Point::new(vec![1000.0, 1000.0]).unwrap(),
        ];
        let infos: Vec<PeerInfo> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| PeerInfo::new(PeerId(i as u64), p.clone()))
            .collect();
        let config = ShardConfig::new(2).with_halo_width(500.0);
        for selection in selections() {
            let single = TopologyStore::from_peers(infos.clone(), selection.clone());
            let sharded =
                TopologyStore::from_peers_sharded(infos.clone(), selection.clone(), &config);
            assert_eq!(single.graph(), sharded.graph(), "{}", selection.name());
            assert_eq!(
                single.fingerprint(),
                sharded.fingerprint(),
                "{}",
                selection.name()
            );
        }
        // A band-edge join takes the same mirror path incrementally.
        let selection: Arc<dyn NeighborSelection + Send + Sync> = Arc::new(EmptyRectSelection);
        let mut single = TopologyStore::from_peers(infos.clone(), selection.clone());
        let mut sharded = TopologyStore::from_peers_sharded(infos, selection, &config);
        single.insert(Point::new(vec![1000.0, 500.0]).unwrap());
        sharded.insert(Point::new(vec![1000.0, 500.0]).unwrap());
        assert_eq!(single.graph(), sharded.graph());
        assert_eq!(single.fingerprint(), sharded.fingerprint());
    }

    #[test]
    fn shards_near_is_closed_on_both_band_edges() {
        let infos: Vec<PeerInfo> = [
            Point::new(vec![0.0, 0.0]).unwrap(),
            Point::new(vec![1000.0, 1000.0]).unwrap(),
        ]
        .iter()
        .enumerate()
        .map(|(i, p)| PeerInfo::new(PeerId(i as u64), p.clone()))
        .collect();
        let tiling = Tiling::build(&infos, 2);
        assert_eq!(tiling.tiles, vec![2, 1], "2x1 tiling of [0,1000]^2");
        // High edge: 1000 == tile 0's hi (500) + halo (500), a closed tie.
        let mut near = tiling.shards_near(&[1000.0, 1000.0], 500.0);
        near.sort_unstable();
        assert_eq!(near, vec![0, 1]);
        // Low edge: 0 == tile 1's lo (500) - halo (500), a closed tie.
        let mut near = tiling.shards_near(&[0.0, 0.0], 500.0);
        near.sort_unstable();
        assert_eq!(near, vec![0, 1]);
        // Strictly inside one band stays one shard.
        assert_eq!(tiling.shards_near(&[200.0, 300.0], 250.0), vec![0]);
        // Zero halo on the shared tile boundary: the boundary point
        // belongs to both closed tiles.
        let mut near = tiling.shards_near(&[500.0, 0.0], 0.0);
        near.sort_unstable();
        assert_eq!(near, vec![0, 1]);
    }

    #[test]
    fn build_stats_expose_phase_timings_and_population() {
        let store = TopologyStore::from_peers_sharded(
            peers(100, 2, 51),
            Arc::new(EmptyRectSelection),
            &ShardConfig::new(4),
        );
        let engine = store.sharding().unwrap();
        let stats = engine.build_stats();
        assert_eq!(stats.shard_index.len(), 4);
        assert_eq!(stats.shard_select.len(), 4);
        assert_eq!(stats.residents.iter().sum::<usize>(), 100);
        assert_eq!(
            stats.residents,
            (0..4).map(|s| engine.resident_count(s)).collect::<Vec<_>>()
        );
        assert!(engine.halo_width() > 0.0);
        assert_eq!(engine.tiles_per_dim(), &[2, 2]);
        assert_eq!(engine.shard_count(), 4);
        let mirrors: usize = (0..4).map(|s| engine.mirror_count(s)).sum();
        assert!(mirrors > 0, "a 2x2 tiling of 100 peers mirrors someone");
    }

    #[test]
    fn nearest_live_query_matches_linear_scan() {
        let mut store = TopologyStore::from_peers_sharded(
            peers(70, 2, 61),
            Arc::new(EmptyRectSelection),
            &ShardConfig::new(9),
        );
        for gone in [3u64, 22, 47] {
            store.remove(PeerId(gone));
        }
        let queries = uniform_points(15, 2, 1200.0, 62).into_points();
        for q in &queries {
            for accept in [None, Some(5usize)] {
                let f = |i: usize| accept.is_none_or(|m| i.is_multiple_of(m));
                let scan = (0..store.len())
                    .filter(|&i| !store.is_departed(PeerId(i as u64)) && f(i))
                    .map(|i| (MetricKind::L1.dist(store.peers()[i].point(), q), i))
                    .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                    .map(|(_, i)| i);
                assert_eq!(store.nearest_live_where(q, MetricKind::L1, f), scan);
            }
        }
    }

    #[test]
    fn factorization_splits_along_wide_dimensions() {
        assert_eq!(factor_tiles(16, &[1000.0, 1000.0]), vec![4, 4]);
        assert_eq!(factor_tiles(8, &[1000.0, 10.0]), vec![8, 1]);
        assert_eq!(factor_tiles(6, &[1000.0, 900.0]), vec![3, 2]);
        assert_eq!(factor_tiles(1, &[1000.0, 1000.0]), vec![1, 1]);
        assert_eq!(factor_tiles(7, &[100.0, 100.0, 100.0]), vec![7, 1, 1]);
    }
}
