//! The geometric P2P overlay substrate of geocast.
//!
//! Peers identify themselves with virtual geometric coordinates
//! ([`geocast_geom::Point`]) and connect into an overlay by repeatedly
//! applying a **neighbour-selection method** to the set `I(P)` of peers
//! they have recently heard about. This crate implements the full §1
//! machinery of the paper:
//!
//! * [`PeerInfo`] — identifier (coordinates), network address, peer id.
//! * [`select`] — the neighbour-selection methods: the generic
//!   *Hyperplanes* family ([`select::HyperplanesSelection`], with
//!   orthogonal / signed / `H = 0` instances) and the §2
//!   *empty-rectangle* rule ([`select::EmptyRectSelection`]).
//! * [`gossip`] — the distributed protocol: periodic existence
//!   announcements flooded `BR ≥ 2` hops, `Tmax` expiry of `I(P)`, and
//!   periodic re-selection.
//! * [`OverlayNetwork`] — a driver that inserts peers one at a time into
//!   a live simulation and runs the gossip protocol to convergence,
//!   exactly like the paper's experimental procedure.
//! * [`oracle`] — the *equilibrium* topology, computed directly from the
//!   full point set (the paper's definition of convergence target:
//!   "the one obtained when every peer P knows all the other peers").
//! * [`OverlayGraph`] — the resulting topology in a flat CSR layout,
//!   with the analyses the figures need (degrees, connectivity, BFS).
//!
//! The equilibrium construction engine (spatial index, batch selection,
//! per-peer parallelism) and its measured scaling behaviour are
//! documented in `docs/PERFORMANCE.md` at the repository root.
//!
//! # Example: equilibrium topology under the empty-rectangle rule
//!
//! ```
//! use geocast_geom::gen::uniform_points;
//! use geocast_overlay::{oracle, select::EmptyRectSelection, PeerInfo};
//!
//! let points = uniform_points(64, 2, 1000.0, 42);
//! let peers = PeerInfo::from_point_set(&points);
//! let graph = oracle::equilibrium(&peers, &EmptyRectSelection);
//! assert!(graph.is_connected_undirected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod network;
mod par;
mod peer;
mod store;

pub mod analysis;
pub mod churn;
pub mod delta;
pub mod gossip;
pub mod oracle;
pub mod routing;
pub mod runtime;
pub mod select;
pub mod shard;

pub use delta::{CursorCatchUp, DeltaCursor, DeltaKind, DeltaLog, TopologyDelta};
pub use graph::OverlayGraph;
pub use network::{ConvergenceReport, GossipSyncReport, NetworkConfig, OverlayNetwork};
pub use peer::{PeerAddr, PeerId, PeerInfo};
pub use runtime::{
    RuntimeConfig, RuntimeStats, SendOutcome, ShardCommand, ShardRuntime, ShardTransport,
    ShardWorker, ThreadTransport, WorkerPulse, WorkerReply,
};
pub use shard::{ShardConfig, ShardedTopologyStore};
pub use store::{topology_hash, TopologyStore};
