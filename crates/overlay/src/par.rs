//! Deterministic data-parallel map for per-peer computations.
//!
//! With the `parallel` feature (default), [`map_indexed`] fans `f` out
//! across CPU cores on scoped `std::thread`s with a dynamic work
//! cursor; results land in per-index slots, so the output is identical
//! to the sequential run — parallelism never changes a topology, only
//! how fast it is computed. Without the feature, it is a plain
//! sequential map.
//!
//! On a [`geocast_sim::runner::ParallelRunner`] worker thread the map
//! always runs sequentially: the cores are already saturated one level
//! up (figure sweeps fan out across seeds/parameter points), and a
//! nested `available_parallelism` fan-out per job would oversubscribe
//! the CPU quadratically.

/// Inputs below this size run sequentially even with `parallel` on:
/// thread start-up would dominate the work.
#[cfg(feature = "parallel")]
const PARALLEL_MIN_ITEMS: usize = 512;

/// Applies `f` to `0..n`, returning outputs in index order.
pub(crate) fn map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        if n >= PARALLEL_MIN_ITEMS && threads > 1 && !geocast_sim::runner::in_parallel_worker() {
            return map_parallel(n, threads.min(n), 32, &f);
        }
    }
    (0..n).map(f).collect()
}

/// Applies `f` to `0..n` where each index is a *coarse* unit of work
/// (one topology shard, not one peer): fans out whenever more than one
/// core is available, with no minimum-size gate. Output order is index
/// order, as for [`map_indexed`].
pub(crate) fn map_shards<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        if n > 1 && threads > 1 && !geocast_sim::runner::in_parallel_worker() {
            // Block size 1: a shard is already a coarse work unit, and
            // uneven shard populations are the common case.
            return map_parallel(n, threads.min(n), 1, &f);
        }
    }
    (0..n).map(f).collect()
}

#[cfg(feature = "parallel")]
fn map_parallel<T, F>(n: usize, threads: usize, block: usize, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    // Indices are claimed in blocks to keep cursor traffic negligible
    // while still balancing uneven per-index cost.
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(block, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + block).min(n);
                let block: Vec<T> = (start..end).map(f).collect();
                let mut slots = slots.lock().expect("result lock poisoned");
                for (offset, value) in block.into_iter().enumerate() {
                    slots[start + offset] = Some(value);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("result lock poisoned")
        .into_iter()
        .map(|v| v.expect("every index produced a value"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let out = map_indexed(1000, |i| i * 3);
        assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        assert!(map_indexed(0, |i| i).is_empty());
        assert_eq!(map_indexed(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_path_matches_sequential() {
        let seq: Vec<usize> = (0..5000).map(|i| i ^ 0xabc).collect();
        let par = map_parallel(5000, 4, 32, &|i| i ^ 0xabc);
        assert_eq!(par, seq);
    }

    #[test]
    fn shard_map_preserves_index_order() {
        let out = map_shards(16, |s| s * 7);
        assert_eq!(out, (0..16).map(|s| s * 7).collect::<Vec<_>>());
        assert!(map_shards(0, |s| s).is_empty());
    }
}
