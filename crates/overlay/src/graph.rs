use std::collections::VecDeque;
use std::fmt;

/// The topology of a converged overlay: a directed graph over dense peer
/// indices, where the out-list of peer `i` holds the peers that `i`
/// selected as its overlay neighbours.
///
/// Adjacency is stored in CSR form — one offset table plus one flat,
/// sorted neighbour array — so a topology is two allocations regardless
/// of peer count, cloning it (the K-sweep holds one per `K`) is two
/// `memcpy`s, and per-peer neighbour scans are cache-linear. See
/// `docs/PERFORMANCE.md`.
///
/// The paper's degree measurements (Fig. 1a/1c) are taken over the
/// *undirected closure* ([`OverlayGraph::undirected_closure`]): a link
/// counts for both endpoints whether or not the selection was mutual.
/// (Under the empty-rectangle rule at equilibrium the relation is
/// symmetric anyway — the spanned rectangle does not depend on direction
/// — which [`OverlayGraph::is_symmetric`] lets tests assert.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlayGraph {
    /// `offsets.len() == len() + 1`; the out-neighbours of peer `i` are
    /// `targets[offsets[i]..offsets[i + 1]]`, sorted and deduplicated.
    offsets: Vec<usize>,
    targets: Vec<usize>,
}

impl OverlayGraph {
    /// Builds a graph from per-peer out-neighbour lists.
    ///
    /// Neighbour lists are sorted and deduplicated; self-loops are
    /// removed.
    ///
    /// # Panics
    ///
    /// Panics if any neighbour index is out of range.
    #[must_use]
    pub fn from_out_neighbors(mut out: Vec<Vec<usize>>) -> Self {
        let n = out.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut total = 0usize;
        for (i, nbrs) in out.iter_mut().enumerate() {
            nbrs.sort_unstable();
            nbrs.dedup();
            nbrs.retain(|&j| j != i);
            if let Some(&max) = nbrs.last() {
                assert!(max < n, "neighbour index {max} out of range for {n} peers");
            }
            total += nbrs.len();
            offsets.push(total);
        }
        let mut targets = Vec::with_capacity(total);
        for nbrs in &out {
            targets.extend_from_slice(nbrs);
        }
        OverlayGraph { offsets, targets }
    }

    /// Builds a graph directly from validated CSR parts: `offsets` must
    /// be monotone with `offsets[0] == 0`, and every per-peer segment
    /// sorted, deduplicated, self-loop-free and in range. Used by the
    /// construction engine, which produces exactly that shape; debug
    /// builds re-check the invariants.
    #[must_use]
    pub(crate) fn from_csr(offsets: Vec<usize>, targets: Vec<usize>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().expect("non-empty"), targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!({
            let n = offsets.len() - 1;
            (0..n).all(|i| {
                let seg = &targets[offsets[i]..offsets[i + 1]];
                seg.windows(2).all(|w| w[0] < w[1]) && seg.iter().all(|&j| j < n && j != i)
            })
        });
        OverlayGraph { offsets, targets }
    }

    /// Number of peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` if the graph has no peers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The out-neighbours peer `i` selected (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn out_neighbors(&self, i: usize) -> &[usize] {
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of directed edges.
    #[must_use]
    pub fn directed_edge_count(&self) -> usize {
        self.targets.len()
    }

    /// The undirected closure as a graph: peer `i` links `j` iff `i`
    /// selected `j` or `j` selected `i`. Symmetric by construction,
    /// stored in the same CSR layout (no per-peer allocations).
    #[must_use]
    pub fn undirected_closure(&self) -> OverlayGraph {
        let n = self.len();
        // Degree counting pass: each directed edge contributes to both
        // endpoints; mutual pairs are then deduplicated in the fill.
        let mut counts = vec![0usize; n + 1];
        for i in 0..n {
            for &j in self.out_neighbors(i) {
                counts[i + 1] += 1;
                counts[j + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut cursor = counts.clone();
        let mut targets = vec![0usize; *counts.last().unwrap_or(&0)];
        for i in 0..n {
            for &j in self.out_neighbors(i) {
                targets[cursor[i]] = j;
                cursor[i] += 1;
                targets[cursor[j]] = i;
                cursor[j] += 1;
            }
        }
        // Sort and dedup each segment in place, then compact.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut write = 0usize;
        for i in 0..n {
            let (start, end) = (counts[i], counts[i + 1]);
            targets[start..end].sort_unstable();
            let mut prev = usize::MAX;
            for r in start..end {
                let v = targets[r];
                if v != prev {
                    targets[write] = v;
                    write += 1;
                    prev = v;
                }
            }
            offsets.push(write);
        }
        targets.truncate(write);
        OverlayGraph::from_csr(offsets, targets)
    }

    /// The undirected closure as per-peer neighbour lists (compat shape;
    /// [`OverlayGraph::undirected_closure`] avoids the per-peer
    /// allocations).
    #[must_use]
    pub fn undirected(&self) -> Vec<Vec<usize>> {
        let closure = self.undirected_closure();
        (0..closure.len())
            .map(|i| closure.out_neighbors(i).to_vec())
            .collect()
    }

    /// Undirected degree of every peer (the paper's "degree of a peer
    /// within the obtained P2P topology").
    #[must_use]
    pub fn undirected_degrees(&self) -> Vec<usize> {
        let closure = self.undirected_closure();
        (0..closure.len())
            .map(|i| closure.out_neighbors(i).len())
            .collect()
    }

    /// `true` if every selected link is mutual (`i → j` implies `j → i`).
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        (0..self.len()).all(|i| {
            self.out_neighbors(i)
                .iter()
                .all(|&j| self.out_neighbors(j).binary_search(&i).is_ok())
        })
    }

    /// BFS hop distances from `start` over the undirected closure;
    /// `None` marks unreachable peers.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    #[must_use]
    pub fn bfs_distances(&self, start: usize) -> Vec<Option<usize>> {
        let adj = self.undirected_closure();
        let mut dist = vec![None; self.len()];
        dist[start] = Some(0);
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            for &v in adj.out_neighbors(u) {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// `true` if the undirected closure connects all peers. The empty
    /// graph is connected.
    #[must_use]
    pub fn is_connected_undirected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.bfs_distances(0).iter().all(Option::is_some)
    }
}

impl fmt::Display for OverlayGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "overlay({} peers, {} directed edges)",
            self.len(),
            self.directed_edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> OverlayGraph {
        // 0 -> 1, 1 -> 2 (directed path).
        OverlayGraph::from_out_neighbors(vec![vec![1], vec![2], vec![]])
    }

    #[test]
    fn construction_sorts_dedups_and_strips_self_loops() {
        let g = OverlayGraph::from_out_neighbors(vec![vec![2, 1, 1, 0], vec![], vec![]]);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.directed_edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn construction_rejects_bad_indices() {
        let _ = OverlayGraph::from_out_neighbors(vec![vec![3], vec![], vec![]]);
    }

    #[test]
    fn undirected_closure_symmetrizes() {
        let g = path3();
        let adj = g.undirected();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
        assert_eq!(g.undirected_degrees(), vec![1, 2, 1]);
    }

    #[test]
    fn undirected_closure_graph_matches_lists() {
        let g = OverlayGraph::from_out_neighbors(vec![vec![1, 2], vec![2], vec![], vec![0]]);
        let closure = g.undirected_closure();
        assert!(closure.is_symmetric());
        let lists = g.undirected();
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(closure.out_neighbors(i), &list[..], "peer {i}");
        }
    }

    #[test]
    fn symmetry_detection() {
        assert!(!path3().is_symmetric());
        let sym = OverlayGraph::from_out_neighbors(vec![vec![1], vec![0, 2], vec![1]]);
        assert!(sym.is_symmetric());
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path3();
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn connectivity_detects_isolated_peer() {
        let g = OverlayGraph::from_out_neighbors(vec![vec![1], vec![], vec![]]);
        assert!(!g.is_connected_undirected());
        assert!(path3().is_connected_undirected());
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = OverlayGraph::from_out_neighbors(vec![]);
        assert!(g.is_connected_undirected());
        assert!(g.is_empty());
    }

    #[test]
    fn csr_fast_path_equals_validated_construction() {
        let lists = vec![vec![1, 2], vec![0], vec![]];
        let via_lists = OverlayGraph::from_out_neighbors(lists);
        let via_csr = OverlayGraph::from_csr(vec![0, 2, 3, 3], vec![1, 2, 0]);
        assert_eq!(via_lists, via_csr);
    }

    #[test]
    fn display_summarizes() {
        assert_eq!(path3().to_string(), "overlay(3 peers, 2 directed edges)");
    }
}
