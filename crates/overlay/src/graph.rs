use std::collections::VecDeque;
use std::fmt;

/// The topology of a converged overlay: a directed graph over dense peer
/// indices, where `out[i]` lists the peers that peer `i` selected as its
/// overlay neighbours.
///
/// The paper's degree measurements (Fig. 1a/1c) are taken over the
/// *undirected closure*: a link counts for both endpoints whether or not
/// the selection was mutual. (Under the empty-rectangle rule at
/// equilibrium the relation is symmetric anyway — the spanned rectangle
/// does not depend on direction — which
/// [`OverlayGraph::is_symmetric`] lets tests assert.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlayGraph {
    out: Vec<Vec<usize>>,
}

impl OverlayGraph {
    /// Builds a graph from per-peer out-neighbour lists.
    ///
    /// Neighbour lists are sorted and deduplicated; self-loops are
    /// removed.
    ///
    /// # Panics
    ///
    /// Panics if any neighbour index is out of range.
    #[must_use]
    pub fn from_out_neighbors(mut out: Vec<Vec<usize>>) -> Self {
        let n = out.len();
        for (i, nbrs) in out.iter_mut().enumerate() {
            nbrs.sort_unstable();
            nbrs.dedup();
            nbrs.retain(|&j| j != i);
            if let Some(&max) = nbrs.last() {
                assert!(max < n, "neighbour index {max} out of range for {n} peers");
            }
        }
        OverlayGraph { out }
    }

    /// Number of peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// `true` if the graph has no peers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// The out-neighbours peer `i` selected (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn out_neighbors(&self, i: usize) -> &[usize] {
        &self.out[i]
    }

    /// Number of directed edges.
    #[must_use]
    pub fn directed_edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// The undirected closure: `undirected[i]` contains `j` iff `i`
    /// selected `j` or `j` selected `i`.
    #[must_use]
    pub fn undirected(&self) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.out.len()];
        for (i, nbrs) in self.out.iter().enumerate() {
            for &j in nbrs {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }

    /// Undirected degree of every peer (the paper's "degree of a peer
    /// within the obtained P2P topology").
    #[must_use]
    pub fn undirected_degrees(&self) -> Vec<usize> {
        self.undirected().iter().map(Vec::len).collect()
    }

    /// `true` if every selected link is mutual (`i → j` implies `j → i`).
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        self.out
            .iter()
            .enumerate()
            .all(|(i, nbrs)| nbrs.iter().all(|&j| self.out[j].binary_search(&i).is_ok()))
    }

    /// BFS hop distances from `start` over the undirected closure;
    /// `None` marks unreachable peers.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    #[must_use]
    pub fn bfs_distances(&self, start: usize) -> Vec<Option<usize>> {
        let adj = self.undirected();
        let mut dist = vec![None; self.out.len()];
        dist[start] = Some(0);
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            for &v in &adj[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// `true` if the undirected closure connects all peers. The empty
    /// graph is connected.
    #[must_use]
    pub fn is_connected_undirected(&self) -> bool {
        if self.out.is_empty() {
            return true;
        }
        self.bfs_distances(0).iter().all(Option::is_some)
    }
}

impl fmt::Display for OverlayGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "overlay({} peers, {} directed edges)",
            self.len(),
            self.directed_edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> OverlayGraph {
        // 0 -> 1, 1 -> 2 (directed path).
        OverlayGraph::from_out_neighbors(vec![vec![1], vec![2], vec![]])
    }

    #[test]
    fn construction_sorts_dedups_and_strips_self_loops() {
        let g = OverlayGraph::from_out_neighbors(vec![vec![2, 1, 1, 0], vec![], vec![]]);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.directed_edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn construction_rejects_bad_indices() {
        let _ = OverlayGraph::from_out_neighbors(vec![vec![3], vec![], vec![]]);
    }

    #[test]
    fn undirected_closure_symmetrizes() {
        let g = path3();
        let adj = g.undirected();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
        assert_eq!(g.undirected_degrees(), vec![1, 2, 1]);
    }

    #[test]
    fn symmetry_detection() {
        assert!(!path3().is_symmetric());
        let sym = OverlayGraph::from_out_neighbors(vec![vec![1], vec![0, 2], vec![1]]);
        assert!(sym.is_symmetric());
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path3();
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn connectivity_detects_isolated_peer() {
        let g = OverlayGraph::from_out_neighbors(vec![vec![1], vec![], vec![]]);
        assert!(!g.is_connected_undirected());
        assert!(path3().is_connected_undirected());
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = OverlayGraph::from_out_neighbors(vec![]);
        assert!(g.is_connected_undirected());
        assert!(g.is_empty());
    }

    #[test]
    fn display_summarizes() {
        assert_eq!(path3().to_string(), "overlay(3 peers, 2 directed edges)");
    }
}
