//! The shared topology substrate behind the oracle and the live overlay.
//!
//! [`TopologyStore`] owns the peer population, the incremental spatial
//! index ([`GridIndex`]), the current equilibrium adjacency (forward
//! **and** reverse, both sorted), per-peer topology fingerprints, and the
//! dirty-region bookkeeping of the last membership change. It is the one
//! engine both consumers drive:
//!
//! * [`crate::oracle::equilibrium`] runs the store's **bulk path**
//!   ([`build_shared_index`] + [`bulk_out_neighbors`]): index once,
//!   batch-select every peer in parallel.
//! * [`crate::OverlayNetwork`] keeps a store alive across churn and uses
//!   its **incremental path**: a join or leave touches only the peers
//!   whose candidate sets the membership change can affect, instead of
//!   re-converging the whole overlay.
//!
//! # Why the incremental path is exact
//!
//! Both shipped selection families are *monotone-local*:
//!
//! * **Join of `q`.** A rule only changes peer `i`'s selection if `q`
//!   itself enters it — a new candidate can displace but never
//!   *unblock*. For the empty-rectangle rule, the rectangle spanned by
//!   `i` and any candidate `j` is non-empty iff it contains one of `i`'s
//!   *selected* neighbours (the finite-descent argument of
//!   `geocast_geom::dominance`), so re-running the rule on
//!   `selection(i) ∪ {q}` yields exactly the selection over the full
//!   candidate set plus `q`. For Hyperplanes rules the old selection
//!   already holds every region's top-`K`, so the reduced re-run again
//!   equals the full one.
//! * **Leave of `q`.** A departure only changes the selection of peers
//!   that had `q` selected: for empty-rectangle, if `q` was the *only*
//!   point in some spanned rectangle of `i`, then `q`'s own rectangle
//!   with `i` was empty — i.e. `q` ∈ selection(`i`); for Hyperplanes,
//!   dropping a non-selected candidate leaves every top-`K` intact.
//!   The reverse-adjacency table hands the affected set directly.
//!
//! Property tests (`tests/prop_store.rs`) assert the incremental result
//! equals a from-scratch rebuild for the empty-rectangle rule and all
//! Hyperplanes instances, across random join/leave interleavings.

use std::collections::BTreeSet;
use std::sync::Arc;

use geocast_geom::{GridIndex, Point};

use crate::delta::{DeltaKind, DeltaLog, TopologyDelta};
use crate::graph::OverlayGraph;
use crate::par;
use crate::peer::{PeerId, PeerInfo};
use crate::select::{ids_in_slice_order, NeighborSelection, SelectContext};

/// FNV-1a fingerprint of one peer's out-neighbour list. Mixing the peer
/// index in keeps the XOR-of-all-peers network fingerprint collision
/// resistant against permuted-but-equal lists.
#[must_use]
pub fn topology_hash(i: usize, neighbors: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(i as u64 ^ 0x9e37_79b9_7f4a_7c15);
    mix(neighbors.len() as u64);
    for &j in neighbors {
        mix(j as u64 + 1);
    }
    h
}

/// Builds the shared spatial index when the population shape supports
/// it (at least two peers, indexable dimensionality, uniform `dim`).
#[must_use]
pub(crate) fn build_shared_index(peers: &[PeerInfo]) -> Option<GridIndex> {
    let dim = peers.first()?.point().dim();
    if peers.len() < 2
        || dim > geocast_geom::index::MAX_INDEX_DIM
        || peers.iter().any(|p| p.point().dim() != dim)
    {
        return None;
    }
    Some(GridIndex::build(peers))
}

/// The store's bulk path: every live peer's selection over the full live
/// candidate set, fanned out across CPU cores, answered from `index`
/// where possible. Departed peers get empty lists.
#[must_use]
pub(crate) fn bulk_out_neighbors<S>(
    peers: &[PeerInfo],
    selection: &S,
    index: Option<&GridIndex>,
    departed: Option<&[bool]>,
) -> Vec<Vec<usize>>
where
    S: NeighborSelection + Sync + ?Sized,
{
    let ctx = match index {
        Some(ix) => SelectContext::with_index(ix, ids_in_slice_order(peers)),
        None => SelectContext::without_index(),
    };
    let ctx = match departed {
        Some(mask) => ctx.masked(mask),
        None => ctx,
    };
    par::map_indexed(peers.len(), |i| {
        if departed.is_some_and(|mask| mask[i]) {
            Vec::new()
        } else {
            selection.select_in(peers, i, &ctx)
        }
    })
}

/// The shared, incrementally-maintained overlay topology: peer
/// population, spatial index, equilibrium adjacency, fingerprints and
/// dirty-region tracking, behind both the oracle and the live network.
///
/// Peer ids are dense insertion indices ([`PeerId`]`(i)` for the `i`-th
/// inserted peer); departed peers keep their vertex but contribute no
/// edges, exactly like [`crate::OverlayNetwork::topology`] reports.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use geocast_geom::gen::uniform_points;
/// use geocast_overlay::{oracle, select::EmptyRectSelection, TopologyStore};
///
/// let points = uniform_points(40, 2, 1000.0, 3).into_points();
/// let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
/// for p in &points {
///     store.insert(p.clone());
/// }
/// // The incremental equilibrium equals the from-scratch oracle.
/// let peers = geocast_overlay::PeerInfo::from_point_set(
///     &uniform_points(40, 2, 1000.0, 3));
/// assert_eq!(store.graph(), oracle::equilibrium(&peers, &EmptyRectSelection));
/// ```
pub struct TopologyStore {
    pub(crate) peers: Vec<PeerInfo>,
    pub(crate) departed: Vec<bool>,
    pub(crate) live: usize,
    index: Option<GridIndex>,
    /// `true` once a dimensionality mix disabled indexing for good.
    index_disabled: bool,
    pub(crate) out: Vec<Vec<usize>>,
    pub(crate) rev: Vec<Vec<usize>>,
    pub(crate) peer_hash: Vec<u64>,
    pub(crate) fingerprint: u64,
    pub(crate) last_delta: Vec<usize>,
    pub(crate) epoch: u64,
    log: DeltaLog,
    pub(crate) selection: Arc<dyn NeighborSelection + Send + Sync>,
    /// The region-sharded engine, when built through
    /// [`TopologyStore::from_peers_sharded`]; `None` runs the classic
    /// single-index paths. Every public accessor reads the same global
    /// tables either way.
    pub(crate) sharding: Option<Box<crate::shard::ShardedTopologyStore>>,
}

impl TopologyStore {
    /// Creates an empty store for the given selection rule.
    #[must_use]
    pub fn new(selection: Arc<dyn NeighborSelection + Send + Sync>) -> Self {
        TopologyStore {
            peers: Vec::new(),
            departed: Vec::new(),
            live: 0,
            index: None,
            index_disabled: false,
            out: Vec::new(),
            rev: Vec::new(),
            peer_hash: Vec::new(),
            fingerprint: 0,
            last_delta: Vec::new(),
            epoch: 0,
            log: DeltaLog::default(),
            selection,
            sharding: None,
        }
    }

    /// Builds a store over an existing dense-id population in one bulk
    /// pass (the oracle path), ready for incremental churn.
    ///
    /// # Panics
    ///
    /// Panics unless `peers[i].id().index() == i` for every `i` — the
    /// store owns the id space.
    #[must_use]
    pub fn from_peers(
        peers: Vec<PeerInfo>,
        selection: Arc<dyn NeighborSelection + Send + Sync>,
    ) -> Self {
        assert!(
            ids_in_slice_order(&peers),
            "TopologyStore requires dense insertion-order peer ids"
        );
        let index = build_shared_index(&peers);
        let out = bulk_out_neighbors(&peers, selection.as_ref(), index.as_ref(), None);
        let n = peers.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, nbrs) in out.iter().enumerate() {
            for &j in nbrs {
                rev[j].push(i);
            }
        }
        // Fill order is ascending in `i`, so rev lists are born sorted.
        let peer_hash: Vec<u64> = out
            .iter()
            .enumerate()
            .map(|(i, nbrs)| topology_hash(i, nbrs))
            .collect();
        let fingerprint = peer_hash.iter().fold(0, |acc, h| acc ^ h);
        TopologyStore {
            departed: vec![false; n],
            live: n,
            index,
            index_disabled: false,
            out,
            rev,
            peer_hash,
            fingerprint,
            last_delta: (0..n).collect(),
            epoch: 0,
            log: DeltaLog::default(),
            peers,
            selection,
            sharding: None,
        }
    }

    /// Builds a store over an existing dense-id population on the
    /// region-sharded engine ([`crate::shard`]): the coordinate domain
    /// is tiled into `config.shards()` shards, each with its own
    /// incremental spatial index and scoped delta log, and both this
    /// bulk build and subsequent churn run shard-parallel. The
    /// resulting topology, fingerprint and delta stream are
    /// byte-identical to [`TopologyStore::from_peers`]
    /// (property-tested in `tests/prop_shard.rs`).
    ///
    /// # Panics
    ///
    /// Panics unless `peers` is non-empty with dense insertion-order
    /// ids and an indexable uniform dimensionality
    /// (≤ [`geocast_geom::index::MAX_INDEX_DIM`]).
    #[must_use]
    pub fn from_peers_sharded(
        peers: Vec<PeerInfo>,
        selection: Arc<dyn NeighborSelection + Send + Sync>,
        config: &crate::shard::ShardConfig,
    ) -> Self {
        assert!(
            ids_in_slice_order(&peers),
            "TopologyStore requires dense insertion-order peer ids"
        );
        assert!(!peers.is_empty(), "sharded builds need a seed population");
        let dim = peers[0].point().dim();
        assert!(
            dim <= geocast_geom::index::MAX_INDEX_DIM,
            "sharded stores require an indexable dimensionality"
        );
        assert!(
            peers.iter().all(|p| p.point().dim() == dim),
            "population dimensionality is fixed per overlay"
        );
        let (mut engine, out) =
            crate::shard::ShardedTopologyStore::build(&peers, selection.as_ref(), config);
        // lint:allow(D002, reason = "feeds ShardBuildStats.reverse_ms telemetry only; no control flow reads the clock")
        let t = std::time::Instant::now();
        let n = peers.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, nbrs) in out.iter().enumerate() {
            for &j in nbrs {
                rev[j].push(i);
            }
        }
        let peer_hash: Vec<u64> = out
            .iter()
            .enumerate()
            .map(|(i, nbrs)| topology_hash(i, nbrs))
            .collect();
        let fingerprint = peer_hash.iter().fold(0, |acc, h| acc ^ h);
        engine.note_finalize(t.elapsed());
        TopologyStore {
            departed: vec![false; n],
            live: n,
            index: None,
            index_disabled: true, // the shards own the spatial indexes
            out,
            rev,
            peer_hash,
            fingerprint,
            last_delta: (0..n).collect(),
            epoch: 0,
            log: DeltaLog::default(),
            peers,
            selection,
            sharding: Some(Box::new(engine)),
        }
    }

    /// The region-sharded engine, when this store was built with
    /// [`TopologyStore::from_peers_sharded`].
    #[must_use]
    pub fn sharding(&self) -> Option<&crate::shard::ShardedTopologyStore> {
        self.sharding.as_deref()
    }

    /// Number of peers ever inserted (departed ones included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// `true` if no peer was ever inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Number of live (non-departed) peers.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// All peer descriptions, indexable by [`PeerId::index`].
    #[must_use]
    pub fn peers(&self) -> &[PeerInfo] {
        &self.peers
    }

    /// `true` if the peer has departed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_departed(&self, id: PeerId) -> bool {
        self.departed[id.index()]
    }

    /// The selection rule the store maintains the equilibrium of.
    #[must_use]
    pub fn selection(&self) -> &Arc<dyn NeighborSelection + Send + Sync> {
        &self.selection
    }

    /// The equilibrium out-neighbours of peer `i` (sorted; empty for
    /// departed peers).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn out_neighbors(&self, i: usize) -> &[usize] {
        &self.out[i]
    }

    /// The peers currently selecting `i` (sorted; empties out when `i`
    /// departs).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn rev_neighbors(&self, i: usize) -> &[usize] {
        &self.rev[i]
    }

    /// Merges `i`'s out- and reverse-neighbours into `buf` (sorted,
    /// deduplicated) — the undirected closure row, without materializing
    /// a graph. `buf` is cleared first.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn undirected_neighbors_into(&self, i: usize, buf: &mut Vec<usize>) {
        buf.clear();
        let (a, b) = (&self.out[i], &self.rev[i]);
        let (mut x, mut y) = (0usize, 0usize);
        while x < a.len() || y < b.len() {
            let next = match (a.get(x), b.get(y)) {
                (Some(&u), Some(&v)) if u == v => {
                    x += 1;
                    y += 1;
                    u
                }
                (Some(&u), Some(&v)) if u < v => {
                    x += 1;
                    u
                }
                (Some(_), Some(&v)) => {
                    y += 1;
                    v
                }
                (Some(&u), None) => {
                    x += 1;
                    u
                }
                (None, Some(&v)) => {
                    y += 1;
                    v
                }
                (None, None) => unreachable!("loop condition"),
            };
            buf.push(next);
        }
    }

    /// The undirected closure row of peer `i` as a fresh vector.
    #[must_use]
    pub fn undirected_neighbors(&self, i: usize) -> Vec<usize> {
        let mut buf = Vec::with_capacity(self.out[i].len() + self.rev[i].len());
        self.undirected_neighbors_into(i, &mut buf);
        buf
    }

    /// The current equilibrium topology as a CSR graph (departed peers
    /// keep their vertex, edge-less).
    #[must_use]
    pub fn graph(&self) -> OverlayGraph {
        OverlayGraph::from_out_neighbors(self.out.clone())
    }

    /// `true` while the store maintains its incremental spatial index
    /// (built once the population supports one; permanently disabled by
    /// un-indexable dimensionalities).
    #[must_use]
    pub fn has_spatial_index(&self) -> bool {
        self.index.is_some() || self.sharding.as_ref().is_some_and(|e| !e.is_detached())
    }

    /// The nearest **live** peer to `q` among those `accept` admits,
    /// under `metric`, ties broken by the smaller peer index — the
    /// brute-force `(distance, index)` minimum, answered through the
    /// incremental [`GridIndex`] when one is maintained and by a linear
    /// scan otherwise (both paths are exact, so the answer is identical
    /// either way). `None` when no live peer is accepted. On every
    /// engine — linear scan, indexed, sharded — `accept` is consulted
    /// at most once per live peer, so stateful predicates behave
    /// identically across them.
    ///
    /// This is the nearest-tree-member query behind routing-based group
    /// join (`geocast_core`'s relay grafting).
    ///
    /// # Panics
    ///
    /// Panics if the store is non-empty and `q`'s dimensionality
    /// disagrees with the population.
    #[must_use]
    pub fn nearest_live_where<F: FnMut(usize) -> bool>(
        &self,
        q: &Point,
        metric: geocast_geom::MetricKind,
        mut accept: F,
    ) -> Option<usize> {
        use geocast_geom::Metric;
        if let Some(engine) = &self.sharding {
            if !engine.is_detached() {
                return engine.nearest_live_where(&self.peers, q, metric, &mut accept);
            }
            // The shard indexes live in runtime worker threads: fall
            // through to the exact linear scan (index is None here).
        }
        match &self.index {
            Some(ix) => ix.nearest_where(q, metric, accept),
            None => (0..self.peers.len())
                .filter(|&i| !self.departed[i] && accept(i))
                .map(|i| (metric.dist(self.peers[i].point(), q), i))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .map(|(_, i)| i),
        }
    }

    /// Rolling 64-bit fingerprint of the whole topology: XOR of every
    /// peer's [`topology_hash`]. Changes whenever any out-list changes.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The dirty region of the last [`TopologyStore::insert`] /
    /// [`TopologyStore::remove`]: every peer whose out-list, reverse
    /// list, or membership changed, sorted ascending. Consumers
    /// (stability forests, localized gossip sync) re-check exactly these
    /// peers.
    #[must_use]
    pub fn last_delta(&self) -> &[usize] {
        &self.last_delta
    }

    /// The store's mutation epoch: 0 at construction (whether empty or
    /// bulk-built), incremented by every [`TopologyStore::insert`] /
    /// [`TopologyStore::remove`]. Together with
    /// [`TopologyStore::delta_log`] this is the consumer contract —
    /// remember the epoch you last absorbed, catch up from the log.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch-numbered delta stream: one [`TopologyDelta`] per
    /// mutation, bounded retention
    /// ([`crate::delta::DEFAULT_DELTA_CAPACITY`] events by default).
    /// Consumers that fall behind the retention window get `None` from
    /// [`DeltaLog::deltas_since`] and must resynchronise from the full
    /// store state.
    #[must_use]
    pub fn delta_log(&self) -> &DeltaLog {
        &self.log
    }

    /// Replaces the delta log with an empty one of the given retention,
    /// anchored at the current epoch. History is dropped: consumers
    /// behind the current epoch will be told to resynchronise, exactly
    /// as if they had fallen out of the retention window.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_delta_capacity(&mut self, capacity: usize) {
        self.log = DeltaLog::anchored(capacity, self.epoch);
    }

    /// Records the mutation that produced the current `last_delta` in
    /// the delta log.
    pub(crate) fn record_delta(&mut self, kind: DeltaKind) {
        self.epoch += 1;
        self.log.record(TopologyDelta {
            epoch: self.epoch,
            kind,
            dirty: self.last_delta.clone(),
        });
    }

    /// Inserts a new peer and incrementally re-converges the
    /// equilibrium: only peers whose candidate sets the join can affect
    /// are re-checked (each against its current selection plus the
    /// newcomer — see the module docs for why that is exact).
    ///
    /// Returns the new peer's id; [`TopologyStore::last_delta`] lists
    /// the affected peers.
    ///
    /// # Panics
    ///
    /// Panics if `point`'s dimensionality disagrees with the population
    /// (the paper fixes `D` per system).
    pub fn insert(&mut self, point: Point) -> PeerId {
        if self.sharding.is_some() {
            return crate::shard::sharded_insert(self, point);
        }
        if let Some(first) = self.peers.first() {
            assert_eq!(
                point.dim(),
                first.point().dim(),
                "population dimensionality is fixed per overlay"
            );
        }
        let id = self.peers.len();
        let info = PeerInfo::new(PeerId(id as u64), point);
        self.peers.push(info);
        self.departed.push(false);
        self.live += 1;
        self.out.push(Vec::new());
        self.rev.push(Vec::new());
        self.peer_hash.push(topology_hash(id, &[]));
        self.fingerprint ^= self.peer_hash[id];
        self.maintain_index_on_insert(id);

        // The newcomer's own selection runs over the full live set.
        let own = self.select_full(id);

        // Localized re-check: peer i's selection can only change if the
        // newcomer enters it, and that is decided exactly by re-running
        // the rule on selection(i) ∪ {newcomer}.
        let updates: Vec<Option<Vec<usize>>> = {
            let peers = &self.peers;
            let departed = &self.departed;
            let out = &self.out;
            let selection = self.selection.as_ref();
            par::map_indexed(id, |i| {
                if departed[i] {
                    return None;
                }
                // `id` is the largest index, so appending keeps the
                // candidate id list sorted.
                let mut cand_ids: Vec<usize> = Vec::with_capacity(out[i].len() + 1);
                cand_ids.extend_from_slice(&out[i]);
                cand_ids.push(id);
                let candidates: Vec<&PeerInfo> = cand_ids.iter().map(|&j| &peers[j]).collect();
                let picked = selection.select(&peers[i], &candidates);
                let new_out: Vec<usize> = picked.into_iter().map(|ci| cand_ids[ci]).collect();
                (new_out != out[i]).then_some(new_out)
            })
        };

        let mut delta = BTreeSet::new();
        delta.insert(id);
        self.apply_out(id, own, &mut delta);
        for (i, update) in updates.into_iter().enumerate() {
            if let Some(new_out) = update {
                self.apply_out(i, new_out, &mut delta);
            }
        }
        self.last_delta = delta.into_iter().collect();
        self.record_delta(DeltaKind::Join(id));
        PeerId(id as u64)
    }

    /// Idempotent [`TopologyStore::remove`]: removes the peer if it is
    /// still live and returns whether a removal happened. The
    /// failure-detection plane uses this — many detectors reach the
    /// same dead verdict independently and only the first may mutate.
    pub fn remove_if_present(&mut self, id: PeerId) -> bool {
        let v = id.index();
        if v >= self.peers.len() || self.departed[v] {
            return false;
        }
        self.remove(id);
        true
    }

    /// Removes a peer (crash-stop) and incrementally re-converges the
    /// equilibrium: exactly the peers that had the departed peer
    /// selected re-run their selection over the surviving population.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already departed.
    pub fn remove(&mut self, id: PeerId) {
        if self.sharding.is_some() {
            crate::shard::sharded_remove(self, id);
            return;
        }
        let v = id.index();
        assert!(v < self.peers.len(), "peer id out of range");
        assert!(!self.departed[v], "{id} already departed");
        self.departed[v] = true;
        self.live -= 1;
        if let Some(ix) = &mut self.index {
            ix.remove(v);
        }

        let mut delta = BTreeSet::new();
        delta.insert(v);
        // The departed peer selects nobody.
        self.apply_out(v, Vec::new(), &mut delta);
        // Only its selectors can lose an edge; they re-select over the
        // survivors (index-tombstoned or mask-filtered).
        let affected = self.rev[v].clone();
        for i in affected {
            let new_out = self.select_full(i);
            self.apply_out(i, new_out, &mut delta);
        }
        debug_assert!(self.rev[v].is_empty(), "survivors must drop the departed");
        self.last_delta = delta.into_iter().collect();
        self.record_delta(DeltaKind::Leave(v));
    }

    /// One peer's selection over the full live candidate set, through
    /// the index when it applies.
    fn select_full(&self, i: usize) -> Vec<usize> {
        if let Some(engine) = &self.sharding {
            return engine.fold_select(&self.peers, &self.departed, self.selection.as_ref(), i);
        }
        let ctx = match &self.index {
            Some(ix) => SelectContext::with_index(ix, true),
            None => SelectContext::without_index(),
        }
        .masked(&self.departed);
        self.selection.select_in(&self.peers, i, &ctx)
    }

    /// Replaces `i`'s out-list, maintaining reverse lists, hashes, the
    /// rolling fingerprint, and the delta set.
    pub(crate) fn apply_out(&mut self, i: usize, new_out: Vec<usize>, delta: &mut BTreeSet<usize>) {
        if self.out[i] == new_out {
            return;
        }
        let old_out = std::mem::replace(&mut self.out[i], new_out);
        // Symmetric difference updates the reverse lists; both lists are
        // sorted, so a merge walk finds the diffs.
        let (mut x, mut y) = (0usize, 0usize);
        loop {
            match (old_out.get(x), self.out[i].get(y)) {
                (Some(&u), Some(&v)) if u == v => {
                    x += 1;
                    y += 1;
                }
                (Some(&u), Some(&v)) if u < v => {
                    Self::rev_remove(&mut self.rev[u], i);
                    delta.insert(u);
                    x += 1;
                }
                (Some(_), Some(&v)) => {
                    Self::rev_insert(&mut self.rev[v], i);
                    delta.insert(v);
                    y += 1;
                }
                (Some(&u), None) => {
                    Self::rev_remove(&mut self.rev[u], i);
                    delta.insert(u);
                    x += 1;
                }
                (None, Some(&v)) => {
                    Self::rev_insert(&mut self.rev[v], i);
                    delta.insert(v);
                    y += 1;
                }
                (None, None) => break,
            }
        }
        let new_hash = topology_hash(i, &self.out[i]);
        self.fingerprint ^= self.peer_hash[i] ^ new_hash;
        self.peer_hash[i] = new_hash;
        delta.insert(i);
    }

    fn rev_insert(rev: &mut Vec<usize>, i: usize) {
        if let Err(pos) = rev.binary_search(&i) {
            rev.insert(pos, i);
        }
    }

    fn rev_remove(rev: &mut Vec<usize>, i: usize) {
        if let Ok(pos) = rev.binary_search(&i) {
            rev.remove(pos);
        }
    }

    /// Keeps the incremental index in step with an insertion: adds the
    /// point, or builds the index once the population supports one.
    fn maintain_index_on_insert(&mut self, id: usize) {
        if self.index_disabled {
            return;
        }
        let dim = self.peers[id].point().dim();
        if dim > geocast_geom::index::MAX_INDEX_DIM {
            self.index = None;
            self.index_disabled = true;
            return;
        }
        match &mut self.index {
            Some(ix) => {
                let got = ix.insert(self.peers[id].point());
                debug_assert_eq!(got, id, "index ids track peer ids");
            }
            None if self.peers.len() >= 2 => {
                let mut ix = GridIndex::build(&self.peers);
                for (i, &gone) in self.departed.iter().enumerate() {
                    if gone {
                        ix.remove(i);
                    }
                }
                self.index = Some(ix);
            }
            None => {}
        }
    }
}

impl std::fmt::Debug for TopologyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopologyStore")
            .field("peers", &self.peers.len())
            .field("live", &self.live)
            .field("selection", &self.selection.name())
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::select::{EmptyRectSelection, HyperplanesSelection};
    use geocast_geom::gen::uniform_points;
    use geocast_geom::MetricKind;

    fn points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
        uniform_points(n, dim, 1000.0, seed).into_points()
    }

    /// The definitional reference: selections of the live population
    /// computed from scratch, expressed over the store's dense ids.
    fn reference_graph(store: &TopologyStore) -> OverlayGraph {
        let departed: Vec<bool> = (0..store.len())
            .map(|i| store.is_departed(PeerId(i as u64)))
            .collect();
        let out = bulk_out_neighbors(
            store.peers(),
            store.selection().as_ref(),
            None,
            Some(&departed),
        );
        OverlayGraph::from_out_neighbors(out)
    }

    #[test]
    fn sequential_insertion_matches_oracle() {
        let pts = points(60, 2, 7);
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        for p in &pts {
            store.insert(p.clone());
        }
        let peers = PeerInfo::from_point_set(&uniform_points(60, 2, 1000.0, 7));
        assert_eq!(
            store.graph(),
            oracle::equilibrium(&peers, &EmptyRectSelection)
        );
    }

    #[test]
    fn insert_then_remove_matches_reference_for_hyperplanes() {
        let pts = points(50, 3, 11);
        let sel = Arc::new(HyperplanesSelection::orthogonal(3, 2, MetricKind::L1));
        let mut store = TopologyStore::new(sel);
        for p in &pts {
            store.insert(p.clone());
        }
        for v in [3u64, 17, 29, 44] {
            store.remove(PeerId(v));
            assert_eq!(store.graph(), reference_graph(&store), "after removing {v}");
        }
    }

    #[test]
    fn remove_if_present_is_idempotent() {
        let pts = points(30, 2, 19);
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        for p in &pts {
            store.insert(p.clone());
        }
        let epoch_before = store.epoch();
        assert!(store.remove_if_present(PeerId(5)), "first verdict removes");
        let epoch_after = store.epoch();
        assert!(epoch_after > epoch_before);
        // Duplicate verdicts from other detectors are no-ops.
        assert!(!store.remove_if_present(PeerId(5)));
        assert!(!store.remove_if_present(PeerId(9999)), "unknown peer");
        assert_eq!(store.epoch(), epoch_after, "no-ops record no deltas");
        assert_eq!(store.graph(), reference_graph(&store));
    }

    #[test]
    fn bulk_build_equals_incremental_build() {
        let pts = points(80, 2, 13);
        let mut inc = TopologyStore::new(Arc::new(EmptyRectSelection));
        for p in &pts {
            inc.insert(p.clone());
        }
        let peers = PeerInfo::from_point_set(&uniform_points(80, 2, 1000.0, 13));
        let bulk = TopologyStore::from_peers(peers, Arc::new(EmptyRectSelection));
        assert_eq!(inc.graph(), bulk.graph());
        assert_eq!(inc.fingerprint(), bulk.fingerprint());
    }

    #[test]
    fn delta_covers_every_changed_out_list() {
        let pts = points(70, 2, 17);
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        let mut previous: Vec<Vec<usize>> = Vec::new();
        for p in &pts {
            store.insert(p.clone());
            previous.push(Vec::new());
            let delta: std::collections::BTreeSet<usize> =
                store.last_delta().iter().copied().collect();
            for (i, prev) in previous.iter_mut().enumerate() {
                if store.out_neighbors(i) != prev.as_slice() {
                    assert!(delta.contains(&i), "changed peer {i} missing from delta");
                }
                *prev = store.out_neighbors(i).to_vec();
            }
        }
    }

    #[test]
    fn rev_neighbors_invert_out_neighbors() {
        let pts = points(40, 2, 19);
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        for p in &pts {
            store.insert(p.clone());
        }
        store.remove(PeerId(5));
        for i in 0..store.len() {
            for &j in store.out_neighbors(i) {
                assert!(
                    store.rev_neighbors(j).contains(&i),
                    "edge {i}->{j} missing from reverse table"
                );
            }
            for &j in store.rev_neighbors(i) {
                assert!(
                    store.out_neighbors(j).contains(&i),
                    "reverse entry {j}->{i} has no forward edge"
                );
            }
        }
    }

    #[test]
    fn undirected_rows_match_graph_closure() {
        let pts = points(35, 2, 23);
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        for p in &pts {
            store.insert(p.clone());
        }
        store.remove(PeerId(9));
        let closure = store.graph().undirected_closure();
        for i in 0..store.len() {
            assert_eq!(
                store.undirected_neighbors(i),
                closure.out_neighbors(i).to_vec(),
                "row {i}"
            );
        }
    }

    #[test]
    fn fingerprint_rolls_with_membership() {
        let pts = points(20, 2, 29);
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        let mut seen = std::collections::BTreeSet::new();
        for p in &pts {
            store.insert(p.clone());
            assert!(
                seen.insert(store.fingerprint()),
                "fingerprint must change on every join here"
            );
        }
        let before = store.fingerprint();
        store.remove(PeerId(4));
        assert_ne!(store.fingerprint(), before);
    }

    #[test]
    fn empty_and_singleton_stores_are_trivial() {
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        assert!(store.is_empty());
        assert_eq!(store.fingerprint(), 0);
        let id = store.insert(Point::new(vec![1.0, 2.0]).unwrap());
        assert_eq!(id, PeerId(0));
        assert_eq!(store.live_count(), 1);
        assert!(store.out_neighbors(0).is_empty());
        store.remove(id);
        assert_eq!(store.live_count(), 0);
        assert!(store.graph().is_empty() || store.graph().directed_edge_count() == 0);
    }

    #[test]
    fn epochs_count_mutations_and_deltas_replay_the_dirty_regions() {
        let pts = points(30, 2, 41);
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        let mut dirty_by_epoch: Vec<Vec<usize>> = Vec::new();
        for p in &pts {
            store.insert(p.clone());
            dirty_by_epoch.push(store.last_delta().to_vec());
        }
        store.remove(PeerId(3));
        dirty_by_epoch.push(store.last_delta().to_vec());
        assert_eq!(store.epoch(), 31, "one epoch per mutation");
        assert_eq!(store.delta_log().head_epoch(), 31);

        // A consumer that absorbed up to epoch 28 replays exactly the
        // last three deltas, dirty regions intact.
        let missed: Vec<&TopologyDelta> = store.delta_log().deltas_since(28).unwrap().collect();
        assert_eq!(missed.len(), 3);
        for (d, expect) in missed.iter().zip(&dirty_by_epoch[28..]) {
            assert_eq!(&d.dirty, expect);
        }
        assert_eq!(missed[2].kind, DeltaKind::Leave(3));
        assert!(matches!(missed[0].kind, DeltaKind::Join(28)));
    }

    #[test]
    fn bulk_built_stores_start_at_epoch_zero() {
        let peers = PeerInfo::from_point_set(&uniform_points(20, 2, 1000.0, 43));
        let mut store = TopologyStore::from_peers(peers, Arc::new(EmptyRectSelection));
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.delta_log().deltas_since(0).unwrap().count(), 0);
        store.insert(Point::new(vec![1.5, 2.5]).unwrap());
        assert_eq!(store.epoch(), 1);
        let d: Vec<&TopologyDelta> = store.delta_log().deltas_since(0).unwrap().collect();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, DeltaKind::Join(20));
        assert_eq!(d[0].dirty, store.last_delta());
    }

    #[test]
    fn capacity_change_anchors_the_log_at_the_current_epoch() {
        let pts = points(10, 2, 47);
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        for p in &pts {
            store.insert(p.clone());
        }
        store.set_delta_capacity(4);
        // History dropped: a lagging consumer is told to resync…
        assert!(store.delta_log().deltas_since(5).is_none());
        // …an up-to-date one proceeds, and new deltas flow normally.
        assert_eq!(store.delta_log().deltas_since(10).unwrap().count(), 0);
        store.remove(PeerId(2));
        assert_eq!(store.delta_log().deltas_since(10).unwrap().count(), 1);
    }

    #[test]
    fn nearest_live_where_agrees_between_index_and_scan() {
        use geocast_geom::Metric;
        let pts = points(60, 2, 53);
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        for p in &pts {
            store.insert(p.clone());
        }
        for gone in [4u64, 19, 33] {
            store.remove(PeerId(gone));
        }
        assert!(store.has_spatial_index());
        let scan = |q: &Point, accept: &dyn Fn(usize) -> bool| {
            (0..store.len())
                .filter(|&i| !store.is_departed(PeerId(i as u64)) && accept(i))
                .map(|i| (MetricKind::L1.dist(store.peers()[i].point(), q), i))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .map(|(_, i)| i)
        };
        let queries = points(10, 2, 54);
        for q in &queries {
            assert_eq!(
                store.nearest_live_where(q, MetricKind::L1, |_| true),
                scan(q, &|_| true)
            );
            // A sparse subset filter (the on-tree shape of graft queries)
            // and the removed peers must never be answered.
            let filtered = store.nearest_live_where(q, MetricKind::L1, |i| i % 5 == 0);
            assert_eq!(filtered, scan(q, &|i| i % 5 == 0));
            assert_eq!(
                store.nearest_live_where(q, MetricKind::L1, |i| i == 4),
                None
            );
        }
    }

    #[test]
    #[should_panic(expected = "already departed")]
    fn double_removal_is_rejected() {
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        let id = store.insert(Point::new(vec![1.0, 2.0]).unwrap());
        store.remove(id);
        store.remove(id);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn mixed_dimensions_are_rejected() {
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        store.insert(Point::new(vec![1.0, 2.0]).unwrap());
        store.insert(Point::new(vec![1.0, 2.0, 3.0]).unwrap());
    }

    #[test]
    fn colliding_coordinates_fall_back_exactly() {
        // A workload violating per-dimension distinctness: the index
        // declines and the masked brute path must keep incremental ==
        // reference.
        let pts = vec![
            Point::new(vec![0.0, 0.0]).unwrap(),
            Point::new(vec![5.0, 0.0]).unwrap(), // shares y with 0
            Point::new(vec![2.0, 3.0]).unwrap(),
            Point::new(vec![5.0, 7.0]).unwrap(), // shares x with 1
            Point::new(vec![9.0, 4.0]).unwrap(),
        ];
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        for p in &pts {
            store.insert(p.clone());
            assert_eq!(store.graph(), reference_graph(&store));
        }
        store.remove(PeerId(1));
        assert_eq!(store.graph(), reference_graph(&store));
    }
}
