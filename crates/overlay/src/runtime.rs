//! Thread-per-shard runtime: channel-fed shard workers behind a fold
//! coordinator.
//!
//! PR 8's sharded store still replays churn through one serial
//! dispatcher: every insert/remove walks the shards in-process, so the
//! critical-path speedup in `BENCH_shard.json` was a model, not a
//! sustained measurement. [`ShardRuntime`] makes the shards *actors*:
//! each [`crate::shard`] tile moves into a long-lived worker thread fed
//! by a bounded MPSC channel of `ShardCommand`s, and the coordinator
//! (the caller's thread) keeps only the global tables — peers,
//! adjacency, fingerprint, delta log — plus small per-shard replicas of
//! the geometry the skip tests need (cover boxes, tile boxes, live
//! counts).
//!
//! # The fold, distributed
//!
//! A selection fold (`fold_select` on the serial engine) becomes a
//! scatter/gather:
//!
//! ```text
//!  coordinator                shard workers (one thread per tile)
//!  ───────────                ──────────────────────────────────
//!  AddMember/Remove  ──────▶  membership + index upkeep
//!  Shortlist{queries} ─────▶  Shard::shortlist per query
//!            ◀──────────────  Shortlists(one list per query)
//!  RecordDelta ────────────▶  scoped ShardDeltaLog::record
//! ```
//!
//! 1. **Home scatter** — every queried peer's home shard answers its
//!    shortlist (batched per shard).
//! 2. **Escape test** — the coordinator runs the PR 8 skip tests
//!    ([`crate::shard`]'s uncovered-box and saturation certificates)
//!    against its replicas; only shards the tests cannot rule out get a
//!    *cross-shard escape* query.
//! 3. **Gather + merge** — replies are collected in ascending shard
//!    order and merged by the same sort/dedup/final-select as the
//!    serial fold.
//!
//! # Why the result is byte-identical
//!
//! Workers and the serial engine share one shortlist implementation
//! (`Shard::shortlist`), commands on a channel are FIFO, the
//! coordinator collects replies in ascending shard order, and every
//! global-table mutation happens on the coordinator in event order —
//! so scheduling freedom never reorders anything observable. The only
//! *timing* freedom left is how far a shard's command queue may run
//! behind; [`RuntimeConfig::barrier`] removes even that by draining
//! every worker after each event, which is the mode the property tests
//! and the CI strict gate pin against the serial dispatcher.
//!
//! # Lifecycle
//!
//! [`ShardRuntime::launch`] detaches the shards from a store built with
//! [`TopologyStore::from_peers_sharded`]; while detached the store
//! answers every read (adjacency, fingerprint, deltas, linear-scan
//! nearest queries) but its own `insert`/`remove` panic — mutations
//! must route through the runtime. [`ShardRuntime::shutdown`] drains
//! the workers and re-attaches the shards, returning the store to the
//! serial dispatcher byte-for-byte.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use geocast_geom::Point;

use crate::churn::{ChurnEvent, ChurnSchedule, StoreChurnReport};
use crate::delta::DeltaKind;
use crate::par;
use crate::peer::{PeerId, PeerInfo};
use crate::select::{NeighborSelection, ShardProfile};
use crate::shard::{
    orthant_stats, skip_certified, topk_join_recheck, uncovered_box_of, Shard, Tiling,
};
use crate::store::{topology_hash, TopologyStore};

/// How a [`ShardRuntime`] is provisioned.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Bound of each worker's command queue. A full queue makes the
    /// coordinator block (counted in
    /// [`RuntimeStats::backpressure_stalls`]) — commands are never
    /// dropped or reordered.
    pub queue_capacity: usize,
    /// Deterministic barrier mode: drain every worker after each
    /// event. Removes all queue lag, making the runtime's observable
    /// timeline identical to the serial dispatcher's (results are
    /// byte-identical either way).
    pub barrier: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            queue_capacity: 64,
            barrier: false,
        }
    }
}

/// One instruction to a shard worker. Channel order is the only order:
/// workers apply commands FIFO, which is what keeps the concurrent
/// runtime deterministic.
///
/// Public so alternative [`ShardTransport`] implementations (the
/// threaded default here, the bounded-interleaving model checker in
/// `xtask interleave`) can carry and replay the same protocol.
#[derive(Debug, Clone)]
pub enum ShardCommand {
    /// Register a member (resident or halo mirror) in the shard.
    AddMember {
        /// Global peer id of the new member.
        global: usize,
        /// The member's peer record.
        info: PeerInfo,
        /// `true` for the home shard, `false` for a halo mirror.
        resident: bool,
    },
    /// Tombstone a departed member, if this shard holds it.
    Remove {
        /// Global peer id of the departed member.
        global: usize,
    },
    /// Answer a batch of shortlist queries, one reply list per query,
    /// in query order.
    Shortlist {
        /// `(global id, peer record)` per query.
        queries: Vec<(usize, PeerInfo)>,
    },
    /// Record a scoped delta in the shard's log.
    RecordDelta {
        /// The churn event being recorded.
        kind: DeltaKind,
        /// Dirty peers homed in this shard.
        dirty: Vec<usize>,
        /// The store's global epoch for this event.
        global_epoch: u64,
    },
    /// Flush: reply with a pulse once everything before this command
    /// has been applied.
    Drain,
}

/// A worker's progress snapshot, returned by `Drain`.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPulse {
    /// Cumulative busy time of the worker.
    pub busy: Duration,
    /// Commands applied so far.
    pub commands: u64,
}

/// What a worker sends back over its reply channel. Only `Shortlist`
/// and `Drain` commands produce a reply.
#[derive(Debug, Clone)]
pub enum WorkerReply {
    /// One shortlist per query, in query order.
    Shortlists(Vec<Vec<usize>>),
    /// Progress snapshot answering a `Drain`.
    Pulse(WorkerPulse),
}

/// The worker-side state of one shard: the internal `Shard` moved out of the
/// engine plus worker-local replicas of the member infos and departure
/// flags (indexed by *local* id), which is all `Shard::shortlist`
/// needs — workers never touch the global peer tables.
///
/// [`ShardWorker::step`] applies exactly one command; the threaded
/// transport loops it on a dedicated thread, while the model checker
/// in `xtask interleave` steps workers inline under a controlled
/// schedule. Both paths run the identical state machine.
pub struct ShardWorker {
    shard: Shard,
    profile: ShardProfile,
    selection: Arc<dyn NeighborSelection + Send + Sync>,
    infos: Vec<PeerInfo>,
    gone: Vec<bool>,
    busy: Duration,
    commands: u64,
}

impl ShardWorker {
    /// Applies one command to the shard state, returning the reply it
    /// produces (if any). FIFO application of the command stream is
    /// the caller's contract — it is what makes every transport replay
    /// byte-identical.
    pub fn step(&mut self, cmd: ShardCommand) -> Option<WorkerReply> {
        // lint:allow(D002, reason = "feeds RuntimeStats::worker_busy telemetry only; no control flow reads the clock")
        let t = Instant::now();
        self.commands += 1;
        let reply = match cmd {
            ShardCommand::AddMember {
                global,
                info,
                resident,
            } => {
                self.shard.add_member(global, info.point(), resident);
                self.infos.push(info);
                self.gone.push(false);
                None
            }
            ShardCommand::Remove { global } => {
                if let Some(&local) = self.shard.local_of.get(&global) {
                    self.shard.index.remove(local);
                    self.gone[local] = true;
                }
                None
            }
            ShardCommand::Shortlist { queries } => {
                let shard = &self.shard;
                let infos = &self.infos;
                let gone = &self.gone;
                let lists: Vec<Vec<usize>> = queries
                    .iter()
                    .map(|(i, q)| {
                        shard.shortlist(
                            self.profile,
                            self.selection.as_ref(),
                            *i,
                            q,
                            |l| &infos[l],
                            |l| gone[l],
                        )
                    })
                    .collect();
                Some(WorkerReply::Shortlists(lists))
            }
            ShardCommand::RecordDelta {
                kind,
                dirty,
                global_epoch,
            } => {
                self.shard.log.record(kind, dirty, global_epoch);
                None
            }
            ShardCommand::Drain => {
                self.busy += t.elapsed();
                return Some(WorkerReply::Pulse(WorkerPulse {
                    busy: self.busy,
                    commands: self.commands,
                }));
            }
        };
        self.busy += t.elapsed();
        reply
    }

    /// Dismantles the worker back into its shard and busy time (for
    /// re-attachment at shutdown).
    pub(crate) fn into_parts(self) -> (Shard, Duration) {
        (self.shard, self.busy)
    }

    fn run(mut self, rx: &Receiver<ShardCommand>, reply: &Sender<WorkerReply>) -> ShardWorker {
        while let Ok(cmd) = rx.recv() {
            if let Some(r) = self.step(cmd) {
                let _ = reply.send(r);
            }
        }
        self
    }
}

/// Outcome of a [`ShardTransport::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The command was accepted without blocking.
    Sent,
    /// The worker's bounded queue was full: the transport blocked (or
    /// simulated a stall) before the command was accepted. Commands
    /// are never dropped or reordered.
    SentAfterStall,
}

/// The coordinator/worker channel seam.
///
/// [`ShardRuntime`] performs every worker interaction through this
/// trait: FIFO command delivery per shard ([`ShardTransport::send`]),
/// and blocking receipt of that shard's next reply
/// ([`ShardTransport::recv`]). The production implementation is
/// [`ThreadTransport`] (one OS thread and one bounded MPSC channel per
/// shard); `xtask interleave` substitutes a deterministic in-process
/// transport whose scheduler enumerates worker interleavings and
/// queue-full stalls, proving the fold result independent of both.
pub trait ShardTransport {
    /// Number of shard workers behind this transport.
    fn shard_count(&self) -> usize;
    /// Delivers `cmd` to shard `shard`'s FIFO queue, blocking if the
    /// bounded queue is full.
    fn send(&mut self, shard: usize, cmd: ShardCommand) -> SendOutcome;
    /// Receives the next reply from shard `shard`, blocking until the
    /// worker produces it.
    fn recv(&mut self, shard: usize) -> WorkerReply;
    /// Stops all workers after applying every command sent so far and
    /// returns them (their shards carry the final state).
    fn shutdown(&mut self) -> Vec<ShardWorker>;
}

struct WorkerHandle {
    tx: Option<SyncSender<ShardCommand>>,
    rx: Receiver<WorkerReply>,
    join: Option<JoinHandle<ShardWorker>>,
}

/// The production [`ShardTransport`]: each worker runs on a dedicated
/// OS thread fed by a bounded `sync_channel`.
pub struct ThreadTransport {
    workers: Vec<WorkerHandle>,
}

impl ThreadTransport {
    /// Spawns one thread per worker with the given command-queue bound.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity` is zero or a thread cannot spawn.
    #[must_use]
    pub fn launch(workers: Vec<ShardWorker>, queue_capacity: usize) -> ThreadTransport {
        assert!(queue_capacity > 0, "queue capacity must be positive");
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(s, worker)| {
                let (tx, cmd_rx) = sync_channel::<ShardCommand>(queue_capacity);
                let (reply_tx, rx) = std::sync::mpsc::channel::<WorkerReply>();
                let join = std::thread::Builder::new()
                    .name(format!("geocast-shard-{s}"))
                    .spawn(move || worker.run(&cmd_rx, &reply_tx))
                    .expect("spawn shard worker");
                WorkerHandle {
                    tx: Some(tx),
                    rx,
                    join: Some(join),
                }
            })
            .collect();
        ThreadTransport { workers: handles }
    }
}

impl ShardTransport for ThreadTransport {
    fn shard_count(&self) -> usize {
        self.workers.len()
    }

    fn send(&mut self, shard: usize, cmd: ShardCommand) -> SendOutcome {
        let tx = self.workers[shard]
            .tx
            .as_ref()
            .expect("transport not shut down");
        match tx.try_send(cmd) {
            Ok(()) => SendOutcome::Sent,
            Err(TrySendError::Full(cmd)) => {
                tx.send(cmd).expect("shard worker hung up");
                SendOutcome::SentAfterStall
            }
            Err(TrySendError::Disconnected(_)) => panic!("shard worker hung up"),
        }
    }

    fn recv(&mut self, shard: usize) -> WorkerReply {
        self.workers[shard].rx.recv().expect("shard worker hung up")
    }

    fn shutdown(&mut self) -> Vec<ShardWorker> {
        let mut workers = Vec::with_capacity(self.workers.len());
        for handle in &mut self.workers {
            drop(handle.tx.take());
            let join = handle.join.take().expect("worker not yet joined");
            workers.push(join.join().expect("shard worker panicked"));
        }
        self.workers.clear();
        workers
    }
}

impl Drop for ThreadTransport {
    /// Dropping without [`ShardTransport::shutdown`] stops the worker
    /// threads but abandons their shards.
    fn drop(&mut self) {
        for handle in &mut self.workers {
            drop(handle.tx.take());
        }
        for handle in &mut self.workers {
            if let Some(join) = handle.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// Throughput accounting of a [`ShardRuntime`]: event counts, the
/// cross-shard escape ledger, backpressure stalls, and the split of
/// busy time between the coordinator and each worker that the
/// critical-path model consumes.
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Join events applied.
    pub joins: u64,
    /// Leave events applied.
    pub leaves: u64,
    /// Shortlist queries sent to workers (home + escapes).
    pub shortlist_requests: u64,
    /// Shortlist queries that escaped to a non-home shard (the skip
    /// tests could not rule the shard out).
    pub cross_shard_requests: u64,
    /// Events whose fold needed at least one cross-shard escape.
    pub escape_events: u64,
    /// Times a worker's bounded queue was full and the coordinator had
    /// to block (no command is ever dropped or reordered).
    pub backpressure_stalls: u64,
    /// Barrier drains performed.
    pub barriers: u64,
    /// Coordinator busy time: wall time of the event loop minus time
    /// blocked waiting for worker replies.
    pub coordinator_busy: Duration,
    /// Time the coordinator spent blocked on worker replies.
    pub recv_wait: Duration,
    /// Per-worker busy time (complete after
    /// [`ShardRuntime::shutdown`]; refreshed by every barrier).
    pub worker_busy: Vec<Duration>,
}

impl RuntimeStats {
    /// Total events applied.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.joins + self.leaves
    }

    /// The busiest worker's busy time.
    #[must_use]
    pub fn max_worker_busy(&self) -> Duration {
        self.worker_busy.iter().copied().max().unwrap_or_default()
    }

    /// Sum of all workers' busy time.
    #[must_use]
    pub fn total_worker_busy(&self) -> Duration {
        self.worker_busy.iter().sum()
    }

    /// Critical-path time of the concurrent runtime: coordinator busy
    /// time plus the busiest worker — what the wall clock would be
    /// with one core per worker. The serial dispatcher's counterpart
    /// is coordinator plus the *sum* of worker time; the ratio is the
    /// core-independent speedup model `bench_runtime` records.
    #[must_use]
    pub fn critical_path(&self) -> Duration {
        self.coordinator_busy + self.max_worker_busy()
    }

    /// The serial-dispatcher model of the same work: coordinator busy
    /// time plus every worker's busy time, as one thread would run it.
    #[must_use]
    pub fn serial_path(&self) -> Duration {
        self.coordinator_busy + self.total_worker_busy()
    }

    /// Fraction of events that needed at least one cross-shard escape.
    #[must_use]
    pub fn escape_ratio(&self) -> f64 {
        if self.events() == 0 {
            0.0
        } else {
            self.escape_events as f64 / self.events() as f64
        }
    }
}

/// The coordinator of the thread-per-shard runtime. See the module
/// docs for the command/reply protocol and the determinism argument.
///
/// Generic over the [`ShardTransport`] carrying the command/reply
/// protocol; defaults to the production [`ThreadTransport`].
pub struct ShardRuntime<T: ShardTransport = ThreadTransport> {
    transport: T,
    shard_count: usize,
    tiling: Tiling,
    halo: f64,
    profile: ShardProfile,
    selection: Arc<dyn NeighborSelection + Send + Sync>,
    // Coordinator replicas of the per-shard geometry the skip tests
    // read, maintained in lockstep with the commands that change them.
    cover_lo: Vec<Vec<f64>>,
    cover_hi: Vec<Vec<f64>>,
    tile_lo: Vec<Vec<f64>>,
    tile_hi: Vec<Vec<f64>>,
    live_members: Vec<usize>,
    peer_count: usize,
    barrier_every_event: bool,
    stats: RuntimeStats,
}

impl ShardRuntime<ThreadTransport> {
    /// Detaches the shards of a store built with
    /// [`TopologyStore::from_peers_sharded`] into one worker thread
    /// each. Until [`ShardRuntime::shutdown`] re-attaches them, the
    /// store's own `insert`/`remove` panic — mutations go through
    /// [`ShardRuntime::insert`] / [`ShardRuntime::remove`].
    ///
    /// # Panics
    ///
    /// Panics if the store is not sharded, the shards are already
    /// detached, or `config.queue_capacity` is zero.
    #[must_use]
    pub fn launch(store: &mut TopologyStore, config: &RuntimeConfig) -> ShardRuntime {
        let capacity = config.queue_capacity;
        Self::launch_with(store, config, |workers| {
            ThreadTransport::launch(workers, capacity)
        })
    }
}

impl<T: ShardTransport> ShardRuntime<T> {
    /// [`ShardRuntime::launch`] with a caller-chosen transport: the
    /// store's shards are packaged into [`ShardWorker`]s and handed to
    /// `make`, which decides how (threads, an inline scheduler, …)
    /// commands reach them. The model checker behind
    /// `xtask interleave` enters here.
    ///
    /// # Panics
    ///
    /// Panics if the store is not sharded, the shards are already
    /// detached, or `config.queue_capacity` is zero.
    #[must_use]
    pub fn launch_with(
        store: &mut TopologyStore,
        config: &RuntimeConfig,
        make: impl FnOnce(Vec<ShardWorker>) -> T,
    ) -> ShardRuntime<T> {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let engine = store
            .sharding
            .as_mut()
            .expect("ShardRuntime requires a store built with from_peers_sharded");
        let tiling = engine.tiling().clone();
        let halo = engine.halo_width();
        let profile = engine.profile();
        let selection = store.selection.clone();
        let shards = engine.detach_shards();
        let k = shards.len();

        let mut workers = Vec::with_capacity(k);
        let mut cover_lo = Vec::with_capacity(k);
        let mut cover_hi = Vec::with_capacity(k);
        let mut tile_lo = Vec::with_capacity(k);
        let mut tile_hi = Vec::with_capacity(k);
        let mut live_members = Vec::with_capacity(k);
        for shard in shards {
            cover_lo.push(shard.cover_lo.clone());
            cover_hi.push(shard.cover_hi.clone());
            tile_lo.push(shard.tile_lo.clone());
            tile_hi.push(shard.tile_hi.clone());
            live_members.push(shard.index.live_len());
            let infos: Vec<PeerInfo> = shard
                .members
                .iter()
                .map(|&g| store.peers[g].clone())
                .collect();
            let gone: Vec<bool> = shard.members.iter().map(|&g| store.departed[g]).collect();
            workers.push(ShardWorker {
                shard,
                profile,
                selection: selection.clone(),
                infos,
                gone,
                busy: Duration::ZERO,
                commands: 0,
            });
        }
        let transport = make(workers);
        assert_eq!(
            transport.shard_count(),
            k,
            "transport must carry every shard worker"
        );
        ShardRuntime {
            transport,
            shard_count: k,
            tiling,
            halo,
            profile,
            selection,
            cover_lo,
            cover_hi,
            tile_lo,
            tile_hi,
            live_members,
            peer_count: store.peers.len(),
            barrier_every_event: config.barrier,
            stats: RuntimeStats {
                worker_busy: vec![Duration::ZERO; k],
                ..RuntimeStats::default()
            },
        }
    }

    /// Number of shard workers.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The accounting so far. `worker_busy` is only current as of the
    /// last barrier (or complete in the snapshot
    /// [`ShardRuntime::shutdown`] returns).
    #[must_use]
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Inserts a peer: the runtime counterpart of the sharded
    /// [`TopologyStore::insert`], byte-identical by construction
    /// (same global-table updates, same fold over the same shortlist
    /// code, same delta records).
    ///
    /// # Panics
    ///
    /// Panics if the store's dimensionality disagrees with the new
    /// point, or if the store was mutated behind the runtime's back.
    pub fn insert(&mut self, store: &mut TopologyStore, point: Point) -> PeerId {
        // lint:allow(D002, reason = "feeds RuntimeStats::coordinator_busy telemetry only; no control flow reads the clock")
        let t0 = Instant::now();
        let wait0 = self.stats.recv_wait;
        if let Some(first) = store.peers.first() {
            assert_eq!(
                point.dim(),
                first.point().dim(),
                "population dimensionality is fixed per overlay"
            );
        }
        assert_eq!(
            store.peers.len(),
            self.peer_count,
            "store mutated behind the runtime"
        );
        let id = store.peers.len();
        store.peers.push(PeerInfo::new(PeerId(id as u64), point));
        store.departed.push(false);
        store.live += 1;
        store.out.push(Vec::new());
        store.rev.push(Vec::new());
        store.peer_hash.push(topology_hash(id, &[]));
        store.fingerprint ^= store.peer_hash[id];

        // Membership fan-out: home + halo mirrors, exactly the serial
        // engine's add_peer, with shard state updated by commands and
        // the coordinator replicas updated in lockstep.
        let info = store.peers[id].clone();
        let coords: Vec<f64> = info.point().coords().to_vec();
        let h = self.tiling.shard_of(&coords);
        store
            .sharding
            .as_mut()
            .expect("sharded store")
            .register_home(id, h);
        self.send(
            h,
            ShardCommand::AddMember {
                global: id,
                info: info.clone(),
                resident: true,
            },
        );
        self.live_members[h] += 1;
        for (d, &x) in coords.iter().enumerate() {
            self.cover_lo[h][d] = self.cover_lo[h][d].min(x);
            self.cover_hi[h][d] = self.cover_hi[h][d].max(x);
        }
        for s in self.tiling.shards_near(&coords, self.halo) {
            if s != h {
                self.send(
                    s,
                    ShardCommand::AddMember {
                        global: id,
                        info: info.clone(),
                        resident: false,
                    },
                );
                self.live_members[s] += 1;
            }
        }

        let own = self
            .fold_batch(store, &[id])
            .pop()
            .expect("one fold per query");

        // The affected set, by rule structure — identical to the serial
        // sharded insert path.
        let affected: Vec<usize> = match self.profile {
            ShardProfile::EmptyRect => own.clone(),
            ShardProfile::OrthantTopK { k, metric } => {
                let peers = &store.peers;
                let departed = &store.departed;
                let out = &store.out;
                par::map_indexed(id, |i| {
                    (!departed[i] && topk_join_recheck(peers, out, i, id, k, metric)).then_some(i)
                })
                .into_iter()
                .flatten()
                .collect()
            }
            ShardProfile::Generic => (0..id).filter(|&i| !store.departed[i]).collect(),
        };
        let updates: Vec<Option<Vec<usize>>> = {
            let peers = &store.peers;
            let out = &store.out;
            let sel = self.selection.as_ref();
            par::map_indexed(affected.len(), |a| {
                let i = affected[a];
                let mut cand_ids: Vec<usize> = Vec::with_capacity(out[i].len() + 1);
                cand_ids.extend_from_slice(&out[i]);
                cand_ids.push(id);
                let refs: Vec<&PeerInfo> = cand_ids.iter().map(|&j| &peers[j]).collect();
                let picked = sel.select(&peers[i], &refs);
                let new_out: Vec<usize> = picked.into_iter().map(|ci| cand_ids[ci]).collect();
                (new_out != out[i]).then_some(new_out)
            })
        };

        let mut delta = BTreeSet::new();
        delta.insert(id);
        store.apply_out(id, own, &mut delta);
        for (a, update) in updates.into_iter().enumerate() {
            if let Some(new_out) = update {
                store.apply_out(affected[a], new_out, &mut delta);
            }
        }
        store.last_delta = delta.into_iter().collect();
        store.record_delta(DeltaKind::Join(id));
        self.record_shard_deltas(store, DeltaKind::Join(id));
        self.peer_count += 1;
        self.stats.joins += 1;
        self.note_event_time(t0, wait0);
        if self.barrier_every_event {
            self.barrier();
        }
        PeerId(id as u64)
    }

    /// Removes a peer: the runtime counterpart of the sharded
    /// [`TopologyStore::remove`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already departed, or if the
    /// store was mutated behind the runtime's back.
    pub fn remove(&mut self, store: &mut TopologyStore, id: PeerId) {
        // lint:allow(D002, reason = "feeds RuntimeStats::coordinator_busy telemetry only; no control flow reads the clock")
        let t0 = Instant::now();
        let wait0 = self.stats.recv_wait;
        let v = id.index();
        assert!(v < store.peers.len(), "peer id out of range");
        assert!(!store.departed[v], "{id} already departed");
        assert_eq!(
            store.peers.len(),
            self.peer_count,
            "store mutated behind the runtime"
        );
        store.departed[v] = true;
        store.live -= 1;
        // A peer is a member of exactly the shards whose halo band
        // contains it, so the tombstone fan-out recomputes that set.
        let coords: Vec<f64> = store.peers[v].point().coords().to_vec();
        for s in self.tiling.shards_near(&coords, self.halo) {
            self.send(s, ShardCommand::Remove { global: v });
            self.live_members[s] -= 1;
        }

        let mut delta = BTreeSet::new();
        delta.insert(v);
        store.apply_out(v, Vec::new(), &mut delta);
        let affected = store.rev[v].clone();
        let folds = self.fold_batch(store, &affected);
        for (&i, new_out) in affected.iter().zip(folds) {
            store.apply_out(i, new_out, &mut delta);
        }
        debug_assert!(store.rev[v].is_empty(), "survivors must drop the departed");
        store.last_delta = delta.into_iter().collect();
        store.record_delta(DeltaKind::Leave(v));
        self.record_shard_deltas(store, DeltaKind::Leave(v));
        self.stats.leaves += 1;
        self.note_event_time(t0, wait0);
        if self.barrier_every_event {
            self.barrier();
        }
    }

    /// Replays a churn schedule through the runtime — the worker-driven
    /// counterpart of [`crate::churn::run_schedule_on_store`].
    pub fn run_schedule(
        &mut self,
        store: &mut TopologyStore,
        schedule: &ChurnSchedule,
    ) -> StoreChurnReport {
        let mut report = StoreChurnReport {
            joins: 0,
            leaves: 0,
            touched_total: 0,
            touched_max: 0,
        };
        for event in schedule.events() {
            match event {
                ChurnEvent::Join(point) => {
                    self.insert(store, point.clone());
                    report.joins += 1;
                }
                ChurnEvent::Leave(id) => {
                    self.remove(store, *id);
                    report.leaves += 1;
                }
            }
            let touched = store.last_delta.len();
            report.touched_total += touched;
            report.touched_max = report.touched_max.max(touched);
        }
        report
    }

    /// Drains every worker: returns once all commands sent so far are
    /// applied, refreshing the per-worker busy snapshot.
    pub fn barrier(&mut self) {
        for s in 0..self.shard_count {
            self.send(s, ShardCommand::Drain);
        }
        for s in 0..self.shard_count {
            match self.recv_reply(s) {
                WorkerReply::Pulse(pulse) => {
                    self.stats.worker_busy[s] = pulse.busy;
                    let _ = pulse.commands;
                }
                WorkerReply::Shortlists(_) => {
                    unreachable!("drain replies cannot interleave with shortlists")
                }
            }
        }
        self.stats.barriers += 1;
    }

    /// Stops the workers, re-attaches the shards to the store's serial
    /// engine (byte-for-byte the state the dispatcher would have), and
    /// returns the final accounting.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked, or if the store was mutated
    /// behind the runtime's back.
    pub fn shutdown(mut self, store: &mut TopologyStore) -> RuntimeStats {
        assert_eq!(
            store.peers.len(),
            self.peer_count,
            "store mutated behind the runtime"
        );
        let mut shards = Vec::with_capacity(self.shard_count);
        for (s, worker) in self.transport.shutdown().into_iter().enumerate() {
            let (shard, busy) = worker.into_parts();
            self.stats.worker_busy[s] = busy;
            shards.push(shard);
        }
        store
            .sharding
            .as_mut()
            .expect("sharded store")
            .attach_shards(shards);
        self.stats.clone()
    }

    /// Sends a command through the transport; a full queue blocks
    /// (counted) rather than dropping or reordering.
    fn send(&mut self, s: usize, cmd: ShardCommand) {
        if self.transport.send(s, cmd) == SendOutcome::SentAfterStall {
            self.stats.backpressure_stalls += 1;
        }
    }

    fn recv_reply(&mut self, s: usize) -> WorkerReply {
        // lint:allow(D002, reason = "feeds RuntimeStats::recv_wait telemetry only; no control flow reads the clock")
        let t = Instant::now();
        let reply = self.transport.recv(s);
        self.stats.recv_wait += t.elapsed();
        reply
    }

    fn recv_shortlists(&mut self, s: usize) -> Vec<Vec<usize>> {
        match self.recv_reply(s) {
            WorkerReply::Shortlists(lists) => lists,
            WorkerReply::Pulse(_) => unreachable!("pulse replies cannot interleave with folds"),
        }
    }

    fn note_event_time(&mut self, t0: Instant, wait0: Duration) {
        let waited = self.stats.recv_wait - wait0;
        self.stats.coordinator_busy += t0.elapsed().saturating_sub(waited);
    }

    /// The distributed fold: each queried peer's exact selection over
    /// the full live population, assembled from worker shortlists.
    /// Phase order (home scatter, escape test, foreign gather) and the
    /// final merge reproduce the serial `fold_select` exactly; folds
    /// are batched because, per event, they are independent (a fold
    /// reads peers/departed/shard indexes, none of which change while
    /// an event's folds run).
    fn fold_batch(&mut self, store: &TopologyStore, items: &[usize]) -> Vec<Vec<usize>> {
        let k = self.shard_count;
        let engine = store.sharding.as_ref().expect("sharded store");
        let homes: Vec<usize> = items.iter().map(|&i| engine.home_shard(i)).collect();

        // Home scatter (a shard with no live members answers the empty
        // shortlist, so the query is elided — same as the serial path).
        let mut home_order: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (qi, &h) in homes.iter().enumerate() {
            if self.live_members[h] > 0 {
                home_order[h].push(qi);
            }
        }
        for (s, order) in home_order.iter().enumerate() {
            if order.is_empty() {
                continue;
            }
            let queries: Vec<(usize, PeerInfo)> = order
                .iter()
                .map(|&qi| (items[qi], store.peers[items[qi]].clone()))
                .collect();
            self.stats.shortlist_requests += queries.len() as u64;
            self.send(s, ShardCommand::Shortlist { queries });
        }
        let mut pools: Vec<Vec<usize>> = vec![Vec::new(); items.len()];
        for (s, order) in home_order.iter().enumerate() {
            if order.is_empty() {
                continue;
            }
            let lists = self.recv_shortlists(s);
            for (&qi, list) in order.iter().zip(lists) {
                pools[qi] = list;
            }
        }

        // Escape test against the coordinator replicas: exactly the
        // serial uncovered-box / skip-certificate sequence.
        let mut foreign_order: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut escaped = false;
        for (qi, &i) in items.iter().enumerate() {
            let knn = match self.profile {
                ShardProfile::OrthantTopK { k: kk, metric } => {
                    Some(orthant_stats(&store.peers, i, &pools[qi], kk, metric))
                }
                _ => None,
            };
            let home = homes[qi];
            for (s, order) in foreign_order.iter_mut().enumerate() {
                if s == home || self.live_members[s] == 0 {
                    continue;
                }
                match uncovered_box_of(
                    &self.cover_lo[s],
                    &self.cover_hi[s],
                    &self.tile_lo[home],
                    &self.tile_hi[home],
                    self.halo,
                ) {
                    None => continue,
                    Some((ulo, uhi)) => {
                        if skip_certified(
                            self.profile,
                            &store.peers,
                            i,
                            &pools[qi],
                            knn.as_ref(),
                            &ulo,
                            &uhi,
                        ) {
                            continue;
                        }
                    }
                }
                order.push(qi);
                self.stats.cross_shard_requests += 1;
                escaped = true;
            }
        }
        if escaped {
            self.stats.escape_events += 1;
        }

        // Foreign gather, ascending shard order — the same order the
        // serial fold extends its pool in.
        for (s, order) in foreign_order.iter().enumerate() {
            if order.is_empty() {
                continue;
            }
            let queries: Vec<(usize, PeerInfo)> = order
                .iter()
                .map(|&qi| (items[qi], store.peers[items[qi]].clone()))
                .collect();
            self.stats.shortlist_requests += queries.len() as u64;
            self.send(s, ShardCommand::Shortlist { queries });
        }
        for (s, order) in foreign_order.iter().enumerate() {
            if order.is_empty() {
                continue;
            }
            let lists = self.recv_shortlists(s);
            for (&qi, list) in order.iter().zip(lists) {
                pools[qi].extend(list);
            }
        }

        // Final merge-select on the coordinator.
        items
            .iter()
            .enumerate()
            .map(|(qi, &i)| {
                let mut pool = std::mem::take(&mut pools[qi]);
                pool.sort_unstable();
                pool.dedup();
                pool.retain(|&j| j != i && !store.departed[j]);
                let refs: Vec<&PeerInfo> = pool.iter().map(|&j| &store.peers[j]).collect();
                self.selection
                    .select(&store.peers[i], &refs)
                    .into_iter()
                    .map(|ci| pool[ci])
                    .collect()
            })
            .collect()
    }

    /// Fans the global dirty region out to the scoped shard logs, by
    /// resident home shard — the command-channel form of the serial
    /// engine's `record_shard_deltas`.
    fn record_shard_deltas(&mut self, store: &TopologyStore, kind: DeltaKind) {
        let engine = store.sharding.as_ref().expect("sharded store");
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &p in &store.last_delta {
            by_shard.entry(engine.home_shard(p)).or_default().push(p);
        }
        let epoch = store.epoch;
        for (s, dirty) in by_shard {
            self.send(
                s,
                ShardCommand::RecordDelta {
                    kind,
                    dirty,
                    global_epoch: epoch,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::churn::run_schedule_on_store;
    use crate::select::{EmptyRectSelection, HyperplanesSelection};
    use crate::shard::ShardConfig;
    use geocast_geom::gen::uniform_points;
    use geocast_geom::MetricKind;

    fn peers(n: usize, dim: usize, seed: u64) -> Vec<PeerInfo> {
        PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed))
    }

    fn selections() -> Vec<Arc<dyn NeighborSelection + Send + Sync>> {
        vec![
            Arc::new(EmptyRectSelection),
            Arc::new(HyperplanesSelection::orthogonal(2, 2, MetricKind::L1)),
            Arc::new(HyperplanesSelection::signed(2, 1, MetricKind::L2)),
            Arc::new(HyperplanesSelection::k_closest(2, 4, MetricKind::L2)),
        ]
    }

    #[test]
    fn runtime_churn_matches_serial_dispatcher() {
        for selection in selections() {
            for shards in [1usize, 4, 6] {
                let schedule = ChurnSchedule::random(60, 25, 20, 2, 1000.0, 11);
                let mut serial = TopologyStore::from_peers_sharded(
                    peers(60, 2, 7),
                    selection.clone(),
                    &ShardConfig::new(shards),
                );
                let mut driven = TopologyStore::from_peers_sharded(
                    peers(60, 2, 7),
                    selection.clone(),
                    &ShardConfig::new(shards),
                );
                run_schedule_on_store(&mut serial, &schedule);
                let mut rt = ShardRuntime::launch(&mut driven, &RuntimeConfig::default());
                rt.run_schedule(&mut driven, &schedule);
                let stats = rt.shutdown(&mut driven);
                assert_eq!(
                    serial.graph(),
                    driven.graph(),
                    "{} @ {shards} shards",
                    selection.name()
                );
                assert_eq!(serial.fingerprint(), driven.fingerprint());
                assert_eq!(serial.epoch(), driven.epoch());
                assert_eq!(serial.last_delta(), driven.last_delta());
                assert_eq!(stats.events(), schedule.len() as u64);
                // Scoped shard logs advanced identically.
                for s in 0..shards {
                    assert_eq!(
                        serial.sharding().unwrap().shard_log(s).global_head(),
                        driven.sharding().unwrap().shard_log(s).global_head(),
                    );
                }
            }
        }
    }

    #[test]
    fn barrier_mode_and_tiny_queues_change_nothing() {
        let selection: Arc<dyn NeighborSelection + Send + Sync> = Arc::new(EmptyRectSelection);
        let schedule = ChurnSchedule::random(50, 20, 15, 2, 1000.0, 23);
        let mut reference = TopologyStore::from_peers_sharded(
            peers(50, 2, 3),
            selection.clone(),
            &ShardConfig::new(4),
        );
        run_schedule_on_store(&mut reference, &schedule);
        for config in [
            RuntimeConfig {
                queue_capacity: 1,
                barrier: false,
            },
            RuntimeConfig {
                queue_capacity: 2,
                barrier: true,
            },
        ] {
            let mut driven = TopologyStore::from_peers_sharded(
                peers(50, 2, 3),
                selection.clone(),
                &ShardConfig::new(4),
            );
            let mut rt = ShardRuntime::launch(&mut driven, &config);
            rt.run_schedule(&mut driven, &schedule);
            let stats = rt.shutdown(&mut driven);
            assert_eq!(reference.graph(), driven.graph());
            assert_eq!(reference.fingerprint(), driven.fingerprint());
            if config.barrier {
                assert_eq!(stats.barriers, schedule.len() as u64);
            }
        }
    }

    #[test]
    fn detached_store_rejects_serial_mutations_until_shutdown() {
        let selection: Arc<dyn NeighborSelection + Send + Sync> = Arc::new(EmptyRectSelection);
        let mut store = TopologyStore::from_peers_sharded(
            peers(30, 2, 9),
            selection.clone(),
            &ShardConfig::new(4),
        );
        assert!(store.has_spatial_index());
        let mut rt = ShardRuntime::launch(&mut store, &RuntimeConfig::default());
        assert!(!store.has_spatial_index());
        // Reads stay exact while detached: nearest falls back to the
        // linear scan.
        let q = Point::new(vec![500.0, 500.0]).unwrap();
        let got = store.nearest_live_where(&q, MetricKind::L2, |_| true);
        assert!(got.is_some());
        let id = rt.insert(&mut store, Point::new(vec![501.0, 499.0]).unwrap());
        assert_eq!(
            store.nearest_live_where(&q, MetricKind::L2, |_| true),
            Some(id.index())
        );
        rt.shutdown(&mut store);
        assert!(store.has_spatial_index());
        // The serial dispatcher works again and sees the runtime's state.
        store.insert(Point::new(vec![10.0, 20.0]).unwrap());
        store.remove(id);
    }

    #[test]
    #[should_panic(expected = "driven by a ShardRuntime")]
    fn serial_insert_panics_while_detached() {
        let selection: Arc<dyn NeighborSelection + Send + Sync> = Arc::new(EmptyRectSelection);
        let mut store =
            TopologyStore::from_peers_sharded(peers(20, 2, 9), selection, &ShardConfig::new(2));
        let _rt = ShardRuntime::launch(&mut store, &RuntimeConfig::default());
        store.insert(Point::new(vec![1.0, 2.0]).unwrap());
    }
}
