//! Churn workloads: interleaved joins and departures.
//!
//! The paper's stability motivation ("many of the existing multicast tree
//! solutions are very sensitive to node departures") is quantified in
//! this repository by replaying churn schedules against overlays and
//! trees. A [`ChurnSchedule`] is an ordered list of join/leave events;
//! [`run_schedule`] replays one against an [`OverlayNetwork`], converging
//! between events exactly like the paper's insert-one-at-a-time
//! procedure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use geocast_geom::gen::uniform_points;
use geocast_geom::Point;
use geocast_sim::workload::{ChurnOp, ChurnPattern};

use crate::network::OverlayNetwork;
use crate::peer::PeerId;
use crate::store::TopologyStore;

/// One membership event.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// A new peer joins with the given identifier.
    Join(Point),
    /// An existing peer departs abruptly.
    Leave(PeerId),
}

/// An ordered list of membership events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Creates a schedule from explicit events.
    #[must_use]
    pub fn new(events: Vec<ChurnEvent>) -> Self {
        ChurnSchedule { events }
    }

    /// The events in order.
    #[must_use]
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A reproducible random schedule: starting from `initial` peers
    /// (which the caller adds first), `extra_joins` joins and
    /// `leaves` departures of already-present peers are interleaved
    /// uniformly at random.
    ///
    /// Departures never target a peer that has already left, and the
    /// schedule never empties the network.
    ///
    /// # Panics
    ///
    /// Panics if `leaves >= initial + extra_joins` (the network would
    /// empty) or `dim == 0`.
    #[must_use]
    pub fn random(
        initial: usize,
        extra_joins: usize,
        leaves: usize,
        dim: usize,
        vmax: f64,
        seed: u64,
    ) -> Self {
        assert!(
            leaves < initial + extra_joins,
            "schedule would empty the network"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Joining identifiers come from a fresh generator; distinctness
        // against the initial population is the caller's concern (use a
        // disjoint seed and the chance of collision is nil; the overlay
        // itself tolerates it via the naive fallback).
        let join_points: Vec<Point> =
            uniform_points(extra_joins, dim, vmax, seed ^ 0x9e37_79b9).into_points();

        let mut present: Vec<u64> = (0..initial as u64).collect();
        let mut next_id = initial as u64;
        let mut joins = join_points.into_iter();
        let mut remaining_joins = extra_joins;
        let mut remaining_leaves = leaves;
        let mut events = Vec::with_capacity(extra_joins + leaves);
        while remaining_joins + remaining_leaves > 0 {
            let total = remaining_joins + remaining_leaves;
            let do_join = present.len() <= 1
                || (remaining_joins > 0 && rng.random_range(0..total) < remaining_joins);
            if do_join {
                let p = joins.next().expect("join budget tracked");
                events.push(ChurnEvent::Join(p));
                present.push(next_id);
                next_id += 1;
                remaining_joins -= 1;
            } else {
                let victim = present.swap_remove(rng.random_range(0..present.len()));
                events.push(ChurnEvent::Leave(PeerId(victim)));
                remaining_leaves -= 1;
            }
        }
        ChurnSchedule { events }
    }

    /// Binds an abstract [`ChurnPattern`] to this overlay's workload
    /// shape: joins get fresh identifiers, leaves pick a uniformly
    /// random present peer. The caller's `initial` peers (added before
    /// replay) are leave candidates from the start. Leaves that would
    /// empty the network are dropped (the paper's overlay has no notion
    /// of an empty re-bootstrap).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or (for `Mixed`) both rates are zero.
    #[must_use]
    pub fn from_pattern(
        initial: usize,
        pattern: &ChurnPattern,
        dim: usize,
        vmax: f64,
        seed: u64,
    ) -> Self {
        assert!(dim > 0, "dim must be positive");
        let ops = pattern.ops(seed);
        let joins_total = ops.iter().filter(|op| matches!(op, ChurnOp::Join)).count();
        let join_points = uniform_points(joins_total, dim, vmax, seed ^ 0x9e37_79b9).into_points();
        let mut joins = join_points.into_iter();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6c65_6176_6573); // "leaves"
        let mut present: Vec<u64> = (0..initial as u64).collect();
        let mut next_id = initial as u64;
        let mut events = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                ChurnOp::Join => {
                    events.push(ChurnEvent::Join(joins.next().expect("join budget tracked")));
                    present.push(next_id);
                    next_id += 1;
                }
                ChurnOp::Leave => {
                    if present.len() <= 1 {
                        continue; // never empty the network
                    }
                    let victim = present.swap_remove(rng.random_range(0..present.len()));
                    events.push(ChurnEvent::Leave(PeerId(victim)));
                }
            }
        }
        ChurnSchedule { events }
    }
}

/// Outcome of replaying a churn schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnReport {
    /// Join events applied.
    pub joins: usize,
    /// Leave events applied.
    pub leaves: usize,
    /// Events after which the overlay failed to re-converge within its
    /// budget.
    pub convergence_failures: usize,
}

/// Replays `schedule` against `network`, converging after every event
/// (the paper's procedure generalised to departures).
pub fn run_schedule(network: &mut OverlayNetwork, schedule: &ChurnSchedule) -> ChurnReport {
    let mut report = ChurnReport {
        joins: 0,
        leaves: 0,
        convergence_failures: 0,
    };
    for event in schedule.events() {
        match event {
            ChurnEvent::Join(point) => {
                network.add_peer(point.clone());
                report.joins += 1;
            }
            ChurnEvent::Leave(id) => {
                network.remove_peer(*id);
                report.leaves += 1;
            }
        }
        if !network.converge().converged {
            report.convergence_failures += 1;
        }
    }
    report
}

/// Replays `schedule` against `network` through the **localized** churn
/// path: no global re-convergence between events — the shared
/// [`TopologyStore`] keeps the topology at the equilibrium after every
/// event, touching only the affected neighbourhood.
pub fn run_schedule_localized(
    network: &mut OverlayNetwork,
    schedule: &ChurnSchedule,
) -> ChurnReport {
    let mut report = ChurnReport {
        joins: 0,
        leaves: 0,
        convergence_failures: 0,
    };
    for event in schedule.events() {
        match event {
            ChurnEvent::Join(point) => {
                network.add_peer_localized(point.clone());
                report.joins += 1;
            }
            ChurnEvent::Leave(id) => {
                network.remove_peer_localized(*id);
                report.leaves += 1;
            }
        }
    }
    report
}

/// Outcome of replaying a churn schedule directly on a
/// [`TopologyStore`] (no simulator at all — the pure incremental
/// equilibrium engine, the fastest way to drive large-N churn studies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreChurnReport {
    /// Join events applied.
    pub joins: usize,
    /// Leave events applied.
    pub leaves: usize,
    /// Total peers touched across all events (Σ dirty-region sizes).
    pub touched_total: usize,
    /// Largest single-event dirty region.
    pub touched_max: usize,
}

impl StoreChurnReport {
    /// Mean dirty-region size per event (0 for an empty schedule).
    #[must_use]
    pub fn touched_mean(&self) -> f64 {
        let events = self.joins + self.leaves;
        if events == 0 {
            0.0
        } else {
            self.touched_total as f64 / events as f64
        }
    }
}

/// Replays `schedule` against a bare [`TopologyStore`], recording how
/// local each membership change stayed (the dirty-region sizes).
pub fn run_schedule_on_store(
    store: &mut TopologyStore,
    schedule: &ChurnSchedule,
) -> StoreChurnReport {
    run_schedule_on_store_with(store, schedule, |_, _| {})
}

/// [`run_schedule_on_store`] with a per-event observer: `observe(event
/// index, dirty-region size)` runs after each applied event — the hook
/// figure harnesses use to chart locality traces without re-implementing
/// the replay.
pub fn run_schedule_on_store_with(
    store: &mut TopologyStore,
    schedule: &ChurnSchedule,
    mut observe: impl FnMut(usize, usize),
) -> StoreChurnReport {
    let mut report = StoreChurnReport {
        joins: 0,
        leaves: 0,
        touched_total: 0,
        touched_max: 0,
    };
    for (ei, event) in schedule.events().iter().enumerate() {
        match event {
            ChurnEvent::Join(point) => {
                store.insert(point.clone());
                report.joins += 1;
            }
            ChurnEvent::Leave(id) => {
                store.remove(*id);
                report.leaves += 1;
            }
        }
        let touched = store.last_delta().len();
        report.touched_total += touched;
        report.touched_max = report.touched_max.max(touched);
        observe(ei, touched);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::select::EmptyRectSelection;
    use std::sync::Arc;

    #[test]
    fn random_schedule_has_requested_event_counts() {
        let s = ChurnSchedule::random(10, 7, 5, 2, 1000.0, 3);
        let joins = s
            .events()
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Join(_)))
            .count();
        let leaves = s
            .events()
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Leave(_)))
            .count();
        assert_eq!(joins, 7);
        assert_eq!(leaves, 5);
        assert_eq!(s.len(), 12);
    }

    #[test]
    fn random_schedule_never_leaves_absent_peer() {
        let s = ChurnSchedule::random(5, 20, 20, 2, 1000.0, 9);
        let mut present: std::collections::BTreeSet<u64> = (0..5).collect();
        let mut next = 5u64;
        for event in s.events() {
            match event {
                ChurnEvent::Join(_) => {
                    present.insert(next);
                    next += 1;
                }
                ChurnEvent::Leave(id) => {
                    assert!(present.remove(&id.0), "leave of absent peer {id}");
                }
            }
            assert!(!present.is_empty(), "network emptied");
        }
    }

    #[test]
    fn random_schedule_is_reproducible() {
        let a = ChurnSchedule::random(4, 6, 3, 2, 100.0, 11);
        let b = ChurnSchedule::random(4, 6, 3, 2, 100.0, 11);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty the network")]
    fn schedule_refuses_to_empty_network() {
        let _ = ChurnSchedule::random(2, 1, 3, 2, 100.0, 0);
    }

    #[test]
    fn pattern_schedules_bind_to_points_and_victims() {
        let flash = ChurnPattern::FlashCrowd {
            surge: 6,
            exodus: 4,
        };
        let s = ChurnSchedule::from_pattern(5, &flash, 2, 1000.0, 3);
        assert_eq!(s.len(), 10);
        let joins = s
            .events()
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Join(_)))
            .count();
        assert_eq!(joins, 6);
        // Reproducible per seed.
        assert_eq!(s, ChurnSchedule::from_pattern(5, &flash, 2, 1000.0, 3));
        assert_ne!(s, ChurnSchedule::from_pattern(5, &flash, 2, 1000.0, 4));
    }

    #[test]
    fn pattern_schedules_never_empty_the_network() {
        // A leave wave longer than the population: excess leaves drop.
        let wave = ChurnPattern::LeaveWave { count: 10 };
        let s = ChurnSchedule::from_pattern(4, &wave, 2, 1000.0, 7);
        assert_eq!(s.len(), 3, "only initial-1 leaves are possible");
        let mut present: std::collections::BTreeSet<u64> = (0..4).collect();
        for event in s.events() {
            if let ChurnEvent::Leave(id) = event {
                assert!(present.remove(&id.0));
            }
        }
        assert_eq!(present.len(), 1);
    }

    #[test]
    fn localized_replay_tracks_the_store_equilibrium() {
        let mut net = OverlayNetwork::new(Arc::new(EmptyRectSelection), NetworkConfig::default());
        for p in geocast_geom::gen::uniform_points(8, 2, 1000.0, 51).into_points() {
            net.add_peer_localized(p);
        }
        let pattern = ChurnPattern::Mixed {
            events: 12,
            join_rate: 1,
            leave_rate: 1,
        };
        let schedule = ChurnSchedule::from_pattern(8, &pattern, 2, 1000.0, 52);
        let report = run_schedule_localized(&mut net, &schedule);
        assert_eq!(report.joins + report.leaves, schedule.len());
        assert_eq!(report.convergence_failures, 0);
        assert_eq!(net.topology(), net.reference_topology());
    }

    #[test]
    fn store_replay_reports_dirty_regions() {
        let mut store = TopologyStore::new(Arc::new(EmptyRectSelection));
        for p in geocast_geom::gen::uniform_points(10, 2, 1000.0, 61).into_points() {
            store.insert(p.clone());
        }
        let pattern = ChurnPattern::FlashCrowd {
            surge: 5,
            exodus: 5,
        };
        let schedule = ChurnSchedule::from_pattern(10, &pattern, 2, 1000.0, 62);
        let report = run_schedule_on_store(&mut store, &schedule);
        assert_eq!(report.joins, 5);
        assert_eq!(report.leaves, 5);
        assert!(report.touched_max >= 1);
        assert!(report.touched_mean() >= 1.0);
        assert_eq!(store.live_count(), 10);
    }

    #[test]
    fn replay_keeps_overlay_connected() {
        let mut net = OverlayNetwork::new(Arc::new(EmptyRectSelection), NetworkConfig::default());
        for p in geocast_geom::gen::uniform_points(6, 2, 1000.0, 21).into_points() {
            net.add_peer(p);
        }
        net.converge();
        let schedule = ChurnSchedule::random(6, 3, 3, 2, 1000.0, 22);
        let report = run_schedule(&mut net, &schedule);
        assert_eq!(report.joins, 3);
        assert_eq!(report.leaves, 3);
        assert_eq!(report.convergence_failures, 0);
        // Live peers stay mutually reachable.
        let topo = net.topology();
        let live: Vec<usize> = (0..net.len())
            .filter(|&i| !net.has_departed(PeerId(i as u64)))
            .collect();
        let dist = topo.bfs_distances(live[0]);
        for &i in &live {
            assert!(dist[i].is_some(), "live peer {i} unreachable after churn");
        }
    }
}
