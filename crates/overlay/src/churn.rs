//! Churn workloads: interleaved joins and departures.
//!
//! The paper's stability motivation ("many of the existing multicast tree
//! solutions are very sensitive to node departures") is quantified in
//! this repository by replaying churn schedules against overlays and
//! trees. A [`ChurnSchedule`] is an ordered list of join/leave events;
//! [`run_schedule`] replays one against an [`OverlayNetwork`], converging
//! between events exactly like the paper's insert-one-at-a-time
//! procedure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use geocast_geom::gen::uniform_points;
use geocast_geom::Point;

use crate::network::OverlayNetwork;
use crate::peer::PeerId;

/// One membership event.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// A new peer joins with the given identifier.
    Join(Point),
    /// An existing peer departs abruptly.
    Leave(PeerId),
}

/// An ordered list of membership events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Creates a schedule from explicit events.
    #[must_use]
    pub fn new(events: Vec<ChurnEvent>) -> Self {
        ChurnSchedule { events }
    }

    /// The events in order.
    #[must_use]
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A reproducible random schedule: starting from `initial` peers
    /// (which the caller adds first), `extra_joins` joins and
    /// `leaves` departures of already-present peers are interleaved
    /// uniformly at random.
    ///
    /// Departures never target a peer that has already left, and the
    /// schedule never empties the network.
    ///
    /// # Panics
    ///
    /// Panics if `leaves >= initial + extra_joins` (the network would
    /// empty) or `dim == 0`.
    #[must_use]
    pub fn random(
        initial: usize,
        extra_joins: usize,
        leaves: usize,
        dim: usize,
        vmax: f64,
        seed: u64,
    ) -> Self {
        assert!(
            leaves < initial + extra_joins,
            "schedule would empty the network"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Joining identifiers come from a fresh generator; distinctness
        // against the initial population is the caller's concern (use a
        // disjoint seed and the chance of collision is nil; the overlay
        // itself tolerates it via the naive fallback).
        let join_points: Vec<Point> =
            uniform_points(extra_joins, dim, vmax, seed ^ 0x9e37_79b9).into_points();

        let mut present: Vec<u64> = (0..initial as u64).collect();
        let mut next_id = initial as u64;
        let mut joins = join_points.into_iter();
        let mut remaining_joins = extra_joins;
        let mut remaining_leaves = leaves;
        let mut events = Vec::with_capacity(extra_joins + leaves);
        while remaining_joins + remaining_leaves > 0 {
            let total = remaining_joins + remaining_leaves;
            let do_join = present.len() <= 1
                || (remaining_joins > 0 && rng.random_range(0..total) < remaining_joins);
            if do_join {
                let p = joins.next().expect("join budget tracked");
                events.push(ChurnEvent::Join(p));
                present.push(next_id);
                next_id += 1;
                remaining_joins -= 1;
            } else {
                let victim = present.swap_remove(rng.random_range(0..present.len()));
                events.push(ChurnEvent::Leave(PeerId(victim)));
                remaining_leaves -= 1;
            }
        }
        ChurnSchedule { events }
    }
}

/// Outcome of replaying a churn schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnReport {
    /// Join events applied.
    pub joins: usize,
    /// Leave events applied.
    pub leaves: usize,
    /// Events after which the overlay failed to re-converge within its
    /// budget.
    pub convergence_failures: usize,
}

/// Replays `schedule` against `network`, converging after every event
/// (the paper's procedure generalised to departures).
pub fn run_schedule(network: &mut OverlayNetwork, schedule: &ChurnSchedule) -> ChurnReport {
    let mut report = ChurnReport {
        joins: 0,
        leaves: 0,
        convergence_failures: 0,
    };
    for event in schedule.events() {
        match event {
            ChurnEvent::Join(point) => {
                network.add_peer(point.clone());
                report.joins += 1;
            }
            ChurnEvent::Leave(id) => {
                network.remove_peer(*id);
                report.leaves += 1;
            }
        }
        if !network.converge().converged {
            report.convergence_failures += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::select::EmptyRectSelection;
    use std::sync::Arc;

    #[test]
    fn random_schedule_has_requested_event_counts() {
        let s = ChurnSchedule::random(10, 7, 5, 2, 1000.0, 3);
        let joins = s
            .events()
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Join(_)))
            .count();
        let leaves = s
            .events()
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Leave(_)))
            .count();
        assert_eq!(joins, 7);
        assert_eq!(leaves, 5);
        assert_eq!(s.len(), 12);
    }

    #[test]
    fn random_schedule_never_leaves_absent_peer() {
        let s = ChurnSchedule::random(5, 20, 20, 2, 1000.0, 9);
        let mut present: std::collections::HashSet<u64> = (0..5).collect();
        let mut next = 5u64;
        for event in s.events() {
            match event {
                ChurnEvent::Join(_) => {
                    present.insert(next);
                    next += 1;
                }
                ChurnEvent::Leave(id) => {
                    assert!(present.remove(&id.0), "leave of absent peer {id}");
                }
            }
            assert!(!present.is_empty(), "network emptied");
        }
    }

    #[test]
    fn random_schedule_is_reproducible() {
        let a = ChurnSchedule::random(4, 6, 3, 2, 100.0, 11);
        let b = ChurnSchedule::random(4, 6, 3, 2, 100.0, 11);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty the network")]
    fn schedule_refuses_to_empty_network() {
        let _ = ChurnSchedule::random(2, 1, 3, 2, 100.0, 0);
    }

    #[test]
    fn replay_keeps_overlay_connected() {
        let mut net = OverlayNetwork::new(Arc::new(EmptyRectSelection), NetworkConfig::default());
        for p in geocast_geom::gen::uniform_points(6, 2, 1000.0, 21).into_points() {
            net.add_peer(p);
        }
        net.converge();
        let schedule = ChurnSchedule::random(6, 3, 3, 2, 1000.0, 22);
        let report = run_schedule(&mut net, &schedule);
        assert_eq!(report.joins, 3);
        assert_eq!(report.leaves, 3);
        assert_eq!(report.convergence_failures, 0);
        // Live peers stay mutually reachable.
        let topo = net.topology();
        let live: Vec<usize> = (0..net.len())
            .filter(|&i| !net.has_departed(PeerId(i as u64)))
            .collect();
        let dist = topo.bfs_distances(live[0]);
        for &i in &live {
            assert!(dist[i].is_some(), "live peer {i} unreachable after churn");
        }
    }
}
