use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use geocast_geom::Point;
use geocast_sim::{Counters, NodeId, SimDuration, Simulation};

use crate::gossip::{GossipConfig, GossipNode};
use crate::graph::OverlayGraph;
use crate::peer::{PeerId, PeerInfo};
use crate::select::NeighborSelection;

/// Configuration of an [`OverlayNetwork`] run.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Gossip protocol parameters.
    pub gossip: GossipConfig,
    /// Seed for the simulation and for bootstrap-peer choice.
    pub seed: u64,
    /// Virtual time between convergence checks.
    pub check_interval: SimDuration,
    /// Number of consecutive unchanged topology snapshots required to
    /// declare convergence.
    pub stable_checks: usize,
    /// Upper bound on convergence checks per [`OverlayNetwork::converge`]
    /// call.
    pub max_checks: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            gossip: GossipConfig::default(),
            seed: 0,
            check_interval: SimDuration::from_secs(2),
            stable_checks: 3,
            max_checks: 200,
        }
    }
}

/// Outcome of a convergence run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// `true` if the topology stabilised within the check budget.
    pub converged: bool,
    /// Convergence checks performed.
    pub checks: usize,
}

/// A live overlay: gossip peers inside a discrete-event simulation, with
/// the paper's experimental procedure on top (insert peers one at a time,
/// let the topology converge after every insertion).
///
/// # Example
///
/// ```
/// use geocast_overlay::{OverlayNetwork, NetworkConfig, select::EmptyRectSelection};
/// use geocast_geom::gen::uniform_points;
/// use std::sync::Arc;
///
/// let mut net = OverlayNetwork::new(Arc::new(EmptyRectSelection), NetworkConfig::default());
/// for p in uniform_points(8, 2, 1000.0, 1).into_points() {
///     net.add_peer(p);
/// }
/// let report = net.converge();
/// assert!(report.converged);
/// assert_eq!(net.topology().len(), 8);
/// ```
pub struct OverlayNetwork {
    sim: Simulation<GossipNode>,
    peers: Vec<PeerInfo>,
    departed: Vec<bool>,
    selection: Arc<dyn NeighborSelection + Send + Sync>,
    config: NetworkConfig,
    rng: StdRng,
}

impl OverlayNetwork {
    /// Creates an empty overlay.
    #[must_use]
    pub fn new(selection: Arc<dyn NeighborSelection + Send + Sync>, config: NetworkConfig) -> Self {
        config.gossip.validate();
        OverlayNetwork {
            sim: Simulation::builder(Vec::new()).seed(config.seed).build(),
            peers: Vec::new(),
            departed: Vec::new(),
            selection,
            config,
            rng: StdRng::seed_from_u64(config.seed ^ 0x0067_656f_6361_7374), // "geocast"
        }
    }

    /// Number of peers ever added (departed ones included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// `true` if no peer was ever added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// All peer descriptions, indexable by [`PeerId::index`].
    #[must_use]
    pub fn peers(&self) -> &[PeerInfo] {
        &self.peers
    }

    /// `true` if the peer has departed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn has_departed(&self, id: PeerId) -> bool {
        self.departed[id.index()]
    }

    /// Message counters of the underlying simulation.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        self.sim.counters()
    }

    /// Adds a peer with the given identifier. Per the paper's join
    /// procedure it is handed one or more live bootstrap peers (chosen
    /// uniformly at random here); the first peer joins alone.
    ///
    /// Returns the new peer's id. Does **not** wait for convergence —
    /// call [`OverlayNetwork::converge`] to replicate the paper's
    /// insert-then-converge loop.
    pub fn add_peer(&mut self, point: Point) -> PeerId {
        let id = PeerId(self.peers.len() as u64);
        let info = PeerInfo::new(id, point);
        let live: Vec<usize> = (0..self.peers.len())
            .filter(|&i| !self.departed[i])
            .collect();
        let bootstrap = if live.is_empty() {
            Vec::new()
        } else {
            let pick = live[self.rng.random_range(0..live.len())];
            vec![self.peers[pick].clone()]
        };
        self.peers.push(info.clone());
        self.departed.push(false);
        let node = GossipNode::new(
            info,
            bootstrap,
            Arc::clone(&self.selection),
            self.config.gossip,
        );
        let node_id = self.sim.spawn(node);
        debug_assert_eq!(node_id.index(), id.index(), "NodeId/PeerId alignment");
        id
    }

    /// Removes a peer abruptly (crash-stop): its traffic ceases and other
    /// peers expire it from their candidate sets after `Tmax`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn remove_peer(&mut self, id: PeerId) {
        self.departed[id.index()] = true;
        self.sim.crash(NodeId(id.index()));
    }

    /// Runs the gossip protocol until the topology is unchanged for
    /// `stable_checks` consecutive checks (or the check budget runs out).
    pub fn converge(&mut self) -> ConvergenceReport {
        let mut last = self.snapshot();
        let mut stable = 0usize;
        for checks in 1..=self.config.max_checks {
            self.sim.run_for(self.config.check_interval);
            let current = self.snapshot();
            if current == last {
                stable += 1;
                if stable >= self.config.stable_checks {
                    return ConvergenceReport {
                        converged: true,
                        checks,
                    };
                }
            } else {
                stable = 0;
                last = current;
            }
        }
        ConvergenceReport {
            converged: false,
            checks: self.config.max_checks,
        }
    }

    /// The current topology over **live** peers: departed peers keep
    /// their vertex (so ids stay dense) but contribute no edges.
    #[must_use]
    pub fn topology(&self) -> OverlayGraph {
        OverlayGraph::from_out_neighbors(self.snapshot())
    }

    /// Read access to the underlying simulation (for tests and metrics).
    #[must_use]
    pub fn sim(&self) -> &Simulation<GossipNode> {
        &self.sim
    }

    fn snapshot(&self) -> Vec<Vec<usize>> {
        (0..self.peers.len())
            .map(|i| {
                if self.departed[i] {
                    Vec::new()
                } else {
                    let mut nbrs: Vec<usize> = self
                        .sim
                        .node(NodeId(i))
                        .neighbors()
                        .iter()
                        .copied()
                        .filter(|&j| !self.departed[j])
                        .collect();
                    nbrs.sort_unstable();
                    nbrs
                }
            })
            .collect()
    }
}

impl std::fmt::Debug for OverlayNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlayNetwork")
            .field("peers", &self.peers.len())
            .field("selection", &self.selection.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::EmptyRectSelection;
    use geocast_geom::gen::uniform_points;

    fn network(seed: u64) -> OverlayNetwork {
        OverlayNetwork::new(
            Arc::new(EmptyRectSelection),
            NetworkConfig {
                seed,
                ..NetworkConfig::default()
            },
        )
    }

    #[test]
    fn incremental_insertion_converges_each_time() {
        let mut net = network(5);
        let points = uniform_points(6, 2, 1000.0, 5);
        for p in points.into_points() {
            net.add_peer(p);
            let report = net.converge();
            assert!(report.converged, "insertion must re-converge");
        }
        assert_eq!(net.len(), 6);
        assert!(net.topology().is_connected_undirected());
    }

    #[test]
    fn topology_is_deterministic_per_seed() {
        let build = |seed: u64| {
            let mut net = network(seed);
            for p in uniform_points(10, 2, 1000.0, 42).into_points() {
                net.add_peer(p);
            }
            net.converge();
            net.topology()
        };
        assert_eq!(build(3), build(3));
    }

    #[test]
    fn removed_peer_disappears_from_topology() {
        let mut net = network(8);
        for p in uniform_points(8, 2, 1000.0, 8).into_points() {
            net.add_peer(p);
        }
        net.converge();
        net.remove_peer(PeerId(3));
        assert!(net.has_departed(PeerId(3)));
        net.converge();
        let topo = net.topology();
        assert!(topo.out_neighbors(3).is_empty());
        for i in 0..topo.len() {
            assert!(
                !topo.out_neighbors(i).contains(&3),
                "peer {i} still links to departed"
            );
        }
    }

    #[test]
    fn empty_network_reports_trivially() {
        let mut net = network(0);
        assert!(net.is_empty());
        let report = net.converge();
        assert!(report.converged);
        assert!(net.topology().is_empty());
    }

    #[test]
    fn peers_are_stored_in_insertion_order() {
        let mut net = network(1);
        let points = uniform_points(4, 3, 500.0, 77);
        for p in points.iter() {
            net.add_peer(p.clone());
        }
        for (i, peer) in net.peers().iter().enumerate() {
            assert_eq!(peer.id().index(), i);
            assert_eq!(peer.point(), &points[i]);
        }
    }
}
