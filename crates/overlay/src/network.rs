use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use geocast_geom::Point;
use geocast_sim::{Counters, NodeId, SimDuration, Simulation};

use crate::delta::{CursorCatchUp, DeltaCursor, DeltaKind, TopologyDelta};
use crate::gossip::{GossipConfig, GossipNode};
use crate::graph::OverlayGraph;
use crate::peer::{PeerId, PeerInfo};
use crate::select::NeighborSelection;
use crate::store::TopologyStore;

/// Configuration of an [`OverlayNetwork`] run.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Gossip protocol parameters.
    pub gossip: GossipConfig,
    /// Seed for the simulation and for bootstrap-peer choice.
    pub seed: u64,
    /// Virtual time between convergence checks.
    pub check_interval: SimDuration,
    /// Number of consecutive unchanged topology fingerprints required
    /// to declare convergence.
    pub stable_checks: usize,
    /// Upper bound on convergence checks per [`OverlayNetwork::converge`]
    /// call.
    pub max_checks: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            gossip: GossipConfig::default(),
            seed: 0,
            check_interval: SimDuration::from_secs(2),
            stable_checks: 3,
            max_checks: 200,
        }
    }
}

/// Outcome of a convergence run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// `true` if the topology stabilised within the check budget.
    pub converged: bool,
    /// Convergence checks performed.
    pub checks: usize,
}

/// Message accounting of the localized churn path (which bypasses the
/// simulated announcement flood, so the simulator's counters do not see
/// its traffic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalizedChurnStats {
    /// Joins applied through [`OverlayNetwork::add_peer_localized`].
    pub joins: usize,
    /// Leaves applied through [`OverlayNetwork::remove_peer_localized`].
    pub leaves: usize,
    /// Peer-state contacts performed (one per affected peer per event —
    /// the message cost a locate-first join/leave protocol would pay).
    pub contacts: usize,
}

/// Outcome of one [`OverlayNetwork::sync_gossip`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipSyncReport {
    /// Gossip nodes spawned for store peers that had none yet.
    pub spawned: usize,
    /// Topology deltas replayed onto the affected nodes.
    pub deltas: usize,
    /// `true` if the gossip consumer fell past the delta log's
    /// eviction horizon and rebuilt from full store state (counted in
    /// [`OverlayNetwork::gossip_cursor`]'s resync ledger).
    pub resynced: bool,
}

/// A live overlay: gossip peers inside a discrete-event simulation, with
/// the paper's experimental procedure on top (insert peers one at a time,
/// let the topology converge after every insertion).
///
/// Membership is backed by a shared [`TopologyStore`], which maintains
/// the full-knowledge equilibrium incrementally across churn. Two churn
/// paths exist:
///
/// * the **protocol path** ([`OverlayNetwork::add_peer`] /
///   [`OverlayNetwork::remove_peer`] + [`OverlayNetwork::converge`]):
///   the paper's procedure — random bootstrap, BR-hop announcement
///   flooding, global re-convergence;
/// * the **localized path** ([`OverlayNetwork::add_peer_localized`] /
///   [`OverlayNetwork::remove_peer_localized`]): the store computes the
///   dirty region of the membership change and only those peers'
///   protocol state is re-synchronized (the locate-first join of
///   Kaafar et al. played by the driver). The result is the same
///   equilibrium the protocol path converges to — cross-validated by
///   tests — at a per-event cost proportional to the affected
///   neighbourhood instead of the whole network.
///
/// # Example
///
/// ```
/// use geocast_overlay::{OverlayNetwork, NetworkConfig, select::EmptyRectSelection};
/// use geocast_geom::gen::uniform_points;
/// use std::sync::Arc;
///
/// let mut net = OverlayNetwork::new(Arc::new(EmptyRectSelection), NetworkConfig::default());
/// for p in uniform_points(8, 2, 1000.0, 1).into_points() {
///     net.add_peer(p);
/// }
/// let report = net.converge();
/// assert!(report.converged);
/// assert_eq!(net.topology().len(), 8);
/// ```
pub struct OverlayNetwork {
    sim: Simulation<GossipNode>,
    store: TopologyStore,
    selection: Arc<dyn NeighborSelection + Send + Sync>,
    config: NetworkConfig,
    rng: StdRng,
    churn_stats: LocalizedChurnStats,
    gossip_cursor: DeltaCursor,
}

impl OverlayNetwork {
    /// Creates an empty overlay.
    #[must_use]
    pub fn new(selection: Arc<dyn NeighborSelection + Send + Sync>, config: NetworkConfig) -> Self {
        config.gossip.validate();
        OverlayNetwork {
            sim: Simulation::builder(Vec::new()).seed(config.seed).build(),
            store: TopologyStore::new(Arc::clone(&selection)),
            selection,
            config,
            rng: StdRng::seed_from_u64(config.seed ^ 0x0067_656f_6361_7374), // "geocast"
            churn_stats: LocalizedChurnStats::default(),
            gossip_cursor: DeltaCursor::new("gossip"),
        }
    }

    /// Number of peers ever added (departed ones included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` if no peer was ever added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// All peer descriptions, indexable by [`PeerId::index`].
    #[must_use]
    pub fn peers(&self) -> &[PeerInfo] {
        self.store.peers()
    }

    /// `true` if the peer has departed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn has_departed(&self, id: PeerId) -> bool {
        self.store.is_departed(id)
    }

    /// Message counters of the underlying simulation.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        self.sim.counters()
    }

    /// Accounting of the localized churn path (not visible to the
    /// simulator's counters).
    #[must_use]
    pub fn churn_stats(&self) -> LocalizedChurnStats {
        self.churn_stats
    }

    /// The shared topology store: the incrementally-maintained
    /// full-knowledge equilibrium over the current membership.
    #[must_use]
    pub fn store(&self) -> &TopologyStore {
        &self.store
    }

    /// Mutable access to the shared store — the external-driver
    /// contract: mutate (directly or through a
    /// [`crate::runtime::ShardRuntime`]), then call
    /// [`OverlayNetwork::sync_gossip`] to let the gossip consumer catch
    /// up at its own cadence.
    #[must_use]
    pub fn store_mut(&mut self) -> &mut TopologyStore {
        &mut self.store
    }

    /// The gossip consumer's position and resync ledger in the store's
    /// delta stream.
    #[must_use]
    pub fn gossip_cursor(&self) -> &DeltaCursor {
        &self.gossip_cursor
    }

    /// Adds a peer with the given identifier. Per the paper's join
    /// procedure it is handed one or more live bootstrap peers (chosen
    /// uniformly at random here); the first peer joins alone.
    ///
    /// Returns the new peer's id. Does **not** wait for convergence —
    /// call [`OverlayNetwork::converge`] to replicate the paper's
    /// insert-then-converge loop.
    pub fn add_peer(&mut self, point: Point) -> PeerId {
        let live: Vec<usize> = (0..self.store.len())
            .filter(|&i| !self.store.is_departed(PeerId(i as u64)))
            .collect();
        let bootstrap = if live.is_empty() {
            Vec::new()
        } else {
            let pick = live[self.rng.random_range(0..live.len())];
            vec![self.store.peers()[pick].clone()]
        };
        let id = self.store.insert(point);
        self.spawn_gossip_node(id, bootstrap)
    }

    /// Adds a peer through the localized churn path: the shared store
    /// computes the equilibrium delta of the join, the newcomer
    /// bootstraps directly from its equilibrium neighbourhood
    /// (locate-first instead of random walk), and only the affected
    /// peers' protocol state is re-synchronized. No global
    /// re-convergence is needed; [`OverlayNetwork::converge`] afterwards
    /// is a no-op change-wise (tests assert the fixpoint).
    pub fn add_peer_localized(&mut self, point: Point) -> PeerId {
        let id = self.store.insert(point);
        self.sync_gossip();
        self.churn_stats.joins += 1;
        id
    }

    /// Removes a peer abruptly (crash-stop): its traffic ceases and other
    /// peers expire it from their candidate sets after `Tmax`. Removing
    /// an already-departed peer is a no-op (crash-stop is idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn remove_peer(&mut self, id: PeerId) {
        if self.store.is_departed(id) {
            return;
        }
        self.store.remove(id);
        self.sim.crash(NodeId(id.index()));
    }

    /// Removes a peer through the localized churn path: the store hands
    /// the exact set of peers whose selections the departure can change
    /// (its selectors), and only their protocol state is repaired — the
    /// departed peer is expired from their candidate sets immediately
    /// instead of after `Tmax`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already departed.
    pub fn remove_peer_localized(&mut self, id: PeerId) {
        self.store.remove(id);
        self.sim.crash(NodeId(id.index()));
        self.sync_gossip();
        self.churn_stats.leaves += 1;
    }

    /// Spawns the gossip node for a freshly-inserted store peer.
    fn spawn_gossip_node(&mut self, id: PeerId, bootstrap: Vec<PeerInfo>) -> PeerId {
        let info = self.store.peers()[id.index()].clone();
        let node = GossipNode::new(
            info,
            bootstrap,
            Arc::clone(&self.selection),
            self.config.gossip,
        );
        let node_id = self.sim.spawn(node);
        debug_assert_eq!(node_id.index(), id.index(), "NodeId/PeerId alignment");
        id
    }

    /// Catches the gossip layer up with the store: the epoch-cursor
    /// consumer that replaced the lock-step `last_delta` sync.
    ///
    /// Three steps, all idempotent:
    ///
    /// 1. **Spawn** a gossip node for every store peer without one,
    ///    bootstrapped from its equilibrium neighbourhood (locate-first
    ///    instead of random walk).
    /// 2. **Replay** the deltas the cursor missed, oldest first: each
    ///    affected node learns the event peer (join) or forgets it
    ///    (leave), learns its current selected neighbours, and adopts
    ///    its current equilibrium out-list. At cadence 1 (the localized
    ///    churn paths) this is exactly the old per-event sync; at any
    ///    batched cadence it lands on the same final state, because an
    ///    out-list only changes when its owner is in a dirty region.
    /// 3. **Resync** instead, when the cursor fell past the delta log's
    ///    eviction horizon: every live node re-learns its equilibrium
    ///    state from the full store. Counted per consumer in
    ///    [`OverlayNetwork::gossip_cursor`] — never silent.
    pub fn sync_gossip(&mut self) -> GossipSyncReport {
        let spawned = self.spawn_missing_nodes();
        enum Plan {
            Nothing,
            Replay(Vec<TopologyDelta>),
            Resync,
        }
        let plan = match self.gossip_cursor.catch_up(self.store.delta_log()) {
            CursorCatchUp::UpToDate => Plan::Nothing,
            CursorCatchUp::Deltas(ds) => Plan::Replay(ds),
            CursorCatchUp::Resync => Plan::Resync,
        };
        match plan {
            Plan::Nothing => GossipSyncReport {
                spawned,
                ..GossipSyncReport::default()
            },
            Plan::Replay(deltas) => {
                for delta in &deltas {
                    self.apply_gossip_delta(delta);
                }
                GossipSyncReport {
                    spawned,
                    deltas: deltas.len(),
                    resynced: false,
                }
            }
            Plan::Resync => {
                self.resync_gossip();
                GossipSyncReport {
                    spawned,
                    deltas: 0,
                    resynced: true,
                }
            }
        }
    }

    /// Spawns gossip nodes for store peers the simulation does not hold
    /// yet, preserving the NodeId/PeerId alignment. Peers that joined
    /// *and* departed between syncs still get a (crashed) node, so ids
    /// stay dense.
    ///
    /// Spawn-time bootstrap can only name already-spawned nodes (the
    /// start-of-life announcement is sent immediately), so under a
    /// batched cadence — where a newcomer's equilibrium neighbours may
    /// have *larger* ids — the bootstrap is filtered and a second pass
    /// hands every new live node its full equilibrium neighbourhood
    /// once all ids exist. At cadence 1 the filter is a no-op and the
    /// second pass re-states the bootstrap, so the lock-step behaviour
    /// is unchanged.
    fn spawn_missing_nodes(&mut self) -> usize {
        let first_new = self.sim.len();
        while self.sim.len() < self.store.len() {
            let i = self.sim.len();
            let id = PeerId(i as u64);
            let bootstrap: Vec<PeerInfo> = self
                .store
                .out_neighbors(i)
                .iter()
                .filter(|&&j| j < i)
                .map(|&j| self.store.peers()[j].clone())
                .collect();
            self.spawn_gossip_node(id, bootstrap);
            if self.store.is_departed(id) {
                self.sim.crash(NodeId(i));
            }
        }
        let now = self.sim.now();
        for i in first_new..self.store.len() {
            if self.store.is_departed(PeerId(i as u64)) {
                continue;
            }
            let new_out = self.store.out_neighbors(i).to_vec();
            let infos: Vec<PeerInfo> = new_out
                .iter()
                .map(|&j| self.store.peers()[j].clone())
                .collect();
            let node = self.sim.node_mut(NodeId(i));
            for info in infos {
                node.learn(info, now);
            }
            node.set_neighbors(new_out);
        }
        self.store.len() - first_new
    }

    /// Replays one topology delta onto the affected gossip nodes:
    /// their candidate sets learn the event peer (join) or forget it
    /// (leave) plus every currently selected neighbour, and their
    /// out-neighbour lists adopt the current equilibrium selection.
    /// One contact is counted per affected peer — the locate-first
    /// message cost.
    fn apply_gossip_delta(&mut self, delta: &TopologyDelta) {
        let now = self.sim.now();
        let changed = delta.kind.peer();
        let departed_event = matches!(delta.kind, DeltaKind::Leave(_));
        if departed_event && !self.sim.is_crashed(NodeId(changed)) {
            self.sim.crash(NodeId(changed));
        }
        for &i in &delta.dirty {
            if i == changed || self.store.is_departed(PeerId(i as u64)) {
                continue;
            }
            let new_out = self.store.out_neighbors(i).to_vec();
            let infos: Vec<PeerInfo> = new_out
                .iter()
                .map(|&j| self.store.peers()[j].clone())
                .collect();
            let node = self.sim.node_mut(NodeId(i));
            if departed_event {
                node.forget(changed);
            } else {
                node.learn(self.store.peers()[changed].clone(), now);
            }
            for info in infos {
                node.learn(info, now);
            }
            node.set_neighbors(new_out);
            self.churn_stats.contacts += 1;
        }
    }

    /// The eviction-horizon fallback: every live node forgets every
    /// departed peer, re-learns its equilibrium neighbourhood, and
    /// adopts its equilibrium out-list from the full store state.
    fn resync_gossip(&mut self) {
        let now = self.sim.now();
        let gone: Vec<usize> = (0..self.store.len())
            .filter(|&i| self.store.is_departed(PeerId(i as u64)))
            .collect();
        for &v in &gone {
            if !self.sim.is_crashed(NodeId(v)) {
                self.sim.crash(NodeId(v));
            }
        }
        for i in 0..self.store.len() {
            if self.store.is_departed(PeerId(i as u64)) {
                continue;
            }
            let new_out = self.store.out_neighbors(i).to_vec();
            let infos: Vec<PeerInfo> = new_out
                .iter()
                .map(|&j| self.store.peers()[j].clone())
                .collect();
            let node = self.sim.node_mut(NodeId(i));
            for &v in &gone {
                node.forget(v);
            }
            for info in infos {
                node.learn(info, now);
            }
            node.set_neighbors(new_out);
            self.churn_stats.contacts += 1;
        }
    }

    /// Runs the gossip protocol until the topology fingerprint is
    /// unchanged for `stable_checks` consecutive checks (or the check
    /// budget runs out). Each check XORs one cached 64-bit fingerprint
    /// per live peer — no adjacency snapshots are allocated.
    pub fn converge(&mut self) -> ConvergenceReport {
        let mut last = self.live_fingerprint();
        let mut stable = 0usize;
        for checks in 1..=self.config.max_checks {
            self.sim.run_for(self.config.check_interval);
            let current = self.live_fingerprint();
            if current == last {
                stable += 1;
                if stable >= self.config.stable_checks {
                    return ConvergenceReport {
                        converged: true,
                        checks,
                    };
                }
            } else {
                stable = 0;
                last = current;
            }
        }
        ConvergenceReport {
            converged: false,
            checks: self.config.max_checks,
        }
    }

    /// The rolling fingerprint of the live gossip topology: XOR of every
    /// live peer's cached neighbour-list hash.
    fn live_fingerprint(&self) -> u64 {
        (0..self.store.len())
            .filter(|&i| !self.store.is_departed(PeerId(i as u64)))
            .fold(0u64, |acc, i| {
                acc ^ self.sim.node(NodeId(i)).neighbors_hash()
            })
    }

    /// The current topology over **live** peers: departed peers keep
    /// their vertex (so ids stay dense) but contribute no edges.
    #[must_use]
    pub fn topology(&self) -> OverlayGraph {
        OverlayGraph::from_out_neighbors(self.snapshot())
    }

    /// The store's incrementally-maintained equilibrium topology — the
    /// convergence target of the gossip protocol, without running it.
    #[must_use]
    pub fn reference_topology(&self) -> OverlayGraph {
        self.store.graph()
    }

    /// Read access to the underlying simulation (for tests and metrics).
    #[must_use]
    pub fn sim(&self) -> &Simulation<GossipNode> {
        &self.sim
    }

    fn snapshot(&self) -> Vec<Vec<usize>> {
        (0..self.store.len())
            .map(|i| {
                if self.store.is_departed(PeerId(i as u64)) {
                    Vec::new()
                } else {
                    let mut nbrs: Vec<usize> = self
                        .sim
                        .node(NodeId(i))
                        .neighbors()
                        .iter()
                        .copied()
                        .filter(|&j| !self.store.is_departed(PeerId(j as u64)))
                        .collect();
                    nbrs.sort_unstable();
                    nbrs
                }
            })
            .collect()
    }
}

impl std::fmt::Debug for OverlayNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlayNetwork")
            .field("peers", &self.store.len())
            .field("selection", &self.selection.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::select::EmptyRectSelection;
    use geocast_geom::gen::uniform_points;

    fn network(seed: u64) -> OverlayNetwork {
        OverlayNetwork::new(
            Arc::new(EmptyRectSelection),
            NetworkConfig {
                seed,
                ..NetworkConfig::default()
            },
        )
    }

    #[test]
    fn incremental_insertion_converges_each_time() {
        let mut net = network(5);
        let points = uniform_points(6, 2, 1000.0, 5);
        for p in points.into_points() {
            net.add_peer(p);
            let report = net.converge();
            assert!(report.converged, "insertion must re-converge");
        }
        assert_eq!(net.len(), 6);
        assert!(net.topology().is_connected_undirected());
    }

    #[test]
    fn topology_is_deterministic_per_seed() {
        let build = |seed: u64| {
            let mut net = network(seed);
            for p in uniform_points(10, 2, 1000.0, 42).into_points() {
                net.add_peer(p);
            }
            net.converge();
            net.topology()
        };
        assert_eq!(build(3), build(3));
    }

    #[test]
    fn removed_peer_disappears_from_topology() {
        let mut net = network(8);
        for p in uniform_points(8, 2, 1000.0, 8).into_points() {
            net.add_peer(p);
        }
        net.converge();
        net.remove_peer(PeerId(3));
        assert!(net.has_departed(PeerId(3)));
        net.converge();
        let topo = net.topology();
        assert!(topo.out_neighbors(3).is_empty());
        for i in 0..topo.len() {
            assert!(
                !topo.out_neighbors(i).contains(&3),
                "peer {i} still links to departed"
            );
        }
    }

    #[test]
    fn departed_peers_expire_from_every_candidate_set() {
        // The §1 expiry contract after a crash-stop: once the overlay
        // re-converges (Tmax has passed), no live peer may still hold
        // the departed peer in I(P), and the topology may carry no edge
        // to the departed vertex.
        let mut net = network(21);
        for p in uniform_points(10, 2, 1000.0, 21).into_points() {
            net.add_peer(p);
        }
        net.converge();
        let victim = PeerId(4);
        net.remove_peer(victim);
        let report = net.converge();
        assert!(report.converged, "departure must re-converge");
        for i in 0..net.len() {
            if net.has_departed(PeerId(i as u64)) {
                continue;
            }
            assert!(
                !net.sim().node(geocast_sim::NodeId(i)).knows(victim.index()),
                "peer {i} still holds departed {victim} in its candidate set"
            );
        }
        let topo = net.topology();
        for i in 0..topo.len() {
            assert!(
                !topo.out_neighbors(i).contains(&victim.index()),
                "peer {i} still links to departed {victim}"
            );
        }
        assert!(topo.out_neighbors(victim.index()).is_empty());
    }

    #[test]
    fn localized_join_reaches_the_equilibrium_without_convergence() {
        let mut net = network(31);
        for p in uniform_points(12, 2, 1000.0, 31).into_points() {
            net.add_peer_localized(p);
        }
        // No converge() call: the localized path must already sit at the
        // full-knowledge equilibrium.
        let peers = PeerInfo::from_point_set(&uniform_points(12, 2, 1000.0, 31));
        let want = oracle::equilibrium(&peers, &EmptyRectSelection);
        assert_eq!(net.topology(), want);
        assert_eq!(net.reference_topology(), want);
        assert_eq!(net.churn_stats().joins, 12);
    }

    #[test]
    fn localized_join_is_a_gossip_fixpoint() {
        // Running the real protocol after a localized build must not
        // change the topology: the synced state is a fixpoint.
        let mut net = network(37);
        for p in uniform_points(10, 2, 1000.0, 37).into_points() {
            net.add_peer_localized(p);
        }
        let before = net.topology();
        let report = net.converge();
        assert!(report.converged);
        assert_eq!(net.topology(), before, "gossip rewired a localized build");
    }

    #[test]
    fn localized_leave_expires_immediately_and_matches_reference() {
        let mut net = network(41);
        for p in uniform_points(14, 2, 1000.0, 41).into_points() {
            net.add_peer_localized(p);
        }
        net.remove_peer_localized(PeerId(6));
        net.remove_peer_localized(PeerId(2));
        // Immediately — no Tmax wait — every live candidate set and the
        // topology must have dropped the departed peers.
        let topo = net.topology();
        for i in 0..net.len() {
            if net.has_departed(PeerId(i as u64)) {
                assert!(topo.out_neighbors(i).is_empty());
                continue;
            }
            for gone in [2usize, 6] {
                assert!(
                    !topo.out_neighbors(i).contains(&gone),
                    "peer {i} still links to departed {gone}"
                );
            }
        }
        assert_eq!(topo, net.reference_topology());
        assert_eq!(net.churn_stats().leaves, 2);
        assert!(net.churn_stats().contacts > 0);
    }

    #[test]
    fn batched_gossip_sync_lands_on_the_lockstep_state() {
        // Driving the store directly and syncing every third event must
        // end at exactly the per-event localized equilibrium: the
        // cursor replay is cadence-independent.
        let points = uniform_points(15, 2, 1000.0, 61);
        let mut lockstep = network(61);
        for p in points.clone().into_points() {
            lockstep.add_peer_localized(p);
        }
        lockstep.remove_peer_localized(PeerId(3));
        lockstep.remove_peer_localized(PeerId(9));

        let mut batched = network(61);
        for (i, p) in points.into_points().into_iter().enumerate() {
            batched.store_mut().insert(p);
            if i % 3 == 2 {
                batched.sync_gossip();
            }
        }
        batched.store_mut().remove(PeerId(3));
        batched.store_mut().remove(PeerId(9));
        let report = batched.sync_gossip();
        assert!(!report.resynced);
        assert_eq!(batched.topology(), lockstep.topology());
        assert_eq!(batched.topology(), batched.reference_topology());
        assert_eq!(batched.gossip_cursor().epoch(), batched.store().epoch());
        // And the synced state is still a gossip fixpoint.
        let before = batched.topology();
        assert!(batched.converge().converged);
        assert_eq!(batched.topology(), before);
    }

    #[test]
    fn gossip_laggards_resync_with_a_counted_event() {
        let mut net = network(67);
        for p in uniform_points(10, 2, 1000.0, 67).into_points() {
            net.add_peer_localized(p);
        }
        assert_eq!(net.gossip_cursor().resyncs(), 0);
        // Shrink retention, then outrun it without syncing.
        net.store_mut().set_delta_capacity(2);
        for p in uniform_points(5, 2, 1000.0, 68).into_points() {
            net.store_mut().insert(p);
        }
        net.store_mut().remove(PeerId(1));
        let report = net.sync_gossip();
        assert!(report.resynced, "horizon overrun must resync");
        assert_eq!(net.gossip_cursor().resyncs(), 1);
        // The resync is a full rebuild: the gossip layer matches the
        // store equilibrium again, including the departed peer.
        assert_eq!(net.topology(), net.reference_topology());
        assert!(!net
            .sim()
            .node(geocast_sim::NodeId(5))
            .knows(PeerId(1).index()));
        // Back on the delta stream afterwards.
        net.store_mut().insert(Point::new(vec![7.0, 8.0]).unwrap());
        let report = net.sync_gossip();
        assert_eq!(report.deltas, 1);
        assert!(!report.resynced);
        assert_eq!(net.gossip_cursor().resyncs(), 1);
    }

    #[test]
    fn empty_network_reports_trivially() {
        let mut net = network(0);
        assert!(net.is_empty());
        let report = net.converge();
        assert!(report.converged);
        assert!(net.topology().is_empty());
    }

    #[test]
    fn peers_are_stored_in_insertion_order() {
        let mut net = network(1);
        let points = uniform_points(4, 3, 500.0, 77);
        for p in &points {
            net.add_peer(p.clone());
        }
        for (i, peer) in net.peers().iter().enumerate() {
            assert_eq!(peer.id().index(), i);
            assert_eq!(peer.point(), &points[i]);
        }
    }
}
