//! Greedy geometric routing over the overlay.
//!
//! Peers forward a message to whichever overlay neighbour is closest to
//! a target point, stopping when no neighbour improves (a *local
//! minimum*). On the empty-rectangle overlay this comes with a delivery
//! guarantee the same rectangle argument provides (property-tested):
//!
//! > If the target is a peer's coordinate, every peer that is not the
//! > target has an overlay neighbour strictly closer to it.
//!
//! *Why:* for current peer `P` and target peer `T`, consider the open
//! rectangle spanned by `P` and `T`. If it contains no peer, `T` itself
//! is `P`'s neighbour (empty-rectangle rule). Otherwise pick the peer
//! `X` inside it with the fewest blockers: `X` is a frontier neighbour
//! of `P`, and being strictly between `P` and `T` in every dimension it
//! is strictly closer to `T` (in any `L_p` metric). Greedy therefore
//! always progresses and delivers in finitely many hops.
//!
//! For non-peer targets greedy can stop early at a local minimum; the
//! result reports where, and region multicast
//! (`geocast_core`'s `region` module) handles that case explicitly.
//!
//! Every entry point exists in two flavours: over a materialized
//! [`OverlayGraph`] (the oracle/figure path) and over a live
//! [`TopologyStore`] (`*_on_store` — the churn-engine path, reading the
//! store's incrementally-maintained forward + reverse adjacency without
//! building a closure). The group layer's relay grafting
//! (`geocast_core::groups`) routes join requests over the store
//! variants.

use geocast_geom::{Metric, MetricKind, Point, Rect};

use crate::graph::OverlayGraph;
use crate::peer::{PeerId, PeerInfo};
use crate::store::TopologyStore;

/// Outcome of a greedy route.
///
/// The fields are private so the structural invariant — the path always
/// starts with the source and is therefore never empty — holds for
/// every value of this type, making [`RouteResult::last`] genuinely
/// panic-free (it used to be documentation-only, violable by literal
/// construction).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteResult {
    /// The peers visited, starting with the source.
    path: Vec<usize>,
    /// `true` if the walk ended because the final peer satisfied the
    /// target (exact coordinates, or inside the region).
    delivered: bool,
    /// `true` if the walk ended at a local minimum (no neighbour closer
    /// than the final peer).
    local_minimum: bool,
}

impl RouteResult {
    /// Assembles a result, upholding the non-empty-path invariant.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty — a route always contains its source.
    #[must_use]
    pub fn new(path: Vec<usize>, delivered: bool, local_minimum: bool) -> Self {
        assert!(!path.is_empty(), "a route always contains its source");
        RouteResult {
            path,
            delivered,
            local_minimum,
        }
    }

    /// The peers visited, starting with the source (never empty).
    #[must_use]
    pub fn path(&self) -> &[usize] {
        &self.path
    }

    /// Consumes the result into its visited-peer sequence.
    #[must_use]
    pub fn into_path(self) -> Vec<usize> {
        self.path
    }

    /// `true` if the walk ended because the final peer satisfied the
    /// target (exact coordinates, or inside the region).
    #[must_use]
    pub fn delivered(&self) -> bool {
        self.delivered
    }

    /// `true` if the walk ended at a local minimum (no neighbour closer
    /// than the final peer).
    #[must_use]
    pub fn local_minimum(&self) -> bool {
        self.local_minimum
    }

    /// The peer where the walk ended. Never panics: construction
    /// guarantees the path contains the source.
    #[must_use]
    pub fn last(&self) -> usize {
        *self.path.last().expect("construction rejects empty paths")
    }

    /// Number of hops taken.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// The shared greedy walk: step to the neighbour minimising `score`
/// (ties broken by peer index), stop on `score == 0` (delivery), at a
/// local minimum, or after `max_hops`. `neighbors_into(i, buf)` fills
/// `buf` with peer `i`'s undirected overlay partners — the
/// graph-closure and store-adjacency flavours share everything else.
fn greedy_walk(
    mut neighbors_into: impl FnMut(usize, &mut Vec<usize>),
    mut arrived: impl FnMut(usize) -> bool,
    mut score: impl FnMut(usize) -> f64,
    from: usize,
    max_hops: usize,
) -> RouteResult {
    let mut path = vec![from];
    let mut current = from;
    let mut current_score = score(current);
    let mut nbuf: Vec<usize> = Vec::new();

    for _ in 0..max_hops {
        if arrived(current) {
            return RouteResult::new(path, true, false);
        }
        neighbors_into(current, &mut nbuf);
        let mut best: Option<(usize, f64)> = None;
        for &nbr in &nbuf {
            let d = score(nbr);
            if d < current_score {
                let better = match best {
                    None => true,
                    Some((bi, bd)) => d < bd || (d == bd && nbr < bi),
                };
                if better {
                    best = Some((nbr, d));
                }
            }
        }
        match best {
            Some((nbr, d)) => {
                path.push(nbr);
                current = nbr;
                current_score = d;
            }
            None => {
                let delivered = arrived(current);
                return RouteResult::new(path, delivered, true);
            }
        }
    }
    let delivered = arrived(current);
    RouteResult::new(path, delivered, false)
}

/// Routes greedily from `from` towards `target`, taking at each step the
/// neighbour strictly closest to `target` under `metric` (ties broken by
/// peer index for determinism).
///
/// Stops on exact arrival (`delivered`), at a local minimum, or after
/// `max_hops` (whichever comes first; `max_hops` exhaustion sets neither
/// flag — except when the source itself is already at the target, which
/// is a delivery even with `max_hops == 0`).
///
/// # Panics
///
/// Panics if sizes disagree, `from` is out of range, or the target's
/// dimensionality differs.
#[must_use]
pub fn greedy_route(
    peers: &[PeerInfo],
    graph: &OverlayGraph,
    from: usize,
    target: &Point,
    metric: MetricKind,
    max_hops: usize,
) -> RouteResult {
    assert_eq!(peers.len(), graph.len(), "peer/overlay size mismatch");
    assert!(from < peers.len(), "source out of range");
    assert_eq!(
        peers[from].point().dim(),
        target.dim(),
        "target dimensionality mismatch"
    );
    let adj = graph.undirected_closure();
    greedy_point_walk(
        peers,
        |i, buf| {
            buf.clear();
            buf.extend_from_slice(adj.out_neighbors(i));
        },
        from,
        target,
        metric,
        max_hops,
    )
}

/// [`greedy_route`] over a [`TopologyStore`]'s incrementally-maintained
/// adjacency: undirected rows come straight from the store's forward +
/// reverse tables, so no closure is materialized and departed peers are
/// unreachable by construction (they appear in no row).
///
/// # Panics
///
/// Panics if `from` is out of range or departed, or the target's
/// dimensionality differs.
#[must_use]
pub fn greedy_route_on_store(
    store: &TopologyStore,
    from: usize,
    target: &Point,
    metric: MetricKind,
    max_hops: usize,
) -> RouteResult {
    assert!(from < store.len(), "source out of range");
    assert!(
        !store.is_departed(PeerId(from as u64)),
        "source has departed"
    );
    assert_eq!(
        store.peers()[from].point().dim(),
        target.dim(),
        "target dimensionality mismatch"
    );
    greedy_point_walk(
        store.peers(),
        |i, buf| store.undirected_neighbors_into(i, buf),
        from,
        target,
        metric,
        max_hops,
    )
}

/// The point-target instantiation of the shared walk. A peer has
/// arrived when its score — distance to the target — is zero, so the
/// source-at-target edge case is a zero-hop delivery on every path
/// through this function, `max_hops` included.
fn greedy_point_walk(
    peers: &[PeerInfo],
    neighbors_into: impl FnMut(usize, &mut Vec<usize>),
    from: usize,
    target: &Point,
    metric: MetricKind,
    max_hops: usize,
) -> RouteResult {
    let score = |i: usize| metric.dist(peers[i].point(), target);
    if score(from) == 0.0 {
        return RouteResult::new(vec![from], true, false);
    }
    greedy_walk(neighbors_into, |i| score(i) == 0.0, score, from, max_hops)
}

/// Routes greedily from `from` towards a **region**, minimising at each
/// hop the distance between the candidate peer and its own clamp into
/// the region (= its distance to the box). Stops as soon as the current
/// peer lies inside the region (`delivered` — zero hops when the source
/// already is), at a local minimum, or after `max_hops`.
///
/// On empty-rectangle equilibria this never stalls outside a populated
/// region: for any member `X`, the spanned rectangle between the current
/// peer and `X` contains a frontier neighbour that is component-wise
/// closer to the box, hence strictly closer in distance-to-region
/// (property-tested). This is what makes decentralized region multicast
/// total.
///
/// # Panics
///
/// Panics if sizes disagree, `from` is out of range, the region is
/// empty, or dimensionalities differ (a zero-dimensional rectangle is
/// unconstructible, so the dimensionality check also rules that out).
#[must_use]
pub fn greedy_route_to_rect(
    peers: &[PeerInfo],
    graph: &OverlayGraph,
    from: usize,
    region: &Rect,
    metric: MetricKind,
    max_hops: usize,
) -> RouteResult {
    assert_eq!(peers.len(), graph.len(), "peer/overlay size mismatch");
    assert!(from < peers.len(), "source out of range");
    let adj = graph.undirected_closure();
    rect_walk(
        peers,
        |i, buf| {
            buf.clear();
            buf.extend_from_slice(adj.out_neighbors(i));
        },
        from,
        region,
        metric,
        max_hops,
    )
}

/// [`greedy_route_to_rect`] over a [`TopologyStore`] (see
/// [`greedy_route_on_store`] for the adjacency semantics).
///
/// # Panics
///
/// Panics if `from` is out of range or departed, the region is empty,
/// or dimensionalities differ.
#[must_use]
pub fn greedy_route_to_rect_on_store(
    store: &TopologyStore,
    from: usize,
    region: &Rect,
    metric: MetricKind,
    max_hops: usize,
) -> RouteResult {
    assert!(from < store.len(), "source out of range");
    assert!(
        !store.is_departed(PeerId(from as u64)),
        "source has departed"
    );
    rect_walk(
        store.peers(),
        |i, buf| store.undirected_neighbors_into(i, buf),
        from,
        region,
        metric,
        max_hops,
    )
}

/// The region-target instantiation of the shared walk.
fn rect_walk(
    peers: &[PeerInfo],
    neighbors_into: impl FnMut(usize, &mut Vec<usize>),
    from: usize,
    region: &Rect,
    metric: MetricKind,
    max_hops: usize,
) -> RouteResult {
    assert!(!region.is_empty(), "region must be non-empty");
    assert_eq!(
        peers[from].point().dim(),
        region.dim(),
        "region dimensionality mismatch"
    );
    let arrived = |i: usize| region.contains(peers[i].point());
    if arrived(from) {
        return RouteResult::new(vec![from], true, false);
    }
    greedy_walk(
        neighbors_into,
        arrived,
        |i: usize| metric.dist(peers[i].point(), &region.clamp(peers[i].point())),
        from,
        max_hops,
    )
}

/// Routes from `from` to the peer `to` (target = that peer's
/// coordinates). On empty-rectangle equilibria this always delivers;
/// see the module docs for the argument. `from == to` is a zero-hop
/// delivery.
///
/// # Example
///
/// ```
/// use geocast_geom::gen::uniform_points;
/// use geocast_geom::MetricKind;
/// use geocast_overlay::routing::route_to_peer;
/// use geocast_overlay::{oracle, select::EmptyRectSelection, PeerInfo};
///
/// let peers = PeerInfo::from_point_set(&uniform_points(50, 2, 1000.0, 7));
/// let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
/// let route = route_to_peer(&peers, &overlay, 0, 42, MetricKind::L1);
/// assert!(route.delivered());
/// assert_eq!(route.last(), 42);
/// ```
///
/// # Panics
///
/// Panics if indices are out of range or sizes disagree.
#[must_use]
pub fn route_to_peer(
    peers: &[PeerInfo],
    graph: &OverlayGraph,
    from: usize,
    to: usize,
    metric: MetricKind,
) -> RouteResult {
    assert!(to < peers.len(), "destination out of range");
    // n hops always suffice when every hop strictly progresses through
    // distinct peers.
    greedy_route(peers, graph, from, peers[to].point(), metric, peers.len())
}

/// [`route_to_peer`] over a [`TopologyStore`]. Departed peers are
/// rejected at both ends: a departed source has no edges to route over,
/// and a departed target is unreachable yet its stale coordinates could
/// otherwise claim a bogus zero-hop "delivery" when `from == to` — the
/// audited edge case this assert closes.
///
/// # Panics
///
/// Panics if either endpoint is out of range or departed.
#[must_use]
pub fn route_to_peer_on_store(
    store: &TopologyStore,
    from: usize,
    to: usize,
    metric: MetricKind,
) -> RouteResult {
    assert!(to < store.len(), "destination out of range");
    assert!(
        !store.is_departed(PeerId(to as u64)),
        "destination has departed"
    );
    greedy_route_on_store(store, from, store.peers()[to].point(), metric, store.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::select::{EmptyRectSelection, HyperplanesSelection};
    use geocast_geom::gen::uniform_points;

    fn setup(n: usize, dim: usize, seed: u64) -> (Vec<PeerInfo>, OverlayGraph) {
        let peers = PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed));
        let graph = oracle::equilibrium(&peers, &EmptyRectSelection);
        (peers, graph)
    }

    #[test]
    fn greedy_always_delivers_between_peers_on_empty_rect() {
        let (peers, graph) = setup(80, 2, 3);
        for from in [0usize, 17, 42] {
            for to in 0..peers.len() {
                let route = route_to_peer(&peers, &graph, from, to, MetricKind::L1);
                assert!(
                    route.delivered(),
                    "{from} -> {to} stuck at {}",
                    route.last()
                );
                assert_eq!(route.last(), to);
            }
        }
    }

    #[test]
    fn delivery_holds_in_higher_dimensions() {
        let (peers, graph) = setup(60, 4, 5);
        for to in 0..peers.len() {
            let route = route_to_peer(&peers, &graph, 0, to, MetricKind::L1);
            assert!(route.delivered(), "0 -> {to}");
        }
    }

    #[test]
    fn distances_strictly_decrease_along_path() {
        let (peers, graph) = setup(70, 2, 7);
        let route = route_to_peer(&peers, &graph, 3, 55, MetricKind::L1);
        let target = peers[55].point();
        let dists: Vec<f64> = route
            .path()
            .iter()
            .map(|&i| MetricKind::L1.dist(peers[i].point(), target))
            .collect();
        for w in dists.windows(2) {
            assert!(w[1] < w[0], "non-decreasing step: {dists:?}");
        }
    }

    #[test]
    fn route_to_self_is_trivial() {
        let (peers, graph) = setup(10, 2, 9);
        let route = route_to_peer(&peers, &graph, 4, 4, MetricKind::L1);
        assert!(route.delivered());
        assert_eq!(route.hops(), 0);
        assert_eq!(route.path(), &[4]);
        // Even with a zero hop budget, standing at the target delivers.
        let zero = greedy_route(&peers, &graph, 4, peers[4].point(), MetricKind::L1, 0);
        assert!(zero.delivered());
        assert_eq!(zero.path(), &[4]);
    }

    #[test]
    fn hop_count_is_bounded_by_network_size() {
        let (peers, graph) = setup(100, 2, 11);
        for to in [10usize, 50, 99] {
            let route = route_to_peer(&peers, &graph, 0, to, MetricKind::L1);
            assert!(route.hops() < peers.len());
        }
    }

    #[test]
    fn non_peer_target_ends_at_local_minimum_near_target() {
        let (peers, graph) = setup(120, 2, 13);
        let target = Point::new(vec![500.0, 500.0]).unwrap();
        let route = greedy_route(&peers, &graph, 0, &target, MetricKind::L1, peers.len());
        assert!(route.local_minimum() || route.delivered());
        // The stopping peer is closer to the target than the source was.
        let d_end = MetricKind::L1.dist(peers[route.last()].point(), &target);
        let d_start = MetricKind::L1.dist(peers[0].point(), &target);
        assert!(d_end <= d_start);
        // And reasonably close in absolute terms for a 120-peer overlay
        // over a 1000x1000 space (mean spacing ~90 units).
        assert!(d_end < 200.0, "stopped {d_end} away");
    }

    #[test]
    fn non_peer_local_minimum_is_reported_deterministically() {
        // Three mutually-linked peers; target (9,9) is nobody's
        // coordinate. From (0,0) greedy moves to (10,0) (L1 distance 10,
        // tie with (0,10) broken by index) where no neighbour is
        // *strictly* closer — a certified local minimum, not a loop or
        // hop exhaustion.
        let peers = PeerInfo::from_point_set(
            &geocast_geom::PointSet::new(vec![
                Point::new(vec![0.0, 0.0]).unwrap(),
                Point::new(vec![10.0, 0.0]).unwrap(),
                Point::new(vec![0.0, 10.0]).unwrap(),
            ])
            .unwrap(),
        );
        let graph = oracle::equilibrium(&peers, &EmptyRectSelection);
        let target = Point::new(vec![9.0, 9.0]).unwrap();
        let route = greedy_route(&peers, &graph, 0, &target, MetricKind::L1, 10);
        assert_eq!(route.path(), &[0, 1]);
        assert!(route.local_minimum(), "stall must be declared");
        assert!(!route.delivered());
        assert_eq!(route.last(), 1);
    }

    #[test]
    fn non_peer_targets_always_terminate_with_a_verdict() {
        // Routing onto arbitrary non-peer coordinates must end in a
        // declared state — delivered (coordinate collision aside,
        // impossible here) or local_minimum — never silent hop
        // exhaustion, across sources and targets.
        let (peers, graph) = setup(90, 2, 21);
        for (tx, ty) in [(500.0, 500.0), (1.0, 999.0), (250.0, 750.0), (999.0, 1.0)] {
            let target = Point::new(vec![tx, ty]).unwrap();
            for from in [0usize, 30, 60] {
                let route =
                    greedy_route(&peers, &graph, from, &target, MetricKind::L1, peers.len());
                assert!(
                    route.local_minimum() && !route.delivered(),
                    "({tx},{ty}) from {from}: expected a declared local minimum, got {route:?}"
                );
                // The verdict peer is a true local minimum: no overlay
                // neighbour improves on it.
                let last = route.last();
                let d_last = MetricKind::L1.dist(peers[last].point(), &target);
                for &nbr in graph.undirected_closure().out_neighbors(last) {
                    assert!(
                        MetricKind::L1.dist(peers[nbr].point(), &target) >= d_last,
                        "neighbour {nbr} of {last} disproves the minimum"
                    );
                }
            }
        }
    }

    #[test]
    fn max_hops_truncates_walks() {
        let (peers, graph) = setup(100, 2, 15);
        // Find a pair needing more than 2 hops.
        let (from, to) = (0usize, {
            let mut best = (0usize, 0usize);
            for to in 1..peers.len() {
                let r = route_to_peer(&peers, &graph, 0, to, MetricKind::L1);
                if r.hops() > best.1 {
                    best = (to, r.hops());
                }
            }
            assert!(best.1 > 2, "workload too small");
            best.0
        });
        let truncated = greedy_route(&peers, &graph, from, peers[to].point(), MetricKind::L1, 2);
        assert_eq!(truncated.hops(), 2);
        assert!(!truncated.delivered());
        assert!(!truncated.local_minimum());
    }

    #[test]
    fn sparse_overlays_can_strand_greedy_routes() {
        // On a K-closest overlay greedy can hit a local minimum even for
        // peer targets — documenting that the guarantee is specific to
        // the empty-rectangle rule.
        let peers = PeerInfo::from_point_set(&uniform_points(60, 2, 1000.0, 17));
        let graph = oracle::equilibrium(
            &peers,
            &HyperplanesSelection::k_closest(2, 2, MetricKind::L1),
        );
        let mut stuck = 0usize;
        for to in 0..peers.len() {
            let route = route_to_peer(&peers, &graph, 0, to, MetricKind::L1);
            if !route.delivered() {
                stuck += 1;
                assert!(route.local_minimum());
            }
        }
        // Not asserting stuck > 0 (depends on the workload), but every
        // non-delivery must be a declared local minimum, never a loop.
        let _ = stuck;
    }

    #[test]
    fn routes_are_deterministic() {
        let (peers, graph) = setup(50, 3, 19);
        let a = route_to_peer(&peers, &graph, 1, 40, MetricKind::L1);
        let b = route_to_peer(&peers, &graph, 1, 40, MetricKind::L1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "a route always contains its source")]
    fn empty_path_construction_is_rejected() {
        let _ = RouteResult::new(Vec::new(), false, false);
    }

    #[test]
    fn rect_route_source_inside_region_is_a_zero_hop_delivery() {
        use geocast_geom::Interval;
        let (peers, graph) = setup(40, 2, 23);
        let p = peers[7].point();
        let region = Rect::new(vec![
            Interval::new(p[0] - 1.0, p[0] + 1.0),
            Interval::new(p[1] - 1.0, p[1] + 1.0),
        ])
        .unwrap();
        // Even with a zero hop budget: standing inside delivers.
        for max_hops in [0usize, 5] {
            let walk = greedy_route_to_rect(&peers, &graph, 7, &region, MetricKind::L1, max_hops);
            assert!(walk.delivered());
            assert!(!walk.local_minimum());
            assert_eq!(walk.path(), &[7]);
        }
    }

    #[test]
    fn zero_dimensional_rects_are_unconstructible_and_degenerate_ones_rejected() {
        // The zero-dim edge case cannot reach routing: Rect::new refuses
        // dimension zero outright…
        assert!(Rect::new(Vec::new()).is_err());
        // …and a zero-extent (open, therefore empty) rectangle trips the
        // non-empty-region assert rather than producing a bogus walk.
        let (peers, graph) = setup(10, 2, 25);
        let degenerate = Rect::spanned_open(peers[0].point(), peers[0].point()).unwrap();
        assert!(degenerate.is_empty());
        let result = std::panic::catch_unwind(|| {
            greedy_route_to_rect(&peers, &graph, 1, &degenerate, MetricKind::L1, 10)
        });
        assert!(result.is_err(), "empty region must be rejected");
    }

    fn store_setup(n: usize, dim: usize, seed: u64) -> TopologyStore {
        TopologyStore::from_peers(
            PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed)),
            std::sync::Arc::new(EmptyRectSelection),
        )
    }

    #[test]
    fn store_routes_match_graph_routes() {
        let store = store_setup(70, 2, 27);
        let graph = store.graph();
        for to in [1usize, 23, 69] {
            assert_eq!(
                route_to_peer_on_store(&store, 0, to, MetricKind::L1),
                route_to_peer(store.peers(), &graph, 0, to, MetricKind::L1),
                "0 -> {to}"
            );
        }
        let target = Point::new(vec![400.0, 600.0]).unwrap();
        assert_eq!(
            greedy_route_on_store(&store, 5, &target, MetricKind::L1, store.len()),
            greedy_route(
                store.peers(),
                &graph,
                5,
                &target,
                MetricKind::L1,
                store.len()
            ),
        );
        use geocast_geom::Interval;
        let region = Rect::new(vec![
            Interval::new(100.0, 300.0),
            Interval::new(100.0, 300.0),
        ])
        .unwrap();
        assert_eq!(
            greedy_route_to_rect_on_store(&store, 5, &region, MetricKind::L1, store.len()),
            greedy_route_to_rect(
                store.peers(),
                &graph,
                5,
                &region,
                MetricKind::L1,
                store.len()
            ),
        );
    }

    #[test]
    fn store_routes_avoid_departed_peers_and_still_deliver() {
        let mut store = store_setup(80, 2, 29);
        for gone in [11u64, 37, 53] {
            store.remove(PeerId(gone));
        }
        for to in 0..store.len() {
            if store.is_departed(PeerId(to as u64)) {
                continue;
            }
            let route = route_to_peer_on_store(&store, 0, to, MetricKind::L1);
            assert!(route.delivered(), "0 -> {to}");
            for &hop in route.path() {
                assert!(
                    !store.is_departed(PeerId(hop as u64)),
                    "route passed through departed {hop}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "destination has departed")]
    fn routing_to_a_departed_target_is_rejected() {
        let mut store = store_setup(20, 2, 31);
        store.remove(PeerId(6));
        let _ = route_to_peer_on_store(&store, 0, 6, MetricKind::L1);
    }

    #[test]
    #[should_panic(expected = "destination has departed")]
    fn departed_self_target_cannot_claim_delivery() {
        // Before the audit, routing from a departed peer to itself
        // reported a zero-hop "delivery" to a peer that no longer
        // exists; both endpoint asserts now fire first.
        let mut store = store_setup(20, 2, 33);
        store.remove(PeerId(4));
        let _ = route_to_peer_on_store(&store, 4, 4, MetricKind::L1);
    }

    #[test]
    #[should_panic(expected = "source has departed")]
    fn routing_from_a_departed_source_is_rejected() {
        let mut store = store_setup(20, 2, 35);
        store.remove(PeerId(3));
        let target = Point::new(vec![1.0, 2.0]).unwrap();
        let _ = greedy_route_on_store(&store, 3, &target, MetricKind::L1, 10);
    }
}
