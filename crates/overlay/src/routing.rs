//! Greedy geometric routing over the overlay.
//!
//! Peers forward a message to whichever overlay neighbour is closest to
//! a target point, stopping when no neighbour improves (a *local
//! minimum*). On the empty-rectangle overlay this comes with a delivery
//! guarantee the same rectangle argument provides (property-tested):
//!
//! > If the target is a peer's coordinate, every peer that is not the
//! > target has an overlay neighbour strictly closer to it.
//!
//! *Why:* for current peer `P` and target peer `T`, consider the open
//! rectangle spanned by `P` and `T`. If it contains no peer, `T` itself
//! is `P`'s neighbour (empty-rectangle rule). Otherwise pick the peer
//! `X` inside it with the fewest blockers: `X` is a frontier neighbour
//! of `P`, and being strictly between `P` and `T` in every dimension it
//! is strictly closer to `T` (in any `L_p` metric). Greedy therefore
//! always progresses and delivers in finitely many hops.
//!
//! For non-peer targets greedy can stop early at a local minimum; the
//! result reports where, and region multicast
//! (`geocast_core`'s `region` module) handles that case explicitly.

use geocast_geom::{Metric, MetricKind, Point, Rect};

use crate::graph::OverlayGraph;
use crate::peer::PeerInfo;

/// Outcome of a greedy route.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteResult {
    /// The peers visited, starting with the source.
    pub path: Vec<usize>,
    /// `true` if the walk ended because the final peer's coordinates
    /// equal the target (exact delivery).
    pub delivered: bool,
    /// `true` if the walk ended at a local minimum (no neighbour closer
    /// than the final peer).
    pub local_minimum: bool,
}

impl RouteResult {
    /// The peer where the walk ended.
    ///
    /// # Panics
    ///
    /// Never panics; paths always contain the source.
    #[must_use]
    pub fn last(&self) -> usize {
        *self.path.last().expect("path contains the source")
    }

    /// Number of hops taken.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// Routes greedily from `from` towards `target`, taking at each step the
/// neighbour strictly closest to `target` under `metric` (ties broken by
/// peer index for determinism).
///
/// Stops on exact arrival (`delivered`), at a local minimum, or after
/// `max_hops` (whichever comes first; `max_hops` exhaustion sets neither
/// flag).
///
/// # Panics
///
/// Panics if sizes disagree, `from` is out of range, or the target's
/// dimensionality differs.
#[must_use]
pub fn greedy_route(
    peers: &[PeerInfo],
    graph: &OverlayGraph,
    from: usize,
    target: &Point,
    metric: MetricKind,
    max_hops: usize,
) -> RouteResult {
    assert_eq!(peers.len(), graph.len(), "peer/overlay size mismatch");
    assert!(from < peers.len(), "source out of range");
    assert_eq!(
        peers[from].point().dim(),
        target.dim(),
        "target dimensionality mismatch"
    );

    let adj = graph.undirected_closure();
    let mut path = vec![from];
    let mut current = from;
    let mut current_dist = metric.dist(peers[current].point(), target);

    for _ in 0..max_hops {
        if current_dist == 0.0 {
            return RouteResult {
                path,
                delivered: true,
                local_minimum: false,
            };
        }
        let mut best: Option<(usize, f64)> = None;
        for &nbr in adj.out_neighbors(current) {
            let d = metric.dist(peers[nbr].point(), target);
            if d < current_dist {
                let better = match best {
                    None => true,
                    Some((bi, bd)) => d < bd || (d == bd && nbr < bi),
                };
                if better {
                    best = Some((nbr, d));
                }
            }
        }
        match best {
            Some((nbr, d)) => {
                path.push(nbr);
                current = nbr;
                current_dist = d;
            }
            None => {
                return RouteResult {
                    path,
                    delivered: current_dist == 0.0,
                    local_minimum: true,
                };
            }
        }
    }
    let delivered = current_dist == 0.0;
    RouteResult {
        path,
        delivered,
        local_minimum: false,
    }
}

/// Routes greedily from `from` towards a **region**, minimising at each
/// hop the distance between the candidate peer and its own clamp into
/// the region (= its distance to the box). Stops as soon as the current
/// peer lies strictly inside the region (`delivered`), at a local
/// minimum, or after `max_hops`.
///
/// On empty-rectangle equilibria this never stalls outside a populated
/// region: for any member `X`, the spanned rectangle between the current
/// peer and `X` contains a frontier neighbour that is component-wise
/// closer to the box, hence strictly closer in distance-to-region
/// (property-tested). This is what makes decentralized region multicast
/// total.
///
/// # Panics
///
/// Panics if sizes disagree, `from` is out of range, the region is
/// empty, or dimensionalities differ.
#[must_use]
pub fn greedy_route_to_rect(
    peers: &[PeerInfo],
    graph: &OverlayGraph,
    from: usize,
    region: &Rect,
    metric: MetricKind,
    max_hops: usize,
) -> RouteResult {
    assert_eq!(peers.len(), graph.len(), "peer/overlay size mismatch");
    assert!(from < peers.len(), "source out of range");
    assert!(!region.is_empty(), "region must be non-empty");
    assert_eq!(
        peers[from].point().dim(),
        region.dim(),
        "region dimensionality mismatch"
    );

    let box_dist =
        |i: usize| -> f64 { metric.dist(peers[i].point(), &region.clamp(peers[i].point())) };

    let adj = graph.undirected_closure();
    let mut path = vec![from];
    let mut current = from;
    let mut current_dist = box_dist(current);

    for _ in 0..max_hops {
        if region.contains(peers[current].point()) {
            return RouteResult {
                path,
                delivered: true,
                local_minimum: false,
            };
        }
        let mut best: Option<(usize, f64)> = None;
        for &nbr in adj.out_neighbors(current) {
            let d = box_dist(nbr);
            if d < current_dist {
                let better = match best {
                    None => true,
                    Some((bi, bd)) => d < bd || (d == bd && nbr < bi),
                };
                if better {
                    best = Some((nbr, d));
                }
            }
        }
        match best {
            Some((nbr, d)) => {
                path.push(nbr);
                current = nbr;
                current_dist = d;
            }
            None => {
                let delivered = region.contains(peers[current].point());
                return RouteResult {
                    path,
                    delivered,
                    local_minimum: true,
                };
            }
        }
    }
    let delivered = region.contains(peers[current].point());
    RouteResult {
        path,
        delivered,
        local_minimum: false,
    }
}

/// Routes from `from` to the peer `to` (target = that peer's
/// coordinates). On empty-rectangle equilibria this always delivers;
/// see the module docs for the argument.
///
/// # Example
///
/// ```
/// use geocast_geom::gen::uniform_points;
/// use geocast_geom::MetricKind;
/// use geocast_overlay::routing::route_to_peer;
/// use geocast_overlay::{oracle, select::EmptyRectSelection, PeerInfo};
///
/// let peers = PeerInfo::from_point_set(&uniform_points(50, 2, 1000.0, 7));
/// let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
/// let route = route_to_peer(&peers, &overlay, 0, 42, MetricKind::L1);
/// assert!(route.delivered);
/// assert_eq!(route.last(), 42);
/// ```
///
/// # Panics
///
/// Panics if indices are out of range or sizes disagree.
#[must_use]
pub fn route_to_peer(
    peers: &[PeerInfo],
    graph: &OverlayGraph,
    from: usize,
    to: usize,
    metric: MetricKind,
) -> RouteResult {
    assert!(to < peers.len(), "destination out of range");
    // n hops always suffice when every hop strictly progresses through
    // distinct peers.
    greedy_route(peers, graph, from, peers[to].point(), metric, peers.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::select::{EmptyRectSelection, HyperplanesSelection};
    use geocast_geom::gen::uniform_points;

    fn setup(n: usize, dim: usize, seed: u64) -> (Vec<PeerInfo>, OverlayGraph) {
        let peers = PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed));
        let graph = oracle::equilibrium(&peers, &EmptyRectSelection);
        (peers, graph)
    }

    #[test]
    fn greedy_always_delivers_between_peers_on_empty_rect() {
        let (peers, graph) = setup(80, 2, 3);
        for from in [0usize, 17, 42] {
            for to in 0..peers.len() {
                let route = route_to_peer(&peers, &graph, from, to, MetricKind::L1);
                assert!(route.delivered, "{from} -> {to} stuck at {}", route.last());
                assert_eq!(route.last(), to);
            }
        }
    }

    #[test]
    fn delivery_holds_in_higher_dimensions() {
        let (peers, graph) = setup(60, 4, 5);
        for to in 0..peers.len() {
            let route = route_to_peer(&peers, &graph, 0, to, MetricKind::L1);
            assert!(route.delivered, "0 -> {to}");
        }
    }

    #[test]
    fn distances_strictly_decrease_along_path() {
        let (peers, graph) = setup(70, 2, 7);
        let route = route_to_peer(&peers, &graph, 3, 55, MetricKind::L1);
        let target = peers[55].point();
        let dists: Vec<f64> = route
            .path
            .iter()
            .map(|&i| MetricKind::L1.dist(peers[i].point(), target))
            .collect();
        for w in dists.windows(2) {
            assert!(w[1] < w[0], "non-decreasing step: {dists:?}");
        }
    }

    #[test]
    fn route_to_self_is_trivial() {
        let (peers, graph) = setup(10, 2, 9);
        let route = route_to_peer(&peers, &graph, 4, 4, MetricKind::L1);
        assert!(route.delivered);
        assert_eq!(route.hops(), 0);
        assert_eq!(route.path, vec![4]);
    }

    #[test]
    fn hop_count_is_bounded_by_network_size() {
        let (peers, graph) = setup(100, 2, 11);
        for to in [10usize, 50, 99] {
            let route = route_to_peer(&peers, &graph, 0, to, MetricKind::L1);
            assert!(route.hops() < peers.len());
        }
    }

    #[test]
    fn non_peer_target_ends_at_local_minimum_near_target() {
        let (peers, graph) = setup(120, 2, 13);
        let target = Point::new(vec![500.0, 500.0]).unwrap();
        let route = greedy_route(&peers, &graph, 0, &target, MetricKind::L1, peers.len());
        assert!(route.local_minimum || route.delivered);
        // The stopping peer is closer to the target than the source was.
        let d_end = MetricKind::L1.dist(peers[route.last()].point(), &target);
        let d_start = MetricKind::L1.dist(peers[0].point(), &target);
        assert!(d_end <= d_start);
        // And reasonably close in absolute terms for a 120-peer overlay
        // over a 1000x1000 space (mean spacing ~90 units).
        assert!(d_end < 200.0, "stopped {d_end} away");
    }

    #[test]
    fn non_peer_local_minimum_is_reported_deterministically() {
        // Three mutually-linked peers; target (9,9) is nobody's
        // coordinate. From (0,0) greedy moves to (10,0) (L1 distance 10,
        // tie with (0,10) broken by index) where no neighbour is
        // *strictly* closer — a certified local minimum, not a loop or
        // hop exhaustion.
        let peers = PeerInfo::from_point_set(
            &geocast_geom::PointSet::new(vec![
                Point::new(vec![0.0, 0.0]).unwrap(),
                Point::new(vec![10.0, 0.0]).unwrap(),
                Point::new(vec![0.0, 10.0]).unwrap(),
            ])
            .unwrap(),
        );
        let graph = oracle::equilibrium(&peers, &EmptyRectSelection);
        let target = Point::new(vec![9.0, 9.0]).unwrap();
        let route = greedy_route(&peers, &graph, 0, &target, MetricKind::L1, 10);
        assert_eq!(route.path, vec![0, 1]);
        assert!(route.local_minimum, "stall must be declared");
        assert!(!route.delivered);
        assert_eq!(route.last(), 1);
    }

    #[test]
    fn non_peer_targets_always_terminate_with_a_verdict() {
        // Routing onto arbitrary non-peer coordinates must end in a
        // declared state — delivered (coordinate collision aside,
        // impossible here) or local_minimum — never silent hop
        // exhaustion, across sources and targets.
        let (peers, graph) = setup(90, 2, 21);
        for (tx, ty) in [(500.0, 500.0), (1.0, 999.0), (250.0, 750.0), (999.0, 1.0)] {
            let target = Point::new(vec![tx, ty]).unwrap();
            for from in [0usize, 30, 60] {
                let route =
                    greedy_route(&peers, &graph, from, &target, MetricKind::L1, peers.len());
                assert!(
                    route.local_minimum && !route.delivered,
                    "({tx},{ty}) from {from}: expected a declared local minimum, got {route:?}"
                );
                // The verdict peer is a true local minimum: no overlay
                // neighbour improves on it.
                let last = route.last();
                let d_last = MetricKind::L1.dist(peers[last].point(), &target);
                for &nbr in graph.undirected_closure().out_neighbors(last) {
                    assert!(
                        MetricKind::L1.dist(peers[nbr].point(), &target) >= d_last,
                        "neighbour {nbr} of {last} disproves the minimum"
                    );
                }
            }
        }
    }

    #[test]
    fn max_hops_truncates_walks() {
        let (peers, graph) = setup(100, 2, 15);
        // Find a pair needing more than 2 hops.
        let (from, to) = (0usize, {
            let mut best = (0usize, 0usize);
            for to in 1..peers.len() {
                let r = route_to_peer(&peers, &graph, 0, to, MetricKind::L1);
                if r.hops() > best.1 {
                    best = (to, r.hops());
                }
            }
            assert!(best.1 > 2, "workload too small");
            best.0
        });
        let truncated = greedy_route(&peers, &graph, from, peers[to].point(), MetricKind::L1, 2);
        assert_eq!(truncated.hops(), 2);
        assert!(!truncated.delivered);
        assert!(!truncated.local_minimum);
    }

    #[test]
    fn sparse_overlays_can_strand_greedy_routes() {
        // On a K-closest overlay greedy can hit a local minimum even for
        // peer targets — documenting that the guarantee is specific to
        // the empty-rectangle rule.
        let peers = PeerInfo::from_point_set(&uniform_points(60, 2, 1000.0, 17));
        let graph = oracle::equilibrium(
            &peers,
            &HyperplanesSelection::k_closest(2, 2, MetricKind::L1),
        );
        let mut stuck = 0usize;
        for to in 0..peers.len() {
            let route = route_to_peer(&peers, &graph, 0, to, MetricKind::L1);
            if !route.delivered {
                stuck += 1;
                assert!(route.local_minimum);
            }
        }
        // Not asserting stuck > 0 (depends on the workload), but every
        // non-delivery must be a declared local minimum, never a loop.
        let _ = stuck;
    }

    #[test]
    fn routes_are_deterministic() {
        let (peers, graph) = setup(50, 3, 19);
        let a = route_to_peer(&peers, &graph, 1, 40, MetricKind::L1);
        let b = route_to_peer(&peers, &graph, 1, 40, MetricKind::L1);
        assert_eq!(a, b);
    }
}
