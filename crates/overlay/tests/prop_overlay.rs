//! Property-based tests for neighbour selection and the oracle
//! equilibrium, driven by seeded workloads.

use proptest::prelude::*;

use geocast_geom::gen::uniform_points;
use geocast_geom::{Interval, Metric, MetricKind, Orthant, Rect};
use geocast_overlay::routing::{greedy_route_to_rect, route_to_peer};
use geocast_overlay::select::{EmptyRectSelection, HyperplanesSelection, NeighborSelection};
use geocast_overlay::{oracle, PeerInfo};

fn peers(n: usize, dim: usize, seed: u64) -> Vec<PeerInfo> {
    PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// THE engine guarantee: the spatially-indexed, parallel equilibrium
    /// is bit-identical to the brute-force definitional path, for the
    /// empty-rectangle rule.
    #[test]
    fn indexed_equilibrium_equals_brute_force_empty_rect(
        n in 2usize..120,
        dim in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let population = peers(n, dim, seed);
        let engine = oracle::equilibrium(&population, &EmptyRectSelection);
        let brute = oracle::equilibrium_brute_force(&population, &EmptyRectSelection);
        prop_assert_eq!(engine, brute);
    }

    /// Same engine guarantee for the Hyperplanes family: orthogonal
    /// instances take the per-orthant index path, signed and K-closest
    /// instances the fallback — all must equal the brute-force result.
    #[test]
    fn indexed_equilibrium_equals_brute_force_hyperplanes(
        n in 2usize..80,
        dim in 1usize..4,
        k in 1usize..5,
        seed in 0u64..10_000,
        variant in 0usize..3,
    ) {
        let population = peers(n, dim, seed);
        let sel = match variant {
            0 => HyperplanesSelection::orthogonal(dim, k, MetricKind::L1),
            1 => HyperplanesSelection::signed(dim, k, MetricKind::L1),
            _ => HyperplanesSelection::k_closest(dim, k, MetricKind::L2),
        };
        let engine = oracle::equilibrium(&population, &sel);
        let brute = oracle::equilibrium_brute_force(&population, &sel);
        prop_assert_eq!(engine, brute, "variant {}", variant);
    }

    /// The batch selection API is position-for-position the same as the
    /// candidate-slice API with the self-gap re-indexing applied.
    #[test]
    fn select_in_matches_select_with_reindexing(
        n in 2usize..60,
        dim in 1usize..4,
        seed in 0u64..10_000,
        who_pick in 0usize..1000,
    ) {
        use geocast_overlay::select::SelectContext;
        let population = peers(n, dim, seed);
        let i = who_pick % n;
        let cands: Vec<&PeerInfo> = population
            .iter()
            .enumerate()
            .filter_map(|(j, p)| (j != i).then_some(p))
            .collect();
        let ctx = SelectContext::without_index();
        for sel in [
            Box::new(EmptyRectSelection) as Box<dyn NeighborSelection>,
            Box::new(HyperplanesSelection::orthogonal(dim, 2, MetricKind::L1)),
        ] {
            let direct: Vec<usize> = sel
                .select(&population[i], &cands)
                .into_iter()
                .map(|ci| if ci < i { ci } else { ci + 1 })
                .collect();
            prop_assert_eq!(sel.select_in(&population, i, &ctx), direct);
        }
    }

    /// CSR round-trip: whatever lists go into `from_out_neighbors` come
    /// back out of `out_neighbors` sorted, deduplicated and
    /// self-loop-free — and the graph equals a rebuild from its own
    /// neighbour lists.
    #[test]
    fn csr_graph_round_trips(
        n in 1usize..40,
        seed in 0u64..10_000,
        density in 1usize..8,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let out: Vec<Vec<usize>> = (0..n)
            .map(|_| (0..density).map(|_| rng.random_range(0..n)).collect())
            .collect();
        let g = geocast_overlay::OverlayGraph::from_out_neighbors(out.clone());
        for (i, lists) in out.iter().enumerate() {
            let mut want: Vec<usize> = lists.iter().copied().filter(|&j| j != i).collect();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(g.out_neighbors(i), &want[..], "peer {}", i);
        }
        let rebuilt = geocast_overlay::OverlayGraph::from_out_neighbors(
            (0..n).map(|i| g.out_neighbors(i).to_vec()).collect(),
        );
        prop_assert_eq!(&rebuilt, &g);
        prop_assert_eq!(
            g.directed_edge_count(),
            (0..n).map(|i| g.out_neighbors(i).len()).sum::<usize>()
        );
    }

    /// The CSR `undirected()` closure is unchanged versus the seed's
    /// per-list construction, and `undirected_closure()` agrees with it.
    #[test]
    fn undirected_closure_matches_seed_reference(
        n in 1usize..50,
        seed in 0u64..10_000,
        density in 1usize..6,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc5);
        let out: Vec<Vec<usize>> = (0..n)
            .map(|_| (0..density).map(|_| rng.random_range(0..n)).collect())
            .collect();
        let g = geocast_overlay::OverlayGraph::from_out_neighbors(out);

        // Seed representation of the closure: push both directions into
        // per-peer Vecs, then sort + dedup.
        let mut reference: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for &j in g.out_neighbors(i) {
                reference[i].push(j);
                reference[j].push(i);
            }
        }
        for list in &mut reference {
            list.sort_unstable();
            list.dedup();
        }

        prop_assert_eq!(&g.undirected(), &reference);
        let closure = g.undirected_closure();
        for (i, list) in reference.iter().enumerate() {
            prop_assert_eq!(closure.out_neighbors(i), &list[..], "peer {}", i);
        }
        prop_assert!(closure.is_symmetric());
        let degrees: Vec<usize> = reference.iter().map(Vec::len).collect();
        prop_assert_eq!(g.undirected_degrees(), degrees);
    }

    /// The empty-rectangle equilibrium is symmetric and connected for any
    /// population — the §2 construction's substrate guarantees.
    #[test]
    fn empty_rect_equilibrium_symmetric_connected(
        n in 2usize..80,
        dim in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let population = peers(n, dim, seed);
        let g = oracle::equilibrium(&population, &EmptyRectSelection);
        prop_assert!(g.is_symmetric());
        prop_assert!(g.is_connected_undirected());
    }

    /// Selected empty-rect neighbours have empty spanned rectangles;
    /// non-selected ones are blocked by a witness peer.
    #[test]
    fn empty_rect_selection_matches_definition(
        n in 2usize..40,
        seed in 0u64..10_000,
    ) {
        let population = peers(n, 2, seed);
        let cands: Vec<&PeerInfo> = population[1..].iter().collect();
        let picked = EmptyRectSelection.select(&population[0], &cands);
        for (ci, cand) in cands.iter().enumerate() {
            let rect = Rect::spanned_open(population[0].point(), cand.point()).unwrap();
            let blocked = cands
                .iter()
                .enumerate()
                .any(|(oi, o)| oi != ci && rect.contains(o.point()));
            prop_assert_eq!(picked.contains(&ci), !blocked, "candidate {}", ci);
        }
    }

    /// Orthogonal selection keeps at most K per orthant and covers every
    /// populated orthant.
    #[test]
    fn orthogonal_selection_contract(
        n in 2usize..60,
        dim in 1usize..5,
        k in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let population = peers(n, dim, seed);
        let cands: Vec<&PeerInfo> = population[1..].iter().collect();
        let sel = HyperplanesSelection::orthogonal(dim, k, MetricKind::L1);
        let picked = sel.select(&population[0], &cands);
        let mut per_orthant = vec![0usize; Orthant::count(dim)];
        for &ci in &picked {
            let o = Orthant::classify(population[0].point(), cands[ci].point()).unwrap();
            per_orthant[o.index()] += 1;
        }
        prop_assert!(per_orthant.iter().all(|&c| c <= k));
        // Populated orthants are represented.
        for (i, cand) in cands.iter().enumerate() {
            let o = Orthant::classify(population[0].point(), cand.point()).unwrap();
            if per_orthant[o.index()] == 0 {
                prop_assert!(
                    !picked.is_empty() || cands.is_empty(),
                    "candidate {i} in unrepresented orthant"
                );
                prop_assert!(false, "orthant {} populated but empty", o.index());
            }
        }
    }

    /// The K-sweep oracle equals the generic equilibrium for every K.
    #[test]
    fn k_sweep_equals_generic(
        n in 2usize..40,
        dim in 1usize..4,
        k in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let population = peers(n, dim, seed);
        let generic = oracle::equilibrium(
            &population,
            &HyperplanesSelection::orthogonal(dim, k, MetricKind::L1),
        );
        let swept = oracle::orthogonal_k_sweep(&population, MetricKind::L1, &[k]);
        prop_assert_eq!(&swept[0].1, &generic);
    }

    /// Out-neighbour sets grow monotonically with K.
    #[test]
    fn selection_monotone_in_k(
        n in 3usize..40,
        dim in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let population = peers(n, dim, seed);
        let sweep = oracle::orthogonal_k_sweep(&population, MetricKind::L1, &[1, 2, 4]);
        for i in 0..n {
            let a = sweep[0].1.out_neighbors(i);
            let b = sweep[1].1.out_neighbors(i);
            let c = sweep[2].1.out_neighbors(i);
            prop_assert!(a.iter().all(|x| b.contains(x)), "K=1 ⊄ K=2 at peer {i}");
            prop_assert!(b.iter().all(|x| c.contains(x)), "K=2 ⊄ K=4 at peer {i}");
        }
    }

    /// Orthogonal equilibrium with K ≥ 1 always connects the overlay
    /// (every populated orthant is linked, and orthants tile space).
    #[test]
    fn orthogonal_equilibrium_connected(
        n in 2usize..60,
        dim in 1usize..5,
        k in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let population = peers(n, dim, seed);
        let g = oracle::equilibrium(
            &population,
            &HyperplanesSelection::orthogonal(dim, k, MetricKind::L1),
        );
        prop_assert!(g.is_connected_undirected());
    }

    /// The signed arrangement refines orthants: with K=1 it selects a
    /// superset-or-equal neighbour count.
    #[test]
    fn signed_selects_at_least_as_many_as_orthogonal(
        n in 2usize..50,
        seed in 0u64..10_000,
    ) {
        let population = peers(n, 2, seed);
        let cands: Vec<&PeerInfo> = population[1..].iter().collect();
        let orth = HyperplanesSelection::orthogonal(2, 1, MetricKind::L1)
            .select(&population[0], &cands);
        let signed = HyperplanesSelection::signed(2, 1, MetricKind::L1)
            .select(&population[0], &cands);
        prop_assert!(signed.len() >= orth.len());
    }

    /// THE routing theorem: greedy routing between peers always delivers
    /// on empty-rectangle equilibria, with strictly decreasing distance.
    #[test]
    fn greedy_peer_routing_always_delivers(
        n in 2usize..60,
        dim in 1usize..5,
        seed in 0u64..10_000,
        src_pick in 0usize..1000,
        dst_pick in 0usize..1000,
    ) {
        let population = peers(n, dim, seed);
        let graph = oracle::equilibrium(&population, &EmptyRectSelection);
        let src = src_pick % n;
        let dst = dst_pick % n;
        let route = route_to_peer(&population, &graph, src, dst, MetricKind::L1);
        prop_assert!(route.delivered(), "{src} -> {dst} stuck at {}", route.last());
        prop_assert_eq!(route.last(), dst);
        let target = population[dst].point();
        let dists: Vec<f64> = route
            .path()
            .iter()
            .map(|&i| MetricKind::L1.dist(population[i].point(), target))
            .collect();
        prop_assert!(dists.windows(2).all(|w| w[1] < w[0]));
    }

    /// THE region-entry theorem: distance-to-box greedy routing always
    /// enters a populated region on empty-rectangle equilibria.
    #[test]
    fn greedy_region_routing_enters_populated_regions(
        n in 2usize..60,
        seed in 0u64..10_000,
        src_pick in 0usize..1000,
        member_pick in 0usize..1000,
        half_width in 1.0f64..200.0,
    ) {
        let population = peers(n, 2, seed);
        let graph = oracle::equilibrium(&population, &EmptyRectSelection);
        let src = src_pick % n;
        // A region guaranteed populated: a box around some member.
        let member = member_pick % n;
        let c = population[member].point();
        let region = Rect::new(vec![
            Interval::new(c[0] - half_width, c[0] + half_width),
            Interval::new(c[1] - half_width, c[1] + half_width),
        ]).unwrap();
        let walk = greedy_route_to_rect(&population, &graph, src, &region, MetricKind::L1, n);
        prop_assert!(
            walk.delivered(),
            "stuck at {} outside a region containing peer {member}",
            walk.last()
        );
        prop_assert!(region.contains(population[walk.last()].point()));
    }
}
