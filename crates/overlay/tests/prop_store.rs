//! Property tests for the incremental churn engine.
//!
//! THE churn-engine guarantee: a [`TopologyStore`] maintained through
//! arbitrary interleavings of joins and leaves holds **exactly** the
//! equilibrium topology a from-scratch rebuild over the surviving
//! population would produce — for the §2 empty-rectangle rule and every
//! Hyperplanes instance (orthogonal, signed, K-closest). The localized
//! live-network path must track the same topology without ever running
//! global convergence.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use geocast_geom::gen::uniform_points;
use geocast_geom::MetricKind;
use geocast_overlay::select::{EmptyRectSelection, HyperplanesSelection, NeighborSelection};
use geocast_overlay::{
    NetworkConfig, OverlayGraph, OverlayNetwork, PeerId, PeerInfo, TopologyStore,
};

fn selection_for(variant: usize, dim: usize, k: usize) -> Arc<dyn NeighborSelection + Send + Sync> {
    match variant {
        0 => Arc::new(EmptyRectSelection),
        1 => Arc::new(HyperplanesSelection::orthogonal(dim, k, MetricKind::L1)),
        2 => Arc::new(HyperplanesSelection::signed(dim, k, MetricKind::L1)),
        _ => Arc::new(HyperplanesSelection::k_closest(dim, k, MetricKind::L2)),
    }
}

/// The definitional from-scratch rebuild: every live peer re-runs the
/// plain candidate-slice selection over all other live peers. No index,
/// no incremental state — the executable specification.
fn from_scratch(store: &TopologyStore) -> OverlayGraph {
    let peers = store.peers();
    let selection = store.selection();
    let out: Vec<Vec<usize>> = (0..peers.len())
        .map(|i| {
            if store.is_departed(PeerId(i as u64)) {
                return Vec::new();
            }
            let cand_ids: Vec<usize> = (0..peers.len())
                .filter(|&j| j != i && !store.is_departed(PeerId(j as u64)))
                .collect();
            let candidates: Vec<&PeerInfo> = cand_ids.iter().map(|&j| &peers[j]).collect();
            selection
                .select(&peers[i], &candidates)
                .into_iter()
                .map(|ci| cand_ids[ci])
                .collect()
        })
        .collect();
    OverlayGraph::from_out_neighbors(out)
}

/// A reproducible churn trace: joins draw fresh points, leaves pick a
/// random live peer (never emptying the population).
fn churn_trace(
    store: &mut TopologyStore,
    ops: usize,
    dim: usize,
    seed: u64,
    mut check: impl FnMut(&TopologyStore, usize),
) {
    let points = uniform_points(ops, dim, 1000.0, seed ^ 0x6a6f_696e).into_points();
    let mut joins = points.into_iter();
    let mut rng = StdRng::seed_from_u64(seed);
    for op in 0..ops {
        let live: Vec<usize> = (0..store.len())
            .filter(|&i| !store.is_departed(PeerId(i as u64)))
            .collect();
        if live.len() > 1 && rng.random_range(0..3) == 0 {
            store.remove(PeerId(live[rng.random_range(0..live.len())] as u64));
        } else {
            store.insert(joins.next().expect("one point per op suffices"));
        }
        check(store, op);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Incremental join/leave == from-scratch rebuild, all rules, after
    /// every single membership event.
    #[test]
    fn incremental_store_equals_from_scratch_rebuild(
        initial in 0usize..25,
        ops in 1usize..25,
        dim in 1usize..4,
        k in 1usize..4,
        variant in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let selection = selection_for(variant, dim, k);
        let mut store = TopologyStore::new(selection);
        for p in uniform_points(initial, dim, 1000.0, seed).into_points() {
            store.insert(p);
        }
        prop_assert_eq!(store.graph(), from_scratch(&store), "initial build, variant {}", variant);
        churn_trace(&mut store, ops, dim, seed, |store, op| {
            assert_eq!(
                store.graph(),
                from_scratch(store),
                "variant {variant} diverged after op {op}"
            );
        });
    }

    /// The localized live-network path tracks the store's equilibrium
    /// (and therefore the from-scratch rebuild) without any global
    /// convergence call.
    #[test]
    fn localized_live_path_tracks_equilibrium(
        initial in 1usize..12,
        ops in 1usize..12,
        dim in 1usize..3,
        seed in 0u64..10_000,
    ) {
        let mut net = OverlayNetwork::new(
            Arc::new(EmptyRectSelection),
            NetworkConfig { seed, ..NetworkConfig::default() },
        );
        for p in uniform_points(initial, dim, 1000.0, seed).into_points() {
            net.add_peer_localized(p);
        }
        // Drive the same trace through the network; its embedded store is
        // the source of truth.
        let points = uniform_points(ops, dim, 1000.0, seed ^ 0x6a6f_696e).into_points();
        let mut joins = points.into_iter();
        let mut rng = StdRng::seed_from_u64(seed);
        for op in 0..ops {
            let live: Vec<usize> = (0..net.len())
                .filter(|&i| !net.has_departed(PeerId(i as u64)))
                .collect();
            if live.len() > 1 && rng.random_range(0..3) == 0 {
                net.remove_peer_localized(PeerId(live[rng.random_range(0..live.len())] as u64));
            } else {
                net.add_peer_localized(joins.next().expect("one point per op"));
            }
            prop_assert_eq!(
                net.topology(),
                net.reference_topology(),
                "live topology diverged from store after op {}", op
            );
            prop_assert_eq!(
                net.reference_topology(),
                from_scratch(net.store()),
                "store diverged from rebuild after op {}", op
            );
        }
    }
}
