//! Statistics and reporting for geocast experiments.
//!
//! Every figure harness reduces raw measurements with [`Summary`] /
//! [`Histogram`], arranges them in a [`Table`] (rendered as Markdown or
//! CSV for EXPERIMENTS.md), and optionally draws an [`AsciiChart`] so a
//! terminal run shows the same curves as the paper's Figure 1.
//!
//! The crate is dependency-free and knows nothing about overlays or
//! trees — it consumes plain numbers.
//!
//! # Example
//!
//! ```
//! use geocast_metrics::Summary;
//!
//! let s = Summary::from_iter([4.0, 8.0, 6.0]);
//! assert_eq!(s.max(), 8.0);
//! assert_eq!(s.mean(), 6.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chart;
mod consumer;
mod histogram;
mod summary;
mod table;

pub use chart::AsciiChart;
pub use consumer::{ConsumerLedger, ConsumerRow};
pub use histogram::Histogram;
pub use summary::Summary;
pub use table::Table;
