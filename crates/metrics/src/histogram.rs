use std::fmt;

/// A fixed-range histogram with uniform bins.
///
/// Used for degree and path-length distributions. Samples outside the
/// configured range are clamped into the edge bins (and counted, so no
/// data silently disappears).
///
/// # Example
///
/// ```
/// use geocast_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.add(1.0);
/// h.add(9.5);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.bin_counts()[0], 1);
/// assert_eq!(h.bin_counts()[4], 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, the bounds are not finite, or `bins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "lo must be below hi");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
        }
    }

    /// Adds a sample, clamping out-of-range values into the edge bins.
    ///
    /// # Panics
    ///
    /// Panics on NaN samples.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            self.bins.len() - 1
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1)
        };
        self.bins[idx] += 1;
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Per-bin counts, lowest bin first.
    #[must_use]
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// The half-open value range `[lo, hi)` of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin out of range");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// The most-populated bin's index (ties: lowest index); `None` when
    /// empty.
    #[must_use]
    pub fn mode_bin(&self) -> Option<usize> {
        if self.count() == 0 {
            return None;
        }
        let max = self.bins.iter().max().copied().unwrap_or(0);
        self.bins.iter().position(|&c| c == max)
    }
}

impl fmt::Display for Histogram {
    /// Renders a compact horizontal bar chart, one line per bin.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.bins.iter().max().copied().unwrap_or(0).max(1);
        for (i, &count) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let width = (count * 40 / max) as usize;
            writeln!(
                f,
                "[{lo:>9.2}, {hi:>9.2}) |{:<40}| {count}",
                "#".repeat(width)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.0);
        h.add(0.99);
        h.add(5.0);
        h.add(9.99);
        assert_eq!(h.bin_counts()[0], 2);
        assert_eq!(h.bin_counts()[5], 1);
        assert_eq!(h.bin_counts()[9], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(2.0);
        h.add(1.0); // hi is exclusive -> last bin
        assert_eq!(h.bin_counts()[0], 1);
        assert_eq!(h.bin_counts()[3], 2);
    }

    #[test]
    fn bin_ranges_partition_the_domain() {
        let h = Histogram::new(0.0, 100.0, 4);
        assert_eq!(h.bin_range(0), (0.0, 25.0));
        assert_eq!(h.bin_range(3), (75.0, 100.0));
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        assert_eq!(h.mode_bin(), None);
        h.add(1.5);
        h.add(1.6);
        h.add(0.5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn display_draws_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.5);
        h.add(1.5);
        h.add(1.6);
        let out = h.to_string();
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains('#'));
    }

    #[test]
    #[should_panic(expected = "lo must be below hi")]
    fn inverted_bounds_rejected() {
        let _ = Histogram::new(1.0, 0.0, 3);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
