use crate::Table;

/// One log consumer's progress snapshot: how far it has read, how many
/// entries it absorbed incrementally, and how often it fell off the
/// log's eviction horizon and had to resynchronise from full state.
///
/// The crate knows nothing about *what* is being consumed — callers
/// snapshot their cursors (delta logs, event streams) into rows and
/// render them with a [`ConsumerLedger`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConsumerRow {
    /// Consumer name (e.g. `"gossip"`, `"group-repair"`).
    pub name: String,
    /// Last log position the consumer has absorbed through.
    pub position: u64,
    /// Entries replayed incrementally over the consumer's lifetime.
    pub absorbed: u64,
    /// Times the log had evicted entries the consumer still needed,
    /// forcing a full resynchronisation instead of incremental replay.
    pub resyncs: u64,
}

impl ConsumerRow {
    /// Builds a row from plain counters.
    #[must_use]
    pub fn new(name: impl Into<String>, position: u64, absorbed: u64, resyncs: u64) -> Self {
        ConsumerRow {
            name: name.into(),
            position,
            absorbed,
            resyncs,
        }
    }

    /// Fraction of catch-ups that degraded to a resync, out of all
    /// observed progress events (`absorbed` entries + `resyncs`).
    /// `0.0` when the consumer has seen nothing.
    #[must_use]
    pub fn resync_rate(&self) -> f64 {
        let events = self.absorbed + self.resyncs;
        if events == 0 {
            0.0
        } else {
            self.resyncs as f64 / events as f64
        }
    }
}

/// A set of [`ConsumerRow`]s over the same log, rendered as a table —
/// the per-consumer resync accounting surfaced by churn runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConsumerLedger {
    rows: Vec<ConsumerRow>,
}

impl ConsumerLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        ConsumerLedger::default()
    }

    /// Appends a consumer snapshot.
    pub fn push(&mut self, row: ConsumerRow) {
        self.rows.push(row);
    }

    /// The rows added so far.
    #[must_use]
    pub fn rows(&self) -> &[ConsumerRow] {
        &self.rows
    }

    /// `true` if no consumer was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total resyncs across all consumers.
    #[must_use]
    pub fn total_resyncs(&self) -> u64 {
        self.rows.iter().map(|r| r.resyncs).sum()
    }

    /// Renders the ledger as a [`Table`] (consumer, position, absorbed,
    /// resyncs, resync rate).
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec![
            "consumer".into(),
            "position".into(),
            "absorbed".into(),
            "resyncs".into(),
            "resync rate".into(),
        ]);
        for r in &self.rows {
            t.push_row(vec![
                r.name.clone(),
                r.position.to_string(),
                r.absorbed.to_string(),
                r.resyncs.to_string(),
                format!("{:.4}", r.resync_rate()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resync_rate_is_share_of_progress_events() {
        let r = ConsumerRow::new("gossip", 10, 8, 2);
        assert!((r.resync_rate() - 0.2).abs() < 1e-12);
        assert_eq!(ConsumerRow::new("idle", 0, 0, 0).resync_rate(), 0.0);
    }

    #[test]
    fn ledger_totals_and_table() {
        let mut ledger = ConsumerLedger::new();
        assert!(ledger.is_empty());
        ledger.push(ConsumerRow::new("gossip", 12, 10, 1));
        ledger.push(ConsumerRow::new("group-repair", 12, 12, 0));
        assert_eq!(ledger.rows().len(), 2);
        assert_eq!(ledger.total_resyncs(), 1);
        let md = ledger.to_table().to_markdown();
        assert!(md.contains("| gossip | 12 | 10 | 1 |"));
        assert!(md.contains("| group-repair | 12 | 12 | 0 | 0.0000 |"));
    }
}
