use std::fmt;

/// Streaming-friendly summary statistics over `f64` samples.
///
/// Keeps all samples (sorted lazily) so exact percentiles are available;
/// experiment sample counts are small (≤ thousands).
///
/// # Example
///
/// ```
/// use geocast_metrics::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.add(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.percentile(50.0), 2.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// An empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN samples (they would poison every statistic).
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.samples.push(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Smallest sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min_or_zero()
    }

    /// Largest sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max_or_zero()
    }

    /// Arithmetic mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Population standard deviation, or 0 when empty.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Exact percentile by linear interpolation between closest ranks
    /// (`p` in `[0, 100]`); 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Median (50th percentile).
    #[must_use]
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

trait OrZero {
    fn min_or_zero(self) -> f64;
    fn max_or_zero(self) -> f64;
}

impl OrZero for f64 {
    fn min_or_zero(self) -> f64 {
        if self == f64::INFINITY {
            0.0
        } else {
            self
        }
    }
    fn max_or_zero(self) -> f64 {
        if self == f64::NEG_INFINITY {
            0.0
        } else {
            self
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.3} mean={:.3} max={:.3} sd={:.3}",
            self.count(),
            self.min(),
            self.mean(),
            self.max(),
            self.std_dev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0); // classic population-sd example
    }

    #[test]
    fn empty_summary_is_all_zeroes() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.median(), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_iter([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert_eq!(s.percentile(50.0), 25.0);
        assert!((s.percentile(25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn median_of_odd_count_is_middle() {
        let s = Summary::from_iter([3.0, 1.0, 2.0]);
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_iter([42.0]);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn extend_appends() {
        let mut s = Summary::from_iter([1.0]);
        s.extend([2.0, 3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new().add(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_rejected() {
        let _ = Summary::from_iter([1.0]).percentile(101.0);
    }

    #[test]
    fn negative_samples_handled() {
        let s = Summary::from_iter([-5.0, -1.0, -3.0]);
        assert_eq!(s.min(), -5.0);
        assert_eq!(s.max(), -1.0);
        assert_eq!(s.mean(), -3.0);
    }

    #[test]
    fn display_mentions_all_fields() {
        let out = Summary::from_iter([1.0, 2.0]).to_string();
        for needle in ["n=2", "min=", "mean=", "max=", "sd="] {
            assert!(out.contains(needle), "{out}");
        }
    }
}
