use std::fmt;

/// A multi-series ASCII line chart for terminal figure output.
///
/// Each figure harness draws the same curves as the paper's Figure 1
/// panels, so a `cargo bench` (or `examples/figure1`) run shows the
/// reproduced shapes directly in the terminal.
///
/// Series are plotted over a shared x/y range; each series is drawn with
/// its own glyph and listed in a legend.
///
/// # Example
///
/// ```
/// use geocast_metrics::AsciiChart;
///
/// let mut chart = AsciiChart::new(40, 10);
/// chart.add_series("linear", (1..=10).map(|x| (x as f64, x as f64)).collect());
/// let drawing = chart.render();
/// assert!(drawing.contains("linear"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

const GLYPHS: [char; 9] = ['*', 'o', '+', 'x', '#', '@', '%', '&', '~'];

impl AsciiChart {
    /// Creates a chart with the given plot-area size in characters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "chart too small");
        AsciiChart {
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a named series of `(x, y)` points. NaN points are skipped at
    /// render time.
    pub fn add_series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push((name.into(), points));
    }

    /// Number of series added.
    #[must_use]
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Renders the chart with axes and a legend.
    #[must_use]
    pub fn render(&self) -> String {
        let points: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied())
            .filter(|(x, y)| !x.is_nan() && !y.is_nan())
            .collect();
        if points.is_empty() {
            return "(empty chart)\n".to_owned();
        }
        let (mut x_min, mut x_max, mut y_min, mut y_max) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for (x, y) in &points {
            x_min = x_min.min(*x);
            x_max = x_max.max(*x);
            y_min = y_min.min(*y);
            y_max = y_max.max(*y);
        }
        if x_min == x_max {
            x_max += 1.0;
        }
        if y_min == y_max {
            y_max += 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, (_, pts)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in pts {
                if x.is_nan() || y.is_nan() {
                    continue;
                }
                let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                grid[row][cx] = glyph;
            }
        }

        let mut out = String::new();
        out.push_str(&format!("{y_max:>10.1} ┤"));
        out.push_str(&grid[0].iter().collect::<String>());
        out.push('\n');
        for row in &grid[1..self.height - 1] {
            out.push_str("           │");
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&format!("{y_min:>10.1} ┤"));
        out.push_str(&grid[self.height - 1].iter().collect::<String>());
        out.push('\n');
        out.push_str("           └");
        out.push_str(&"─".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "            {:<width$.1}{:>.1}\n",
            x_min,
            x_max,
            width = self.width.saturating_sub(4)
        ));
        for (si, (name, _)) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], name));
        }
        out
    }
}

impl fmt::Display for AsciiChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chart_renders_placeholder() {
        let chart = AsciiChart::new(20, 5);
        assert_eq!(chart.render(), "(empty chart)\n");
    }

    #[test]
    fn single_series_plots_glyphs() {
        let mut chart = AsciiChart::new(20, 6);
        chart.add_series("s", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let out = chart.render();
        assert!(out.matches('*').count() >= 3, "{out}");
        assert!(out.contains("* s"));
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let mut chart = AsciiChart::new(20, 6);
        chart.add_series("a", vec![(0.0, 0.0), (1.0, 1.0)]);
        chart.add_series("b", vec![(0.0, 1.0), (1.0, 0.0)]);
        let out = chart.render();
        assert!(out.contains('*') && out.contains('o'), "{out}");
        assert_eq!(chart.series_count(), 2);
    }

    #[test]
    fn axis_labels_show_ranges() {
        let mut chart = AsciiChart::new(30, 5);
        chart.add_series("s", vec![(10.0, 100.0), (20.0, 300.0)]);
        let out = chart.render();
        assert!(out.contains("300.0"), "{out}");
        assert!(out.contains("100.0"), "{out}");
        assert!(out.contains("10.0"), "{out}");
    }

    #[test]
    fn degenerate_ranges_do_not_divide_by_zero() {
        let mut chart = AsciiChart::new(10, 4);
        chart.add_series("dot", vec![(5.0, 5.0)]);
        let out = chart.render();
        assert!(out.contains('*'));
    }

    #[test]
    fn nan_points_are_skipped() {
        let mut chart = AsciiChart::new(10, 4);
        chart.add_series("s", vec![(f64::NAN, 1.0), (1.0, 2.0)]);
        let out = chart.render();
        assert!(out.contains('*'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_chart_rejected() {
        let _ = AsciiChart::new(1, 1);
    }
}
