use std::fmt;

/// A rectangular results table rendered as Markdown or CSV.
///
/// The figure harnesses emit one `Table` per panel; EXPERIMENTS.md embeds
/// the Markdown rendering directly.
///
/// # Example
///
/// ```
/// use geocast_metrics::Table;
///
/// let mut t = Table::new(vec!["D".into(), "max degree".into()]);
/// t.push_row(vec!["2".into(), "23".into()]);
/// assert!(t.to_markdown().contains("| 2 | 23 |"));
/// assert_eq!(t.to_csv(), "D,max degree\n2,23\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Convenience: appends a row of displayable values.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the header width.
    pub fn push_display_row<T: fmt::Display>(&mut self, row: &[T]) {
        self.push_row(row.iter().map(ToString::to_string).collect());
    }

    /// The column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The rows added so far.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured Markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders RFC-4180-ish CSV (fields containing commas, quotes or
    /// newlines are quoted; quotes are doubled).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["3".into(), "4".into()]);
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | 2 |");
        assert_eq!(lines[3], "| 3 | 4 |");
    }

    #[test]
    fn csv_rendering() {
        assert_eq!(sample().to_csv(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn csv_quotes_special_fields() {
        let mut t = Table::new(vec!["x".into()]);
        t.push_row(vec!["has,comma".into()]);
        t.push_row(vec!["has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn display_rows_format_values() {
        let mut t = Table::new(vec!["k".into(), "v".into()]);
        t.push_display_row(&[1.5, 2.25]);
        assert_eq!(t.rows()[0], vec!["1.5".to_owned(), "2.25".to_owned()]);
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.headers(), &["a".to_owned(), "b".to_owned()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(Table::new(vec!["h".into()]).is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn display_equals_markdown() {
        let t = sample();
        assert_eq!(t.to_string(), t.to_markdown());
    }
}
