use std::collections::{BTreeSet, BinaryHeap};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::{Action, Context};
use crate::counters::{Counters, TraceEntry, TraceLog};
use crate::event::{Event, EventKind, TimerId};
use crate::fault::FaultModel;
use crate::latency::{ConstantLatency, LatencyModel};
use crate::node::{Message, Node, NodeId};
use crate::time::{SimDuration, SimTime};

/// Result of driving a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Events processed by this call.
    pub events: u64,
    /// `true` if the event queue drained completely.
    pub quiescent: bool,
    /// Virtual time when the call returned.
    pub now: SimTime,
}

/// Configures and constructs a [`Simulation`].
///
/// Obtained from [`Simulation::builder`]; see the crate-level example.
pub struct SimulationBuilder<N: Node> {
    nodes: Vec<N>,
    seed: u64,
    latency: Box<dyn LatencyModel>,
    fault: FaultModel,
    trace_capacity: usize,
    max_events: u64,
}

impl<N: Node> SimulationBuilder<N> {
    /// Seeds the simulation RNG (default 0). Identical seeds replay runs
    /// exactly.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the latency model (default: constant 10 ms).
    #[must_use]
    pub fn latency(mut self, model: impl LatencyModel + 'static) -> Self {
        self.latency = Box::new(model);
        self
    }

    /// Sets the fault model (default: lossless).
    #[must_use]
    pub fn fault(mut self, model: FaultModel) -> Self {
        self.fault = model;
        self
    }

    /// Enables event tracing with the given ring-buffer capacity
    /// (default 0 = disabled).
    #[must_use]
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Caps the number of events any single `run_*` call may process
    /// (default 100 million), a guard against runaway protocols.
    #[must_use]
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Builds the simulation. Nodes' `on_start` callbacks run lazily on
    /// the first `run_*`/`step` call.
    #[must_use]
    pub fn build(self) -> Simulation<N> {
        let n = self.nodes.len();
        Simulation {
            nodes: self.nodes,
            crashed: vec![false; n],
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            next_timer_id: 0,
            cancelled: BTreeSet::new(),
            rng: StdRng::seed_from_u64(self.seed),
            latency: self.latency,
            fault: self.fault,
            counters: Counters::default(),
            trace: TraceLog::new(self.trace_capacity),
            started: false,
            max_events: self.max_events,
        }
    }
}

/// A deterministic discrete-event simulation over a set of [`Node`]s.
///
/// See the crate-level documentation for the programming model and an
/// example.
pub struct Simulation<N: Node> {
    nodes: Vec<N>,
    crashed: Vec<bool>,
    queue: BinaryHeap<Event<N::Msg>>,
    now: SimTime,
    seq: u64,
    next_timer_id: u64,
    cancelled: BTreeSet<TimerId>,
    rng: StdRng,
    latency: Box<dyn LatencyModel>,
    fault: FaultModel,
    counters: Counters,
    trace: TraceLog,
    started: bool,
    max_events: u64,
}

impl<N: Node> Simulation<N> {
    /// Starts configuring a simulation over `nodes`.
    #[must_use]
    pub fn builder(nodes: Vec<N>) -> SimulationBuilder<N> {
        SimulationBuilder {
            nodes,
            seed: 0,
            latency: Box::new(ConstantLatency::default()),
            fault: FaultModel::default(),
            trace_capacity: 0,
            max_events: 100_000_000,
        }
    }

    /// Number of nodes (crashed ones included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the simulation has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to a node's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node's state (for experiment drivers between
    /// protocol phases; protocols themselves must use messages).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// All nodes, indexable by [`NodeId::index`].
    #[must_use]
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Message/timer accounting for the run so far.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The event trace (empty unless enabled at build time).
    #[must_use]
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// `true` if `id` has been crashed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.crashed[id.index()]
    }

    /// The active fault model.
    #[must_use]
    pub fn fault_model(&self) -> &FaultModel {
        &self.fault
    }

    /// Mutable access to the fault model, so experiments can inject
    /// faults mid-run (mark peers silent, cut region links). Mutations
    /// are part of the experiment script and replay deterministically as
    /// long as the script itself is deterministic.
    pub fn fault_mut(&mut self) -> &mut FaultModel {
        &mut self.fault
    }

    /// Crashes a node: all its pending and future messages and timers are
    /// silently discarded.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn crash(&mut self, id: NodeId) {
        self.crashed[id.index()] = true;
    }

    /// Adds a node to a (possibly running) simulation, invoking its
    /// `on_start` immediately at the current virtual time. Returns the
    /// new node's id.
    pub fn spawn(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        self.crashed.push(false);
        self.run_callback(id, super::node::Node::on_start);
        id
    }

    /// Injects a message from outside the simulated network (e.g. the
    /// experiment driver handing the multicast root its initial request).
    /// The message is delivered to `to` after the usual latency, with
    /// `from == to` by convention. Injections bypass the fault model —
    /// they are experiment bootstrap, not protocol traffic.
    pub fn inject(&mut self, to: NodeId, msg: N::Msg) {
        assert!(
            to.index() < self.nodes.len(),
            "message to unknown node {to}"
        );
        self.counters.record_sent(msg.tag());
        let delay = self.latency.latency(to, to, &mut self.rng);
        let time = self.now + delay;
        self.push_event(Event {
            time,
            seq: 0,
            kind: EventKind::Deliver { from: to, to, msg },
        });
    }

    /// Runs every node's `on_start` if not yet started. Called implicitly
    /// by the run methods.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.run_callback(NodeId(i), super::node::Node::on_start);
        }
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.now, "time must be monotone");
        self.now = event.time;
        match event.kind {
            EventKind::Deliver { from, to, msg } => {
                if self.crashed[to.index()] {
                    self.counters.record_dropped_crashed();
                } else {
                    let tag = msg.tag();
                    self.counters.record_delivered(tag);
                    self.trace.record(TraceEntry {
                        time: self.now,
                        from,
                        to,
                        tag,
                    });
                    self.run_callback(to, |node, ctx| node.on_message(ctx, from, msg));
                }
            }
            EventKind::Timer { node, timer } => {
                if self.cancelled.remove(&timer) || self.crashed[node.index()] {
                    // Lazily-cancelled or owned by a crashed node.
                } else {
                    self.counters.record_timer();
                    self.trace.record(TraceEntry {
                        time: self.now,
                        from: node,
                        to: node,
                        tag: "timer",
                    });
                    self.run_callback(node, |n, ctx| n.on_timer(ctx, timer));
                }
            }
        }
        true
    }

    /// Runs until no events remain (or the per-call event cap is hit).
    pub fn run_until_quiescent(&mut self) -> RunOutcome {
        self.start();
        let mut events = 0u64;
        while events < self.max_events && self.step() {
            events += 1;
        }
        RunOutcome {
            events,
            quiescent: self.queue.is_empty(),
            now: self.now,
        }
    }

    /// Processes all events scheduled at or before `deadline`, then
    /// advances the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.start();
        let mut events = 0u64;
        while events < self.max_events {
            match self.queue.peek() {
                Some(e) if e.time <= deadline => {
                    self.step();
                    events += 1;
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        RunOutcome {
            events,
            quiescent: self.queue.is_empty(),
            now: self.now,
        }
    }

    /// Runs for `duration` of virtual time from the current clock.
    pub fn run_for(&mut self, duration: SimDuration) -> RunOutcome {
        let deadline = self.now + duration;
        self.run_until(deadline)
    }

    /// Invokes `f` on one node with a fresh context, then applies the
    /// actions it requested.
    fn run_callback<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut N, &mut Context<'_, N::Msg>),
    {
        let mut actions: Vec<Action<N::Msg>> = Vec::new();
        {
            let mut ctx = Context::new(
                id,
                self.now,
                &mut self.rng,
                &mut self.next_timer_id,
                &mut actions,
            );
            f(&mut self.nodes[id.index()], &mut ctx);
        }
        for action in actions {
            match action {
                Action::Send { to, msg } => self.enqueue_send(id, to, msg),
                Action::Arm { delay, timer } => {
                    let time = self.now + delay;
                    self.push_event(Event {
                        time,
                        seq: 0,
                        kind: EventKind::Timer { node: id, timer },
                    });
                }
                Action::Cancel { timer } => {
                    self.cancelled.insert(timer);
                }
            }
        }
    }

    fn enqueue_send(&mut self, from: NodeId, to: NodeId, msg: N::Msg) {
        assert!(
            to.index() < self.nodes.len(),
            "message to unknown node {to}"
        );
        self.counters.record_sent(msg.tag());
        if let Some(cause) = self.fault.drops(from, to, &mut self.rng) {
            self.counters.record_dropped_fault(cause);
            return;
        }
        let delay = self.latency.latency(from, to, &mut self.rng);
        let time = self.now + delay;
        self.push_event(Event {
            time,
            seq: 0,
            kind: EventKind::Deliver { from, to, msg },
        });
    }

    fn push_event(&mut self, mut event: Event<N::Msg>) {
        event.seq = self.seq;
        self.seq += 1;
        self.queue.push(event);
    }
}

impl<N: Node> std::fmt::Debug for Simulation<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("counters", &self.counters)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::UniformLatency;

    #[derive(Clone, Debug, PartialEq)]
    enum TestMsg {
        Token(u32),
        Other,
    }

    impl Message for TestMsg {
        fn tag(&self) -> &'static str {
            match self {
                TestMsg::Token(_) => "token",
                TestMsg::Other => "other",
            }
        }
    }

    /// Counts everything it receives; forwards tokens with decremented
    /// TTL to a fixed next hop.
    struct Relay {
        next: NodeId,
        received: Vec<TestMsg>,
        timer_fired: u32,
        periodic: bool,
    }

    impl Relay {
        fn new(next: NodeId) -> Self {
            Relay {
                next,
                received: Vec::new(),
                timer_fired: 0,
                periodic: false,
            }
        }
    }

    impl Node for Relay {
        type Msg = TestMsg;

        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            if self.periodic {
                ctx.set_timer(SimDuration::from_millis(100));
            }
        }

        fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, _from: NodeId, msg: TestMsg) {
            self.received.push(msg.clone());
            if let TestMsg::Token(ttl) = msg {
                if ttl > 0 {
                    ctx.send(self.next, TestMsg::Token(ttl - 1));
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, TestMsg>, _timer: TimerId) {
            self.timer_fired += 1;
            if self.periodic {
                ctx.set_timer(SimDuration::from_millis(100));
            }
        }
    }

    fn ring(n: usize) -> Vec<Relay> {
        (0..n).map(|i| Relay::new(NodeId((i + 1) % n))).collect()
    }

    #[test]
    fn token_ring_passes_exact_message_count() {
        let mut sim = Simulation::builder(ring(5)).build();
        sim.inject(NodeId(0), TestMsg::Token(9));
        let outcome = sim.run_until_quiescent();
        assert!(outcome.quiescent);
        // 1 injected + 9 forwards.
        assert_eq!(sim.counters().sent_with_tag("token"), 10);
        assert_eq!(sim.counters().delivered(), 10);
        // Token visited nodes 0,1,2,3,4,0,1,2,3,4.
        assert_eq!(sim.node(NodeId(0)).received.len(), 2);
        assert_eq!(sim.node(NodeId(4)).received.len(), 2);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed: u64| {
            let mut sim = Simulation::builder(ring(4))
                .seed(seed)
                .latency(UniformLatency::new(
                    SimDuration::from_millis(1),
                    SimDuration::from_millis(20),
                ))
                .build();
            sim.inject(NodeId(0), TestMsg::Token(20));
            sim.run_until_quiescent();
            sim.now().as_nanos()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should shuffle latencies");
    }

    #[test]
    fn virtual_time_advances_with_latency() {
        let mut sim = Simulation::builder(ring(2))
            .latency(ConstantLatency(SimDuration::from_millis(10)))
            .build();
        sim.inject(NodeId(0), TestMsg::Token(3));
        sim.run_until_quiescent();
        // 4 hops à 10 ms.
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(40));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::builder(ring(2)).build();
        sim.inject(NodeId(0), TestMsg::Token(100));
        let outcome = sim.run_until(SimTime::ZERO + SimDuration::from_millis(35));
        assert!(!outcome.quiescent);
        assert_eq!(outcome.now, SimTime::ZERO + SimDuration::from_millis(35));
        // 10ms per hop: deliveries at 10, 20, 30 => 3 events.
        assert_eq!(outcome.events, 3);
    }

    #[test]
    fn crashed_nodes_swallow_messages() {
        let mut sim = Simulation::builder(ring(3)).build();
        sim.crash(NodeId(1));
        sim.inject(NodeId(0), TestMsg::Token(5));
        sim.run_until_quiescent();
        assert!(sim.is_crashed(NodeId(1)));
        // Token reaches node 0, forwards to crashed node 1, dies there.
        assert_eq!(sim.counters().dropped_at_crashed(), 1);
        assert_eq!(sim.node(NodeId(1)).received.len(), 0);
        assert_eq!(sim.node(NodeId(2)).received.len(), 0);
    }

    #[test]
    fn full_loss_kills_all_protocol_traffic() {
        let mut sim = Simulation::builder(ring(3))
            .fault(FaultModel::with_loss(1.0))
            .build();
        sim.inject(NodeId(0), TestMsg::Token(5));
        sim.run_until_quiescent();
        // The injection bypasses faults and is delivered; the forward it
        // triggers is protocol traffic and is dropped.
        assert_eq!(sim.counters().delivered(), 1);
        assert_eq!(sim.counters().dropped_by_faults(), 1);
        assert_eq!(sim.node(NodeId(1)).received.len(), 0);
    }

    #[test]
    fn periodic_timers_fire_until_deadline() {
        let mut nodes = ring(1);
        nodes[0].periodic = true;
        let mut sim = Simulation::builder(nodes).build();
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(550));
        assert_eq!(sim.node(NodeId(0)).timer_fired, 5);
        assert_eq!(sim.counters().timers_fired(), 5);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        struct Canceller {
            fired: bool,
        }
        impl Node for Canceller {
            type Msg = TestMsg;
            fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
                let t = ctx.set_timer(SimDuration::from_millis(10));
                ctx.cancel_timer(t);
            }
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: NodeId, _: TestMsg) {}
            fn on_timer(&mut self, _: &mut Context<'_, TestMsg>, _: TimerId) {
                self.fired = true;
            }
        }
        let mut sim = Simulation::builder(vec![Canceller { fired: false }]).build();
        sim.run_until_quiescent();
        assert!(!sim.node(NodeId(0)).fired);
        assert_eq!(sim.counters().timers_fired(), 0);
    }

    #[test]
    fn spawn_adds_running_node() {
        let mut sim = Simulation::builder(ring(2)).build();
        sim.run_until_quiescent();
        let id = sim.spawn(Relay::new(NodeId(0)));
        assert_eq!(id, NodeId(2));
        assert_eq!(sim.len(), 3);
        sim.inject(id, TestMsg::Other);
        sim.run_until_quiescent();
        assert_eq!(sim.node(id).received, vec![TestMsg::Other]);
    }

    #[test]
    fn max_events_caps_runaway_protocols() {
        // Node that sends itself a message forever.
        struct Loopy;
        impl Node for Loopy {
            type Msg = TestMsg;
            fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
                ctx.send(NodeId(0), TestMsg::Other);
            }
            fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, _: NodeId, _: TestMsg) {
                ctx.send(NodeId(0), TestMsg::Other);
            }
        }
        let mut sim = Simulation::builder(vec![Loopy]).max_events(1000).build();
        let outcome = sim.run_until_quiescent();
        assert!(!outcome.quiescent);
        assert_eq!(outcome.events, 1000);
    }

    #[test]
    fn trace_records_deliveries_when_enabled() {
        let mut sim = Simulation::builder(ring(2)).trace_capacity(16).build();
        sim.inject(NodeId(0), TestMsg::Token(2));
        sim.run_until_quiescent();
        assert!(sim.trace().is_enabled());
        assert_eq!(sim.trace().len(), 3);
        let tags: Vec<&str> = sim.trace().entries().map(|e| e.tag).collect();
        assert_eq!(tags, vec!["token", "token", "token"]);
    }

    #[test]
    fn debug_format_mentions_node_count() {
        let sim = Simulation::builder(ring(3)).build();
        let dbg = format!("{sim:?}");
        assert!(dbg.contains("nodes: 3"), "{dbg}");
    }
}
