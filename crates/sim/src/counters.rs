use std::collections::BTreeMap;
use std::fmt;

use crate::fault::DropCause;
use crate::node::NodeId;
use crate::time::SimTime;

/// Per-kind message accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TagCounts {
    sent: u64,
    delivered: u64,
}

/// Message and timer accounting for a simulation run.
///
/// Counters are the measurement instrument behind the paper's in-text
/// claims — e.g. "the algorithm sends N−1 messages" is asserted as
/// `sent_with_tag("build") == n - 1` so that gossip or baseline traffic
/// cannot contaminate the measurement.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    sent: u64,
    delivered: u64,
    dropped_fault: u64,
    dropped_loss: u64,
    dropped_burst: u64,
    dropped_silent: u64,
    dropped_partition: u64,
    dropped_crashed: u64,
    timers_fired: u64,
    by_tag: BTreeMap<&'static str, TagCounts>,
}

impl Counters {
    /// Total messages submitted for sending (including later-dropped
    /// ones).
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Total messages delivered to a live node.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped by the fault model (all causes).
    #[must_use]
    pub fn dropped_by_faults(&self) -> u64 {
        self.dropped_fault
    }

    /// Messages dropped by independent uniform loss.
    #[must_use]
    pub fn dropped_by_loss(&self) -> u64 {
        self.dropped_loss
    }

    /// Messages dropped by the Gilbert–Elliott burst chain.
    #[must_use]
    pub fn dropped_by_burst(&self) -> u64 {
        self.dropped_burst
    }

    /// Messages dropped because an endpoint was a silent-drop peer.
    #[must_use]
    pub fn dropped_silent(&self) -> u64 {
        self.dropped_silent
    }

    /// Messages dropped on a partitioned region pair.
    #[must_use]
    pub fn dropped_partitioned(&self) -> u64 {
        self.dropped_partition
    }

    /// Messages dropped because the destination had crashed.
    #[must_use]
    pub fn dropped_at_crashed(&self) -> u64 {
        self.dropped_crashed
    }

    /// Timers that fired.
    #[must_use]
    pub fn timers_fired(&self) -> u64 {
        self.timers_fired
    }

    /// Messages of the given kind submitted for sending.
    #[must_use]
    pub fn sent_with_tag(&self, tag: &str) -> u64 {
        self.by_tag.get(tag).map_or(0, |c| c.sent)
    }

    /// Messages of the given kind delivered.
    #[must_use]
    pub fn delivered_with_tag(&self, tag: &str) -> u64 {
        self.by_tag.get(tag).map_or(0, |c| c.delivered)
    }

    /// All tags seen so far, sorted (deterministic for reporting).
    #[must_use]
    pub fn tags(&self) -> Vec<&'static str> {
        let mut tags: Vec<&'static str> = self.by_tag.keys().copied().collect();
        tags.sort_unstable();
        tags
    }

    pub(crate) fn record_sent(&mut self, tag: &'static str) {
        self.sent += 1;
        self.by_tag.entry(tag).or_default().sent += 1;
    }

    pub(crate) fn record_delivered(&mut self, tag: &'static str) {
        self.delivered += 1;
        self.by_tag.entry(tag).or_default().delivered += 1;
    }

    pub(crate) fn record_dropped_fault(&mut self, cause: DropCause) {
        self.dropped_fault += 1;
        match cause {
            DropCause::Loss => self.dropped_loss += 1,
            DropCause::Burst => self.dropped_burst += 1,
            DropCause::Silent => self.dropped_silent += 1,
            DropCause::Partition => self.dropped_partition += 1,
        }
    }

    pub(crate) fn record_dropped_crashed(&mut self) {
        self.dropped_crashed += 1;
    }

    pub(crate) fn record_timer(&mut self) {
        self.timers_fired += 1;
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped(fault={}, crashed={}) timers={}",
            self.sent, self.delivered, self.dropped_fault, self.dropped_crashed, self.timers_fired
        )
    }
}

/// One recorded simulation event, for debugging protocol runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event fired.
    pub time: SimTime,
    /// Sender (for deliveries) or the timer's owner.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Message tag, or `"timer"` for timer events.
    pub tag: &'static str,
}

/// A bounded in-memory log of the most recent simulation events.
///
/// Disabled (capacity 0) by default; enable through
/// [`crate::SimulationBuilder::trace_capacity`]. When full, the oldest
/// entries are evicted.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    entries: std::collections::VecDeque<TraceEntry>,
    capacity: usize,
}

impl TraceLog {
    pub(crate) fn new(capacity: usize) -> Self {
        TraceLog {
            entries: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity,
        }
    }

    /// `true` if tracing is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The recorded entries, oldest first.
    #[must_use]
    pub fn entries(&self) -> impl ExactSizeIterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn record(&mut self, entry: TraceEntry) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_by_tag() {
        let mut c = Counters::default();
        c.record_sent("gossip");
        c.record_sent("gossip");
        c.record_sent("build");
        c.record_delivered("gossip");
        assert_eq!(c.sent(), 3);
        assert_eq!(c.delivered(), 1);
        assert_eq!(c.sent_with_tag("gossip"), 2);
        assert_eq!(c.sent_with_tag("build"), 1);
        assert_eq!(c.delivered_with_tag("gossip"), 1);
        assert_eq!(c.sent_with_tag("unknown"), 0);
        assert_eq!(c.tags(), vec!["build", "gossip"]);
    }

    #[test]
    fn drop_counters_are_separate() {
        let mut c = Counters::default();
        c.record_dropped_fault(DropCause::Loss);
        c.record_dropped_crashed();
        c.record_dropped_crashed();
        assert_eq!(c.dropped_by_faults(), 1);
        assert_eq!(c.dropped_at_crashed(), 2);
    }

    #[test]
    fn fault_drops_are_attributed_by_cause() {
        let mut c = Counters::default();
        c.record_dropped_fault(DropCause::Loss);
        c.record_dropped_fault(DropCause::Burst);
        c.record_dropped_fault(DropCause::Burst);
        c.record_dropped_fault(DropCause::Silent);
        c.record_dropped_fault(DropCause::Partition);
        assert_eq!(c.dropped_by_faults(), 5);
        assert_eq!(c.dropped_by_loss(), 1);
        assert_eq!(c.dropped_by_burst(), 2);
        assert_eq!(c.dropped_silent(), 1);
        assert_eq!(c.dropped_partitioned(), 1);
    }

    #[test]
    fn display_mentions_all_counts() {
        let mut c = Counters::default();
        c.record_sent("x");
        c.record_timer();
        let s = c.to_string();
        assert!(s.contains("sent=1") && s.contains("timers=1"), "{s}");
    }

    #[test]
    fn trace_log_evicts_oldest() {
        let mut log = TraceLog::new(2);
        for i in 0..3 {
            log.record(TraceEntry {
                time: SimTime::from_nanos(i),
                from: NodeId(0),
                to: NodeId(1),
                tag: "t",
            });
        }
        assert_eq!(log.len(), 2);
        let first = log.entries().next().unwrap();
        assert_eq!(first.time, SimTime::from_nanos(1), "oldest entry evicted");
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut log = TraceLog::new(0);
        assert!(!log.is_enabled());
        log.record(TraceEntry {
            time: SimTime::ZERO,
            from: NodeId(0),
            to: NodeId(0),
            tag: "t",
        });
        assert!(log.is_empty());
    }
}
