use std::fmt;

use crate::context::Context;
use crate::event::TimerId;

/// Identifier of a node inside a [`crate::Simulation`].
///
/// Node ids are dense indices assigned in construction order; experiment
/// crates map them 1:1 onto peer identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The dense index of the node.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// A message exchanged between nodes.
///
/// The `tag` labels the message *kind* for the per-kind counters used by
/// the experiments (e.g. the §2 claim "the algorithm sends N−1 messages"
/// is asserted on the `"build"` tag, unpolluted by gossip traffic).
pub trait Message: Clone + fmt::Debug {
    /// A short static label identifying the message kind.
    fn tag(&self) -> &'static str;
}

/// Behaviour of a simulated peer.
///
/// Implementations hold all per-peer protocol state; the simulator owns
/// the nodes and invokes the callbacks with a [`Context`] through which
/// nodes read the clock, send messages, and arm timers. Nodes never see
/// each other directly — all interaction flows through messages, keeping
/// the protocol honestly distributed.
pub trait Node {
    /// The message type this node exchanges.
    type Msg: Message;

    /// Invoked once when the simulation starts (or when the node is
    /// spawned into a running simulation).
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Invoked when a message is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Invoked when a timer armed through [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: TimerId) {
        let _ = (ctx, timer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips() {
        let id = NodeId::from(7usize);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn node_id_orders_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(3), NodeId(3));
    }
}
