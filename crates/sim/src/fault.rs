//! Failure injection.
//!
//! The paper's motivation is robustness to node departures; the tests and
//! baselines in this repository additionally inject message loss and peer
//! crashes to measure how each tree-construction strategy degrades. A
//! [`FaultModel`] configures that injection; the default injects nothing.
//!
//! Beyond independent uniform loss, the model is a small *fault matrix*
//! exercised by the failure-detection experiments:
//!
//! - **silent-drop peers** — the peer keeps running (its timers fire,
//!   it believes itself healthy) but every message to or from it is
//!   discarded, so it is indistinguishable from a crashed peer to the
//!   rest of the network. This is the adversarial case for a failure
//!   detector, complementing crash-stop ([`crate::Simulation::crash`]).
//! - **bursty loss** — a [`GilbertElliott`] two-state chain alternates
//!   between a good and a bad (burst) state with per-state loss rates,
//!   modelling correlated outages rather than independent coin flips.
//! - **region partitions** — peers carry region labels and pairs of
//!   regions can be bidirectionally partitioned, modelling a WAN link
//!   cut between two coordinate neighbourhoods.
//!
//! Every decision draws from the simulation RNG (and only when the
//! corresponding feature is enabled), so a seeded run replays its faults
//! exactly — including runs recorded before the matrix existed, because
//! the plain uniform-loss path performs the same draws as it always did.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::Rng;

use crate::node::NodeId;

/// Why the fault model discarded a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// Independent uniform loss.
    Loss,
    /// Loss while the [`GilbertElliott`] chain decided to drop.
    Burst,
    /// Sender or receiver is a silent-drop peer.
    Silent,
    /// Endpoints sit in bidirectionally partitioned regions.
    Partition,
}

/// A two-state Markov loss chain (good/bad) — the classic Gilbert–Elliott
/// bursty-loss model.
///
/// Each message first advances the chain (one RNG draw), then loses the
/// message with the current state's loss probability (one more draw), so
/// the draw count per message is constant and replay stays deterministic
/// regardless of outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    p_enter_burst: f64,
    p_exit_burst: f64,
    loss_good: f64,
    loss_bad: f64,
    in_burst: bool,
}

impl GilbertElliott {
    /// Creates a chain starting in the good state.
    ///
    /// `p_enter_burst`/`p_exit_burst` are the per-message transition
    /// probabilities; `loss_good`/`loss_bad` the per-state loss rates.
    ///
    /// # Panics
    ///
    /// Panics unless all four probabilities are in `[0, 1]`.
    #[must_use]
    pub fn new(p_enter_burst: f64, p_exit_burst: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (name, p) in [
            ("p_enter_burst", p_enter_burst),
            ("p_exit_burst", p_exit_burst),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1]");
        }
        GilbertElliott {
            p_enter_burst,
            p_exit_burst,
            loss_good,
            loss_bad,
            in_burst: false,
        }
    }

    /// `true` while the chain sits in the bursty (bad) state.
    #[must_use]
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// Advances the chain by one message and decides that message's fate.
    fn step(&mut self, rng: &mut StdRng) -> bool {
        let flip = rng.random_range(0.0..1.0);
        if self.in_burst {
            if flip < self.p_exit_burst {
                self.in_burst = false;
            }
        } else if flip < self.p_enter_burst {
            self.in_burst = true;
        }
        let loss = if self.in_burst {
            self.loss_bad
        } else {
            self.loss_good
        };
        rng.random_range(0.0..1.0) < loss
    }
}

/// Probabilistic message loss plus explicit crash control.
///
/// Losses are decided per message with the simulation RNG, so a seeded
/// run replays its faults exactly. Crashes are driven by the experiment
/// through [`crate::Simulation::crash`]; the model only decides message
/// fate. See the module docs for the full fault matrix.
///
/// The model is mutable at runtime through
/// [`crate::Simulation::fault_mut`], so experiments can mark peers
/// silent or cut region links mid-run.
///
/// # Example
///
/// ```
/// use geocast_sim::FaultModel;
///
/// let lossless = FaultModel::default();
/// assert_eq!(lossless.loss_probability(), 0.0);
///
/// let lossy = FaultModel::with_loss(0.1);
/// assert_eq!(lossy.loss_probability(), 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    loss_probability: f64,
    silent: BTreeSet<usize>,
    burst: Option<GilbertElliott>,
    regions: Vec<u32>,
    partitions: BTreeSet<(u32, u32)>,
}

impl FaultModel {
    /// A model that drops each message independently with probability
    /// `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[must_use]
    pub fn with_loss(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0, 1]"
        );
        FaultModel {
            loss_probability: p,
            ..FaultModel::default()
        }
    }

    /// The configured per-message loss probability.
    #[must_use]
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// Adds a [`GilbertElliott`] bursty-loss chain on top of (or instead
    /// of) uniform loss.
    #[must_use]
    pub fn with_burst(mut self, burst: GilbertElliott) -> Self {
        self.burst = Some(burst);
        self
    }

    /// The bursty-loss chain, if one is configured.
    #[must_use]
    pub fn burst(&self) -> Option<&GilbertElliott> {
        self.burst.as_ref()
    }

    /// Marks or unmarks `peer` as a silent-drop peer (all its traffic,
    /// both directions, is discarded while marked).
    pub fn set_silent(&mut self, peer: NodeId, silent: bool) {
        if silent {
            self.silent.insert(peer.index());
        } else {
            self.silent.remove(&peer.index());
        }
    }

    /// `true` if `peer` is currently a silent-drop peer.
    #[must_use]
    pub fn is_silent(&self, peer: NodeId) -> bool {
        self.silent.contains(&peer.index())
    }

    /// The silent-drop peers, sorted by index.
    #[must_use]
    pub fn silent_peers(&self) -> Vec<NodeId> {
        self.silent.iter().map(|&i| NodeId(i)).collect()
    }

    /// Assigns each node (by dense index) a region label for partition
    /// faults. Nodes beyond the vector's length belong to no region and
    /// are never partitioned.
    #[must_use]
    pub fn with_regions(mut self, regions: Vec<u32>) -> Self {
        self.regions = regions;
        self
    }

    /// The region label of `peer`, if one was assigned.
    #[must_use]
    pub fn region_of(&self, peer: NodeId) -> Option<u32> {
        self.regions.get(peer.index()).copied()
    }

    /// Cuts the bidirectional link between regions `a` and `b`: every
    /// message whose endpoints sit on opposite sides is dropped.
    pub fn partition_regions(&mut self, a: u32, b: u32) {
        self.partitions.insert((a.min(b), a.max(b)));
    }

    /// Heals a previously cut region pair.
    pub fn heal_regions(&mut self, a: u32, b: u32) {
        self.partitions.remove(&(a.min(b), a.max(b)));
    }

    /// `true` if a message between these peers would cross a cut
    /// region pair.
    #[must_use]
    pub fn is_partitioned(&self, from: NodeId, to: NodeId) -> bool {
        if self.partitions.is_empty() {
            return false;
        }
        match (self.region_of(from), self.region_of(to)) {
            (Some(a), Some(b)) => self.partitions.contains(&(a.min(b), a.max(b))),
            _ => false,
        }
    }

    /// Decides whether a particular message is lost, and why.
    ///
    /// RNG discipline: deterministic checks (silent peers, partitions)
    /// consume no randomness; the burst chain draws exactly twice per
    /// message iff configured; uniform loss draws exactly once iff its
    /// probability is non-zero — so enabling a matrix feature never
    /// perturbs the replay of runs that do not use it.
    pub(crate) fn drops(
        &mut self,
        from: NodeId,
        to: NodeId,
        rng: &mut StdRng,
    ) -> Option<DropCause> {
        if self.silent.contains(&from.index()) || self.silent.contains(&to.index()) {
            return Some(DropCause::Silent);
        }
        if self.is_partitioned(from, to) {
            return Some(DropCause::Partition);
        }
        if let Some(burst) = &mut self.burst {
            if burst.step(rng) {
                return Some(DropCause::Burst);
            }
        }
        if self.loss_probability > 0.0 && rng.random_range(0.0..1.0) < self.loss_probability {
            return Some(DropCause::Loss);
        }
        None
    }
}

impl Default for FaultModel {
    /// The default model is lossless and injects nothing.
    fn default() -> Self {
        FaultModel {
            loss_probability: 0.0,
            silent: BTreeSet::new(),
            burst: None,
            regions: Vec::new(),
            partitions: BTreeSet::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_never_drops() {
        let mut model = FaultModel::default();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert_eq!(model.drops(NodeId(0), NodeId(1), &mut rng), None);
        }
    }

    #[test]
    fn full_loss_always_drops() {
        let mut model = FaultModel::with_loss(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(
                model.drops(NodeId(0), NodeId(1), &mut rng),
                Some(DropCause::Loss)
            );
        }
    }

    #[test]
    fn partial_loss_rate_is_plausible() {
        let mut model = FaultModel::with_loss(0.3);
        let mut rng = StdRng::seed_from_u64(99);
        let dropped = (0..10_000)
            .filter(|_| model.drops(NodeId(0), NodeId(1), &mut rng).is_some())
            .count();
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "observed loss rate {rate}");
    }

    #[test]
    fn drops_are_seed_deterministic() {
        let mut m1 = FaultModel::with_loss(0.5);
        let mut m2 = FaultModel::with_loss(0.5);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                m1.drops(NodeId(0), NodeId(1), &mut r1),
                m2.drops(NodeId(0), NodeId(1), &mut r2)
            );
        }
    }

    /// The replay-compatibility contract: the uniform-loss path must
    /// consume exactly the RNG draws the pre-matrix model did (one per
    /// message when lossy, zero when lossless), so seeded experiments
    /// recorded before the fault matrix keep replaying identically.
    #[test]
    fn uniform_path_rng_draws_unchanged() {
        use rand::Rng;
        let legacy =
            |p: f64, rng: &mut StdRng| -> bool { p > 0.0 && rng.random_range(0.0..1.0) < p };
        for p in [0.0, 0.25, 1.0] {
            let mut model = FaultModel::with_loss(p);
            let mut r1 = StdRng::seed_from_u64(13);
            let mut r2 = StdRng::seed_from_u64(13);
            for _ in 0..500 {
                let new = model.drops(NodeId(0), NodeId(1), &mut r1).is_some();
                let old = legacy(p, &mut r2);
                assert_eq!(new, old, "p={p}");
            }
            // Both RNGs must have advanced by the same number of draws.
            assert_eq!(
                r1.random_range(0..u64::MAX),
                r2.random_range(0..u64::MAX),
                "RNG streams diverged at p={p}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_invalid_probability() {
        let _ = FaultModel::with_loss(1.5);
    }

    #[test]
    fn silent_peers_drop_both_directions_without_rng() {
        let mut model = FaultModel::default();
        model.set_silent(NodeId(3), true);
        assert!(model.is_silent(NodeId(3)));
        assert_eq!(model.silent_peers(), vec![NodeId(3)]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            model.drops(NodeId(3), NodeId(1), &mut rng),
            Some(DropCause::Silent)
        );
        assert_eq!(
            model.drops(NodeId(1), NodeId(3), &mut rng),
            Some(DropCause::Silent)
        );
        assert_eq!(model.drops(NodeId(1), NodeId(2), &mut rng), None);
        model.set_silent(NodeId(3), false);
        assert_eq!(model.drops(NodeId(3), NodeId(1), &mut rng), None);
    }

    #[test]
    fn partitions_cut_cross_region_traffic_only() {
        let mut model = FaultModel::default().with_regions(vec![0, 0, 1, 1]);
        model.partition_regions(1, 0); // order-insensitive
        assert!(model.is_partitioned(NodeId(0), NodeId(2)));
        assert!(model.is_partitioned(NodeId(3), NodeId(1)));
        assert!(!model.is_partitioned(NodeId(0), NodeId(1)));
        assert!(!model.is_partitioned(NodeId(2), NodeId(3)));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            model.drops(NodeId(0), NodeId(3), &mut rng),
            Some(DropCause::Partition)
        );
        model.heal_regions(0, 1);
        assert_eq!(model.drops(NodeId(0), NodeId(3), &mut rng), None);
    }

    #[test]
    fn unlabeled_nodes_are_never_partitioned() {
        let mut model = FaultModel::default().with_regions(vec![0]);
        model.partition_regions(0, 1);
        assert_eq!(model.region_of(NodeId(5)), None);
        assert!(!model.is_partitioned(NodeId(0), NodeId(5)));
    }

    #[test]
    fn burst_chain_loses_more_in_bad_state() {
        // Bad state is lossy, good state is clean; long bursts.
        let ge = GilbertElliott::new(0.05, 0.05, 0.0, 1.0);
        assert!(!ge.in_burst());
        let mut model = FaultModel::default().with_burst(ge);
        let mut rng = StdRng::seed_from_u64(5);
        let mut dropped = 0usize;
        let mut runs: Vec<usize> = Vec::new();
        let mut current = 0usize;
        for _ in 0..20_000 {
            if model.drops(NodeId(0), NodeId(1), &mut rng) == Some(DropCause::Burst) {
                dropped += 1;
                current += 1;
            } else if current > 0 {
                runs.push(current);
                current = 0;
            }
        }
        let rate = dropped as f64 / 20_000.0;
        // Symmetric transitions => ~half the time in the bad state.
        assert!((0.4..0.6).contains(&rate), "burst loss rate {rate}");
        let max_run = runs.iter().copied().max().unwrap_or(0);
        assert!(max_run >= 20, "losses should be bursty, max run {max_run}");
    }

    #[test]
    fn burst_runs_replay_per_seed() {
        let mk = || FaultModel::with_loss(0.1).with_burst(GilbertElliott::new(0.1, 0.3, 0.0, 0.9));
        let run = |mut model: FaultModel| {
            let mut rng = StdRng::seed_from_u64(11);
            (0..2000)
                .map(|_| model.drops(NodeId(0), NodeId(1), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(mk()), run(mk()));
    }

    #[test]
    #[should_panic(expected = "loss_bad must be in [0, 1]")]
    fn burst_rejects_invalid_probability() {
        let _ = GilbertElliott::new(0.1, 0.1, 0.0, 1.2);
    }
}
