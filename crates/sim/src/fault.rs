//! Failure injection.
//!
//! The paper's motivation is robustness to node departures; the tests and
//! baselines in this repository additionally inject message loss and peer
//! crashes to measure how each tree-construction strategy degrades. A
//! [`FaultModel`] configures that injection; the default injects nothing.

use rand::rngs::StdRng;
use rand::Rng;

use crate::node::NodeId;

/// Probabilistic message loss plus explicit crash control.
///
/// Losses are decided per message with the simulation RNG, so a seeded
/// run replays its faults exactly. Crashes are driven by the experiment
/// through [`crate::Simulation::crash`]; the model only decides message
/// fate.
///
/// # Example
///
/// ```
/// use geocast_sim::FaultModel;
///
/// let lossless = FaultModel::default();
/// assert_eq!(lossless.loss_probability(), 0.0);
///
/// let lossy = FaultModel::with_loss(0.1);
/// assert_eq!(lossy.loss_probability(), 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    loss_probability: f64,
}

impl FaultModel {
    /// A model that drops each message independently with probability
    /// `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[must_use]
    pub fn with_loss(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0, 1]"
        );
        FaultModel {
            loss_probability: p,
        }
    }

    /// The configured per-message loss probability.
    #[must_use]
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// Decides whether a particular message is lost.
    pub(crate) fn drops(&self, _from: NodeId, _to: NodeId, rng: &mut StdRng) -> bool {
        self.loss_probability > 0.0 && rng.random_range(0.0..1.0) < self.loss_probability
    }
}

impl Default for FaultModel {
    /// The default model is lossless.
    fn default() -> Self {
        FaultModel {
            loss_probability: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_never_drops() {
        let model = FaultModel::default();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(!model.drops(NodeId(0), NodeId(1), &mut rng));
        }
    }

    #[test]
    fn full_loss_always_drops() {
        let model = FaultModel::with_loss(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(model.drops(NodeId(0), NodeId(1), &mut rng));
        }
    }

    #[test]
    fn partial_loss_rate_is_plausible() {
        let model = FaultModel::with_loss(0.3);
        let mut rng = StdRng::seed_from_u64(99);
        let dropped = (0..10_000)
            .filter(|_| model.drops(NodeId(0), NodeId(1), &mut rng))
            .count();
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "observed loss rate {rate}");
    }

    #[test]
    fn drops_are_seed_deterministic() {
        let model = FaultModel::with_loss(0.5);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                model.drops(NodeId(0), NodeId(1), &mut r1),
                model.drops(NodeId(0), NodeId(1), &mut r2)
            );
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_invalid_probability() {
        let _ = FaultModel::with_loss(1.5);
    }
}
