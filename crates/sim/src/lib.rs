//! Deterministic discrete-event simulation kernel for geocast.
//!
//! The paper evaluated its algorithms on a multi-threaded Python
//! simulation framework. This crate is the Rust substrate replacing it: a
//! **deterministic** discrete-event simulator in which peers are
//! [`Node`]s exchanging messages under pluggable [`LatencyModel`]s and
//! [`FaultModel`]s, driven by a virtual clock. Determinism (seeded RNG,
//! total event order with sequence-number tie-breaking) makes every
//! experiment in the repository reproducible bit-for-bit — strictly
//! stronger than the original framework, and the paper's metrics
//! (topology shape, message counts) do not depend on wall-clock
//! interleavings.
//!
//! Multi-threading is preserved where it matters for throughput: the
//! [`runner::ParallelRunner`] fans independent seeded simulations out
//! across CPU cores.
//!
//! # Example
//!
//! ```
//! use geocast_sim::{Message, Node, NodeId, Context, Simulation, SimDuration};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl Message for Ping {
//!     fn tag(&self) -> &'static str { "ping" }
//! }
//!
//! /// Forwards a token around a ring until its TTL expires.
//! struct RingNode { next: NodeId }
//! impl Node for RingNode {
//!     type Msg = Ping;
//!     fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
//!         if ctx.self_id() == NodeId(0) {
//!             ctx.send(self.next, Ping(8));
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, Ping>, _from: NodeId, msg: Ping) {
//!         if msg.0 > 0 {
//!             ctx.send(self.next, Ping(msg.0 - 1));
//!         }
//!     }
//! }
//!
//! let nodes = (0..4).map(|i| RingNode { next: NodeId((i + 1) % 4) }).collect();
//! let mut sim = Simulation::builder(nodes).seed(7).build();
//! sim.run_until_quiescent();
//! assert_eq!(sim.counters().sent_with_tag("ping"), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod counters;
mod event;
mod fault;
mod latency;
mod node;
mod sim;
mod time;

pub mod detector;
pub mod runner;
pub mod workload;

pub use context::Context;
pub use counters::{Counters, TraceEntry, TraceLog};
pub use detector::{
    DetectorConfig, DetectorEvent, DetectorMsg, DetectorNode, DetectorVerdict, PeerStatus,
};
pub use event::TimerId;
pub use fault::{DropCause, FaultModel, GilbertElliott};
pub use latency::{ConstantLatency, CoordDistanceLatency, LatencyModel, UniformLatency};
pub use node::{Message, Node, NodeId};
pub use sim::{RunOutcome, Simulation, SimulationBuilder};
pub use time::{SimDuration, SimTime};
