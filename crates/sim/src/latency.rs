//! Network latency models.
//!
//! A [`LatencyModel`] decides how long a message takes from sender to
//! receiver. Latency does not change *which* topology the paper's
//! algorithms converge to (selection is driven by virtual coordinates,
//! not delay), but it does exercise message interleavings in the
//! protocols, so the integration tests run under several models.

use rand::rngs::StdRng;
use rand::Rng;

use geocast_geom::{Metric, Point, L2};

use crate::node::NodeId;
use crate::time::SimDuration;

/// Decides the delivery delay of each message.
///
/// Implementations receive the simulation RNG so random models stay
/// deterministic per seed.
pub trait LatencyModel {
    /// Delay for a message from `from` to `to`.
    fn latency(&self, from: NodeId, to: NodeId, rng: &mut StdRng) -> SimDuration;
}

/// Every message takes the same fixed delay (the default: 10 ms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantLatency(pub SimDuration);

impl Default for ConstantLatency {
    fn default() -> Self {
        ConstantLatency(SimDuration::from_millis(10))
    }
}

impl LatencyModel for ConstantLatency {
    fn latency(&self, _from: NodeId, _to: NodeId, _rng: &mut StdRng) -> SimDuration {
        self.0
    }
}

/// Message delays drawn uniformly from `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformLatency {
    min: SimDuration,
    max: SimDuration,
}

impl UniformLatency {
    /// Creates a uniform latency model over `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    #[must_use]
    pub fn new(min: SimDuration, max: SimDuration) -> Self {
        assert!(min <= max, "uniform latency requires min <= max");
        UniformLatency { min, max }
    }
}

impl LatencyModel for UniformLatency {
    fn latency(&self, _from: NodeId, _to: NodeId, rng: &mut StdRng) -> SimDuration {
        if self.min == self.max {
            return self.min;
        }
        SimDuration::from_nanos(rng.random_range(self.min.as_nanos()..=self.max.as_nanos()))
    }
}

/// Delay proportional to the Euclidean distance between node coordinates
/// (plus a fixed base), modelling overlays whose virtual coordinates
/// approximate network proximity.
#[derive(Debug, Clone)]
pub struct CoordDistanceLatency {
    positions: Vec<Point>,
    base: SimDuration,
    per_unit: SimDuration,
}

impl CoordDistanceLatency {
    /// Creates the model from per-node positions.
    ///
    /// `base` is added to every message; `per_unit` scales the Euclidean
    /// distance between endpoints.
    #[must_use]
    pub fn new(positions: Vec<Point>, base: SimDuration, per_unit: SimDuration) -> Self {
        CoordDistanceLatency {
            positions,
            base,
            per_unit,
        }
    }
}

impl LatencyModel for CoordDistanceLatency {
    /// # Panics
    ///
    /// Panics if either node has no registered position.
    fn latency(&self, from: NodeId, to: NodeId, _rng: &mut StdRng) -> SimDuration {
        let a = &self.positions[from.index()];
        let b = &self.positions[to.index()];
        let d = L2.dist(a, b);
        self.base + SimDuration::from_nanos((self.per_unit.as_nanos() as f64 * d).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_ignores_endpoints_and_rng() {
        let model = ConstantLatency(SimDuration::from_millis(5));
        let mut rng = StdRng::seed_from_u64(0);
        let d1 = model.latency(NodeId(0), NodeId(1), &mut rng);
        let d2 = model.latency(NodeId(7), NodeId(3), &mut rng);
        assert_eq!(d1, d2);
        assert_eq!(d1, SimDuration::from_millis(5));
    }

    #[test]
    fn default_constant_is_ten_ms() {
        assert_eq!(ConstantLatency::default().0, SimDuration::from_millis(10));
    }

    #[test]
    fn uniform_stays_in_bounds_and_is_seed_deterministic() {
        let model = UniformLatency::new(SimDuration::from_millis(1), SimDuration::from_millis(9));
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let d1 = model.latency(NodeId(0), NodeId(1), &mut r1);
            let d2 = model.latency(NodeId(0), NodeId(1), &mut r2);
            assert_eq!(d1, d2, "same seed, same delays");
            assert!(d1 >= SimDuration::from_millis(1) && d1 <= SimDuration::from_millis(9));
        }
    }

    #[test]
    fn uniform_degenerate_range_is_constant() {
        let d = SimDuration::from_millis(4);
        let model = UniformLatency::new(d, d);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(model.latency(NodeId(0), NodeId(1), &mut rng), d);
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn uniform_rejects_inverted_bounds() {
        let _ = UniformLatency::new(SimDuration::from_millis(2), SimDuration::from_millis(1));
    }

    #[test]
    fn coord_distance_scales_with_separation() {
        let positions = vec![
            Point::from_validated(vec![0.0, 0.0]),
            Point::from_validated(vec![3.0, 4.0]),
            Point::from_validated(vec![0.0, 1.0]),
        ];
        let model = CoordDistanceLatency::new(
            positions,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let far = model.latency(NodeId(0), NodeId(1), &mut rng);
        let near = model.latency(NodeId(0), NodeId(2), &mut rng);
        assert_eq!(far, SimDuration::from_millis(11)); // 1 + 2*5
        assert_eq!(near, SimDuration::from_millis(3)); // 1 + 2*1
        assert!(near < far);
    }
}
