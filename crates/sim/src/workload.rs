//! Membership-churn workload patterns.
//!
//! Self-organizing overlays live or die by how cheaply they absorb
//! membership change, and the interesting regimes are not uniform: real
//! deployments see *join waves* (a popular stream starts), *leave waves*
//! (it ends), *flash crowds* (a surge joins and most of it leaves again),
//! and sustained *mixed churn* at some join/leave rate ratio. This module
//! generates those shapes as protocol-agnostic operation sequences; the
//! overlay layer binds them to coordinates and victims
//! (`geocast_overlay::churn::ChurnSchedule::from_pattern`), and the
//! figure/bench harnesses replay them against the incremental churn
//! engine.
//!
//! Multi-group sessions add a second workload dimension: *which* of N
//! concurrent multicast groups an event touches. [`GroupWorkload`]
//! draws subscribe/unsubscribe/publish operations over groups whose
//! popularity follows a Zipf distribution ([`zipf_weights`] /
//! [`zipf_group_sizes`]) — the canonical topic-popularity model — and
//! the group-engine harnesses bind them to actual peers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One abstract membership operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// A new member arrives.
    Join,
    /// An existing member departs.
    Leave,
}

/// A named churn shape, expanded into a [`ChurnOp`] sequence by
/// [`ChurnPattern::ops`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnPattern {
    /// `count` joins back to back (a popular session starting up).
    JoinWave {
        /// Number of joins.
        count: usize,
    },
    /// `count` departures back to back (a session winding down).
    LeaveWave {
        /// Number of leaves.
        count: usize,
    },
    /// A surge of `surge` joins immediately followed by `exodus`
    /// departures — the flash-crowd shape (most of the crowd leaves
    /// again once the event passes).
    FlashCrowd {
        /// Joins in the surge phase.
        surge: usize,
        /// Leaves in the exodus phase (callers keep it `<= surge` plus
        /// whatever base population may shrink).
        exodus: usize,
    },
    /// `events` operations drawn i.i.d. with the given join/leave rate
    /// weights (e.g. `join_rate: 3, leave_rate: 1` models a growing
    /// system with 75% joins).
    Mixed {
        /// Total operations to draw.
        events: usize,
        /// Relative weight of joins; must not both be zero.
        join_rate: u32,
        /// Relative weight of leaves; must not both be zero.
        leave_rate: u32,
    },
}

impl ChurnPattern {
    /// Total number of operations the pattern expands to.
    #[must_use]
    pub fn len(&self) -> usize {
        match *self {
            ChurnPattern::JoinWave { count } | ChurnPattern::LeaveWave { count } => count,
            ChurnPattern::FlashCrowd { surge, exodus } => surge + exodus,
            ChurnPattern::Mixed { events, .. } => events,
        }
    }

    /// `true` if the pattern expands to no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of joins the pattern expands to (exact for the wave and
    /// flash-crowd shapes; for `Mixed` it depends on the seed).
    #[must_use]
    pub fn join_count(&self, seed: u64) -> usize {
        self.ops(seed)
            .iter()
            .filter(|op| matches!(op, ChurnOp::Join))
            .count()
    }

    /// Expands the pattern into its operation sequence, reproducibly
    /// per seed (`Mixed` draws from a seeded RNG; the other shapes are
    /// deterministic and ignore the seed).
    ///
    /// # Panics
    ///
    /// Panics for `Mixed` when both rates are zero.
    #[must_use]
    pub fn ops(&self, seed: u64) -> Vec<ChurnOp> {
        match *self {
            ChurnPattern::JoinWave { count } => vec![ChurnOp::Join; count],
            ChurnPattern::LeaveWave { count } => vec![ChurnOp::Leave; count],
            ChurnPattern::FlashCrowd { surge, exodus } => {
                let mut ops = vec![ChurnOp::Join; surge];
                ops.resize(surge + exodus, ChurnOp::Leave);
                ops
            }
            ChurnPattern::Mixed {
                events,
                join_rate,
                leave_rate,
            } => {
                assert!(
                    join_rate > 0 || leave_rate > 0,
                    "mixed churn needs a non-zero rate"
                );
                let total = u64::from(join_rate) + u64::from(leave_rate);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x6368_7572_6e21_0000); // "churn!"
                (0..events)
                    .map(|_| {
                        if rng.random_range(0..total) < u64::from(join_rate) {
                            ChurnOp::Join
                        } else {
                            ChurnOp::Leave
                        }
                    })
                    .collect()
            }
        }
    }
}

impl std::fmt::Display for ChurnPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ChurnPattern::JoinWave { count } => write!(f, "join-wave({count})"),
            ChurnPattern::LeaveWave { count } => write!(f, "leave-wave({count})"),
            ChurnPattern::FlashCrowd { surge, exodus } => {
                write!(f, "flash-crowd(+{surge}/-{exodus})")
            }
            ChurnPattern::Mixed {
                events,
                join_rate,
                leave_rate,
            } => write!(f, "mixed({events} @ {join_rate}:{leave_rate})"),
        }
    }
}

/// How a scenario places group members over the coordinate space — the
/// knob that decides whether the member-induced subgraph is connected
/// (clustered: sensor fields, regional channels) or full of strandings
/// the relay-graft layer must close (scattered: interest-based topics
/// with subscribers spread uniformly over the overlay). Coverage-vs-
/// scatter sweeps run both and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MembershipPlacement {
    /// Members are drawn uniformly at random from the live population —
    /// the adversarial shape for member-to-member delegation.
    #[default]
    Scattered,
    /// Each group subscribes a random center peer plus its nearest live
    /// peers — densely interconnected member subgraphs.
    Clustered,
}

impl std::fmt::Display for MembershipPlacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipPlacement::Scattered => write!(f, "scattered"),
            MembershipPlacement::Clustered => write!(f, "clustered"),
        }
    }
}

/// One abstract multi-group session operation. Like [`ChurnOp`], group
/// operations are protocol-agnostic: they name groups by dense index
/// and leave the choice of *which peer* subscribes/unsubscribes to the
/// layer that binds the workload to a population (the group engine
/// harnesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupOp {
    /// A peer subscribes to the group.
    Subscribe {
        /// Dense group index.
        group: usize,
    },
    /// A member unsubscribes from the group.
    Unsubscribe {
        /// Dense group index.
        group: usize,
    },
    /// The group's source publishes one payload.
    Publish {
        /// Dense group index.
        group: usize,
    },
}

impl GroupOp {
    /// The group the operation targets.
    #[must_use]
    pub fn group(&self) -> usize {
        match *self {
            GroupOp::Subscribe { group }
            | GroupOp::Unsubscribe { group }
            | GroupOp::Publish { group } => group,
        }
    }
}

/// Zipf popularity weights over `groups` ranks: weight of rank `k`
/// (0-based) is `1 / (k + 1)^exponent`, normalized to sum to 1. The
/// classic model for topic/channel popularity — a few huge groups, a
/// long tail of small ones. `exponent = 0` degenerates to uniform.
///
/// # Panics
///
/// Panics if `groups == 0` or `exponent` is negative or non-finite.
#[must_use]
pub fn zipf_weights(groups: usize, exponent: f64) -> Vec<f64> {
    assert!(groups > 0, "at least one group required");
    assert!(
        exponent >= 0.0 && exponent.is_finite(),
        "exponent must be finite and non-negative"
    );
    let raw: Vec<f64> = (0..groups)
        .map(|k| 1.0 / ((k + 1) as f64).powf(exponent))
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Zipf-proportional initial group sizes: `subscriptions` memberships
/// distributed over `groups` groups by [`zipf_weights`], every group
/// getting at least one member (the head of the distribution absorbs
/// the rounding).
///
/// # Panics
///
/// Panics if `subscriptions < groups` (someone would be empty) or the
/// weight preconditions fail.
#[must_use]
pub fn zipf_group_sizes(groups: usize, subscriptions: usize, exponent: f64) -> Vec<usize> {
    assert!(
        subscriptions >= groups,
        "need at least one subscription per group"
    );
    let weights = zipf_weights(groups, exponent);
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((subscriptions as f64 * w).floor() as usize).max(1))
        .collect();
    // Reconcile rounding: a shortfall goes to the most popular group; a
    // debt (the `.max(1)` floors over-assigned) is clawed back head
    // first, never below one member. Σ(size − 1) = assigned − groups ≥
    // assigned − subscriptions, so the debt always drains and the sizes
    // sum to exactly `subscriptions`.
    let assigned: usize = sizes.iter().sum();
    if assigned < subscriptions {
        sizes[0] += subscriptions - assigned;
    } else {
        let mut debt = assigned - subscriptions;
        for size in &mut sizes {
            let cut = (*size - 1).min(debt);
            *size -= cut;
            debt -= cut;
            if debt == 0 {
                break;
            }
        }
    }
    sizes
}

/// A multi-group session workload: `events` operations over `groups`
/// concurrent groups whose *popularity* follows a Zipf distribution —
/// both which group an event targets and the subscribe/unsubscribe/
/// publish mix are drawn reproducibly per seed.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupWorkload {
    /// Number of concurrent groups.
    pub groups: usize,
    /// Zipf popularity exponent (`~1.0` is the classic shape; `0.0` is
    /// uniform).
    pub exponent: f64,
    /// Total operations to draw.
    pub events: usize,
    /// Relative weight of subscribes.
    pub subscribe_weight: u32,
    /// Relative weight of unsubscribes.
    pub unsubscribe_weight: u32,
    /// Relative weight of publishes (per-group publish rate follows the
    /// same Zipf popularity: hot groups publish more).
    pub publish_weight: u32,
}

impl GroupWorkload {
    /// Expands the workload into its operation sequence, reproducibly
    /// per seed.
    ///
    /// # Panics
    ///
    /// Panics if all three weights are zero or the Zipf preconditions
    /// fail.
    #[must_use]
    pub fn ops(&self, seed: u64) -> Vec<GroupOp> {
        let total = u64::from(self.subscribe_weight)
            + u64::from(self.unsubscribe_weight)
            + u64::from(self.publish_weight);
        assert!(total > 0, "group workload needs a non-zero weight");
        let weights = zipf_weights(self.groups, self.exponent);
        // Cumulative distribution for inverse-transform sampling.
        let cdf: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6772_6f75_7073_2100); // "groups!"
        (0..self.events)
            .map(|_| {
                let u: f64 = rng.random_range(0.0..1.0);
                let group = cdf.partition_point(|&c| c < u).min(self.groups - 1);
                let pick = rng.random_range(0..total);
                if pick < u64::from(self.subscribe_weight) {
                    GroupOp::Subscribe { group }
                } else if pick
                    < u64::from(self.subscribe_weight) + u64::from(self.unsubscribe_weight)
                {
                    GroupOp::Unsubscribe { group }
                } else {
                    GroupOp::Publish { group }
                }
            })
            .collect()
    }
}

impl std::fmt::Display for GroupWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "groups({} @ zipf {:.2}, {} events, {}:{}:{})",
            self.groups,
            self.exponent,
            self.events,
            self.subscribe_weight,
            self.unsubscribe_weight,
            self.publish_weight
        )
    }
}

/// A publish-rate workload: `ticks` rounds of `payloads_per_tick`
/// payloads, each payload landing on a group drawn from the Zipf
/// popularity distribution — the data-plane companion of
/// [`GroupWorkload`]'s membership stream. `exponent` is the hot-group
/// skew knob: `0.0` spreads payloads uniformly (batches stay shallow),
/// higher exponents pile them onto the head groups (deep batches, the
/// regime the flush engine collapses).
#[derive(Debug, Clone, PartialEq)]
pub struct PublishWorkload {
    /// Number of concurrent groups payloads can target.
    pub groups: usize,
    /// Zipf popularity exponent — the hot-group skew knob.
    pub exponent: f64,
    /// Flush rounds to generate.
    pub ticks: usize,
    /// Payloads drawn per round.
    pub payloads_per_tick: usize,
}

impl PublishWorkload {
    /// Per-group payload counts for one tick, reproducible per
    /// `(seed, tick)`: `payloads_per_tick` draws from the Zipf
    /// distribution, returned as a `groups`-long histogram ready to
    /// feed a batch queue.
    ///
    /// # Panics
    ///
    /// Panics if the Zipf preconditions fail (`groups == 0`, bad
    /// exponent).
    #[must_use]
    pub fn tick_payloads(&self, seed: u64, tick: usize) -> Vec<usize> {
        let weights = zipf_weights(self.groups, self.exponent);
        let cdf: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let tick_seed = seed
            ^ 0x7075_626c_6973_6821 // "publish!"
            ^ (tick as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(tick_seed);
        let mut counts = vec![0usize; self.groups];
        for _ in 0..self.payloads_per_tick {
            let u: f64 = rng.random_range(0.0..1.0);
            let group = cdf.partition_point(|&c| c < u).min(self.groups - 1);
            counts[group] += 1;
        }
        counts
    }

    /// Total payloads over the whole workload.
    #[must_use]
    pub fn total_payloads(&self) -> usize {
        self.ticks * self.payloads_per_tick
    }
}

impl std::fmt::Display for PublishWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "publish({} groups @ zipf {:.2}, {} ticks × {} payloads)",
            self.groups, self.exponent, self.ticks, self.payloads_per_tick
        )
    }
}

/// Picks `count` distinct victims for a crash wave out of `0..n`,
/// reproducibly per seed, never picking anything in `exclude` (group
/// roots, the observer node, ...). Returns the victims sorted; if fewer
/// than `count` candidates remain after exclusion, all of them are
/// returned.
#[must_use]
pub fn crash_wave_victims(n: usize, count: usize, exclude: &[usize], seed: u64) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).filter(|i| !exclude.contains(i)).collect();
    let picks = count.min(pool.len());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6372_6173_6821); // "crash!"
                                                                  // Partial Fisher–Yates: the first `picks` slots end up uniformly drawn.
    for i in 0..picks {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(picks);
    pool.sort_unstable();
    pool
}

/// A log consumer's catch-up cadence over an event stream: fire every
/// `every`-th event, phase-shifted by `offset`.
///
/// Churn harnesses drive several independent consumers (gossip sync,
/// group repair, data-plane flush) from one event sequence; giving each
/// a `ConsumerCadence` with a different period/phase exercises the
/// laggard paths (batched replay, eviction-horizon resync) without any
/// consumer-specific scheduling code in the harness loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsumerCadence {
    /// Fire on every `every`-th event (must be ≥ 1).
    pub every: usize,
    /// Phase shift: the first firing lands on event `offset % every`.
    pub offset: usize,
}

impl ConsumerCadence {
    /// A cadence firing on every event — lock-step consumption.
    #[must_use]
    pub fn every_event() -> Self {
        ConsumerCadence {
            every: 1,
            offset: 0,
        }
    }

    /// A cadence firing every `every`-th event, in phase.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    #[must_use]
    pub fn every_nth(every: usize) -> Self {
        assert!(every >= 1, "cadence period must be at least 1");
        ConsumerCadence { every, offset: 0 }
    }

    /// `true` when the consumer catches up after event `event_idx`
    /// (0-based).
    #[must_use]
    pub fn fires_at(&self, event_idx: usize) -> bool {
        event_idx % self.every == self.offset % self.every
    }

    /// How many times the cadence fires over `events` events.
    #[must_use]
    pub fn firings_in(&self, events: usize) -> usize {
        (0..events).filter(|&i| self.fires_at(i)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_wave_victims_are_deterministic_and_respect_exclusions() {
        let a = crash_wave_victims(50, 8, &[0, 3], 42);
        let b = crash_wave_victims(50, 8, &[0, 3], 42);
        assert_eq!(a, b, "same seed must pick the same wave");
        assert_eq!(a.len(), 8);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "victims come sorted");
        assert!(!a.contains(&0) && !a.contains(&3), "exclusions are honored");
        let c = crash_wave_victims(50, 8, &[0, 3], 43);
        assert_ne!(a, c, "a different seed must shuffle the wave");
        // Capped when the pool is smaller than the request.
        let small = crash_wave_victims(4, 10, &[1], 7);
        assert_eq!(small, vec![0, 2, 3]);
    }

    #[test]
    fn consumer_cadence_fires_periodically_with_phase() {
        let lockstep = ConsumerCadence::every_event();
        assert!((0..10).all(|i| lockstep.fires_at(i)));
        let third = ConsumerCadence::every_nth(3);
        assert_eq!(
            (0..9).filter(|&i| third.fires_at(i)).collect::<Vec<_>>(),
            vec![0, 3, 6]
        );
        let shifted = ConsumerCadence {
            every: 3,
            offset: 2,
        };
        assert_eq!(
            (0..9).filter(|&i| shifted.fires_at(i)).collect::<Vec<_>>(),
            vec![2, 5, 8]
        );
        assert_eq!(third.firings_in(10), 4);
        assert_eq!(shifted.firings_in(10), 3);
    }

    #[test]
    #[should_panic(expected = "cadence period must be at least 1")]
    fn zero_period_cadence_is_rejected() {
        let _ = ConsumerCadence::every_nth(0);
    }

    #[test]
    fn waves_are_pure() {
        assert!(ChurnPattern::JoinWave { count: 5 }
            .ops(1)
            .iter()
            .all(|op| *op == ChurnOp::Join));
        assert!(ChurnPattern::LeaveWave { count: 4 }
            .ops(1)
            .iter()
            .all(|op| *op == ChurnOp::Leave));
    }

    #[test]
    fn flash_crowd_surges_then_drains() {
        let ops = ChurnPattern::FlashCrowd {
            surge: 3,
            exodus: 2,
        }
        .ops(9);
        assert_eq!(
            ops,
            vec![
                ChurnOp::Join,
                ChurnOp::Join,
                ChurnOp::Join,
                ChurnOp::Leave,
                ChurnOp::Leave
            ]
        );
    }

    #[test]
    fn mixed_respects_rates_and_seed() {
        let pattern = ChurnPattern::Mixed {
            events: 1000,
            join_rate: 3,
            leave_rate: 1,
        };
        let ops = pattern.ops(7);
        assert_eq!(ops, pattern.ops(7), "same seed, same sequence");
        let joins = ops.iter().filter(|op| matches!(op, ChurnOp::Join)).count();
        assert!(
            (650..850).contains(&joins),
            "3:1 rates should yield ~750 joins, got {joins}"
        );
        assert_ne!(ops, pattern.ops(8), "different seed should reshuffle");
    }

    #[test]
    fn lengths_add_up() {
        assert_eq!(ChurnPattern::JoinWave { count: 7 }.len(), 7);
        assert_eq!(
            ChurnPattern::FlashCrowd {
                surge: 4,
                exodus: 3
            }
            .len(),
            7
        );
        assert!(ChurnPattern::Mixed {
            events: 0,
            join_rate: 1,
            leave_rate: 1
        }
        .is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero rate")]
    fn zero_rates_are_rejected() {
        let _ = ChurnPattern::Mixed {
            events: 1,
            join_rate: 0,
            leave_rate: 0,
        }
        .ops(0);
    }

    #[test]
    fn zipf_weights_are_normalized_and_monotone() {
        let w = zipf_weights(16, 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1], "popularity must strictly decay");
        }
        // Exponent 0 is uniform.
        let u = zipf_weights(5, 0.0);
        for w in &u {
            assert!((w - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sizes_conserve_subscriptions_and_never_empty() {
        // (50, 50, 3.0) and (100, 100, 2.0) produce a rounding debt
        // larger than the head group alone can absorb — the claw-back
        // must spread it without emptying anyone.
        for (groups, subs, s) in [
            (8usize, 100usize, 1.0f64),
            (12, 12, 2.0),
            (5, 1000, 0.5),
            (50, 50, 3.0),
            (100, 100, 2.0),
        ] {
            let sizes = zipf_group_sizes(groups, subs, s);
            assert_eq!(sizes.len(), groups);
            assert_eq!(sizes.iter().sum::<usize>(), subs, "{groups}/{subs}/{s}");
            assert!(sizes.iter().all(|&sz| sz >= 1));
            assert!(sizes[0] >= sizes[groups - 1], "head outranks tail");
        }
    }

    #[test]
    #[should_panic(expected = "one subscription per group")]
    fn zipf_sizes_reject_too_few_subscriptions() {
        let _ = zipf_group_sizes(10, 5, 1.0);
    }

    #[test]
    fn group_ops_follow_popularity_and_seed() {
        let wl = GroupWorkload {
            groups: 10,
            exponent: 1.0,
            events: 3000,
            subscribe_weight: 2,
            unsubscribe_weight: 1,
            publish_weight: 3,
        };
        let ops = wl.ops(5);
        assert_eq!(ops.len(), 3000);
        assert_eq!(ops, wl.ops(5), "same seed, same sequence");
        assert_ne!(ops, wl.ops(6), "different seed reshuffles");
        // Group 0 (the Zipf head) must dominate the tail group.
        let hits = |g: usize| ops.iter().filter(|op| op.group() == g).count();
        assert!(hits(0) > 4 * hits(9), "head {} tail {}", hits(0), hits(9));
        // All three op kinds occur at these weights.
        assert!(ops.iter().any(|op| matches!(op, GroupOp::Subscribe { .. })));
        assert!(ops
            .iter()
            .any(|op| matches!(op, GroupOp::Unsubscribe { .. })));
        assert!(ops.iter().any(|op| matches!(op, GroupOp::Publish { .. })));
    }

    #[test]
    #[should_panic(expected = "non-zero weight")]
    fn zero_group_weights_are_rejected() {
        let _ = GroupWorkload {
            groups: 2,
            exponent: 1.0,
            events: 1,
            subscribe_weight: 0,
            unsubscribe_weight: 0,
            publish_weight: 0,
        }
        .ops(0);
    }

    #[test]
    fn publish_workload_is_deterministic_and_skews_to_the_head() {
        let wl = PublishWorkload {
            groups: 16,
            exponent: 1.5,
            ticks: 10,
            payloads_per_tick: 64,
        };
        assert_eq!(wl.total_payloads(), 640);
        // Reproducible per (seed, tick); different ticks draw fresh.
        assert_eq!(wl.tick_payloads(7, 3), wl.tick_payloads(7, 3));
        assert_ne!(wl.tick_payloads(7, 3), wl.tick_payloads(8, 3));
        assert_ne!(wl.tick_payloads(7, 3), wl.tick_payloads(7, 4));
        // Every tick conserves its payload budget.
        let mut head = 0usize;
        let mut tail = 0usize;
        for tick in 0..wl.ticks {
            let counts = wl.tick_payloads(42, tick);
            assert_eq!(counts.len(), 16);
            assert_eq!(counts.iter().sum::<usize>(), 64);
            head += counts[0];
            tail += counts[15];
        }
        assert!(
            head > 8 * tail.max(1),
            "zipf 1.5 must pile payloads on the head: head {head}, tail {tail}"
        );
        // Exponent 0 spreads them out: no group dominates.
        let flat = PublishWorkload {
            groups: 16,
            exponent: 0.0,
            ticks: 1,
            payloads_per_tick: 1600,
        };
        let counts = flat.tick_payloads(42, 0);
        assert!(counts.iter().all(|&c| c > 50 && c < 150), "{counts:?}");
        assert_eq!(
            wl.to_string(),
            "publish(16 groups @ zipf 1.50, 10 ticks × 64 payloads)"
        );
    }

    #[test]
    fn group_workload_displays() {
        let wl = GroupWorkload {
            groups: 4,
            exponent: 1.0,
            events: 9,
            subscribe_weight: 1,
            unsubscribe_weight: 2,
            publish_weight: 3,
        };
        assert_eq!(wl.to_string(), "groups(4 @ zipf 1.00, 9 events, 1:2:3)");
    }

    #[test]
    fn display_names_patterns() {
        assert_eq!(
            ChurnPattern::JoinWave { count: 2 }.to_string(),
            "join-wave(2)"
        );
        assert_eq!(
            ChurnPattern::Mixed {
                events: 9,
                join_rate: 2,
                leave_rate: 1
            }
            .to_string(),
            "mixed(9 @ 2:1)"
        );
    }
}
