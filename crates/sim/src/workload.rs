//! Membership-churn workload patterns.
//!
//! Self-organizing overlays live or die by how cheaply they absorb
//! membership change, and the interesting regimes are not uniform: real
//! deployments see *join waves* (a popular stream starts), *leave waves*
//! (it ends), *flash crowds* (a surge joins and most of it leaves again),
//! and sustained *mixed churn* at some join/leave rate ratio. This module
//! generates those shapes as protocol-agnostic operation sequences; the
//! overlay layer binds them to coordinates and victims
//! (`geocast_overlay::churn::ChurnSchedule::from_pattern`), and the
//! figure/bench harnesses replay them against the incremental churn
//! engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One abstract membership operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// A new member arrives.
    Join,
    /// An existing member departs.
    Leave,
}

/// A named churn shape, expanded into a [`ChurnOp`] sequence by
/// [`ChurnPattern::ops`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnPattern {
    /// `count` joins back to back (a popular session starting up).
    JoinWave {
        /// Number of joins.
        count: usize,
    },
    /// `count` departures back to back (a session winding down).
    LeaveWave {
        /// Number of leaves.
        count: usize,
    },
    /// A surge of `surge` joins immediately followed by `exodus`
    /// departures — the flash-crowd shape (most of the crowd leaves
    /// again once the event passes).
    FlashCrowd {
        /// Joins in the surge phase.
        surge: usize,
        /// Leaves in the exodus phase (callers keep it `<= surge` plus
        /// whatever base population may shrink).
        exodus: usize,
    },
    /// `events` operations drawn i.i.d. with the given join/leave rate
    /// weights (e.g. `join_rate: 3, leave_rate: 1` models a growing
    /// system with 75% joins).
    Mixed {
        /// Total operations to draw.
        events: usize,
        /// Relative weight of joins; must not both be zero.
        join_rate: u32,
        /// Relative weight of leaves; must not both be zero.
        leave_rate: u32,
    },
}

impl ChurnPattern {
    /// Total number of operations the pattern expands to.
    #[must_use]
    pub fn len(&self) -> usize {
        match *self {
            ChurnPattern::JoinWave { count } | ChurnPattern::LeaveWave { count } => count,
            ChurnPattern::FlashCrowd { surge, exodus } => surge + exodus,
            ChurnPattern::Mixed { events, .. } => events,
        }
    }

    /// `true` if the pattern expands to no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of joins the pattern expands to (exact for the wave and
    /// flash-crowd shapes; for `Mixed` it depends on the seed).
    #[must_use]
    pub fn join_count(&self, seed: u64) -> usize {
        self.ops(seed)
            .iter()
            .filter(|op| matches!(op, ChurnOp::Join))
            .count()
    }

    /// Expands the pattern into its operation sequence, reproducibly
    /// per seed (`Mixed` draws from a seeded RNG; the other shapes are
    /// deterministic and ignore the seed).
    ///
    /// # Panics
    ///
    /// Panics for `Mixed` when both rates are zero.
    #[must_use]
    pub fn ops(&self, seed: u64) -> Vec<ChurnOp> {
        match *self {
            ChurnPattern::JoinWave { count } => vec![ChurnOp::Join; count],
            ChurnPattern::LeaveWave { count } => vec![ChurnOp::Leave; count],
            ChurnPattern::FlashCrowd { surge, exodus } => {
                let mut ops = vec![ChurnOp::Join; surge];
                ops.resize(surge + exodus, ChurnOp::Leave);
                ops
            }
            ChurnPattern::Mixed {
                events,
                join_rate,
                leave_rate,
            } => {
                assert!(
                    join_rate > 0 || leave_rate > 0,
                    "mixed churn needs a non-zero rate"
                );
                let total = u64::from(join_rate) + u64::from(leave_rate);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x6368_7572_6e21_0000); // "churn!"
                (0..events)
                    .map(|_| {
                        if rng.random_range(0..total) < u64::from(join_rate) {
                            ChurnOp::Join
                        } else {
                            ChurnOp::Leave
                        }
                    })
                    .collect()
            }
        }
    }
}

impl std::fmt::Display for ChurnPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ChurnPattern::JoinWave { count } => write!(f, "join-wave({count})"),
            ChurnPattern::LeaveWave { count } => write!(f, "leave-wave({count})"),
            ChurnPattern::FlashCrowd { surge, exodus } => {
                write!(f, "flash-crowd(+{surge}/-{exodus})")
            }
            ChurnPattern::Mixed {
                events,
                join_rate,
                leave_rate,
            } => write!(f, "mixed({events} @ {join_rate}:{leave_rate})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waves_are_pure() {
        assert!(ChurnPattern::JoinWave { count: 5 }
            .ops(1)
            .iter()
            .all(|op| *op == ChurnOp::Join));
        assert!(ChurnPattern::LeaveWave { count: 4 }
            .ops(1)
            .iter()
            .all(|op| *op == ChurnOp::Leave));
    }

    #[test]
    fn flash_crowd_surges_then_drains() {
        let ops = ChurnPattern::FlashCrowd {
            surge: 3,
            exodus: 2,
        }
        .ops(9);
        assert_eq!(
            ops,
            vec![
                ChurnOp::Join,
                ChurnOp::Join,
                ChurnOp::Join,
                ChurnOp::Leave,
                ChurnOp::Leave
            ]
        );
    }

    #[test]
    fn mixed_respects_rates_and_seed() {
        let pattern = ChurnPattern::Mixed {
            events: 1000,
            join_rate: 3,
            leave_rate: 1,
        };
        let ops = pattern.ops(7);
        assert_eq!(ops, pattern.ops(7), "same seed, same sequence");
        let joins = ops.iter().filter(|op| matches!(op, ChurnOp::Join)).count();
        assert!(
            (650..850).contains(&joins),
            "3:1 rates should yield ~750 joins, got {joins}"
        );
        assert_ne!(ops, pattern.ops(8), "different seed should reshuffle");
    }

    #[test]
    fn lengths_add_up() {
        assert_eq!(ChurnPattern::JoinWave { count: 7 }.len(), 7);
        assert_eq!(
            ChurnPattern::FlashCrowd {
                surge: 4,
                exodus: 3
            }
            .len(),
            7
        );
        assert!(ChurnPattern::Mixed {
            events: 0,
            join_rate: 1,
            leave_rate: 1
        }
        .is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero rate")]
    fn zero_rates_are_rejected() {
        let _ = ChurnPattern::Mixed {
            events: 1,
            join_rate: 0,
            leave_rate: 0,
        }
        .ops(0);
    }

    #[test]
    fn display_names_patterns() {
        assert_eq!(
            ChurnPattern::JoinWave { count: 2 }.to_string(),
            "join-wave(2)"
        );
        assert_eq!(
            ChurnPattern::Mixed {
                events: 9,
                join_rate: 2,
                leave_rate: 1
            }
            .to_string(),
            "mixed(9 @ 2:1)"
        );
    }
}
