//! SWIM-style failure detection.
//!
//! The repository's repair machinery was originally driven by an
//! omniscient oracle: departures were visible to every component the
//! instant they happened. [`DetectorNode`] replaces that omniscience with
//! the standard probe/ack machinery of SWIM-family detectors, run as a
//! plane of [`crate::Node`]s over the same simulator the multicast
//! protocols use:
//!
//! 1. **Direct probe.** Every `probe_period` a node picks the next peer
//!    (round-robin, skipping backed-off and dead peers) and sends a
//!    `Ping`; the peer answers `Ack`.
//! 2. **Indirect probe.** If the `Ack` misses its `probe_timeout`, the
//!    prober asks `indirect_peers` random helpers to ping the target on
//!    its behalf (`PingReq`); a helper that hears back forwards an
//!    `IndirectAck`.
//! 3. **Suspicion.** If the indirect round also times out, the target
//!    becomes *suspect* and a `suspicion_timeout` starts. Any message
//!    subsequently heard from (or indirectly about) the suspect refutes
//!    the suspicion; otherwise the suspect is declared **dead**.
//!
//! Failed probe rounds back off exponentially per peer (capped), so a
//! dead or partitioned peer is not hammered every period. Verdicts are
//! recorded as [`DetectorEvent`]s with virtual timestamps; experiment
//! harnesses (see the core crate's `detect` module) consume `Dead`
//! verdicts to drive topology removal and tree repair, and measure
//! detection latency and false-positive rates off the event log.
//!
//! Dead verdicts are deliberately sticky: the overlay treats removal as
//! crash-stop (rejoin means a fresh join), so the detector has no
//! incarnation numbers — a refutation is only possible while a peer is
//! merely suspected.

use std::collections::BTreeMap;

use rand::Rng;

use crate::context::Context;
use crate::event::TimerId;
use crate::node::{Message, Node, NodeId};
use crate::time::{SimDuration, SimTime};

/// Tuning knobs of the SWIM-style detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Interval between probe rounds of one node.
    pub probe_period: SimDuration,
    /// How long to wait for a direct `Ack` (and then again for the
    /// indirect round) before escalating.
    pub probe_timeout: SimDuration,
    /// Number of helpers asked to ping indirectly on a direct miss.
    pub indirect_peers: usize,
    /// How long a peer stays suspect before it is declared dead.
    pub suspicion_timeout: SimDuration,
    /// Cap on the exponential backoff applied to repeatedly failing
    /// peers: the probe interval for a peer with `m` consecutive misses
    /// is `probe_period << min(m, max_backoff)`.
    pub max_backoff: u32,
}

impl Default for DetectorConfig {
    /// Defaults sized for the repository's coordinate-derived latencies
    /// (RTTs well under 100 ms): 500 ms probe period, 150 ms probe
    /// timeout, 3 indirect helpers, 2 s suspicion, backoff cap 4.
    fn default() -> Self {
        DetectorConfig {
            probe_period: SimDuration::from_millis(500),
            probe_timeout: SimDuration::from_millis(150),
            indirect_peers: 3,
            suspicion_timeout: SimDuration::from_secs(2),
            max_backoff: 4,
        }
    }
}

/// Probe-plane traffic.
#[derive(Debug, Clone)]
pub enum DetectorMsg {
    /// Direct liveness probe.
    Ping {
        /// Prober-local probe sequence number, echoed by the ack.
        seq: u64,
    },
    /// Answer to a [`DetectorMsg::Ping`].
    Ack {
        /// The probe sequence number being answered.
        seq: u64,
    },
    /// "Please ping `target` for me" — the indirect probe request.
    PingReq {
        /// The peer whose liveness is in question.
        target: NodeId,
        /// The requester's probe sequence number.
        seq: u64,
    },
    /// A helper's report that `target` answered its relayed ping.
    IndirectAck {
        /// The peer confirmed alive.
        target: NodeId,
        /// The requester's probe sequence number.
        seq: u64,
    },
}

impl Message for DetectorMsg {
    fn tag(&self) -> &'static str {
        match self {
            DetectorMsg::Ping { .. } => "ping",
            DetectorMsg::Ack { .. } => "ack",
            DetectorMsg::PingReq { .. } => "ping-req",
            DetectorMsg::IndirectAck { .. } => "ind-ack",
        }
    }
}

/// Liveness verdict a node currently holds about a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerStatus {
    /// No outstanding evidence of failure.
    Alive,
    /// A probe round failed; the suspicion timer is running.
    Suspect,
    /// The suspicion timer expired without refutation.
    Dead,
}

/// What a [`DetectorEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorVerdict {
    /// A peer transitioned alive → suspect.
    Suspect,
    /// A suspect was heard from again before the timeout.
    Refute,
    /// A suspect's timer expired: the peer is declared dead.
    Dead,
}

/// A timestamped state-machine transition, the detector's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorEvent {
    /// Virtual time of the transition.
    pub at: SimTime,
    /// The peer the verdict concerns.
    pub peer: NodeId,
    /// The transition.
    pub kind: DetectorVerdict,
}

#[derive(Debug)]
struct PeerRecord {
    status: PeerStatus,
    /// Consecutive failed probe rounds (the backoff exponent).
    misses: u32,
    /// Earliest time this peer may be probed again.
    next_probe_at: SimTime,
    suspicion_timer: Option<TimerId>,
}

impl PeerRecord {
    fn new() -> Self {
        PeerRecord {
            status: PeerStatus::Alive,
            misses: 0,
            next_probe_at: SimTime::ZERO,
            suspicion_timer: None,
        }
    }
}

#[derive(Debug)]
struct Probe {
    target: NodeId,
}

#[derive(Debug)]
struct RelayProbe {
    requester: NodeId,
    original_seq: u64,
    target: NodeId,
}

#[derive(Debug)]
enum TimerKind {
    ProbeTick,
    ProbeTimeout { seq: u64 },
    IndirectTimeout { seq: u64 },
    Suspicion { peer: NodeId },
}

/// One participant in the failure-detection plane.
///
/// All bookkeeping uses ordered maps so behaviour is a pure function of
/// the seed — a detector run replays bit-for-bit like every other
/// simulation in this repository.
#[derive(Debug)]
pub struct DetectorNode {
    config: DetectorConfig,
    /// Membership view (every node in the plane; self is filtered out on
    /// start).
    peers: Vec<NodeId>,
    records: BTreeMap<NodeId, PeerRecord>,
    cursor: usize,
    next_seq: u64,
    probes: BTreeMap<u64, Probe>,
    relays: BTreeMap<u64, RelayProbe>,
    timers: BTreeMap<TimerId, TimerKind>,
    events: Vec<DetectorEvent>,
}

impl DetectorNode {
    /// Creates a detector over the given membership (the node's own id
    /// may be included; it is removed when the simulation starts).
    #[must_use]
    pub fn new(members: Vec<NodeId>, config: DetectorConfig) -> Self {
        DetectorNode {
            config,
            peers: members,
            records: BTreeMap::new(),
            cursor: 0,
            next_seq: 0,
            probes: BTreeMap::new(),
            relays: BTreeMap::new(),
            timers: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// This node's current verdict on `peer` (`Alive` if unknown).
    #[must_use]
    pub fn status_of(&self, peer: NodeId) -> PeerStatus {
        self.records
            .get(&peer)
            .map_or(PeerStatus::Alive, |r| r.status)
    }

    /// Every state transition this node has recorded, in order.
    #[must_use]
    pub fn events(&self) -> &[DetectorEvent] {
        &self.events
    }

    /// Peers currently suspected (sorted).
    #[must_use]
    pub fn suspected_peers(&self) -> Vec<NodeId> {
        self.with_status(PeerStatus::Suspect)
    }

    /// Peers declared dead (sorted).
    #[must_use]
    pub fn dead_peers(&self) -> Vec<NodeId> {
        self.with_status(PeerStatus::Dead)
    }

    fn with_status(&self, status: PeerStatus) -> Vec<NodeId> {
        self.records
            .iter()
            .filter(|(_, r)| r.status == status)
            .map(|(&p, _)| p)
            .collect()
    }

    fn arm(&mut self, ctx: &mut Context<'_, DetectorMsg>, delay: SimDuration, kind: TimerKind) {
        let id = ctx.set_timer(delay);
        self.timers.insert(id, kind);
    }

    /// Picks the next probe target: round-robin over the membership,
    /// skipping dead and backed-off peers.
    fn next_target(&mut self, now: SimTime) -> Option<NodeId> {
        let n = self.peers.len();
        for step in 0..n {
            let idx = (self.cursor + step) % n;
            let peer = self.peers[idx];
            let record = self.records.get(&peer).expect("records cover membership");
            if record.status != PeerStatus::Dead && record.next_probe_at <= now {
                self.cursor = (idx + 1) % n;
                return Some(peer);
            }
        }
        None
    }

    /// Evidence that `peer` is alive: reset backoff, refute suspicion.
    fn confirm(&mut self, ctx: &mut Context<'_, DetectorMsg>, peer: NodeId) {
        let Some(record) = self.records.get_mut(&peer) else {
            return;
        };
        record.misses = 0;
        if record.status == PeerStatus::Suspect {
            record.status = PeerStatus::Alive;
            record.next_probe_at = ctx.now();
            if let Some(timer) = record.suspicion_timer.take() {
                ctx.cancel_timer(timer);
                self.timers.remove(&timer);
            }
            self.events.push(DetectorEvent {
                at: ctx.now(),
                peer,
                kind: DetectorVerdict::Refute,
            });
        }
    }

    /// A full probe round (direct + indirect) produced no answer.
    fn probe_round_failed(&mut self, ctx: &mut Context<'_, DetectorMsg>, target: NodeId) {
        let now = ctx.now();
        let (suspicion_timeout, probe_period, max_backoff) = (
            self.config.suspicion_timeout,
            self.config.probe_period,
            self.config.max_backoff,
        );
        let Some(record) = self.records.get_mut(&target) else {
            return;
        };
        if record.status == PeerStatus::Dead {
            return;
        }
        record.misses = record.misses.saturating_add(1);
        let exponent = record.misses.min(max_backoff);
        record.next_probe_at = now + SimDuration::from_nanos(probe_period.as_nanos() << exponent);
        if record.status == PeerStatus::Alive {
            record.status = PeerStatus::Suspect;
            self.events.push(DetectorEvent {
                at: now,
                peer: target,
                kind: DetectorVerdict::Suspect,
            });
            let timer = ctx.set_timer(suspicion_timeout);
            self.records
                .get_mut(&target)
                .expect("record still present")
                .suspicion_timer = Some(timer);
            self.timers
                .insert(timer, TimerKind::Suspicion { peer: target });
        }
    }

    /// Up to `indirect_peers` helpers, drawn without replacement from the
    /// peers not currently dead and distinct from the target.
    fn pick_helpers(&self, ctx: &mut Context<'_, DetectorMsg>, target: NodeId) -> Vec<NodeId> {
        let mut candidates: Vec<NodeId> = self
            .peers
            .iter()
            .copied()
            .filter(|&p| p != target && self.status_of(p) != PeerStatus::Dead)
            .collect();
        let k = self.config.indirect_peers.min(candidates.len());
        // Partial Fisher–Yates off the simulation RNG: deterministic per
        // seed, no helper picked twice.
        for i in 0..k {
            let j = ctx.rng().random_range(i..candidates.len());
            candidates.swap(i, j);
        }
        candidates.truncate(k);
        candidates
    }
}

impl Node for DetectorNode {
    type Msg = DetectorMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, DetectorMsg>) {
        let me = ctx.self_id();
        self.peers.retain(|&p| p != me);
        for &p in &self.peers {
            self.records.insert(p, PeerRecord::new());
        }
        if self.peers.is_empty() {
            return;
        }
        // Stagger first probes uniformly across one period so the plane
        // does not probe in lockstep.
        let jitter = SimDuration::from_nanos(
            ctx.rng()
                .random_range(0..self.config.probe_period.as_nanos()),
        );
        self.arm(ctx, jitter, TimerKind::ProbeTick);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, DetectorMsg>, from: NodeId, msg: DetectorMsg) {
        // Any delivered message is evidence the sender is alive.
        self.confirm(ctx, from);
        match msg {
            DetectorMsg::Ping { seq } => {
                ctx.send(from, DetectorMsg::Ack { seq });
            }
            DetectorMsg::Ack { seq } => {
                if let Some(probe) = self.probes.remove(&seq) {
                    debug_assert_eq!(probe.target, from, "ack from unexpected peer");
                } else if let Some(relay) = self.relays.remove(&seq) {
                    // We pinged on someone's behalf; report back.
                    self.confirm(ctx, relay.target);
                    ctx.send(
                        relay.requester,
                        DetectorMsg::IndirectAck {
                            target: relay.target,
                            seq: relay.original_seq,
                        },
                    );
                }
            }
            DetectorMsg::PingReq { target, seq } => {
                let relay_seq = self.next_seq;
                self.next_seq += 1;
                self.relays.insert(
                    relay_seq,
                    RelayProbe {
                        requester: from,
                        original_seq: seq,
                        target,
                    },
                );
                ctx.send(target, DetectorMsg::Ping { seq: relay_seq });
            }
            DetectorMsg::IndirectAck { target, seq } => {
                self.confirm(ctx, target);
                self.probes.remove(&seq);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DetectorMsg>, timer: TimerId) {
        let Some(kind) = self.timers.remove(&timer) else {
            return;
        };
        match kind {
            TimerKind::ProbeTick => {
                self.arm(ctx, self.config.probe_period, TimerKind::ProbeTick);
                if let Some(target) = self.next_target(ctx.now()) {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.probes.insert(seq, Probe { target });
                    ctx.send(target, DetectorMsg::Ping { seq });
                    self.arm(
                        ctx,
                        self.config.probe_timeout,
                        TimerKind::ProbeTimeout { seq },
                    );
                }
            }
            TimerKind::ProbeTimeout { seq } => {
                let Some(probe) = self.probes.get(&seq) else {
                    return; // Acked in the meantime.
                };
                let target = probe.target;
                let helpers = self.pick_helpers(ctx, target);
                if helpers.is_empty() {
                    // Nobody to ask: the direct miss is the whole round.
                    self.probes.remove(&seq);
                    self.probe_round_failed(ctx, target);
                    return;
                }
                for helper in helpers {
                    ctx.send(helper, DetectorMsg::PingReq { target, seq });
                }
                self.arm(
                    ctx,
                    self.config.probe_timeout,
                    TimerKind::IndirectTimeout { seq },
                );
            }
            TimerKind::IndirectTimeout { seq } => {
                if let Some(probe) = self.probes.remove(&seq) {
                    self.probe_round_failed(ctx, probe.target);
                }
            }
            TimerKind::Suspicion { peer } => {
                let Some(record) = self.records.get_mut(&peer) else {
                    return;
                };
                if record.status == PeerStatus::Suspect {
                    record.status = PeerStatus::Dead;
                    record.suspicion_timer = None;
                    self.events.push(DetectorEvent {
                        at: ctx.now(),
                        peer,
                        kind: DetectorVerdict::Dead,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultModel;
    use crate::latency::ConstantLatency;
    use crate::sim::Simulation;

    fn plane(n: usize, config: DetectorConfig) -> Simulation<DetectorNode> {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let nodes = (0..n)
            .map(|_| DetectorNode::new(members.clone(), config))
            .collect();
        Simulation::builder(nodes)
            .seed(7)
            .latency(ConstantLatency(SimDuration::from_millis(5)))
            .build()
    }

    fn fast_config() -> DetectorConfig {
        DetectorConfig {
            probe_period: SimDuration::from_millis(100),
            probe_timeout: SimDuration::from_millis(30),
            indirect_peers: 2,
            suspicion_timeout: SimDuration::from_millis(300),
            max_backoff: 3,
        }
    }

    #[test]
    fn healthy_plane_raises_no_verdicts() {
        let mut sim = plane(6, fast_config());
        sim.run_for(SimDuration::from_secs(10));
        for node in sim.nodes() {
            assert!(node.events().is_empty(), "events: {:?}", node.events());
        }
        assert!(sim.counters().sent_with_tag("ping") > 0);
        assert_eq!(sim.counters().sent_with_tag("ping-req"), 0);
    }

    #[test]
    fn crashed_peer_is_suspected_then_declared_dead_everywhere() {
        let mut sim = plane(6, fast_config());
        sim.run_for(SimDuration::from_secs(1));
        sim.crash(NodeId(2));
        let crash_time = sim.now();
        sim.run_for(SimDuration::from_secs(10));
        for (i, node) in sim.nodes().iter().enumerate() {
            if i == 2 {
                continue;
            }
            assert_eq!(
                node.status_of(NodeId(2)),
                PeerStatus::Dead,
                "node {i} verdict"
            );
            let dead = node
                .events()
                .iter()
                .find(|e| e.kind == DetectorVerdict::Dead)
                .expect("dead event");
            assert_eq!(dead.peer, NodeId(2));
            assert!(dead.at > crash_time);
            // No false verdicts about anyone else.
            assert!(node.events().iter().all(|e| e.peer == NodeId(2)));
        }
        assert!(
            sim.counters().sent_with_tag("ping-req") > 0,
            "misses must trigger indirect probes"
        );
    }

    #[test]
    fn silent_drop_peer_is_detected_like_a_crash() {
        let mut sim = plane(5, fast_config());
        sim.run_for(SimDuration::from_secs(1));
        sim.fault_mut().set_silent(NodeId(1), true);
        sim.run_for(SimDuration::from_secs(10));
        for (i, node) in sim.nodes().iter().enumerate() {
            if i == 1 {
                continue;
            }
            assert_eq!(node.status_of(NodeId(1)), PeerStatus::Dead, "node {i}");
        }
        // The silent peer itself keeps running and, hearing nothing,
        // eventually declares everyone else dead — the split-brain the
        // harness resolves by trusting the connected majority.
        assert!(sim.counters().dropped_silent() > 0);
    }

    #[test]
    fn suspect_refutes_before_suspicion_timeout() {
        let mut config = fast_config();
        // Long suspicion window so the heal lands inside it.
        config.suspicion_timeout = SimDuration::from_secs(5);
        let mut sim = plane(5, config);
        sim.run_for(SimDuration::from_secs(1));
        sim.fault_mut().set_silent(NodeId(3), true);
        // Long enough for suspicion to arise, far less than 5 s.
        sim.run_for(SimDuration::from_secs(2));
        let suspects: Vec<usize> = (0..5)
            .filter(|&i| i != 3 && sim.node(NodeId(i)).status_of(NodeId(3)) == PeerStatus::Suspect)
            .collect();
        assert!(!suspects.is_empty(), "someone must have suspected node 3");
        sim.fault_mut().set_silent(NodeId(3), false);
        sim.run_for(SimDuration::from_secs(20));
        for &i in &suspects {
            let node = sim.node(NodeId(i));
            assert_eq!(node.status_of(NodeId(3)), PeerStatus::Alive, "node {i}");
            assert!(
                node.events()
                    .iter()
                    .any(|e| e.peer == NodeId(3) && e.kind == DetectorVerdict::Refute),
                "node {i} must record a refutation"
            );
            assert!(
                node.events()
                    .iter()
                    .all(|e| !(e.peer == NodeId(3) && e.kind == DetectorVerdict::Dead)),
                "node {i} must never declare node 3 dead"
            );
        }
    }

    #[test]
    fn indirect_probes_all_lost_still_escalates_to_dead() {
        // Two healthy nodes plus a silent target: the helpers' relayed
        // pings are swallowed exactly like the direct one, so the
        // indirect round times out and the verdict still lands.
        let mut sim = plane(4, fast_config());
        sim.run_for(SimDuration::from_millis(500));
        sim.fault_mut().set_silent(NodeId(0), true);
        sim.run_for(SimDuration::from_secs(10));
        assert!(
            sim.counters().sent_with_tag("ping-req") > 0,
            "indirect probes must have been attempted"
        );
        // Relayed pings to the silent target never produced ind-acks
        // about it, yet every healthy node converged on Dead.
        for i in 1..4 {
            assert_eq!(
                sim.node(NodeId(i)).status_of(NodeId(0)),
                PeerStatus::Dead,
                "node {i}"
            );
        }
    }

    #[test]
    fn lone_node_with_no_helpers_still_detects() {
        // A 2-node plane has no third party to ask: the direct miss alone
        // must carry the round.
        let mut sim = plane(2, fast_config());
        sim.run_for(SimDuration::from_millis(300));
        sim.crash(NodeId(1));
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(sim.node(NodeId(0)).status_of(NodeId(1)), PeerStatus::Dead);
        assert_eq!(sim.counters().sent_with_tag("ping-req"), 0);
    }

    #[test]
    fn partitioned_region_suspects_exactly_the_far_side() {
        let config = fast_config();
        let n = 8;
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let nodes: Vec<DetectorNode> = (0..n)
            .map(|_| DetectorNode::new(members.clone(), config))
            .collect();
        // Nodes 0..4 in region 0, nodes 4..8 in region 1.
        let regions: Vec<u32> = (0..n).map(|i| u32::from(i >= 4)).collect();
        let mut sim = Simulation::builder(nodes)
            .seed(3)
            .latency(ConstantLatency(SimDuration::from_millis(5)))
            .fault(FaultModel::default().with_regions(regions))
            .build();
        sim.run_for(SimDuration::from_secs(1));
        sim.fault_mut().partition_regions(0, 1);
        sim.run_for(SimDuration::from_secs(30));
        for i in 0..n {
            let node = sim.node(NodeId(i));
            let my_region = usize::from(i >= 4);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let peer_region = usize::from(j >= 4);
                let status = node.status_of(NodeId(j));
                if my_region == peer_region {
                    assert_eq!(status, PeerStatus::Alive, "node {i} about neighbour {j}");
                } else {
                    assert_eq!(status, PeerStatus::Dead, "node {i} about far side {j}");
                }
            }
        }
        assert!(sim.counters().dropped_partitioned() > 0);
    }

    #[test]
    fn detector_plane_replays_per_seed() {
        let run = |seed: u64| {
            let members: Vec<NodeId> = (0..6).map(NodeId).collect();
            let nodes = (0..6)
                .map(|_| DetectorNode::new(members.clone(), fast_config()))
                .collect();
            let mut sim = Simulation::builder(nodes)
                .seed(seed)
                .fault(FaultModel::with_loss(0.2))
                .build();
            sim.run_for(SimDuration::from_secs(1));
            sim.crash(NodeId(4));
            sim.run_for(SimDuration::from_secs(15));
            let events: Vec<Vec<DetectorEvent>> =
                sim.nodes().iter().map(|n| n.events().to_vec()).collect();
            (sim.counters().sent(), events)
        };
        assert_eq!(run(21), run(21));
    }

    #[test]
    fn backoff_slows_probing_of_a_dead_peer() {
        let mut sim = plane(3, fast_config());
        sim.run_for(SimDuration::from_millis(200));
        sim.crash(NodeId(2));
        sim.run_for(SimDuration::from_secs(5));
        let after_verdict = sim.counters().sent_with_tag("ping");
        sim.run_for(SimDuration::from_secs(5));
        let later = sim.counters().sent_with_tag("ping");
        // Healthy mutual probing continues; the dead peer is no longer a
        // target, so volume stays roughly linear (no runaway retries).
        let per_second = (later - after_verdict) as f64 / 5.0;
        // 2 healthy nodes, 10 probes/s each max.
        assert!(per_second <= 25.0, "probe volume {per_second}/s");
    }
}
