use rand::rngs::StdRng;

use crate::event::TimerId;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// An action a node requested during a callback, applied by the simulator
/// after the callback returns (so the node never touches the event queue
/// directly).
#[derive(Debug)]
pub(crate) enum Action<M> {
    Send { to: NodeId, msg: M },
    Arm { delay: SimDuration, timer: TimerId },
    Cancel { timer: TimerId },
}

/// The interface through which a [`crate::Node`] interacts with the
/// simulated world during a callback.
///
/// A context is only valid for the duration of one callback; requested
/// sends and timers take effect when the callback returns.
#[derive(Debug)]
pub struct Context<'a, M> {
    self_id: NodeId,
    now: SimTime,
    rng: &'a mut StdRng,
    next_timer_id: &'a mut u64,
    pub(crate) actions: &'a mut Vec<Action<M>>,
}

impl<'a, M> Context<'a, M> {
    pub(crate) fn new(
        self_id: NodeId,
        now: SimTime,
        rng: &'a mut StdRng,
        next_timer_id: &'a mut u64,
        actions: &'a mut Vec<Action<M>>,
    ) -> Self {
        Context {
            self_id,
            now,
            rng,
            next_timer_id,
            actions,
        }
    }

    /// The id of the node running this callback.
    #[must_use]
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulation's deterministic RNG.
    ///
    /// All protocol randomness must come from here so runs replay exactly
    /// per seed.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `msg` to `to`. Delivery time is decided by the simulation's
    /// latency model; the message may be dropped by the fault model.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Arms a one-shot timer firing after `delay`; returns its id.
    ///
    /// The node's [`crate::Node::on_timer`] receives the same id when the
    /// timer fires. Periodic behaviour is built by re-arming from
    /// `on_timer`.
    pub fn set_timer(&mut self, delay: SimDuration) -> TimerId {
        let timer = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.actions.push(Action::Arm { delay, timer });
        timer
    }

    /// Cancels a previously armed timer. Cancelling an already-fired or
    /// foreign timer is a no-op.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.actions.push(Action::Cancel { timer });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn actions_are_recorded_in_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut next = 0u64;
        let mut actions: Vec<Action<u32>> = Vec::new();
        let mut ctx = Context::new(NodeId(3), SimTime::ZERO, &mut rng, &mut next, &mut actions);
        assert_eq!(ctx.self_id(), NodeId(3));
        assert_eq!(ctx.now(), SimTime::ZERO);
        ctx.send(NodeId(1), 42);
        let t = ctx.set_timer(SimDuration::from_millis(5));
        ctx.cancel_timer(t);
        assert_eq!(actions.len(), 3);
        assert!(matches!(
            actions[0],
            Action::Send {
                to: NodeId(1),
                msg: 42
            }
        ));
        assert!(matches!(actions[1], Action::Arm { timer, .. } if timer == t));
        assert!(matches!(actions[2], Action::Cancel { timer } if timer == t));
    }

    #[test]
    fn timer_ids_are_unique_and_monotone() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut next = 10u64;
        let mut actions: Vec<Action<()>> = Vec::new();
        let mut ctx = Context::new(NodeId(0), SimTime::ZERO, &mut rng, &mut next, &mut actions);
        let a = ctx.set_timer(SimDuration::ZERO);
        let b = ctx.set_timer(SimDuration::ZERO);
        assert!(b > a);
        assert_eq!(next, 12);
    }

    #[test]
    fn rng_is_usable_from_context() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(1);
        let mut next = 0u64;
        let mut actions: Vec<Action<()>> = Vec::new();
        let mut ctx = Context::new(NodeId(0), SimTime::ZERO, &mut rng, &mut next, &mut actions);
        let x: f64 = ctx.rng().random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
