use std::cmp::Ordering;

use crate::node::NodeId;
use crate::time::SimTime;

/// Identifier of a timer armed via [`crate::Context::set_timer`].
///
/// Timer ids are unique within a simulation run; a node distinguishes its
/// own concurrent timers by remembering the ids it armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// Raw identifier value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }
}

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` (sent by `from`) to `to`.
    Deliver { from: NodeId, to: NodeId, msg: M },
    /// Fire timer `timer` on node `node`.
    Timer { node: NodeId, timer: TimerId },
}

/// A scheduled event. Ordered by `(time, seq)` so that simultaneous
/// events fire in a deterministic (insertion) order.
#[derive(Debug)]
pub(crate) struct Event<M> {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(nanos: u64, seq: u64) -> Event<()> {
        Event {
            time: SimTime::from_nanos(nanos),
            seq,
            kind: EventKind::Timer {
                node: NodeId(0),
                timer: TimerId(seq),
            },
        }
    }

    #[test]
    fn heap_pops_earliest_first() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(30, 0));
        heap.push(ev(10, 1));
        heap.push(ev(20, 2));
        let order: Vec<u64> =
            std::iter::from_fn(|| heap.pop().map(|e| e.time.as_nanos())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_sequence_number() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(10, 5));
        heap.push(ev(10, 2));
        heap.push(ev(10, 9));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|e| e.seq)).collect();
        assert_eq!(order, vec![2, 5, 9], "FIFO among simultaneous events");
    }

    #[test]
    fn timer_id_exposes_value() {
        assert_eq!(TimerId(42).value(), 42);
    }
}
