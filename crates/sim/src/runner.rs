//! Parallel experiment execution.
//!
//! The paper's framework was multi-threaded; in this reproduction the
//! simulations themselves are deterministic and single-threaded (so runs
//! replay exactly), and parallelism is applied where it is free of
//! nondeterminism: across **independent** experiment instances (seeds,
//! parameter points). [`ParallelRunner`] fans a closure out over inputs
//! on scoped `std::thread`s and returns outputs in input order.

use std::cell::Cell;
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

std::thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` on a [`ParallelRunner`] worker thread.
///
/// Nested data-parallel helpers (e.g. the overlay engine's per-peer
/// fan-out) should check this and run sequentially: the cores are
/// already saturated one level up, and another `available_parallelism`
/// fan-out per job would oversubscribe the CPU quadratically.
#[must_use]
pub fn in_parallel_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Runs independent experiment instances across CPU cores.
///
/// # Example
///
/// ```
/// use geocast_sim::runner::ParallelRunner;
///
/// let runner = ParallelRunner::default();
/// let squares = runner.map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelRunner {
    threads: usize,
}

impl ParallelRunner {
    /// A runner with an explicit thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        ParallelRunner { threads }
    }

    /// The number of worker threads used.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every input, in parallel, preserving input order in
    /// the output.
    ///
    /// Work is distributed dynamically (an atomic cursor over the input
    /// slice), so uneven per-input cost still balances.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` (the run is aborted).
    pub fn map<I, O, F>(&self, inputs: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        if inputs.is_empty() {
            return Vec::new();
        }
        let threads = self.threads.min(inputs.len());
        if threads == 1 {
            return inputs.iter().map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<O>>> = Mutex::new((0..inputs.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= inputs.len() {
                            break;
                        }
                        let out = f(&inputs[i]);
                        results.lock().expect("result lock poisoned")[i] = Some(out);
                    }
                });
            }
        });
        results
            .into_inner()
            .expect("result lock poisoned")
            .into_iter()
            .map(|o| o.expect("every input produced an output"))
            .collect()
    }

    /// Convenience: runs `f` once per seed, returning outputs in seed
    /// order. The standard shape of a multi-trial experiment.
    pub fn map_seeds<O, F>(&self, seeds: &[u64], f: F) -> Vec<O>
    where
        O: Send,
        F: Fn(u64) -> O + Sync,
    {
        self.map(seeds, |&s| f(s))
    }
}

impl Default for ParallelRunner {
    /// A runner using all available CPU cores.
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ParallelRunner { threads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order() {
        let runner = ParallelRunner::new(4);
        let inputs: Vec<u64> = (0..100).collect();
        let outputs = runner.map(&inputs, |&x| x * 2);
        assert_eq!(outputs, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_input() {
        let runner = ParallelRunner::new(2);
        let outputs: Vec<u64> = runner.map(&[], |x: &u64| *x);
        assert!(outputs.is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let runner = ParallelRunner::new(1);
        assert_eq!(runner.threads(), 1);
        let outputs = runner.map(&[1, 2, 3], |&x: &i32| x + 1);
        assert_eq!(outputs, vec![2, 3, 4]);
    }

    #[test]
    fn every_input_is_processed_exactly_once() {
        let runner = ParallelRunner::new(8);
        let calls = AtomicUsize::new(0);
        let inputs: Vec<usize> = (0..500).collect();
        let outputs = runner.map(&inputs, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(outputs, inputs);
    }

    #[test]
    fn map_seeds_matches_sequential_run() {
        let runner = ParallelRunner::default();
        let seeds: Vec<u64> = (0..16).collect();
        let parallel = runner.map_seeds(&seeds, |s| s.wrapping_mul(0x9E3779B97F4A7C15));
        let sequential: Vec<u64> = seeds
            .iter()
            .map(|s| s.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn worker_threads_are_marked() {
        assert!(!in_parallel_worker());
        let runner = ParallelRunner::new(4);
        let inputs: Vec<u64> = (0..64).collect();
        let flags = runner.map(&inputs, |_| in_parallel_worker());
        assert!(flags.iter().all(|&inside| inside));
        assert!(!in_parallel_worker());
    }

    #[test]
    fn default_uses_at_least_one_thread() {
        assert!(ParallelRunner::default().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = ParallelRunner::new(0);
    }
}
