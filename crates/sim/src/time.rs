use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulation's virtual clock, in integer nanoseconds.
///
/// Integer time makes event ordering exact: two events either happen at
/// the same instant (and are then ordered by their sequence numbers) or
/// at comparable instants — no floating-point drift.
///
/// # Example
///
/// ```
/// use geocast_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from raw nanoseconds.
    #[must_use]
    pub fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Raw nanoseconds since [`SimTime::ZERO`].
    #[must_use]
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting; never used in event
    /// ordering).
    #[must_use]
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time, in integer nanoseconds.
///
/// # Example
///
/// ```
/// use geocast_sim::SimDuration;
///
/// let d = SimDuration::from_millis(250) * 4;
/// assert_eq!(d, SimDuration::from_secs(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from raw nanoseconds.
    #[must_use]
    pub fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Constructs a duration from whole milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Constructs a duration from whole seconds.
    #[must_use]
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000_000))
    }

    /// Constructs a duration from fractional seconds, rounding to the
    /// nearest nanosecond and saturating for huge or negative inputs.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration(0);
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[must_use]
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the duration is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_addition_and_since() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(2);
        assert_eq!(t1.as_nanos(), 2_000_000_000);
        assert_eq!(t1.since(t0), SimDuration::from_secs(2));
        assert_eq!(t0.since(t1), SimDuration::ZERO, "since saturates");
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(
            SimDuration::from_millis(1500),
            SimDuration::from_secs_f64(1.5)
        );
        assert_eq!(SimDuration::from_secs(3), SimDuration::from_millis(3000));
        assert_eq!(SimDuration::from_nanos(5).as_nanos(), 5);
    }

    #[test]
    fn duration_from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::INFINITY).as_nanos(),
            u64::MAX
        );
        assert!(SimDuration::from_secs_f64(0.0).is_zero());
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let max = SimDuration::from_nanos(u64::MAX);
        assert_eq!(max + SimDuration::from_secs(1), max);
        assert_eq!(max * 2, max);
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(2),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn add_assign_advances_clock() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(1);
        t += SimDuration::from_secs(2);
        assert_eq!(t.as_secs_f64(), 3.0);
    }

    #[test]
    fn display_renders_seconds() {
        assert_eq!(
            SimTime::from_nanos(1_500_000_000).to_string(),
            "t=1.500000s"
        );
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250000s");
    }
}
