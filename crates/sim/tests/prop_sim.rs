//! Property-based tests for the simulation kernel: clock monotonicity,
//! deterministic replay, and exact message accounting.

use proptest::prelude::*;

use geocast_sim::{
    Context, FaultModel, Message, Node, NodeId, SimDuration, SimTime, Simulation, TimerId,
    UniformLatency,
};

#[derive(Clone, Debug)]
struct Token(u32);

impl Message for Token {
    fn tag(&self) -> &'static str {
        "token"
    }
}

/// Forwards tokens around a ring and records observation times.
struct RingNode {
    next: NodeId,
    seen_at: Vec<SimTime>,
}

impl Node for RingNode {
    type Msg = Token;

    fn on_message(&mut self, ctx: &mut Context<'_, Token>, _from: NodeId, msg: Token) {
        self.seen_at.push(ctx.now());
        if msg.0 > 0 {
            ctx.send(self.next, Token(msg.0 - 1));
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, Token>, _timer: TimerId) {}
}

fn ring(n: usize) -> Vec<RingNode> {
    (0..n)
        .map(|i| RingNode {
            next: NodeId((i + 1) % n),
            seen_at: Vec::new(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn token_ring_sends_exactly_ttl_plus_one_messages(
        n in 1usize..8,
        ttl in 0u32..40,
        seed in 0u64..1000,
    ) {
        let mut sim = Simulation::builder(ring(n))
            .seed(seed)
            .latency(UniformLatency::new(
                SimDuration::from_millis(1),
                SimDuration::from_millis(30),
            ))
            .build();
        sim.inject(NodeId(0), Token(ttl));
        let outcome = sim.run_until_quiescent();
        prop_assert!(outcome.quiescent);
        prop_assert_eq!(sim.counters().sent_with_tag("token"), u64::from(ttl) + 1);
        prop_assert_eq!(sim.counters().delivered(), u64::from(ttl) + 1);
    }

    #[test]
    fn observation_times_are_monotone_per_node(
        n in 2usize..6,
        ttl in 1u32..30,
        seed in 0u64..1000,
    ) {
        let mut sim = Simulation::builder(ring(n))
            .seed(seed)
            .latency(UniformLatency::new(
                SimDuration::from_millis(1),
                SimDuration::from_millis(50),
            ))
            .build();
        sim.inject(NodeId(0), Token(ttl));
        sim.run_until_quiescent();
        for i in 0..n {
            let seen = &sim.node(NodeId(i)).seen_at;
            prop_assert!(
                seen.windows(2).all(|w| w[0] <= w[1]),
                "node {i} observed time going backwards: {seen:?}"
            );
        }
    }

    #[test]
    fn replay_is_bit_identical_per_seed(
        n in 1usize..6,
        ttl in 0u32..25,
        seed in 0u64..1000,
    ) {
        let run = |seed: u64| {
            let mut sim = Simulation::builder(ring(n))
                .seed(seed)
                .latency(UniformLatency::new(
                    SimDuration::from_millis(1),
                    SimDuration::from_millis(100),
                ))
                .build();
            sim.inject(NodeId(0), Token(ttl));
            sim.run_until_quiescent();
            (sim.now(), sim.counters().delivered())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn run_until_never_overshoots_events(
        deadline_ms in 0u64..500,
        ttl in 0u32..50,
    ) {
        let mut sim = Simulation::builder(ring(3)).build();
        sim.inject(NodeId(0), Token(ttl));
        let deadline = SimTime::ZERO + SimDuration::from_millis(deadline_ms);
        let outcome = sim.run_until(deadline);
        prop_assert_eq!(outcome.now, deadline);
        // Deliveries happen every 10 ms (default constant latency):
        // at most deadline/10ms events can have fired.
        prop_assert!(outcome.events <= deadline_ms / 10 + 1);
    }

    #[test]
    fn loss_probability_bounds_delivered_fraction(
        seed in 0u64..200,
    ) {
        // With 100% loss nothing but the injection is delivered;
        // with 0% everything is.
        for (loss, expect_all) in [(0.0, true), (1.0, false)] {
            let mut sim = Simulation::builder(ring(4))
                .seed(seed)
                .fault(FaultModel::with_loss(loss))
                .build();
            sim.inject(NodeId(0), Token(20));
            sim.run_until_quiescent();
            let delivered = sim.counters().delivered();
            if expect_all {
                prop_assert_eq!(delivered, 21);
            } else {
                prop_assert_eq!(delivered, 1, "only the fault-exempt injection");
            }
        }
    }
}
