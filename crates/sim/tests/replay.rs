//! Replay regression: a seeded run under the full fault matrix must
//! reproduce its event trace *message by message*, not merely end in the
//! same aggregate state. Detector experiments (detection latency,
//! false-positive rates) are only reproducible if this holds.

use geocast_sim::{
    Context, DetectorConfig, DetectorNode, FaultModel, GilbertElliott, Message, Node, NodeId,
    SimDuration, Simulation, TraceEntry, UniformLatency,
};

#[derive(Clone, Debug)]
struct Chatter(u32);

impl Message for Chatter {
    fn tag(&self) -> &'static str {
        "chatter"
    }
}

/// Forwards a token around a ring and re-arms a periodic timer, so both
/// message and timer events populate the trace.
struct RingNode {
    next: NodeId,
}

impl Node for RingNode {
    type Msg = Chatter;

    fn on_start(&mut self, ctx: &mut Context<'_, Chatter>) {
        ctx.set_timer(SimDuration::from_millis(50));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Chatter>, _from: NodeId, msg: Chatter) {
        if msg.0 > 0 {
            ctx.send(self.next, Chatter(msg.0 - 1));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Chatter>, _timer: geocast_sim::TimerId) {
        ctx.send(self.next, Chatter(0));
    }
}

/// One scripted run: lossy bursty network, a mid-run crash, a silent
/// peer, and a region partition that is later healed. Returns the full
/// event trace plus the counter totals.
fn scripted_run(seed: u64) -> (Vec<TraceEntry>, u64, u64, u64) {
    let n = 8;
    let nodes: Vec<RingNode> = (0..n)
        .map(|i| RingNode {
            next: NodeId((i + 1) % n),
        })
        .collect();
    let fault = FaultModel::with_loss(0.15)
        .with_burst(GilbertElliott::new(0.02, 0.2, 0.0, 0.8))
        .with_regions((0..n).map(|i| u32::from(i >= 4)).collect());
    let mut sim = Simulation::builder(nodes)
        .seed(seed)
        .latency(UniformLatency::new(
            SimDuration::from_millis(2),
            SimDuration::from_millis(25),
        ))
        .fault(fault)
        .trace_capacity(100_000)
        .build();
    sim.inject(NodeId(0), Chatter(40));
    sim.run_for(SimDuration::from_millis(400));
    sim.crash(NodeId(3));
    sim.fault_mut().set_silent(NodeId(5), true);
    sim.run_for(SimDuration::from_millis(400));
    sim.fault_mut().partition_regions(0, 1);
    sim.run_for(SimDuration::from_millis(400));
    sim.fault_mut().heal_regions(0, 1);
    sim.fault_mut().set_silent(NodeId(5), false);
    sim.run_for(SimDuration::from_millis(400));
    let trace: Vec<TraceEntry> = sim.trace().entries().cloned().collect();
    (
        trace,
        sim.counters().sent(),
        sim.counters().delivered(),
        sim.counters().dropped_by_faults(),
    )
}

#[test]
fn seeded_fault_matrix_run_replays_message_by_message() {
    let (trace_a, sent_a, delivered_a, dropped_a) = scripted_run(1234);
    let (trace_b, sent_b, delivered_b, dropped_b) = scripted_run(1234);
    assert!(!trace_a.is_empty(), "the scripted run must produce traffic");
    assert_eq!(trace_a.len(), trace_b.len(), "trace lengths diverged");
    for (i, (a, b)) in trace_a.iter().zip(&trace_b).enumerate() {
        assert_eq!(a, b, "trace entry {i} diverged");
    }
    assert_eq!(
        (sent_a, delivered_a, dropped_a),
        (sent_b, delivered_b, dropped_b)
    );
    assert!(dropped_a > 0, "the fault matrix must actually bite");
}

#[test]
fn different_seeds_diverge() {
    let (trace_a, ..) = scripted_run(1);
    let (trace_b, ..) = scripted_run(2);
    assert_ne!(trace_a, trace_b, "seeds must shuffle the run");
}

/// The same discipline holds for the detection plane itself: probes,
/// indirect probes, and verdict timers all replay exactly.
#[test]
fn detector_run_with_loss_and_crashes_replays_identically() {
    let run = |seed: u64| {
        let members: Vec<NodeId> = (0..10).map(NodeId).collect();
        let nodes: Vec<DetectorNode> = (0..10)
            .map(|_| DetectorNode::new(members.clone(), DetectorConfig::default()))
            .collect();
        let mut sim = Simulation::builder(nodes)
            .seed(seed)
            .latency(UniformLatency::new(
                SimDuration::from_millis(3),
                SimDuration::from_millis(30),
            ))
            .fault(FaultModel::with_loss(0.1))
            .trace_capacity(200_000)
            .build();
        sim.run_for(SimDuration::from_secs(2));
        sim.crash(NodeId(7));
        sim.crash(NodeId(2));
        sim.run_for(SimDuration::from_secs(20));
        let trace: Vec<TraceEntry> = sim.trace().entries().cloned().collect();
        let events: Vec<_> = sim.nodes().iter().map(|n| n.events().to_vec()).collect();
        (trace, events)
    };
    let (trace_a, events_a) = run(99);
    let (trace_b, events_b) = run(99);
    assert_eq!(trace_a, trace_b, "detector trace diverged");
    assert_eq!(events_a, events_b, "detector verdicts diverged");
    assert!(
        events_a
            .iter()
            .flatten()
            .any(|e| e.kind == geocast_sim::DetectorVerdict::Dead),
        "the crash wave must be detected"
    );
}
