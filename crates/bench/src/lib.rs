//! Shared plumbing for the geocast benchmark suite.
//!
//! Every bench target regenerates one paper artifact (printing the same
//! rows/series the paper reports) and then times the kernel operations
//! behind it with Criterion. By default the artifact regeneration runs
//! at *quick* scale so `cargo bench --workspace` finishes in minutes;
//! set `GEOCAST_FULL=1` for the paper-scale sweeps recorded in
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]

use geocast::figures::FigureReport;

/// `true` when `GEOCAST_FULL` is set: run paper-scale regenerations.
#[must_use]
pub fn full_scale() -> bool {
    std::env::var_os("GEOCAST_FULL").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Prints a regenerated artifact with a scale banner.
pub fn print_report(report: &FigureReport) {
    let scale = if full_scale() {
        "paper scale (GEOCAST_FULL)"
    } else {
        "quick scale"
    };
    println!("\n===== regenerated {} [{scale}] =====", report.id);
    println!("{report}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn full_scale_reads_env() {
        // Cannot mutate the environment safely in parallel tests; just
        // exercise the call path.
        let _ = super::full_scale();
    }
}
