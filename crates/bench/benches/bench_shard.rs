//! Region-sharded store scaling: parallel shard builds, shard-local
//! churn, and the group-bounds index, with a machine-readable summary.
//!
//! Three axes, recorded in `crates/bench/BENCH_shard.json`:
//!
//! 1. **Bulk build.** `TopologyStore::from_peers_sharded` at shard
//!    counts {1, 4, 16, 64} against the single-shard baseline. Shards
//!    build on scoped threads, so on a multi-core host the wall-clock
//!    gain tracks the *critical path*: assign + the slowest shard's
//!    (index + select) + finalize, read from `ShardBuildStats`. The
//!    JSON records both wall time and the critical-path speedup along
//!    with the core count — on a single-core runner wall time cannot
//!    drop, and the critical path is the honest measure of what the
//!    decomposition buys.
//! 2. **Churn throughput.** Mixed join/leave replay on the sharded
//!    engine versus the single store at the same N. This one is pure
//!    wall clock: the empty-rectangle join path drops from an O(N)
//!    re-check per event to O(degree), so the speedup is algorithmic
//!    and holds on any core count.
//! 3. **Group-bounds probes.** The `GroupBoundsIndex` affected-group
//!    lookup versus a linear scan over all group boxes at G = 10k
//!    (100k with `GEOCAST_FULL=1`) groups — the satellite that keeps
//!    delta-driven repair sublinear in the session count.
//!
//! Quick scale (default) sweeps N = 50k; `GEOCAST_FULL=1` adds the
//! million-peer point.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::core::bounds::GroupBoundsIndex;
use geocast::prelude::*;
use geocast_bench::full_scale;

const SHARD_COUNTS: [usize; 4] = [1, 4, 16, 64];

struct BulkPoint {
    n: usize,
    shards: usize,
    wall_s: f64,
    assign_s: f64,
    max_shard_s: f64,
    finalize_s: f64,
    critical_path_s: f64,
    speedup_critical_path: f64,
}

fn bulk_sweep(n: usize, single_wall_s: f64, peers: &[PeerInfo]) -> Vec<BulkPoint> {
    SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let start = Instant::now();
            let store = TopologyStore::from_peers_sharded(
                peers.to_vec(),
                Arc::new(EmptyRectSelection),
                &ShardConfig::new(shards),
            );
            let wall_s = start.elapsed().as_secs_f64();
            let stats = store.sharding().expect("sharded store").build_stats();
            let assign_s = stats.assign.as_secs_f64();
            let max_shard_s = (0..shards)
                .map(|s| (stats.shard_index[s] + stats.shard_select[s]).as_secs_f64())
                .fold(0.0f64, f64::max);
            let finalize_s = stats.finalize.as_secs_f64();
            let critical_path_s = assign_s + max_shard_s + finalize_s;
            println!(
                "bulk N={n} shards={shards}: wall {wall_s:.2}s, critical path \
                 {critical_path_s:.2}s ({assign_s:.2} assign + {max_shard_s:.2} \
                 slowest shard + {finalize_s:.2} finalize) => {:.1}x vs single",
                single_wall_s / critical_path_s
            );
            BulkPoint {
                n,
                shards,
                wall_s,
                assign_s,
                max_shard_s,
                finalize_s,
                critical_path_s,
                speedup_critical_path: single_wall_s / critical_path_s,
            }
        })
        .collect()
}

struct ChurnPoint {
    n: usize,
    shards: usize,
    single_events_per_s: f64,
    sharded_events_per_s: f64,
    speedup: f64,
}

fn churn_events_per_s(store: &mut TopologyStore, n: usize, events: usize, seed: u64) -> f64 {
    let pattern = ChurnPattern::Mixed {
        events,
        join_rate: 1,
        leave_rate: 1,
    };
    let schedule = churn::ChurnSchedule::from_pattern(n, &pattern, 2, 1000.0, seed);
    let start = Instant::now();
    let report = churn::run_schedule_on_store(store, &schedule);
    (report.joins + report.leaves) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn churn_sweep(n: usize, shards: usize, peers: &[PeerInfo]) -> ChurnPoint {
    // The single store pays O(N) per join: a handful of events is a
    // stable sample. The sharded engine pays O(degree): sample plenty.
    let mut single = TopologyStore::from_peers(peers.to_vec(), Arc::new(EmptyRectSelection));
    let single_events_per_s = churn_events_per_s(&mut single, n, 12, 77);
    let mut sharded = TopologyStore::from_peers_sharded(
        peers.to_vec(),
        Arc::new(EmptyRectSelection),
        &ShardConfig::new(shards),
    );
    let sharded_events_per_s = churn_events_per_s(&mut sharded, n, 600, 77);
    let speedup = sharded_events_per_s / single_events_per_s;
    println!(
        "churn N={n} shards={shards}: single {single_events_per_s:.1} events/s, \
         sharded {sharded_events_per_s:.0} events/s => {speedup:.1}x"
    );
    ChurnPoint {
        n,
        shards,
        single_events_per_s,
        sharded_events_per_s,
        speedup,
    }
}

/// Byte-identical cross-check at a size where the single store is
/// cheap: the bench gate refuses to report speedups for a divergent
/// engine (the exhaustive version lives in `prop_shard.rs`).
fn exactness_check(shards: usize) -> bool {
    let peers = PeerInfo::from_point_set(&uniform_points(1_500, 2, 1000.0, 3));
    let mut single = TopologyStore::from_peers(peers.clone(), Arc::new(EmptyRectSelection));
    let mut sharded = TopologyStore::from_peers_sharded(
        peers,
        Arc::new(EmptyRectSelection),
        &ShardConfig::new(shards),
    );
    let pattern = ChurnPattern::Mixed {
        events: 80,
        join_rate: 1,
        leave_rate: 1,
    };
    let schedule = churn::ChurnSchedule::from_pattern(1_500, &pattern, 2, 1000.0, 11);
    churn::run_schedule_on_store(&mut single, &schedule);
    churn::run_schedule_on_store(&mut sharded, &schedule);
    single.graph() == sharded.graph() && single.fingerprint() == sharded.fingerprint()
}

struct GroupIndexPoint {
    groups: usize,
    probes: usize,
    index_probes_per_s: f64,
    scan_probes_per_s: f64,
    speedup: f64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn group_index_sweep(groups: usize, probes: usize) -> GroupIndexPoint {
    let mut state = 0x5eed_u64;
    let boxes: Vec<(Vec<f64>, Vec<f64>)> = (0..groups)
        .map(|_| {
            // Cluster-shaped session footprints: ~30-unit support boxes
            // scattered over a 1000x1000 domain.
            let cx = unit(&mut state) * 1000.0;
            let cy = unit(&mut state) * 1000.0;
            let w = 10.0 + unit(&mut state) * 40.0;
            let h = 10.0 + unit(&mut state) * 40.0;
            (
                vec![(cx - w).max(0.0), (cy - h).max(0.0)],
                vec![(cx + w).min(1000.0), (cy + h).min(1000.0)],
            )
        })
        .collect();
    let mut index = GroupBoundsIndex::new(&[0.0, 0.0], &[1000.0, 1000.0]);
    for (gi, (lo, hi)) in boxes.iter().enumerate() {
        index.set(gi, lo.clone(), hi.clone());
    }
    let points: Vec<[f64; 2]> = (0..probes)
        .map(|_| [unit(&mut state) * 1000.0, unit(&mut state) * 1000.0])
        .collect();

    let mut out = Vec::new();
    let mut index_hits = 0usize;
    let start = Instant::now();
    for p in &points {
        index.candidates(p, &mut out);
        index_hits += out.len();
    }
    let index_s = start.elapsed().as_secs_f64();

    let mut scan_hits = 0usize;
    let start = Instant::now();
    for p in &points {
        scan_hits += boxes
            .iter()
            .filter(|(lo, hi)| {
                lo.iter()
                    .zip(hi)
                    .zip(p.iter())
                    .all(|((&l, &h), &x)| l <= x && x <= h)
            })
            .count();
    }
    let scan_s = start.elapsed().as_secs_f64();
    assert_eq!(index_hits, scan_hits, "bounds index diverged from scan");

    let point = GroupIndexPoint {
        groups,
        probes,
        index_probes_per_s: probes as f64 / index_s.max(1e-9),
        scan_probes_per_s: probes as f64 / scan_s.max(1e-9),
        speedup: scan_s / index_s.max(1e-12),
    };
    println!(
        "group bounds G={groups}: index {:.0} probes/s vs scan {:.0} probes/s \
         => {:.1}x ({index_hits} hits)",
        point.index_probes_per_s, point.scan_probes_per_s, point.speedup
    );
    point
}

fn write_summary(
    cores: usize,
    bulk: &[BulkPoint],
    churn_pts: &[ChurnPoint],
    gi: &GroupIndexPoint,
    exact: bool,
) {
    let mut json = String::from("{\n  \"bench\": \"shard_scaling\",\n  \"dim\": 2,\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(
        "  \"speedup_model\": \"critical_path: assign + slowest shard (index+select) + \
         finalize, vs single-shard wall\",\n",
    );
    json.push_str(&format!("  \"exact_vs_single_shard\": {exact},\n"));
    json.push_str("  \"bulk_build\": [\n");
    for (i, b) in bulk.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"shards\": {}, \"wall_seconds\": {:.3}, \
             \"assign_seconds\": {:.3}, \"slowest_shard_seconds\": {:.3}, \
             \"finalize_seconds\": {:.3}, \"critical_path_seconds\": {:.3}, \
             \"speedup_critical_path\": {:.1}}}{}\n",
            b.n,
            b.shards,
            b.wall_s,
            b.assign_s,
            b.max_shard_s,
            b.finalize_s,
            b.critical_path_s,
            b.speedup_critical_path,
            if i + 1 < bulk.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"churn\": [\n");
    for (i, c) in churn_pts.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"shards\": {}, \"single_events_per_second\": {:.1}, \
             \"sharded_events_per_second\": {:.0}, \"speedup\": {:.1}}}{}\n",
            c.n,
            c.shards,
            c.single_events_per_s,
            c.sharded_events_per_s,
            c.speedup,
            if i + 1 < churn_pts.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"group_bounds_index\": {{\"groups\": {}, \"probes\": {}, \
         \"index_probes_per_second\": {:.0}, \"scan_probes_per_second\": {:.0}, \
         \"speedup\": {:.1}}}\n}}\n",
        gi.groups, gi.probes, gi.index_probes_per_s, gi.scan_probes_per_s, gi.speedup,
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_shard.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn shard_scaling(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let exact = exactness_check(16);
    assert!(exact, "sharded engine diverged from the single store");

    let n = 50_000;
    let peers = PeerInfo::from_point_set(&uniform_points(n, 2, 1000.0, 1));
    let start = Instant::now();
    let single = TopologyStore::from_peers(peers.clone(), Arc::new(EmptyRectSelection));
    let single_wall_s = start.elapsed().as_secs_f64();
    println!("bulk N={n} single-shard baseline: {single_wall_s:.2}s");
    drop(single);

    let mut bulk = bulk_sweep(n, single_wall_s, &peers);
    let mut churn_pts = vec![churn_sweep(n, 16, &peers)];
    if full_scale() {
        // The million-peer point: sharded builds only (the JSON keeps
        // the N=50k single baseline for speedup context; a 10^6 single
        // build is minutes of O(N log N) on one core).
        let n = 1_000_000;
        let peers = PeerInfo::from_point_set(&uniform_points(n, 2, 1000.0, 2));
        let start = Instant::now();
        let single = TopologyStore::from_peers(peers.clone(), Arc::new(EmptyRectSelection));
        let single_wall_s = start.elapsed().as_secs_f64();
        println!("bulk N={n} single-shard baseline: {single_wall_s:.2}s");
        drop(single);
        bulk.extend(bulk_sweep(n, single_wall_s, &peers));
        churn_pts.push(churn_sweep(100_000, 16, &peers[..100_000]));
    }

    let groups = if full_scale() { 100_000 } else { 10_000 };
    let gi = group_index_sweep(groups, 4_000);

    // The headline asserts: the decomposition must buy >= 4x on the
    // bulk-build critical path at 16 shards, and shard-local churn must
    // clear 10x the single store's event rate at N >= 50k.
    let b16 = bulk
        .iter()
        .find(|b| b.shards == 16 && b.n == 50_000)
        .expect("16-shard bulk point");
    assert!(
        b16.speedup_critical_path >= 4.0,
        "critical-path speedup at 16 shards fell to {:.1}x",
        b16.speedup_critical_path
    );
    let c16 = &churn_pts[0];
    assert!(
        c16.n >= 50_000 && c16.speedup > 10.0,
        "churn speedup at N={} fell to {:.1}x",
        c16.n,
        c16.speedup
    );
    write_summary(cores, &bulk, &churn_pts, &gi, exact);

    // Criterion samples the sharded insert path at a modest population.
    let mut group = c.benchmark_group("shard/store_insert");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("n20000_s16_d2"), |b| {
        let base = PeerInfo::from_point_set(&uniform_points(20_000, 2, 1000.0, 9));
        let mut store = TopologyStore::from_peers_sharded(
            base,
            Arc::new(EmptyRectSelection),
            &ShardConfig::new(16),
        );
        let mut extra = uniform_points(4_096, 2, 1000.0, 10)
            .into_points()
            .into_iter();
        b.iter(|| {
            let p = extra.next().expect("enough pre-drawn points");
            store.insert(std::hint::black_box(p))
        });
    });
    group.finish();
}

criterion_group!(benches, shard_scaling);
criterion_main!(benches);
