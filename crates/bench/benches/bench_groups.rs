//! Multi-group session engine: per-event repair cost versus the number
//! of concurrent groups, plus the scattered-membership coverage gate,
//! with a machine-readable summary.
//!
//! Two claims under test:
//!
//! 1. **Locality.** The `GroupEngine` pays per churn event for the
//!    **delta-affected** groups (those whose members or graft-support
//!    nodes intersect the event's dirty region), not for the total
//!    group count. Holding the population and the total subscription
//!    count fixed while sweeping the number of groups, the
//!    affected-group mean must grow sublinearly in the group count —
//!    while a naive rebuild-everything engine would scale linearly.
//! 2. **Coverage.** With routing-based join, a scattered-membership
//!    workload (uniform-random members — the adversarial placement for
//!    member-to-member delegation) must report **zero stranded members
//!    on every publish**, paying a measured relay overhead (extra
//!    payload-carrying edges per payload).
//!
//! The final state of every group is asserted byte-identical to a
//! from-scratch `build_group_tree_grafted` rebuild. Results land in
//! `crates/bench/BENCH_groups.json` (quick scale by default; set
//! `GEOCAST_FULL=1` for the 2000-peer sweep with 256 scattered groups).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::core::groups::GroupEngine;
use geocast::overlay::churn::{ChurnEvent, ChurnSchedule};
use geocast::prelude::*;
use geocast::sim::workload::zipf_group_sizes;
use geocast_bench::full_scale;

struct Measurement {
    num_groups: usize,
    placement: MembershipPlacement,
    memberships: usize,
    churn_events: usize,
    affected_groups_mean: f64,
    affected_groups_max: usize,
    repaired_members_mean: f64,
    naive_members_per_event: usize,
    events_per_s: f64,
    coverage_mean: f64,
    relay_nodes: usize,
    publishes: usize,
    publish_stranded: usize,
    publish_messages: usize,
    publish_relay_messages: usize,
    exact: bool,
}

fn measure(
    n: usize,
    num_groups: usize,
    subscriptions: usize,
    churn_events: usize,
    placement: MembershipPlacement,
) -> Measurement {
    let points = uniform_points(n, 2, 1000.0, 1);
    let store = TopologyStore::from_peers(
        PeerInfo::from_point_set(&points),
        Arc::new(EmptyRectSelection),
    );
    let mut engine = GroupEngine::new(store, Arc::new(OrthantRectPartitioner::median()));
    let mut state = 0x6265_6e63_6821_0000u64 ^ num_groups as u64;
    let sizes = zipf_group_sizes(num_groups, subscriptions.max(num_groups), 1.0);
    let ids = engine.seed_groups_placed(placement, &sizes, &mut state);
    let naive_members_per_event: usize = ids.iter().map(|&g| engine.members(g).len()).sum();

    let schedule = ChurnSchedule::from_pattern(
        n,
        &ChurnPattern::Mixed {
            events: churn_events,
            join_rate: 1,
            leave_rate: 1,
        },
        2,
        1000.0,
        7,
    );

    let mut affected_sum = 0usize;
    let mut affected_max = 0usize;
    let mut repaired_sum = 0usize;
    let start = Instant::now();
    for event in schedule.events() {
        match event {
            ChurnEvent::Join(p) => {
                engine.join(p.clone());
            }
            ChurnEvent::Leave(id) => engine.leave(*id),
        }
        let sync = *engine.last_sync();
        affected_sum += sync.affected_groups;
        affected_max = affected_max.max(sync.affected_groups);
        repaired_sum += sync.rebuilt_members;
    }
    let seconds = start.elapsed().as_secs_f64();

    // The coverage gate: every group publishes once post-churn; with
    // relay grafting no payload may strand a member.
    let mut publishes = 0usize;
    let mut publish_stranded = 0usize;
    let mut publish_messages = 0usize;
    let mut publish_relay_messages = 0usize;
    for &g in &ids {
        if let Some(outcome) = engine.publish(g) {
            publishes += 1;
            publish_stranded += outcome.stranded;
            publish_messages += outcome.messages;
            publish_relay_messages += outcome.relay_messages;
            assert_eq!(
                outcome.stranded,
                0,
                "{g} ({placement}): publish stranded {} of {} members",
                outcome.stranded,
                outcome.delivered + outcome.stranded,
            );
        }
    }

    let mut exact = true;
    let mut memberships = 0usize;
    let mut relay_nodes = 0usize;
    let mut coverage_sum = 0.0;
    for &g in &ids {
        memberships += engine.members(g).len();
        relay_nodes += engine.relays(g).len();
        coverage_sum += engine.coverage(g);
        exact &= engine.matches_reference(g);
    }
    let events = schedule.len().max(1);
    Measurement {
        num_groups,
        placement,
        memberships,
        churn_events: schedule.len(),
        affected_groups_mean: affected_sum as f64 / events as f64,
        affected_groups_max: affected_max,
        repaired_members_mean: repaired_sum as f64 / events as f64,
        naive_members_per_event,
        events_per_s: events as f64 / seconds.max(1e-9),
        coverage_mean: coverage_sum / ids.len().max(1) as f64,
        relay_nodes,
        publishes,
        publish_stranded,
        publish_messages,
        publish_relay_messages,
        exact,
    }
}

fn row_json(m: &Measurement) -> String {
    format!(
        "    {{\n      \"num_groups\": {},\n      \"placement\": \"{}\",\n      \
         \"memberships\": {},\n      \"churn_events\": {},\n      \
         \"affected_groups_mean\": {:.2},\n      \"affected_groups_max\": {},\n      \
         \"repaired_members_mean\": {:.1},\n      \"naive_members_per_event\": {},\n      \
         \"events_per_second\": {:.0},\n      \"coverage\": {:.4},\n      \
         \"relay_nodes\": {},\n      \"publishes\": {},\n      \
         \"publish_stranded\": {},\n      \"publish_messages\": {},\n      \
         \"relay_messages_per_payload\": {:.2},\n      \"exact\": {}\n    }}",
        m.num_groups,
        m.placement,
        m.memberships,
        m.churn_events,
        m.affected_groups_mean,
        m.affected_groups_max,
        m.repaired_members_mean,
        m.naive_members_per_event,
        m.events_per_s,
        m.coverage_mean,
        m.relay_nodes,
        m.publishes,
        m.publish_stranded,
        m.publish_messages,
        m.publish_relay_messages as f64 / m.publishes.max(1) as f64,
        m.exact,
    )
}

fn write_summary(n: usize, subscriptions: usize, rows: &[Measurement], scattered: &Measurement) {
    let entries: Vec<String> = rows.iter().map(row_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"multi_group_sessions\",\n  \"dim\": 2,\n  \"n\": {n},\n  \
         \"subscriptions\": {subscriptions},\n  \"sweep\": [\n{}\n  ],\n  \
         \"scattered_coverage\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
        row_json(scattered),
    );
    // Anchor at this crate's manifest dir — cargo gives bench binaries a
    // package-relative cwd, which varies by invocation.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_groups.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn group_sessions(c: &mut Criterion) {
    let (n, subscriptions, churn_events, scattered_groups, sweep): (
        usize,
        usize,
        usize,
        usize,
        Vec<usize>,
    ) = if full_scale() {
        (2_000, 4_000, 200, 256, vec![8, 32, 128, 512])
    } else {
        (500, 1_000, 80, 64, vec![4, 16, 64])
    };

    let rows: Vec<Measurement> = sweep
        .iter()
        .map(|&g| {
            let m = measure(n, g, subscriptions, churn_events, MembershipPlacement::Clustered);
            println!(
                "G={} ({}): affected {:.2}/{} groups per event (max {}), repaired {:.1}/{} members, \
                 {:.0} events/s, coverage {:.1}%, {} relays, exact={}",
                m.num_groups,
                m.placement,
                m.affected_groups_mean,
                m.num_groups,
                m.affected_groups_max,
                m.repaired_members_mean,
                m.naive_members_per_event,
                m.events_per_s,
                m.coverage_mean * 100.0,
                m.relay_nodes,
                m.exact,
            );
            assert!(m.exact, "G={}: engine diverged from rebuild", m.num_groups);
            m
        })
        .collect();

    // The locality claim: at the largest sweep point the engine repairs
    // well under half the groups (and member-work) a naive engine would.
    let last = rows.last().expect("non-empty sweep");
    assert!(
        last.affected_groups_mean < last.num_groups as f64 / 2.0,
        "affected {:.2} of {} groups: repair cost is scaling with the total",
        last.affected_groups_mean,
        last.num_groups,
    );
    assert!(
        last.repaired_members_mean < last.naive_members_per_event as f64 / 2.0,
        "repaired {:.1} of {} members per event: no member-level locality",
        last.repaired_members_mean,
        last.naive_members_per_event,
    );

    // The coverage claim: scattered membership (uniform-random members,
    // the placement that used to strand tens of percent) must deliver
    // to every subscriber on every publish, with the relay overhead on
    // record. measure() asserts stranded == 0 per publish.
    let scattered = measure(
        n,
        scattered_groups,
        subscriptions,
        churn_events / 2,
        MembershipPlacement::Scattered,
    );
    println!(
        "scattered G={}: coverage {:.1}%, {} publishes, {} stranded, {:.2} relay msgs/payload, exact={}",
        scattered.num_groups,
        scattered.coverage_mean * 100.0,
        scattered.publishes,
        scattered.publish_stranded,
        scattered.publish_relay_messages as f64 / scattered.publishes.max(1) as f64,
        scattered.exact,
    );
    assert!(scattered.exact, "scattered run diverged from rebuild");
    assert_eq!(
        scattered.publish_stranded, 0,
        "scattered publishes stranded members"
    );
    assert_eq!(
        scattered.coverage_mean, 1.0,
        "scattered coverage must close to 100%"
    );
    write_summary(n, subscriptions, &rows, &scattered);

    // Criterion samples the engine's per-churn-event cost at the middle
    // sweep point.
    let mid = sweep[sweep.len() / 2];
    let mut group = c.benchmark_group("groups/churn_event");
    // Every iteration permanently grows the store, so the point pool
    // must outlast the harness's iteration ceiling: the vendored
    // criterion caps warm-up at 1000 iterations plus `sample_size`
    // timed samples, far under the 16384 pre-drawn points below.
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter(format!("n{n}_g{mid}")), |b| {
        let points = uniform_points(n, 2, 1000.0, 1);
        let store = TopologyStore::from_peers(
            PeerInfo::from_point_set(&points),
            Arc::new(EmptyRectSelection),
        );
        let mut engine = GroupEngine::new(store, Arc::new(OrthantRectPartitioner::median()));
        let mut state = 0xbeefu64;
        let sizes = zipf_group_sizes(mid, subscriptions.max(mid), 1.0);
        engine.seed_groups_clustered(&sizes, &mut state);
        let mut extra = uniform_points(16_384, 2, 1000.0, 11)
            .into_points()
            .into_iter();
        b.iter(|| {
            let p = extra.next().expect("enough pre-drawn points");
            engine.join(std::hint::black_box(p))
        });
    });
    group.finish();
}

criterion_group!(benches, group_sessions);
criterion_main!(benches);
