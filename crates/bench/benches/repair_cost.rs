//! Extension E11: localized zone repair versus full rebuild.
//! Regenerates the cost table, then times a single repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::core::repair::repair_after_departure;
use geocast::figures::{repair_cost, RepairConfig};
use geocast::prelude::*;
use geocast_bench::{full_scale, print_report};

fn regenerate_and_time(c: &mut Criterion) {
    let cfg = if full_scale() {
        RepairConfig::default()
    } else {
        RepairConfig::quick()
    };
    print_report(&repair_cost(&cfg));

    let peers = PeerInfo::from_point_set(&uniform_points(400, 2, 1000.0, 1));
    let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
    let build = build_tree(&peers, &overlay, 0, &OrthantRectPartitioner::median());
    let victim = (1..peers.len())
        .find(|&i| !build.tree.children(i).is_empty())
        .expect("internal node");
    // Survivor equilibrium, precomputed outside the timing loop.
    let live: Vec<usize> = (0..peers.len()).filter(|&i| i != victim).collect();
    let live_peers: Vec<PeerInfo> = live
        .iter()
        .enumerate()
        .map(|(d, &o)| PeerInfo::new(PeerId(d as u64), peers[o].point().clone()))
        .collect();
    let dense = oracle::equilibrium(&live_peers, &EmptyRectSelection);
    let mut out = vec![Vec::new(); peers.len()];
    for (di, &oi) in live.iter().enumerate() {
        out[oi] = dense.out_neighbors(di).iter().map(|&dj| live[dj]).collect();
    }
    let live_overlay = OverlayGraph::from_out_neighbors(out);

    let mut group = c.benchmark_group("repair");
    group.sample_size(20);
    group.bench_function(BenchmarkId::from_parameter("repair_n400"), |b| {
        b.iter(|| {
            repair_after_departure(
                std::hint::black_box(&peers),
                &live_overlay,
                &build,
                victim,
                &OrthantRectPartitioner::median(),
            )
            .expect("repair succeeds")
        });
    });
    group.bench_function(BenchmarkId::from_parameter("full_rebuild_n400"), |b| {
        b.iter(|| {
            build_tree(
                std::hint::black_box(&peers),
                &live_overlay,
                0,
                &OrthantRectPartitioner::median(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
