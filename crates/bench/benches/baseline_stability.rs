//! Baseline: departure sensitivity — §3 stability tree versus BFS and
//! random-parent trees under the full departure schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::core::stability::{non_leaf_departures, preferred_links, PreferredPolicy};
use geocast::figures::{baseline_stability, BaselineConfig};
use geocast::prelude::*;
use geocast_bench::{full_scale, print_report};

fn regenerate_and_time(c: &mut Criterion) {
    let cfg = if full_scale() {
        BaselineConfig::default()
    } else {
        BaselineConfig::quick()
    };
    print_report(&baseline_stability(&cfg));

    let base = uniform_points(500, 2, 1000.0, 1);
    let times_vec = lifetimes(500, 1000.0, 2);
    let peers = PeerInfo::from_point_set(&embed_lifetimes(&base, &times_vec));
    let overlay = oracle::equilibrium(
        &peers,
        &HyperplanesSelection::orthogonal(2, 2, MetricKind::L1),
    );
    let tree = preferred_links(&peers, &overlay, PreferredPolicy::MaxT)
        .to_multicast_tree()
        .expect("tree");
    let t: Vec<f64> = peers
        .iter()
        .map(geocast::prelude::PeerInfo::departure_time)
        .collect();

    let mut group = c.benchmark_group("baseline/departure_replay");
    group.sample_size(20);
    group.bench_function(BenchmarkId::from_parameter("replay_n500"), |b| {
        b.iter(|| non_leaf_departures(std::hint::black_box(&tree), std::hint::black_box(&t)));
    });
    group.bench_function(BenchmarkId::from_parameter("preferred_links_n500"), |b| {
        b.iter(|| {
            preferred_links(
                std::hint::black_box(&peers),
                &overlay,
                PreferredPolicy::MaxT,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
