//! Overlay-construction scaling: indexed + parallel equilibrium engine
//! versus the brute-force baseline, with a machine-readable summary.
//!
//! Emits `crates/bench/BENCH_overlay.json` so future PRs can
//! track the perf trajectory (`quick` scale by default; set
//! `GEOCAST_FULL=1` for the N = 50_000 paper-scale point).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::prelude::*;
use geocast_bench::full_scale;

fn time_once<O>(f: impl FnOnce() -> O) -> (f64, O) {
    let t = Instant::now();
    let out = f();
    (t.elapsed().as_secs_f64(), out)
}

/// One measured size: brute-force vs engine build time in seconds.
struct Row {
    n: usize,
    brute_s: Option<f64>,
    engine_s: f64,
    directed_edges: usize,
}

fn measure(ns: &[usize], brute_cap: usize) -> Vec<Row> {
    ns.iter()
        .map(|&n| {
            let peers = PeerInfo::from_point_set(&uniform_points(n, 2, 1000.0, 1));
            let (engine_s, graph) = time_once(|| oracle::equilibrium(&peers, &EmptyRectSelection));
            let brute_s = (n <= brute_cap).then(|| {
                let (secs, brute) =
                    time_once(|| oracle::equilibrium_brute_force(&peers, &EmptyRectSelection));
                assert_eq!(brute, graph, "engine must be exactly equivalent at N={n}");
                secs
            });
            Row {
                n,
                brute_s,
                engine_s,
                directed_edges: graph.directed_edge_count(),
            }
        })
        .collect()
}

fn write_summary(rows: &[Row]) {
    let mut json =
        String::from("{\n  \"bench\": \"overlay_scaling\",\n  \"dim\": 2,\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let brute = row.brute_s.map_or("null".to_owned(), |s| format!("{s:.6}"));
        let speedup = row
            .brute_s
            .map_or("null".to_owned(), |s| format!("{:.2}", s / row.engine_s));
        json.push_str(&format!(
            "    {{\"n\": {}, \"brute_seconds\": {}, \"engine_seconds\": {:.6}, \"speedup\": {}, \"directed_edges\": {}}}{}\n",
            row.n,
            brute,
            row.engine_s,
            speedup,
            row.directed_edges,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    // Anchor at this crate's manifest dir — cargo gives bench binaries a
    // package-relative cwd, which varies by invocation.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_overlay.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn overlay_scaling(c: &mut Criterion) {
    let (ns, brute_cap): (Vec<usize>, usize) = if full_scale() {
        (vec![1_000, 5_000, 10_000, 20_000, 50_000], 10_000)
    } else {
        (vec![500, 1_000, 2_000, 5_000, 10_000], 10_000)
    };
    let rows = measure(&ns, brute_cap);
    for row in &rows {
        let speedup = row
            .brute_s
            .map_or("n/a".to_owned(), |s| format!("{:.1}x", s / row.engine_s));
        println!(
            "N={:>6}: engine {:.3}s, brute {}, speedup {}",
            row.n,
            row.engine_s,
            row.brute_s
                .map_or("skipped".to_owned(), |s| format!("{s:.3}s")),
            speedup,
        );
    }
    write_summary(&rows);

    // Criterion samples at a size where both paths are affordable.
    let peers = PeerInfo::from_point_set(&uniform_points(2_000, 2, 1000.0, 1));
    let mut group = c.benchmark_group("overlay_scaling/equilibrium");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("engine_n2000_d2"), |b| {
        b.iter(|| oracle::equilibrium(std::hint::black_box(&peers), &EmptyRectSelection));
    });
    group.bench_function(BenchmarkId::from_parameter("brute_n2000_d2"), |b| {
        b.iter(|| {
            oracle::equilibrium_brute_force(std::hint::black_box(&peers), &EmptyRectSelection)
        });
    });
    group.finish();
}

criterion_group!(benches, overlay_scaling);
criterion_main!(benches);
