//! Fig. 1(a): max/avg overlay degree vs D under the empty-rectangle
//! rule. Regenerates the panel, then times the equilibrium computation
//! that produces it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::figures::{fig1a, Fig1Config};
use geocast::prelude::*;
use geocast_bench::{full_scale, print_report};

fn regenerate_and_time(c: &mut Criterion) {
    let cfg = if full_scale() {
        Fig1Config::default()
    } else {
        Fig1Config::quick()
    };
    print_report(&fig1a(&cfg));

    let mut group = c.benchmark_group("fig1a/equilibrium");
    group.sample_size(10);
    for (n, dim) in [(200usize, 2usize), (200, 4), (500, 2)] {
        let peers = PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, 1));
        group.bench_function(BenchmarkId::from_parameter(format!("n{n}_d{dim}")), |b| {
            b.iter(|| oracle::equilibrium(std::hint::black_box(&peers), &EmptyRectSelection));
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
