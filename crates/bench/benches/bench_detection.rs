//! Failure-detection plane: detection latency, false-positive rate, and
//! coverage recovery versus the suspicion timeout, with a
//! machine-readable summary.
//!
//! Three claims under test:
//!
//! 1. **Latency/accuracy trade-off.** Sweeping the SWIM suspicion
//!    timeout under loss, detection latency grows with the timeout
//!    while refuted suspicions (near-misses) shrink — the knob every
//!    deployment tunes, now with numbers attached.
//! 2. **Strict gate.** At zero loss the detector is exact: every
//!    injected failure (crash-stop and silent-drop) detected, zero
//!    false positives, payload coverage back to 100%.
//! 3. **Convergence.** Every run — lossy or not — drives the
//!    `TopologyStore` byte-identical to an oracle rebuild replaying the
//!    same verdicts, because detection is the topology's only writer.
//!
//! Results land in `crates/bench/BENCH_detection.json` (quick scale by
//! default; set `GEOCAST_FULL=1` for the paper-scale scenario with the
//! 0.5–4 s sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::core::detect::{run_detection, DetectionReport, DetectionScenario};
use geocast::prelude::*;
use geocast_bench::full_scale;

struct Measurement {
    suspicion_ms: u64,
    loss: f64,
    report: DetectionReport,
}

fn measure(base: &DetectionScenario, suspicion_ms: u64, loss: f64) -> Measurement {
    let mut sc = base.clone();
    sc.detector.suspicion_timeout = SimDuration::from_millis(suspicion_ms);
    sc.loss = loss;
    Measurement {
        suspicion_ms,
        loss,
        report: run_detection(&sc),
    }
}

fn fmt_recovery(r: &DetectionReport) -> String {
    r.recovered_after.map_or("null".to_owned(), |d| {
        format!("{:.0}", d.as_secs_f64() * 1e3)
    })
}

fn row_json(m: &Measurement) -> String {
    let r = &m.report;
    format!(
        "    {{\n      \"suspicion_ms\": {},\n      \"loss\": {},\n      \
         \"injected\": {},\n      \"detected\": {},\n      \
         \"mean_detection_ms\": {:.0},\n      \"max_detection_ms\": {:.0},\n      \
         \"false_positives\": {},\n      \"suspect_events\": {},\n      \
         \"refute_events\": {},\n      \"min_coverage\": {:.4},\n      \
         \"final_coverage\": {:.4},\n      \"recovery_ms\": {},\n      \
         \"converged\": {}\n    }}",
        m.suspicion_ms,
        m.loss,
        r.crashed.len() + r.silent.len(),
        r.detected.len(),
        r.mean_detection_ms(),
        r.max_detection_ms(),
        r.false_positives,
        r.suspect_events,
        r.refute_events,
        r.min_coverage,
        r.final_coverage,
        fmt_recovery(r),
        r.converged,
    )
}

fn timeline_json(r: &DetectionReport) -> String {
    let samples: Vec<String> = r
        .timeline
        .iter()
        .map(|s| {
            format!(
                "    {{ \"ms\": {:.0}, \"coverage\": {:.4}, \"degraded_groups\": {}, \"pending\": {} }}",
                s.at.as_secs_f64() * 1e3,
                s.coverage,
                s.degraded_groups,
                s.pending_failures,
            )
        })
        .collect();
    samples.join(",\n")
}

fn write_summary(sc: &DetectionScenario, rows: &[Measurement], strict: &Measurement) {
    let entries: Vec<String> = rows.iter().map(row_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"failure_detection\",\n  \"n\": {},\n  \"groups\": {},\n  \
         \"group_size\": {},\n  \"crash_count\": {},\n  \"silent_count\": {},\n  \
         \"wave_at_ms\": {:.0},\n  \"sweep\": [\n{}\n  ],\n  \
         \"strict_zero_loss\": [\n{}\n  ],\n  \"recovery_timeline\": [\n{}\n  ]\n}}\n",
        sc.peers,
        sc.groups,
        sc.group_size,
        sc.crash_count,
        sc.silent_count,
        sc.crash_at.as_secs_f64() * 1e3,
        entries.join(",\n"),
        row_json(strict),
        timeline_json(&strict.report),
    );
    // Anchor at this crate's manifest dir — cargo gives bench binaries a
    // package-relative cwd, which varies by invocation.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_detection.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn failure_detection(c: &mut Criterion) {
    let (base, loss, sweep): (DetectionScenario, f64, Vec<u64>) = if full_scale() {
        (
            DetectionScenario::default(),
            0.05,
            vec![500, 1000, 2000, 4000],
        )
    } else {
        (DetectionScenario::quick(), 0.05, vec![200, 400, 800])
    };

    let rows: Vec<Measurement> = sweep
        .iter()
        .map(|&ms| {
            let m = measure(&base, ms, loss);
            let r = &m.report;
            println!(
                "suspicion {} ms (loss {:.0}%): detected {}/{} in mean {:.0} ms (max {:.0}), \
                 {} false positives, {} refutes, coverage min {:.1}% recovery {} ms, converged={}",
                m.suspicion_ms,
                m.loss * 100.0,
                r.detected.len(),
                r.crashed.len() + r.silent.len(),
                r.mean_detection_ms(),
                r.max_detection_ms(),
                r.false_positives,
                r.refute_events,
                r.min_coverage * 100.0,
                fmt_recovery(r),
                r.converged,
            );
            assert!(
                r.converged,
                "suspicion {} ms: topology diverged from the oracle",
                m.suspicion_ms
            );
            m
        })
        .collect();

    // The trade-off claim: longer suspicion detects strictly later.
    let first = rows.first().expect("non-empty sweep");
    let last = rows.last().expect("non-empty sweep");
    assert!(
        first.report.mean_detection_ms() < last.report.mean_detection_ms(),
        "detection latency did not grow with the suspicion timeout: {:.0} vs {:.0}",
        first.report.mean_detection_ms(),
        last.report.mean_detection_ms(),
    );

    // The strict gate: zero loss, base suspicion — exact detection and
    // full recovery (this is what CI's `geocast detect --strict` runs).
    let strict = measure(
        &base,
        base.detector.suspicion_timeout.as_nanos() / 1_000_000,
        0.0,
    );
    println!(
        "strict zero-loss: detected {}/{}, {} false positives, final coverage {:.1}%, converged={}",
        strict.report.detected.len(),
        strict.report.crashed.len() + strict.report.silent.len(),
        strict.report.false_positives,
        strict.report.final_coverage * 100.0,
        strict.report.converged,
    );
    assert!(
        strict.report.strict_ok(),
        "zero-loss run failed the strict gate: {:?}",
        strict.report,
    );
    write_summary(&base, &rows, &strict);

    // Criterion samples the full detection pipeline (plane + repair +
    // referee) at quick scale.
    let quick = DetectionScenario::quick();
    let mut group = c.benchmark_group("detection/scenario");
    group.sample_size(10);
    group.bench_function(
        BenchmarkId::from_parameter(format!("n{}_g{}", quick.peers, quick.groups)),
        |b| b.iter(|| run_detection(std::hint::black_box(&quick))),
    );
    group.finish();
}

criterion_group!(benches, failure_detection);
criterion_main!(benches);
