//! Batched data plane: payload throughput and per-payload message cost
//! versus batch depth × Zipf skew, with a machine-readable summary.
//!
//! Three claims under test:
//!
//! 1. **Batching.** A flush walks a group's delivery edges once per
//!    batch, so on the Zipf-head scenario (hot group gets both the most
//!    payloads and the biggest tree) messages/payload must drop by at
//!    least 5x at batch depth 64 versus publishing the same payloads
//!    one at a time.
//! 2. **Plan cache.** Steady-state flushes are epoch-checked cache hits
//!    — with no churn the hit rate must exceed 90%, and even with
//!    periodic churn only the repaired groups recompute.
//! 3. **Coverage.** Batched delivery rides the same grafted trees as
//!    sequential publish: zero stranded payload-deliveries, and every
//!    group stays byte-identical to a from-scratch rebuild.
//!
//! Results land in `crates/bench/BENCH_publish.json` (quick scale by
//! default; set `GEOCAST_FULL=1` for the 2000-peer, 256-group sweep).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::core::dataplane::FlushReport;
use geocast::core::groups::GroupEngine;
use geocast::overlay::churn::{ChurnEvent, ChurnSchedule};
use geocast::prelude::*;
use geocast::sim::workload::{zipf_group_sizes, PublishWorkload};
use geocast_bench::full_scale;

struct Scale {
    n: usize,
    groups: usize,
    subscriptions: usize,
    ticks: usize,
    churn_every: usize,
}

struct Measurement {
    zipf: f64,
    batch: usize,
    churn_every: usize,
    report: FlushReport,
    payloads_per_s: f64,
    exact: bool,
}

fn measure(scale: &Scale, zipf: f64, batch: usize, churn_every: usize) -> Measurement {
    let points = uniform_points(scale.n, 2, 1000.0, 1);
    let store = TopologyStore::from_peers(
        PeerInfo::from_point_set(&points),
        Arc::new(EmptyRectSelection),
    );
    let mut engine = GroupEngine::new(store, Arc::new(OrthantRectPartitioner::median()));
    let mut state = 0x6461_7461_706c_616eu64 ^ batch as u64;
    let sizes = zipf_group_sizes(
        scale.groups,
        scale.subscriptions.max(scale.groups),
        zipf.max(1.0),
    );
    let ids = engine.seed_groups_placed(MembershipPlacement::Clustered, &sizes, &mut state);

    let churn_events = scale.ticks.checked_div(churn_every).unwrap_or(0);
    let schedule = ChurnSchedule::from_pattern(
        scale.n,
        &ChurnPattern::Mixed {
            events: churn_events,
            join_rate: 1,
            leave_rate: 1,
        },
        2,
        1000.0,
        7 ^ batch as u64,
    );
    let mut churn_it = schedule.events().iter();
    let workload = PublishWorkload {
        groups: scale.groups,
        exponent: zipf,
        ticks: scale.ticks,
        payloads_per_tick: batch,
    };

    let mut report = FlushReport::default();
    let mut flush_seconds = 0.0f64;
    for tick in 0..scale.ticks {
        if churn_every > 0 && tick % churn_every == churn_every - 1 {
            match churn_it.next() {
                Some(ChurnEvent::Join(p)) => {
                    engine.join(p.clone());
                }
                Some(ChurnEvent::Leave(id)) => engine.leave(*id),
                None => {}
            }
        }
        let counts = workload.tick_payloads(1, tick);
        let start = Instant::now();
        for (gi, &payloads) in counts.iter().enumerate() {
            if payloads > 0 {
                engine.enqueue(ids[gi], payloads);
            }
        }
        for b in engine.flush_tick() {
            report.absorb(&b);
        }
        flush_seconds += start.elapsed().as_secs_f64();
    }
    let exact = ids.iter().all(|&g| engine.matches_reference(g));
    Measurement {
        zipf,
        batch,
        churn_every,
        report,
        payloads_per_s: report.payloads as f64 / flush_seconds.max(1e-9),
        exact,
    }
}

fn row_json(m: &Measurement) -> String {
    let r = &m.report;
    format!(
        "    {{\n      \"zipf\": {:.1},\n      \"batch\": {},\n      \
         \"churn_every\": {},\n      \"payloads\": {},\n      \
         \"batches\": {},\n      \"messages\": {},\n      \
         \"sequential_messages\": {},\n      \"messages_per_payload\": {:.3},\n      \
         \"reduction\": {:.2},\n      \"cache_hits\": {},\n      \
         \"cache_misses\": {},\n      \"cache_hit_rate\": {:.4},\n      \
         \"payload_strandings\": {},\n      \"payloads_per_second\": {:.0},\n      \
         \"exact\": {}\n    }}",
        m.zipf,
        m.batch,
        m.churn_every,
        r.payloads,
        r.batches,
        r.messages,
        r.sequential_messages,
        r.messages_per_payload(),
        r.reduction(),
        r.cache_hits,
        r.cache_misses,
        r.cache_hit_rate(),
        r.payload_strandings,
        m.payloads_per_s,
        m.exact,
    )
}

fn write_summary(scale: &Scale, rows: &[Measurement], steady: &Measurement) {
    let entries: Vec<String> = rows.iter().map(row_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"publish_dataplane\",\n  \"dim\": 2,\n  \"n\": {},\n  \
         \"groups\": {},\n  \"subscriptions\": {},\n  \"ticks\": {},\n  \
         \"churn_every\": {},\n  \"sweep\": [\n{}\n  ],\n  \
         \"steady_state\": [\n{}\n  ]\n}}\n",
        scale.n,
        scale.groups,
        scale.subscriptions,
        scale.ticks,
        scale.churn_every,
        entries.join(",\n"),
        row_json(steady),
    );
    // Anchor at this crate's manifest dir — cargo gives bench binaries a
    // package-relative cwd, which varies by invocation.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_publish.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn publish_dataplane(c: &mut Criterion) {
    let scale = if full_scale() {
        Scale {
            n: 2_000,
            groups: 256,
            subscriptions: 4_000,
            ticks: 200,
            churn_every: 25,
        }
    } else {
        Scale {
            n: 300,
            groups: 32,
            subscriptions: 600,
            ticks: 60,
            churn_every: 15,
        }
    };
    let exponents = [0.0, 1.0, 1.5];
    let batches = [1usize, 8, 64, 256];

    let mut rows: Vec<Measurement> = Vec::new();
    for &zipf in &exponents {
        for &batch in &batches {
            let m = measure(&scale, zipf, batch, scale.churn_every);
            println!(
                "zipf={:.1} batch={}: {} payloads in {} frames ({:.3} msg/payload, \
                 {:.1}x reduction, {:.0}% cache hits, {} stranded, {:.2e} payloads/s, exact={})",
                m.zipf,
                m.batch,
                m.report.payloads,
                m.report.messages,
                m.report.messages_per_payload(),
                m.report.reduction(),
                m.report.cache_hit_rate() * 100.0,
                m.report.payload_strandings,
                m.payloads_per_s,
                m.exact,
            );
            assert!(m.exact, "zipf={zipf} batch={batch}: engine diverged");
            assert_eq!(
                m.report.payload_strandings, 0,
                "zipf={zipf} batch={batch}: batched delivery stranded payloads"
            );
            rows.push(m);
        }
    }

    // The batching claim: on the Zipf-head scenario, depth 64 must cut
    // payload-carrying messages at least 5x versus sequential publish.
    let head = rows
        .iter()
        .find(|m| m.zipf == 1.5 && m.batch == 64)
        .expect("zipf 1.5 / batch 64 row");
    assert!(
        head.report.reduction() >= 5.0,
        "zipf 1.5 @ batch 64: reduction {:.2} < 5x",
        head.report.reduction(),
    );
    // Batch depth 1 must degenerate to exactly the sequential cost.
    for m in rows.iter().filter(|m| m.batch == 1) {
        assert_eq!(
            m.report.messages, m.report.sequential_messages,
            "zipf={}: batch-of-1 diverged from sequential cost",
            m.zipf,
        );
    }

    // The plan-cache claim: with no churn, every flush after a group's
    // first is an epoch-checked hit.
    let steady = measure(&scale, 1.5, 64, 0);
    println!(
        "steady state (no churn): {:.1}% cache hits over {} flushes, {:.2e} payloads/s",
        steady.report.cache_hit_rate() * 100.0,
        steady.report.batches,
        steady.payloads_per_s,
    );
    assert!(
        steady.report.cache_hit_rate() > 0.9,
        "steady-state hit rate {:.3} — plans are being recomputed",
        steady.report.cache_hit_rate(),
    );
    write_summary(&scale, &rows, &steady);

    // Criterion samples one steady-state tick: enqueue a Zipf round and
    // flush it through the warmed plan cache.
    let mut group = c.benchmark_group("publish/flush_tick");
    group.sample_size(20);
    group.bench_function(
        BenchmarkId::from_parameter(format!("n{}_g{}_b64", scale.n, scale.groups)),
        |b| {
            let points = uniform_points(scale.n, 2, 1000.0, 1);
            let store = TopologyStore::from_peers(
                PeerInfo::from_point_set(&points),
                Arc::new(EmptyRectSelection),
            );
            let mut engine = GroupEngine::new(store, Arc::new(OrthantRectPartitioner::median()));
            let mut state = 0x0066_6c75_7368_u64; // "flush"
            let sizes = zipf_group_sizes(scale.groups, scale.subscriptions, 1.5);
            let ids = engine.seed_groups_placed(MembershipPlacement::Clustered, &sizes, &mut state);
            let workload = PublishWorkload {
                groups: scale.groups,
                exponent: 1.5,
                ticks: 1,
                payloads_per_tick: 64,
            };
            let counts = workload.tick_payloads(1, 0);
            b.iter(|| {
                for (gi, &payloads) in counts.iter().enumerate() {
                    if payloads > 0 {
                        engine.enqueue(ids[gi], payloads);
                    }
                }
                std::hint::black_box(engine.flush_tick())
            });
        },
    );
    group.finish();
}

criterion_group!(benches, publish_dataplane);
criterion_main!(benches);
