//! Dissemination: full multicast sessions (build + payload rounds) over
//! the simulator, and the per-payload cost of tree forwarding.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::core::session::run_session_default;
use geocast::prelude::*;

fn bench_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    for (n, payloads) in [(100usize, 10u64), (300, 5)] {
        let peers = PeerInfo::from_point_set(&uniform_points(n, 2, 1000.0, 1));
        let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
        group.bench_function(
            BenchmarkId::from_parameter(format!("n{n}_p{payloads}")),
            |b| {
                b.iter(|| {
                    let outcome = run_session_default(
                        std::hint::black_box(&peers),
                        &overlay,
                        0,
                        Arc::new(OrthantRectPartitioner::median()),
                        payloads,
                        7,
                    );
                    assert_eq!(outcome.duplicates, 0);
                    assert_eq!(outcome.data_messages, payloads * (n as u64 - 1));
                    outcome.data_messages
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sessions);
criterion_main!(benches);
