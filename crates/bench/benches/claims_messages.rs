//! §2/§3 in-text claims: N−1 messages, zero duplicates, heap-property
//! trees. Regenerates both claim tables, then times the full distributed
//! construction.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::core::protocol;
use geocast::figures::{claims_section2, claims_section3, ClaimsConfig};
use geocast::prelude::*;
use geocast_bench::{full_scale, print_report};

fn regenerate_and_time(c: &mut Criterion) {
    let cfg = if full_scale() {
        ClaimsConfig::default()
    } else {
        ClaimsConfig::quick()
    };
    print_report(&claims_section2(&cfg));
    print_report(&claims_section3(&cfg));

    let mut group = c.benchmark_group("claims/distributed_build");
    group.sample_size(10);
    for n in [100usize, 300] {
        let peers = PeerInfo::from_point_set(&uniform_points(n, 2, 1000.0, 1));
        let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let result = protocol::build_distributed_default(
                    std::hint::black_box(&peers),
                    std::hint::black_box(&overlay),
                    0,
                    Arc::new(OrthantRectPartitioner::median()),
                    7,
                );
                assert_eq!(result.duplicates, 0);
                result.messages
            });
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
