//! Baseline: construction message cost — the §2 algorithm's N−1 versus
//! overlay flooding (the intro's "send many messages" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::figures::{baseline_messages, BaselineConfig};
use geocast::prelude::*;
use geocast_bench::{full_scale, print_report};

fn regenerate_and_time(c: &mut Criterion) {
    let cfg = if full_scale() {
        BaselineConfig::default()
    } else {
        BaselineConfig::quick()
    };
    print_report(&baseline_messages(&cfg));

    let peers = PeerInfo::from_point_set(&uniform_points(500, 2, 1000.0, 1));
    let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
    let mut group = c.benchmark_group("baseline/construction");
    group.sample_size(20);
    group.bench_function(
        BenchmarkId::from_parameter("space_partitioning_n500"),
        |b| {
            b.iter(|| {
                build_tree(
                    std::hint::black_box(&peers),
                    &overlay,
                    0,
                    &OrthantRectPartitioner::median(),
                )
            });
        },
    );
    group.bench_function(BenchmarkId::from_parameter("flooding_n500"), |b| {
        b.iter(|| baseline::flood(std::hint::black_box(&overlay), 0));
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
