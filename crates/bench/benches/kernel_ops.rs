//! Micro-benchmarks of the geometric kernels everything else is built
//! on: orthant classification, empty-rectangle frontiers (definition vs
//! frontier algorithm), neighbour selection, zone arithmetic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::geom::dominance::{empty_rect_neighbors, empty_rect_neighbors_naive};
use geocast::overlay::select::NeighborSelection;
use geocast::prelude::*;

fn bench_kernels(c: &mut Criterion) {
    // Orthant classification.
    let points = uniform_points(1000, 4, 1000.0, 1).into_points();
    c.bench_function("kernel/orthant_classify_1k_d4", |b| {
        b.iter(|| {
            let p = &points[0];
            points[1..]
                .iter()
                .map(|q| Orthant::classify(p, q).unwrap().index())
                .sum::<usize>()
        });
    });

    // Empty-rectangle neighbours: frontier algorithm vs definitional.
    let mut group = c.benchmark_group("kernel/empty_rect");
    for n in [100usize, 400] {
        let pts = uniform_points(n, 2, 1000.0, 2).into_points();
        let (p, cands) = pts.split_first().unwrap();
        group.bench_function(BenchmarkId::new("frontier", n), |b| {
            b.iter(|| empty_rect_neighbors(std::hint::black_box(p), cands));
        });
        group.bench_function(BenchmarkId::new("naive", n), |b| {
            b.iter(|| empty_rect_neighbors_naive(std::hint::black_box(p), cands));
        });
    }
    group.finish();

    // Selection methods over a realistic candidate set.
    let peers = PeerInfo::from_point_set(&uniform_points(500, 3, 1000.0, 3));
    let cands: Vec<&PeerInfo> = peers[1..].iter().collect();
    let mut group = c.benchmark_group("kernel/selection_n500_d3");
    group.bench_function("empty_rect", |b| {
        b.iter(|| EmptyRectSelection.select(std::hint::black_box(&peers[0]), &cands));
    });
    group.bench_function("orthogonal_k2", |b| {
        let sel = HyperplanesSelection::orthogonal(3, 2, MetricKind::L1);
        b.iter(|| sel.select(std::hint::black_box(&peers[0]), &cands));
    });
    group.bench_function("signed_k2", |b| {
        let sel = HyperplanesSelection::signed(3, 2, MetricKind::L1);
        b.iter(|| sel.select(std::hint::black_box(&peers[0]), &cands));
    });
    group.bench_function("k_closest_10", |b| {
        let sel = HyperplanesSelection::k_closest(3, 10, MetricKind::L1);
        b.iter(|| sel.select(std::hint::black_box(&peers[0]), &cands));
    });
    group.finish();

    // Zone arithmetic.
    let p = Point::new(vec![500.0, 500.0, 500.0]).unwrap();
    let q = Point::new(vec![700.0, 300.0, 600.0]).unwrap();
    c.bench_function("kernel/zone_intersect_d3", |b| {
        let zone = Rect::full(3);
        let orthant = Orthant::classify(&p, &q).unwrap();
        b.iter(|| zone.intersect(&Rect::orthant_of(std::hint::black_box(&p), orthant)));
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
