//! Ablation of the §2 child-pick rule (median vs closest vs farthest).
//! Regenerates the comparison table, then times each rule's build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::figures::{ablation_partitioner, AblationConfig};
use geocast::prelude::*;
use geocast_bench::{full_scale, print_report};

fn regenerate_and_time(c: &mut Criterion) {
    let cfg = if full_scale() {
        AblationConfig::default()
    } else {
        AblationConfig::quick()
    };
    print_report(&ablation_partitioner(&cfg));

    let peers = PeerInfo::from_point_set(&uniform_points(400, 2, 1000.0, 1));
    let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
    let mut group = c.benchmark_group("ablation/build_by_rule");
    group.sample_size(20);
    for (name, partitioner) in [
        ("median", OrthantRectPartitioner::median()),
        ("closest", OrthantRectPartitioner::closest()),
        ("farthest", OrthantRectPartitioner::farthest()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| build_tree(std::hint::black_box(&peers), &overlay, 0, &partitioner));
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
