//! Live-path churn: the incremental (localized) membership engine versus
//! the old full-reconvergence procedure, with a machine-readable summary.
//!
//! The paper's experimental procedure inserts one peer at a time and
//! re-converges the **whole** overlay after every insertion — `O(N)`
//! gossip rounds of `O(N · deg^BR)` messages per event. The
//! `TopologyStore`-backed localized path touches only the dirty region
//! of each event. This bench builds an `N`-peer live overlay through
//! sequential localized insertion, then samples both paths' per-insert
//! cost *at the same population* and records the speedup in
//! `crates/bench/BENCH_churn.json` (quick scale by default; set
//! `GEOCAST_FULL=1` for the N = 5000 paper-scale point).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::prelude::*;
use geocast_bench::full_scale;

fn fresh_points(n: usize, seed: u64) -> Vec<Point> {
    uniform_points(n, 2, 1000.0, seed).into_points()
}

struct Measurement {
    n: usize,
    incremental_build_s: f64,
    localized_per_insert_s: f64,
    full_per_insert_s: f64,
    full_samples: usize,
    localized_samples: usize,
    store_mixed_events_per_s: f64,
    exact: bool,
}

fn measure(n: usize) -> Measurement {
    let mut net = OverlayNetwork::new(Arc::new(EmptyRectSelection), NetworkConfig::default());

    // 1. Sequential-insertion build through the localized live path.
    let points = fresh_points(n, 1);
    let start = Instant::now();
    for p in points {
        net.add_peer_localized(p);
    }
    let incremental_build_s = start.elapsed().as_secs_f64();

    // Exactness gate: the localized live build must sit at the oracle
    // equilibrium of the same point set.
    let peers = PeerInfo::from_point_set(&uniform_points(n, 2, 1000.0, 1));
    let exact = net.topology() == oracle::equilibrium(&peers, &EmptyRectSelection)
        && net.topology() == net.reference_topology();

    // 2. Old full-reconvergence path, sampled at population ~N: random
    //    bootstrap join + global gossip convergence (the paper's
    //    procedure). One sample: a single event already costs minutes
    //    at paper scale, and the measurement is deterministic-ish.
    let full_samples = 1usize;
    let extra = fresh_points(full_samples, 2);
    let start = Instant::now();
    for p in extra {
        net.add_peer(p);
        let report = net.converge();
        assert!(report.converged, "full path must re-converge at N={n}");
    }
    let full_per_insert_s = start.elapsed().as_secs_f64() / full_samples as f64;

    // 3. Localized path, sampled at the same population.
    let localized_samples = 50usize;
    let extra = fresh_points(localized_samples, 3);
    let start = Instant::now();
    for p in extra {
        net.add_peer_localized(p);
    }
    let localized_per_insert_s = start.elapsed().as_secs_f64() / localized_samples as f64;

    // 4. Bonus: pure store churn throughput under sustained mixed churn
    //    (the figure panel's workload) at the same N.
    let base = PeerInfo::from_point_set(&uniform_points(n, 2, 1000.0, 5));
    let mut store = TopologyStore::from_peers(base, Arc::new(EmptyRectSelection));
    let pattern = ChurnPattern::Mixed {
        events: 200,
        join_rate: 1,
        leave_rate: 1,
    };
    let schedule = churn::ChurnSchedule::from_pattern(n, &pattern, 2, 1000.0, 6);
    let start = Instant::now();
    let report = churn::run_schedule_on_store(&mut store, &schedule);
    let store_mixed_events_per_s =
        (report.joins + report.leaves) as f64 / start.elapsed().as_secs_f64().max(1e-9);

    Measurement {
        n,
        incremental_build_s,
        localized_per_insert_s,
        full_per_insert_s,
        full_samples,
        localized_samples,
        store_mixed_events_per_s,
        exact,
    }
}

fn write_summary(m: &Measurement) {
    let speedup = m.full_per_insert_s / m.localized_per_insert_s;
    let json = format!(
        "{{\n  \"bench\": \"churn_live_path\",\n  \"dim\": 2,\n  \"n\": {},\n  \
         \"incremental_build_seconds\": {:.6},\n  \
         \"localized_per_insert_seconds\": {:.9},\n  \
         \"full_reconverge_per_insert_seconds\": {:.6},\n  \
         \"speedup_per_insert\": {:.1},\n  \
         \"full_samples\": {},\n  \"localized_samples\": {},\n  \
         \"store_mixed_events_per_second\": {:.0},\n  \
         \"incremental_equals_oracle\": {}\n}}\n",
        m.n,
        m.incremental_build_s,
        m.localized_per_insert_s,
        m.full_per_insert_s,
        speedup,
        m.full_samples,
        m.localized_samples,
        m.store_mixed_events_per_s,
        m.exact,
    );
    // Anchor at this crate's manifest dir — cargo gives bench binaries a
    // package-relative cwd, which varies by invocation.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_churn.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn churn_live_path(c: &mut Criterion) {
    let n = if full_scale() { 5_000 } else { 500 };
    let m = measure(n);
    println!(
        "N={}: localized build {:.2}s total; per-insert localized {:.6}s vs full reconvergence {:.3}s => {:.1}x; store mixed churn {:.0} events/s; exact={}",
        m.n,
        m.incremental_build_s,
        m.localized_per_insert_s,
        m.full_per_insert_s,
        m.full_per_insert_s / m.localized_per_insert_s,
        m.store_mixed_events_per_s,
        m.exact,
    );
    assert!(m.exact, "incremental live build diverged from the oracle");
    write_summary(&m);

    // Criterion samples the store's insert path at a fixed modest size.
    let mut group = c.benchmark_group("churn/store_insert");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("n2000_d2"), |b| {
        let base = PeerInfo::from_point_set(&uniform_points(2_000, 2, 1000.0, 9));
        let mut store = TopologyStore::from_peers(base, Arc::new(EmptyRectSelection));
        let mut extra = fresh_points(4_096, 10).into_iter();
        b.iter(|| {
            let p = extra.next().expect("enough pre-drawn points");
            store.insert(std::hint::black_box(p))
        });
    });
    group.finish();
}

criterion_group!(benches, churn_live_path);
criterion_main!(benches);
