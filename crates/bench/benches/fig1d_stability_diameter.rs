//! Fig. 1(d): stability-tree diameter vs K for D = 2..10. Regenerates
//! the panel, then times the K-sweep machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::core::stability::{preferred_links, PreferredPolicy};
use geocast::figures::{fig1d, StabilityConfig};
use geocast::prelude::*;
use geocast_bench::{full_scale, print_report};

fn regenerate_and_time(c: &mut Criterion) {
    let cfg = if full_scale() {
        StabilityConfig::default()
    } else {
        StabilityConfig::quick()
    };
    print_report(&fig1d(&cfg));

    let mut group = c.benchmark_group("fig1d/k_sweep");
    group.sample_size(10);
    for dim in [2usize, 5] {
        let base = uniform_points(300, dim, 1000.0, 1);
        let times = lifetimes(300, 1000.0, 2);
        let peers = PeerInfo::from_point_set(&embed_lifetimes(&base, &times));
        let ks: Vec<usize> = vec![1, 5, 10, 25, 50];
        group.bench_function(
            BenchmarkId::from_parameter(format!("n300_d{dim}_5ks")),
            |b| {
                b.iter(|| {
                    let mut diameters = Vec::new();
                    oracle::orthogonal_k_sweep_with(
                        std::hint::black_box(&peers),
                        MetricKind::L1,
                        &ks,
                        |_, graph| {
                            let tree = preferred_links(&peers, graph, PreferredPolicy::MaxT)
                                .to_multicast_tree()
                                .expect("tree at equilibrium");
                            diameters.push(tree.diameter());
                        },
                    );
                    diameters
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
