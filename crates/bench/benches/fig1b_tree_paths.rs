//! Fig. 1(b): root-to-leaf path lengths of the §2 multicast tree vs D.
//! Regenerates the panel, then times single tree constructions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::figures::{fig1b, Fig1Config};
use geocast::prelude::*;
use geocast_bench::{full_scale, print_report};

fn regenerate_and_time(c: &mut Criterion) {
    let cfg = if full_scale() {
        Fig1Config::default()
    } else {
        Fig1Config::quick()
    };
    print_report(&fig1b(&cfg));

    let mut group = c.benchmark_group("fig1b/build_tree");
    group.sample_size(20);
    for (n, dim) in [(200usize, 2usize), (500, 2), (200, 5)] {
        let peers = PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, 1));
        let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
        let partitioner = OrthantRectPartitioner::median();
        group.bench_function(BenchmarkId::from_parameter(format!("n{n}_d{dim}")), |b| {
            b.iter(|| {
                build_tree(
                    std::hint::black_box(&peers),
                    std::hint::black_box(&overlay),
                    0,
                    &partitioner,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
