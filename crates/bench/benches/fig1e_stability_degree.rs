//! Fig. 1(e): maximum multicast-tree degree vs K for D = 2..10.
//! Regenerates the panel, then times preferred-link selection alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::core::stability::{preferred_links, PreferredPolicy};
use geocast::figures::{fig1e, StabilityConfig};
use geocast::prelude::*;
use geocast_bench::{full_scale, print_report};

fn regenerate_and_time(c: &mut Criterion) {
    let cfg = if full_scale() {
        StabilityConfig::default()
    } else {
        StabilityConfig::quick()
    };
    print_report(&fig1e(&cfg));

    let mut group = c.benchmark_group("fig1e/preferred_links");
    group.sample_size(20);
    for k in [1usize, 10, 50] {
        let base = uniform_points(400, 3, 1000.0, 1);
        let times = lifetimes(400, 1000.0, 2);
        let peers = PeerInfo::from_point_set(&embed_lifetimes(&base, &times));
        let overlay = oracle::equilibrium(
            &peers,
            &HyperplanesSelection::orthogonal(3, k, MetricKind::L1),
        );
        group.bench_function(BenchmarkId::from_parameter(format!("n400_d3_k{k}")), |b| {
            b.iter(|| {
                preferred_links(
                    std::hint::black_box(&peers),
                    std::hint::black_box(&overlay),
                    PreferredPolicy::MaxT,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
