//! Thread-per-shard runtime scaling: channel-fed shard workers versus
//! the serial shard dispatcher, with a machine-readable summary.
//!
//! Two axes, recorded in `crates/bench/BENCH_runtime.json`:
//!
//! 1. **Sustained churn throughput.** Mixed join/leave replay through a
//!    [`ShardRuntime`] at worker counts {1, 4, 16} against the serial
//!    dispatcher on the same sharded store. The coordinator applies
//!    global-table updates in event order while workers answer shortlist
//!    batches, so on a multi-core host the wall-clock gain tracks the
//!    *critical path*: `coordinator_busy + max(worker_busy)` versus the
//!    serial model `coordinator_busy + Σ worker_busy`, both read from
//!    [`RuntimeStats`]. The JSON records wall events/s, model events/s,
//!    and the model speedup along with the core count — on a
//!    single-core runner wall time cannot drop, and the critical path
//!    is the honest measure of what the decomposition buys.
//! 2. **Cross-shard escape ratio.** The fraction of shortlist requests
//!    that escape a peer's home shard — the runtime's communication
//!    cost — swept over placement (uniform vs clustered), halo width
//!    (auto vs none), and tile aspect (square vs 8:1-stretched domain,
//!    which skews the tiling the same way).
//!
//! Quick scale (default) sweeps N = 20k; `GEOCAST_FULL=1` raises it to
//! 50k with a longer schedule.

use std::time::Instant;
use std::{collections::HashSet, sync::Arc};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::geom::gen::clustered_points;
use geocast::geom::Point;
use geocast::overlay::{RuntimeConfig, ShardRuntime};
use geocast::prelude::*;
use geocast_bench::full_scale;

const WORKER_COUNTS: [usize; 3] = [1, 4, 16];

fn mixed_schedule(
    n: usize,
    events: usize,
    dim: usize,
    vmax: f64,
    seed: u64,
) -> churn::ChurnSchedule {
    let pattern = ChurnPattern::Mixed {
        events,
        join_rate: 1,
        leave_rate: 1,
    };
    churn::ChurnSchedule::from_pattern(n, &pattern, dim, vmax, seed)
}

/// Byte-identical cross-check at a size where the serial replay is
/// cheap: the bench gate refuses to report speedups for a divergent
/// runtime (the exhaustive version lives in `prop_runtime.rs`).
fn exactness_check(shards: usize) -> bool {
    let peers = PeerInfo::from_point_set(&uniform_points(1_500, 2, 1000.0, 3));
    let schedule = mixed_schedule(1_500, 80, 2, 1000.0, 11);
    let config = ShardConfig::new(shards);
    let mut serial =
        TopologyStore::from_peers_sharded(peers.clone(), Arc::new(EmptyRectSelection), &config);
    churn::run_schedule_on_store(&mut serial, &schedule);
    let mut driven =
        TopologyStore::from_peers_sharded(peers, Arc::new(EmptyRectSelection), &config);
    let mut rt = ShardRuntime::launch(&mut driven, &RuntimeConfig::default());
    rt.run_schedule(&mut driven, &schedule);
    rt.shutdown(&mut driven);
    serial.graph() == driven.graph() && serial.fingerprint() == driven.fingerprint()
}

struct ThroughputPoint {
    n: usize,
    shards: usize,
    serial_events_per_s: f64,
    workers_wall_events_per_s: f64,
    workers_model_events_per_s: f64,
    model_speedup: f64,
    escape_ratio: f64,
    backpressure_stalls: u64,
}

fn throughput_sweep(n: usize, events: usize, peers: &[PeerInfo]) -> Vec<ThroughputPoint> {
    WORKER_COUNTS
        .iter()
        .map(|&shards| {
            let config = ShardConfig::new(shards);
            let schedule = mixed_schedule(n, events, 2, 1000.0, 77);

            let mut serial = TopologyStore::from_peers_sharded(
                peers.to_vec(),
                Arc::new(EmptyRectSelection),
                &config,
            );
            let start = Instant::now();
            let report = churn::run_schedule_on_store(&mut serial, &schedule);
            let serial_events_per_s =
                (report.joins + report.leaves) as f64 / start.elapsed().as_secs_f64().max(1e-9);

            let mut driven = TopologyStore::from_peers_sharded(
                peers.to_vec(),
                Arc::new(EmptyRectSelection),
                &config,
            );
            let mut rt = ShardRuntime::launch(&mut driven, &RuntimeConfig::default());
            let start = Instant::now();
            rt.run_schedule(&mut driven, &schedule);
            let wall_s = start.elapsed().as_secs_f64();
            let stats = rt.shutdown(&mut driven);

            let critical_s = stats.critical_path().as_secs_f64();
            let serial_model_s = stats.serial_path().as_secs_f64();
            let point = ThroughputPoint {
                n,
                shards,
                serial_events_per_s,
                workers_wall_events_per_s: stats.events() as f64 / wall_s.max(1e-9),
                workers_model_events_per_s: stats.events() as f64 / critical_s.max(1e-9),
                model_speedup: serial_model_s / critical_s.max(1e-12),
                escape_ratio: stats.escape_ratio(),
                backpressure_stalls: stats.backpressure_stalls,
            };
            println!(
                "churn N={n} workers={shards}: serial {:.0} events/s, workers wall \
                 {:.0} events/s, model {:.0} events/s => {:.2}x model speedup \
                 ({:.3} escape ratio, {} stalls)",
                point.serial_events_per_s,
                point.workers_wall_events_per_s,
                point.workers_model_events_per_s,
                point.model_speedup,
                point.escape_ratio,
                point.backpressure_stalls,
            );
            point
        })
        .collect()
}

struct EscapePoint {
    placement: &'static str,
    halo: &'static str,
    aspect: usize,
    escape_ratio: f64,
    cross_shard_requests: u64,
    shortlist_requests: u64,
}

/// Stretches dim 0 by `aspect`, skewing the derived tiling's tile
/// shapes exactly like a wide deployment region would.
fn stretched(points: Vec<Point>, aspect: usize) -> Vec<Point> {
    points
        .into_iter()
        .map(|p| {
            let mut coords = p.coords().to_vec();
            coords[0] *= aspect as f64;
            Point::new(coords).expect("stretched coordinates stay finite")
        })
        .collect()
}

fn escape_sweep(n: usize, events: usize) -> Vec<EscapePoint> {
    let mut out = Vec::new();
    for placement in ["uniform", "clustered"] {
        for halo in ["auto", "none"] {
            for aspect in [1usize, 8] {
                let vmax = 1000.0;
                let base = match placement {
                    "uniform" => uniform_points(n, 2, vmax, 21).into_points(),
                    _ => clustered_points(n, 2, vmax, 12, 40.0, 21).into_points(),
                };
                let points = stretched(base, aspect);
                // Deduplicate any collisions the stretch may create.
                let mut seen: HashSet<(u64, u64)> = HashSet::with_capacity(n);
                let points: Vec<Point> = points
                    .into_iter()
                    .filter(|p| {
                        let c = p.coords();
                        seen.insert((c[0].to_bits(), c[1].to_bits()))
                    })
                    .collect();
                let peers: Vec<PeerInfo> = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| PeerInfo::new(PeerId(i as u64), p.clone()))
                    .collect();
                let count = peers.len();
                let mut config = ShardConfig::new(16);
                if halo == "none" {
                    config = config.with_halo_width(0.0);
                }
                let mut store =
                    TopologyStore::from_peers_sharded(peers, Arc::new(EmptyRectSelection), &config);
                let schedule = mixed_schedule(count, events, 2, vmax, 33);
                let mut rt = ShardRuntime::launch(&mut store, &RuntimeConfig::default());
                rt.run_schedule(&mut store, &schedule);
                let stats = rt.shutdown(&mut store);
                let point = EscapePoint {
                    placement,
                    halo,
                    aspect,
                    escape_ratio: stats.escape_ratio(),
                    cross_shard_requests: stats.cross_shard_requests,
                    shortlist_requests: stats.shortlist_requests,
                };
                println!(
                    "escape {placement}/halo-{halo}/aspect-{aspect}: {:.3} \
                     ({} cross-shard of {} shortlist requests)",
                    point.escape_ratio, point.cross_shard_requests, point.shortlist_requests,
                );
                out.push(point);
            }
        }
    }
    out
}

fn write_summary(
    cores: usize,
    exact: bool,
    throughput: &[ThroughputPoint],
    escapes: &[EscapePoint],
) {
    let mut json = String::from("{\n  \"bench\": \"runtime_workers\",\n  \"dim\": 2,\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(
        "  \"speedup_model\": \"critical_path: coordinator_busy + slowest worker, vs \
         serial model coordinator_busy + sum of workers\",\n",
    );
    json.push_str(&format!("  \"exact_vs_serial_dispatcher\": {exact},\n"));
    json.push_str("  \"churn_throughput\": [\n");
    for (i, t) in throughput.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"shards\": {}, \"serial_events_per_second\": {:.0}, \
             \"workers_wall_events_per_second\": {:.0}, \
             \"workers_model_events_per_second\": {:.0}, \"model_speedup\": {:.2}, \
             \"escape_ratio\": {:.4}, \"backpressure_stalls\": {}}}{}\n",
            t.n,
            t.shards,
            t.serial_events_per_s,
            t.workers_wall_events_per_s,
            t.workers_model_events_per_s,
            t.model_speedup,
            t.escape_ratio,
            t.backpressure_stalls,
            if i + 1 < throughput.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"escape_ratio_sweep\": [\n");
    for (i, e) in escapes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"placement\": \"{}\", \"halo\": \"{}\", \"tile_aspect\": {}, \
             \"escape_ratio\": {:.4}, \"cross_shard_requests\": {}, \
             \"shortlist_requests\": {}}}{}\n",
            e.placement,
            e.halo,
            e.aspect,
            e.escape_ratio,
            e.cross_shard_requests,
            e.shortlist_requests,
            if i + 1 < escapes.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_runtime.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn runtime_scaling(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let exact = exactness_check(16);
    assert!(exact, "worker runtime diverged from the serial dispatcher");

    let (n, events) = if full_scale() {
        (50_000, 800)
    } else {
        (20_000, 400)
    };
    let peers = PeerInfo::from_point_set(&uniform_points(n, 2, 1000.0, 1));
    let throughput = throughput_sweep(n, events, &peers);
    let escapes = escape_sweep(4_000, 200);

    // The headline assert: the decomposition must beat the serial
    // dispatcher on the critical-path model at 16 shards (wall clock is
    // core-count-bound and recorded, not gated).
    let t16 = throughput
        .iter()
        .find(|t| t.shards == 16)
        .expect("16-worker throughput point");
    assert!(
        t16.model_speedup > 1.0,
        "critical-path model speedup at 16 workers fell to {:.2}x",
        t16.model_speedup
    );
    write_summary(cores, exact, &throughput, &escapes);

    // Criterion samples the runtime insert path at a modest population.
    let mut group = c.benchmark_group("runtime/insert");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("n20000_s16_d2"), |b| {
        let base = PeerInfo::from_point_set(&uniform_points(20_000, 2, 1000.0, 9));
        let mut store = TopologyStore::from_peers_sharded(
            base,
            Arc::new(EmptyRectSelection),
            &ShardConfig::new(16),
        );
        let mut rt = ShardRuntime::launch(&mut store, &RuntimeConfig::default());
        let mut extra = uniform_points(4_096, 2, 1000.0, 10)
            .into_points()
            .into_iter();
        b.iter(|| {
            let p = extra.next().expect("enough pre-drawn points");
            rt.insert(&mut store, std::hint::black_box(p))
        });
        rt.shutdown(&mut store);
    });
    group.finish();
}

criterion_group!(benches, runtime_scaling);
criterion_main!(benches);
