//! Fig. 1(c): overlay degree vs N at D = 2 with the 10·log10(N)
//! reference. Regenerates the panel, then times equilibrium scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geocast::figures::{fig1c, Fig1cConfig};
use geocast::prelude::*;
use geocast_bench::{full_scale, print_report};

fn regenerate_and_time(c: &mut Criterion) {
    let cfg = if full_scale() {
        Fig1cConfig::default()
    } else {
        Fig1cConfig::quick()
    };
    print_report(&fig1c(&cfg));

    let mut group = c.benchmark_group("fig1c/equilibrium_scaling");
    group.sample_size(10);
    for n in [100usize, 250, 500, 1000] {
        let peers = PeerInfo::from_point_set(&uniform_points(n, 2, 1000.0, 1));
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| oracle::equilibrium(std::hint::black_box(&peers), &EmptyRectSelection));
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
