//! The `geocast` binary: thin shell around [`geocast_cli`].

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = match geocast_cli::parse_args(&args) {
        Ok(inv) => inv,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    match geocast_cli::run(&invocation) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
