//! Command implementation behind the `geocast` binary.
//!
//! The CLI wraps the library's experiment surface for interactive use:
//!
//! ```text
//! geocast overlay   --n 500 --dim 2 --method empty-rect        # topology profile
//! geocast tree      --n 500 --dim 3 --root 0 --pick median     # §2 construction
//! geocast stability --n 500 --dim 4 --k 2 --policy max-t       # §3 tree + departures
//! geocast session   --n 200 --payloads 5 --loss 0.1            # dissemination
//! geocast figures   --panel fig1a [--full]                     # reproduce the paper
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs after a
//! subcommand) to keep the dependency set identical to the library's.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use geocast::core::session;
use geocast::core::stability::{non_leaf_departures, preferred_links, PreferredPolicy};
use geocast::figures;
use geocast::overlay::analysis;
use geocast::prelude::*;

/// A parsed invocation: subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// The subcommand (`overlay`, `tree`, ...).
    pub command: String,
    /// The `--key value` options, keys without the leading dashes.
    pub options: HashMap<String, String>,
}

/// Errors surfaced to the terminal user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// An option flag without a value, or a stray positional token.
    MalformedOption(String),
    /// An option value failed to parse.
    BadValue {
        /// Option name.
        key: String,
        /// Offending value.
        value: String,
    },
    /// `--strict-coverage` was requested and some published payload
    /// failed to reach every subscriber (the CI coverage gate).
    StrandedMembers {
        /// Total stranded deliveries across the run's publishes.
        stranded: usize,
        /// Publishes performed.
        publishes: usize,
    },
    /// `publish --strict` was requested and the data-plane gate failed:
    /// a flushed payload stranded a subscriber, the delivery-plan cache
    /// never hit, or the engine diverged from the oracle rebuild (the
    /// CI data-plane gate).
    PublishGate {
        /// Payload-deliveries that failed to reach a subscriber.
        stranded_payloads: u64,
        /// Delivery-plan cache hits across the run's flushes.
        cache_hits: u64,
        /// Whether every group matched the from-scratch rebuild.
        converged: bool,
    },
    /// `detect --strict` was requested and the detection gate failed:
    /// a live peer was convicted, an injected failure went undetected,
    /// coverage did not recover, or the detector-driven topology
    /// diverged from the oracle rebuild (the CI detection gate).
    DetectionGate {
        /// Live peers wrongly convicted as dead.
        false_positives: usize,
        /// Injected failures never detected.
        undetected: usize,
        /// Whether payload coverage returned to 100% by the end.
        recovered: bool,
        /// Whether the topology matched the oracle rebuild.
        converged: bool,
    },
    /// `churn --shards K --strict` was requested and the sharded replay
    /// diverged from the single-shard replay of the same schedule (the
    /// CI sharding gate).
    ShardGate {
        /// Shards the replay ran with.
        shards: usize,
        /// Whether the adjacency graphs matched.
        graphs_equal: bool,
        /// Whether the topology fingerprints matched.
        fingerprints_equal: bool,
    },
    /// `churn --runtime workers --strict` was requested and the
    /// worker-thread replay diverged from the serial replay of the same
    /// schedule (the CI runtime gate).
    RuntimeGate {
        /// Shards (= worker threads) the replay ran with.
        shards: usize,
        /// Whether the adjacency graphs matched.
        graphs_equal: bool,
        /// Whether the topology fingerprints matched.
        fingerprints_equal: bool,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "no command given; try `geocast help`"),
            CliError::UnknownCommand(c) => write!(f, "unknown command `{c}`; try `geocast help`"),
            CliError::MalformedOption(o) => {
                write!(f, "malformed option `{o}` (expected --key value)")
            }
            CliError::BadValue { key, value } => write!(f, "invalid value `{value}` for --{key}"),
            CliError::StrandedMembers {
                stranded,
                publishes,
            } => write!(
                f,
                "strict coverage violated: {stranded} stranded deliveries across {publishes} publishes"
            ),
            CliError::PublishGate {
                stranded_payloads,
                cache_hits,
                converged,
            } => write!(
                f,
                "strict publish violated: {stranded_payloads} stranded \
                 payload-deliveries, {cache_hits} plan-cache hits, \
                 converged {converged}"
            ),
            CliError::DetectionGate {
                false_positives,
                undetected,
                recovered,
                converged,
            } => write!(
                f,
                "strict detection violated: {false_positives} false positives, \
                 {undetected} undetected failures, recovered {recovered}, \
                 converged {converged}"
            ),
            CliError::ShardGate {
                shards,
                graphs_equal,
                fingerprints_equal,
            } => write!(
                f,
                "strict sharding violated at {shards} shards: graphs equal \
                 {graphs_equal}, fingerprints equal {fingerprints_equal}"
            ),
            CliError::RuntimeGate {
                shards,
                graphs_equal,
                fingerprints_equal,
            } => write!(
                f,
                "strict runtime violated at {shards} workers: graphs equal \
                 {graphs_equal}, fingerprints equal {fingerprints_equal}"
            ),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// [`CliError::MissingCommand`] on empty input and
/// [`CliError::MalformedOption`] for non-`--key value` shapes.
pub fn parse_args(args: &[String]) -> Result<Invocation, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::MissingCommand);
    };
    let mut options = HashMap::new();
    let mut it = rest.iter();
    while let Some(token) = it.next() {
        let Some(key) = token.strip_prefix("--") else {
            return Err(CliError::MalformedOption(token.clone()));
        };
        // Boolean flags (no value) are stored as "true".
        match key {
            "full" | "csv" | "strict-coverage" | "strict" => {
                options.insert(key.to_owned(), "true".to_owned());
            }
            _ => {
                let Some(value) = it.next() else {
                    return Err(CliError::MalformedOption(token.clone()));
                };
                options.insert(key.to_owned(), value.clone());
            }
        }
    }
    Ok(Invocation {
        command: command.clone(),
        options,
    })
}

fn opt<T: std::str::FromStr>(inv: &Invocation, key: &str, default: T) -> Result<T, CliError> {
    match inv.options.get(key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| CliError::BadValue {
            key: key.to_owned(),
            value: raw.clone(),
        }),
    }
}

/// Parses `--n`, rejecting empty populations the downstream passes
/// (overlay profiling, session root placement) cannot represent.
fn opt_peers(inv: &Invocation, default: usize) -> Result<usize, CliError> {
    let n: usize = opt(inv, "n", default)?;
    if n == 0 {
        return Err(CliError::BadValue {
            key: "n".to_owned(),
            value: "0".to_owned(),
        });
    }
    Ok(n)
}

fn selection_for(
    method: &str,
    dim: usize,
    k: usize,
) -> Result<Arc<dyn NeighborSelection + Send + Sync>, CliError> {
    Ok(match method {
        "empty-rect" => Arc::new(EmptyRectSelection),
        "orthogonal" => Arc::new(HyperplanesSelection::orthogonal(dim, k, MetricKind::L1)),
        "signed" => Arc::new(HyperplanesSelection::signed(dim, k, MetricKind::L1)),
        "k-closest" => Arc::new(HyperplanesSelection::k_closest(dim, k, MetricKind::L1)),
        other => {
            return Err(CliError::BadValue {
                key: "method".into(),
                value: other.into(),
            })
        }
    })
}

/// Executes a parsed invocation, returning the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands or invalid option values.
pub fn run(inv: &Invocation) -> Result<String, CliError> {
    match inv.command.as_str() {
        "help" | "--help" | "-h" => Ok(HELP.to_owned()),
        "overlay" => cmd_overlay(inv),
        "tree" => cmd_tree(inv),
        "stability" => cmd_stability(inv),
        "session" => cmd_session(inv),
        "route" => cmd_route(inv),
        "churn" => cmd_churn(inv),
        "groups" => cmd_groups(inv),
        "publish" => cmd_publish(inv),
        "detect" => cmd_detect(inv),
        "figures" => cmd_figures(inv),
        other => Err(CliError::UnknownCommand(other.to_owned())),
    }
}

const HELP: &str = "geocast — decentralized multicast trees on geometric P2P overlays

USAGE: geocast <COMMAND> [--key value ...]

COMMANDS:
  overlay    build an equilibrium overlay and print its profile
             --n 500 --dim 2 --seed 1 --method empty-rect|orthogonal|signed|k-closest --k 2
  tree       run the §2 construction and check its claims
             --n 500 --dim 2 --seed 1 --root 0 --pick median|closest|farthest
  stability  run the §3 construction and replay all departures
             --n 500 --dim 3 --k 2 --seed 1 --policy max-t|min-higher-t|closest
  session    build a tree and multicast payloads over the simulator
             --n 200 --dim 2 --seed 1 --payloads 5 --loss 0.0
  route      greedy geometric routing between two peers
             --n 200 --dim 2 --seed 1 --from 0 --to 10
  churn      replay a churn pattern through the incremental engine
             --n 500 --dim 2 --seed 1 --pattern join-wave|leave-wave|flash-crowd|mixed
             --events 200 --join-rate 1 --leave-rate 1 --mode store|live
             --shards 0  (store mode: replay on the region-sharded engine)
             --runtime serial|workers  (workers: one thread per shard, fed by
                          bounded command channels; requires --shards > 0)
             --queue 64  (workers: per-shard command channel capacity)
             [--strict]  (with --shards: fail unless the sharded replay is
                          byte-identical to the single-shard replay; with
                          --runtime workers the gate covers the worker replay)
  groups     drive N concurrent multicast groups over one shared store
             --n 500 --dim 2 --seed 1 --groups 16 --subs 1000 --zipf 1.0
             --events 200 --group-events 200 --placement clustered|scattered
             [--strict-coverage]  (fail if any publish strands a member)
  publish    drive the batched data plane: enqueue + flush over the plan cache
             --n 500 --dim 2 --seed 1 --groups 16 --subs 1000 --zipf 1.5
             --batch 64 --ticks 50 --churn-every 10 --placement clustered|scattered
             [--strict]  (fail on stranded payloads, a cold plan cache,
                          or oracle divergence)
  detect     run the SWIM failure-detection plane through a crash wave
             --n 24 --dim 2 --seed 1 --groups 2 --group-size 8 --loss 0.0
             --crashes 2 --silent 1 --suspicion-ms 400
             [--strict]  (fail on false positives, missed failures,
                          unrecovered coverage, or oracle divergence)
  figures    regenerate the paper's artifacts
             --panel fig1a|fig1b|fig1c|fig1d|fig1e|claims|ablation|baselines|repair|scaling|churn|groups|detection|publish|all [--full]
  help       this text
";

fn cmd_overlay(inv: &Invocation) -> Result<String, CliError> {
    let n: usize = opt_peers(inv, 500)?;
    let dim: usize = opt(inv, "dim", 2)?;
    let seed: u64 = opt(inv, "seed", 1)?;
    let k: usize = opt(inv, "k", 2)?;
    let method: String = opt(inv, "method", "empty-rect".to_owned())?;
    let selection = selection_for(&method, dim, k)?;

    let peers = PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed));
    let graph = oracle::equilibrium(&peers, selection.as_ref());
    let profile = analysis::profile(&graph, Some(64.min(n)), seed);
    let stretch = if n >= 2 {
        analysis::geometric_stretch(&peers, &graph, MetricKind::L1, 200, seed)
    } else {
        0.0
    };

    let mut out = String::new();
    out.push_str(&format!(
        "overlay: {method} over {n} peers (D={dim}, seed {seed})\n\n"
    ));
    out.push_str(&format!(
        "  directed edges    : {}\n",
        profile.directed_edges
    ));
    out.push_str(&format!(
        "  undirected links  : {}\n",
        profile.undirected_edges
    ));
    out.push_str(&format!(
        "  degree            : min {} / mean {:.1} / max {}\n",
        profile.degree_min, profile.degree_mean, profile.degree_max
    ));
    out.push_str(&format!(
        "  link symmetry     : {:.1}%\n",
        profile.link_symmetry * 100.0
    ));
    out.push_str(&format!("  connected         : {}\n", profile.connected));
    out.push_str(&format!(
        "  mean hop distance : {:.2}\n",
        profile.mean_hop_distance
    ));
    out.push_str(&format!(
        "  max eccentricity  : {}\n",
        profile.hop_eccentricity_max
    ));
    out.push_str(&format!(
        "  clustering coeff  : {:.3}\n",
        profile.clustering_coefficient
    ));
    out.push_str(&format!("  geometric stretch : {stretch:.2}\n"));
    Ok(out)
}

fn cmd_tree(inv: &Invocation) -> Result<String, CliError> {
    let n: usize = opt(inv, "n", 500)?;
    let dim: usize = opt(inv, "dim", 2)?;
    let seed: u64 = opt(inv, "seed", 1)?;
    let root: usize = opt(inv, "root", 0)?;
    let pick: String = opt(inv, "pick", "median".to_owned())?;
    let partitioner = match pick.as_str() {
        "median" => OrthantRectPartitioner::median(),
        "closest" => OrthantRectPartitioner::closest(),
        "farthest" => OrthantRectPartitioner::farthest(),
        other => {
            return Err(CliError::BadValue {
                key: "pick".into(),
                value: other.into(),
            })
        }
    };
    if root >= n {
        return Err(CliError::BadValue {
            key: "root".into(),
            value: root.to_string(),
        });
    }

    let peers = PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed));
    let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
    let result = build_tree(&peers, &overlay, root, &partitioner);
    let verdict = validate::check_section2(&result, n, dim);

    let mut out = String::new();
    out.push_str(&format!(
        "§2 multicast tree: {n} peers, D={dim}, root {root}, pick {pick}\n\n"
    ));
    out.push_str(&format!(
        "  messages          : {} (N-1 = {})\n",
        result.messages,
        n - 1
    ));
    out.push_str(&format!(
        "  spanning          : {}\n",
        result.tree.is_spanning()
    ));
    out.push_str(&format!(
        "  height            : {}\n",
        result.tree.longest_root_to_leaf()
    ));
    out.push_str(&format!(
        "  diameter          : {}\n",
        result.tree.diameter()
    ));
    out.push_str(&format!(
        "  max children      : {} (2^D = {})\n",
        result.tree.max_children(),
        1usize << dim
    ));
    out.push_str(&format!("  §2 claims hold    : {}\n", verdict.all_hold()));
    Ok(out)
}

fn cmd_stability(inv: &Invocation) -> Result<String, CliError> {
    let n: usize = opt(inv, "n", 500)?;
    let dim: usize = opt(inv, "dim", 3)?;
    let seed: u64 = opt(inv, "seed", 1)?;
    let k: usize = opt(inv, "k", 2)?;
    let policy_name: String = opt(inv, "policy", "max-t".to_owned())?;
    let policy = match policy_name.as_str() {
        "max-t" => PreferredPolicy::MaxT,
        "min-higher-t" => PreferredPolicy::MinHigherT,
        "closest" => PreferredPolicy::ClosestHigherT(MetricKind::L1),
        other => {
            return Err(CliError::BadValue {
                key: "policy".into(),
                value: other.into(),
            })
        }
    };

    let base = uniform_points(n, dim, 1000.0, seed);
    let times = lifetimes(n, 1000.0, seed ^ 0x57_4a);
    let peers = PeerInfo::from_point_set(&embed_lifetimes(&base, &times));
    let overlay = oracle::equilibrium(
        &peers,
        &HyperplanesSelection::orthogonal(dim, k, MetricKind::L1),
    );
    let forest = preferred_links(&peers, &overlay, policy);

    let mut out = String::new();
    out.push_str(&format!(
        "§3 stability tree: {n} peers, D={dim}, K={k}, policy {policy_name}\n\n"
    ));
    out.push_str(&format!("  links form a tree : {}\n", forest.is_tree()));
    out.push_str(&format!(
        "  heap property     : {}\n",
        forest.heap_property_holds(&peers)
    ));
    if let Some(tree) = forest.to_multicast_tree() {
        let t: Vec<f64> = peers
            .iter()
            .map(geocast::prelude::PeerInfo::departure_time)
            .collect();
        out.push_str(&format!(
            "  height            : {}\n",
            tree.longest_root_to_leaf()
        ));
        out.push_str(&format!("  diameter          : {}\n", tree.diameter()));
        out.push_str(&format!(
            "  max tree degree   : {}\n",
            tree.degrees().into_iter().max().unwrap_or(0)
        ));
        out.push_str(&format!(
            "  disconnecting departures (full schedule): {}\n",
            non_leaf_departures(&tree, &t)
        ));
    }
    Ok(out)
}

fn cmd_session(inv: &Invocation) -> Result<String, CliError> {
    let n: usize = opt_peers(inv, 200)?;
    let dim: usize = opt(inv, "dim", 2)?;
    let seed: u64 = opt(inv, "seed", 1)?;
    let payloads: u64 = opt(inv, "payloads", 5)?;
    let loss: f64 = opt(inv, "loss", 0.0)?;
    if !(0.0..=1.0).contains(&loss) {
        return Err(CliError::BadValue {
            key: "loss".into(),
            value: loss.to_string(),
        });
    }

    let peers = PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed));
    let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
    let outcome = session::run_session(
        &peers,
        &overlay,
        0,
        Arc::new(OrthantRectPartitioner::median()),
        payloads,
        &[],
        geocast::sim::UniformLatency::new(
            SimDuration::from_millis(5),
            SimDuration::from_millis(20),
        ),
        if loss > 0.0 {
            FaultModel::with_loss(loss)
        } else {
            FaultModel::default()
        },
        seed,
    );

    let mut out = String::new();
    out.push_str(&format!(
        "multicast session: {n} peers, {payloads} payloads, loss {:.0}%\n\n",
        loss * 100.0
    ));
    out.push_str(&format!(
        "  build messages : {} (N-1 = {})\n",
        outcome.build_messages,
        n - 1
    ));
    out.push_str(&format!("  data messages  : {}\n", outcome.data_messages));
    out.push_str(&format!("  duplicates     : {}\n", outcome.duplicates));
    for (p, count) in &outcome.delivery {
        out.push_str(&format!(
            "  payload {p}: delivered to {count}/{n} ({:.1}%)\n",
            *count as f64 * 100.0 / n as f64
        ));
    }
    Ok(out)
}

fn cmd_route(inv: &Invocation) -> Result<String, CliError> {
    let n: usize = opt(inv, "n", 200)?;
    let dim: usize = opt(inv, "dim", 2)?;
    let seed: u64 = opt(inv, "seed", 1)?;
    let from: usize = opt(inv, "from", 0)?;
    let to: usize = opt(inv, "to", n.saturating_sub(1))?;
    if from >= n {
        return Err(CliError::BadValue {
            key: "from".into(),
            value: from.to_string(),
        });
    }
    if to >= n {
        return Err(CliError::BadValue {
            key: "to".into(),
            value: to.to_string(),
        });
    }

    let peers = PeerInfo::from_point_set(&uniform_points(n, dim, 1000.0, seed));
    let overlay = oracle::equilibrium(&peers, &EmptyRectSelection);
    let route =
        geocast::overlay::routing::route_to_peer(&peers, &overlay, from, to, MetricKind::L1);

    let mut out = String::new();
    out.push_str(&format!(
        "greedy route {from} -> {to} over {n} peers (D={dim}, seed {seed})\n\n"
    ));
    out.push_str(&format!("  delivered : {}\n", route.delivered()));
    out.push_str(&format!("  hops      : {}\n", route.hops()));
    out.push_str("  path      : ");
    for (i, hop) in route.path().iter().enumerate() {
        if i > 0 {
            out.push_str(" -> ");
        }
        out.push_str(&hop.to_string());
    }
    out.push('\n');
    Ok(out)
}

fn cmd_churn(inv: &Invocation) -> Result<String, CliError> {
    use geocast::overlay::churn::{run_schedule_localized, run_schedule_on_store, ChurnSchedule};
    use std::time::Instant;

    let n: usize = opt_peers(inv, 500)?;
    let dim: usize = opt(inv, "dim", 2)?;
    let seed: u64 = opt(inv, "seed", 1)?;
    let events: usize = opt(inv, "events", 200)?;
    let join_rate: u32 = opt(inv, "join-rate", 1)?;
    let leave_rate: u32 = opt(inv, "leave-rate", 1)?;
    let pattern_name: String = opt(inv, "pattern", "mixed".to_owned())?;
    let mode: String = opt(inv, "mode", "store".to_owned())?;
    let shards: usize = opt(inv, "shards", 0)?;
    let runtime: String = opt(inv, "runtime", "serial".to_owned())?;
    let queue: usize = opt(inv, "queue", 64)?;
    let strict = inv.options.contains_key("strict");
    if shards > 0 && mode != "store" {
        return Err(CliError::BadValue {
            key: "shards".into(),
            value: format!("{shards} (only --mode store replays shard)"),
        });
    }
    if strict && shards == 0 {
        return Err(CliError::BadValue {
            key: "strict".into(),
            value: "requires --shards > 0 (the gate compares shard engines)".into(),
        });
    }
    match runtime.as_str() {
        "serial" => {}
        "workers" => {
            if shards == 0 || mode != "store" {
                return Err(CliError::BadValue {
                    key: "runtime".into(),
                    value: "workers (requires --mode store and --shards > 0)".into(),
                });
            }
            if queue == 0 {
                return Err(CliError::BadValue {
                    key: "queue".into(),
                    value: "0 (worker channels need capacity)".into(),
                });
            }
        }
        other => {
            return Err(CliError::BadValue {
                key: "runtime".into(),
                value: other.into(),
            })
        }
    }
    let pattern = match pattern_name.as_str() {
        "join-wave" => ChurnPattern::JoinWave { count: events },
        "leave-wave" => ChurnPattern::LeaveWave { count: events },
        "flash-crowd" => ChurnPattern::FlashCrowd {
            surge: events / 2,
            exodus: events - events / 2,
        },
        "mixed" => {
            if join_rate == 0 && leave_rate == 0 {
                return Err(CliError::BadValue {
                    key: "join-rate".into(),
                    value: "0 (with --leave-rate 0)".into(),
                });
            }
            ChurnPattern::Mixed {
                events,
                join_rate,
                leave_rate,
            }
        }
        other => {
            return Err(CliError::BadValue {
                key: "pattern".into(),
                value: other.into(),
            })
        }
    };

    let points = uniform_points(n, dim, 1000.0, seed);
    let schedule = ChurnSchedule::from_pattern(n, &pattern, dim, 1000.0, seed ^ 0xc4);
    // Departed peers keep their (edge-less) vertex, so connectivity is a
    // live-peers-only question.
    let live_connected = |topo: &OverlayGraph, live: Vec<usize>| -> bool {
        match live.first() {
            None => true,
            Some(&start) => {
                let dist = topo.bfs_distances(start);
                live.iter().all(|&i| dist[i].is_some())
            }
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "churn replay: {pattern} on {n} initial peers (D={dim}, seed {seed}, mode {mode})\n\n"
    ));
    match mode.as_str() {
        "store" => {
            let mut store = if shards > 0 {
                TopologyStore::from_peers_sharded(
                    PeerInfo::from_point_set(&points),
                    Arc::new(EmptyRectSelection),
                    &geocast::overlay::ShardConfig::new(shards),
                )
            } else {
                TopologyStore::from_peers(
                    PeerInfo::from_point_set(&points),
                    Arc::new(EmptyRectSelection),
                )
            };
            // lint:allow(D002, reason = "wall-clock lines in the CLI report only; no control flow reads the clock")
            let start = Instant::now();
            let (report, runtime_stats) = if runtime == "workers" {
                let config = geocast::overlay::RuntimeConfig {
                    queue_capacity: queue,
                    barrier: false,
                };
                let mut rt = geocast::overlay::ShardRuntime::launch(&mut store, &config);
                let report = rt.run_schedule(&mut store, &schedule);
                (report, Some(rt.shutdown(&mut store)))
            } else {
                (run_schedule_on_store(&mut store, &schedule), None)
            };
            let secs = start.elapsed().as_secs_f64();
            if let Some(engine) = store.sharding() {
                out.push_str(&format!(
                    "  shard engine      : {} shards ({} per dim), halo {:.1}\n",
                    engine.shard_count(),
                    engine
                        .tiles_per_dim()
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("x"),
                    engine.halo_width(),
                ));
            }
            out.push_str(&format!(
                "  events applied    : {} ({} joins, {} leaves)\n",
                report.joins + report.leaves,
                report.joins,
                report.leaves
            ));
            out.push_str(&format!("  elapsed           : {secs:.3}s\n"));
            out.push_str(&format!(
                "  events per second : {:.0}\n",
                (report.joins + report.leaves) as f64 / secs.max(1e-9)
            ));
            out.push_str(&format!(
                "  dirty region      : mean {:.1} / max {} peers\n",
                report.touched_mean(),
                report.touched_max
            ));
            out.push_str(&format!("  live peers after  : {}\n", store.live_count()));
            if let Some(stats) = &runtime_stats {
                let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
                out.push_str(&format!(
                    "  runtime           : {shards} shard workers (queue {queue}, {cores} cores)\n"
                ));
                out.push_str(&format!(
                    "  cross-shard       : {} escape events, {} shortlist requests \
                     ({:.3} escape ratio)\n",
                    stats.escape_events,
                    stats.cross_shard_requests,
                    stats.escape_ratio()
                ));
                out.push_str(&format!(
                    "  backpressure      : {} stalls\n",
                    stats.backpressure_stalls
                ));
                let critical = stats.critical_path().as_secs_f64();
                let serial_model = stats.serial_path().as_secs_f64();
                out.push_str(&format!(
                    "  critical path     : {:.3}s vs {:.3}s serial model \
                     ({:.2}x, {:.0} events/s on the model)\n",
                    critical,
                    serial_model,
                    serial_model / critical.max(1e-9),
                    stats.events() as f64 / critical.max(1e-9)
                ));
            }
            let live: Vec<usize> = (0..store.len())
                .filter(|&i| !store.is_departed(PeerId(i as u64)))
                .collect();
            out.push_str(&format!(
                "  connected         : {}\n",
                live_connected(&store.graph(), live)
            ));
            if strict {
                // The CI gate: replay the identical schedule on a plain
                // single-shard store and demand byte-identical state.
                let mut reference = TopologyStore::from_peers(
                    PeerInfo::from_point_set(&points),
                    Arc::new(EmptyRectSelection),
                );
                run_schedule_on_store(&mut reference, &schedule);
                let graphs_equal = store.graph() == reference.graph();
                let fingerprints_equal = store.fingerprint() == reference.fingerprint();
                if !(graphs_equal && fingerprints_equal) {
                    return Err(if runtime == "workers" {
                        CliError::RuntimeGate {
                            shards,
                            graphs_equal,
                            fingerprints_equal,
                        }
                    } else {
                        CliError::ShardGate {
                            shards,
                            graphs_equal,
                            fingerprints_equal,
                        }
                    });
                }
                out.push_str(if runtime == "workers" {
                    "  strict gate       : worker replay byte-identical to single-shard serial\n"
                } else {
                    "  strict gate       : sharded replay byte-identical to single-shard\n"
                });
            }
        }
        "live" => {
            let mut net =
                OverlayNetwork::new(Arc::new(EmptyRectSelection), NetworkConfig::default());
            for p in &points {
                net.add_peer_localized(p.clone());
            }
            // lint:allow(D002, reason = "wall-clock lines in the CLI report only; no control flow reads the clock")
            let start = Instant::now();
            let report = run_schedule_localized(&mut net, &schedule);
            let secs = start.elapsed().as_secs_f64();
            let stats = net.churn_stats();
            out.push_str(&format!(
                "  events applied    : {} ({} joins, {} leaves)\n",
                report.joins + report.leaves,
                report.joins,
                report.leaves
            ));
            out.push_str(&format!("  elapsed           : {secs:.3}s\n"));
            out.push_str(&format!(
                "  events per second : {:.0}\n",
                (report.joins + report.leaves) as f64 / secs.max(1e-9)
            ));
            out.push_str(&format!(
                "  locate contacts   : {} across {} localized events (build + schedule)\n",
                stats.contacts,
                stats.joins + stats.leaves
            ));
            out.push_str(&format!(
                "  topology == store : {}\n",
                net.topology() == net.reference_topology()
            ));
            let cursor = net.gossip_cursor();
            let mut ledger = geocast::metrics::ConsumerLedger::new();
            ledger.push(geocast::metrics::ConsumerRow::new(
                cursor.name(),
                cursor.epoch(),
                cursor.absorbed(),
                cursor.resyncs(),
            ));
            out.push_str("  delta consumers   :\n");
            for line in ledger.to_table().to_markdown().lines() {
                out.push_str(&format!("    {line}\n"));
            }
            let live: Vec<usize> = (0..net.len())
                .filter(|&i| !net.has_departed(PeerId(i as u64)))
                .collect();
            out.push_str(&format!(
                "  connected         : {}\n",
                live_connected(&net.topology(), live)
            ));
        }
        other => {
            return Err(CliError::BadValue {
                key: "mode".into(),
                value: other.into(),
            })
        }
    }
    Ok(out)
}

fn cmd_groups(inv: &Invocation) -> Result<String, CliError> {
    use geocast::core::groups::{AppliedOp, GroupEngine};
    use geocast::overlay::churn::{ChurnEvent, ChurnSchedule};
    use geocast::sim::workload::zipf_group_sizes;
    use std::time::Instant;

    let n: usize = opt_peers(inv, 500)?;
    let dim: usize = opt(inv, "dim", 2)?;
    let seed: u64 = opt(inv, "seed", 1)?;
    let num_groups: usize = opt(inv, "groups", 16)?;
    let subs: usize = opt(inv, "subs", 2 * n)?;
    let zipf: f64 = opt(inv, "zipf", 1.0)?;
    let churn_events: usize = opt(inv, "events", 200)?;
    let group_events: usize = opt(inv, "group-events", 200)?;
    let placement_name: String = opt(inv, "placement", "clustered".to_owned())?;
    let strict_coverage = inv.options.contains_key("strict-coverage");
    let placement = match placement_name.as_str() {
        "clustered" => MembershipPlacement::Clustered,
        "scattered" => MembershipPlacement::Scattered,
        other => {
            return Err(CliError::BadValue {
                key: "placement".into(),
                value: other.into(),
            })
        }
    };
    if num_groups == 0 {
        return Err(CliError::BadValue {
            key: "groups".into(),
            value: "0".into(),
        });
    }
    if !zipf.is_finite() || zipf < 0.0 {
        return Err(CliError::BadValue {
            key: "zipf".into(),
            value: zipf.to_string(),
        });
    }

    let points = uniform_points(n, dim, 1000.0, seed);
    let store = TopologyStore::from_peers(
        PeerInfo::from_point_set(&points),
        Arc::new(EmptyRectSelection),
    );
    let mut engine = GroupEngine::new(store, Arc::new(OrthantRectPartitioner::median()));
    let mut state = seed ^ 0x6772_6f75_7073; // "groups"
    let sizes = zipf_group_sizes(num_groups, subs.max(num_groups), zipf);
    let ids = engine.seed_groups_placed(placement, &sizes, &mut state);

    let schedule = ChurnSchedule::from_pattern(
        n,
        &ChurnPattern::Mixed {
            events: churn_events,
            join_rate: 1,
            leave_rate: 1,
        },
        dim,
        1000.0,
        seed ^ 0xc9,
    );
    let workload = GroupWorkload {
        groups: num_groups,
        exponent: zipf,
        events: group_events,
        subscribe_weight: 2,
        unsubscribe_weight: 1,
        publish_weight: 2,
    };

    // lint:allow(D002, reason = "wall-clock lines in the CLI report only; no control flow reads the clock")
    let start = Instant::now();
    let mut affected_sum = 0usize;
    let mut affected_max = 0usize;
    for event in schedule.events() {
        match event {
            ChurnEvent::Join(p) => {
                engine.join(p.clone());
            }
            ChurnEvent::Leave(id) => engine.leave(*id),
        }
        affected_sum += engine.last_sync().affected_groups;
        affected_max = affected_max.max(engine.last_sync().affected_groups);
    }
    // Workload publishes plus one final publish per group (so every
    // group's coverage is measured even when the Zipf tail drew no
    // publish op).
    let mut outcomes: Vec<geocast::core::groups::PublishOutcome> = Vec::new();
    for op in workload.ops(seed ^ 0x09) {
        if let AppliedOp::Published(_, outcome) = engine.apply_workload_op(op, &mut state) {
            outcomes.push(outcome);
        }
    }
    // events/s covers the churn + workload replay only; snapshot the
    // clock before the out-of-band coverage sweep below.
    let secs = start.elapsed().as_secs_f64();
    for &g in &ids {
        outcomes.extend(engine.publish(g));
    }
    let publishes = outcomes.len();
    let publish_stranded: usize = outcomes.iter().map(|o| o.stranded).sum();
    let publish_messages: usize = outcomes.iter().map(|o| o.messages).sum();
    let publish_relay_messages: usize = outcomes.iter().map(|o| o.relay_messages).sum();

    let mut exact = true;
    let mut coverage_sum = 0.0;
    let mut memberships = 0usize;
    let mut relays = 0usize;
    for &g in &ids {
        memberships += engine.members(g).len();
        relays += engine.relays(g).len();
        coverage_sum += engine.coverage(g);
        exact &= engine.matches_reference(g);
    }
    let events = schedule.len() + group_events;
    let totals = *engine.totals();

    let mut out = String::new();
    out.push_str(&format!(
        "multi-group sessions: {num_groups} groups over {n} peers (D={dim}, seed {seed}, zipf {zipf:.1}, {placement_name})\n\n"
    ));
    out.push_str(&format!(
        "  events applied      : {} churn + {} group ops\n",
        schedule.len(),
        group_events
    ));
    out.push_str(&format!("  elapsed             : {secs:.3}s\n"));
    out.push_str(&format!(
        "  events per second   : {:.0}\n",
        events as f64 / secs.max(1e-9)
    ));
    out.push_str(&format!(
        "  affected groups     : mean {:.2} / max {} (naive engine: {num_groups} per event)\n",
        affected_sum as f64 / schedule.len().max(1) as f64,
        affected_max
    ));
    out.push_str(&format!(
        "  tree rebuilds       : {}\n",
        totals.tree_rebuilds
    ));
    out.push_str(&format!(
        "  memberships after   : {memberships} across {num_groups} groups\n"
    ));
    out.push_str(&format!(
        "  mean coverage       : {:.0}%\n",
        coverage_sum * 100.0 / ids.len() as f64
    ));
    out.push_str(&format!("  relay nodes         : {relays}\n"));
    out.push_str(&format!(
        "  publishes           : {publishes} ({publish_messages} data messages, {publish_relay_messages} over relays)\n"
    ));
    out.push_str(&format!("  publish stranded    : {publish_stranded}\n"));
    out.push_str(&format!(
        "  live peers after    : {}\n",
        engine.store().live_count()
    ));
    out.push_str(&format!("  all == rebuild      : {exact}\n"));
    if strict_coverage && publish_stranded > 0 {
        return Err(CliError::StrandedMembers {
            stranded: publish_stranded,
            publishes,
        });
    }
    Ok(out)
}

fn cmd_publish(inv: &Invocation) -> Result<String, CliError> {
    use geocast::core::dataplane::FlushReport;
    use geocast::core::groups::GroupEngine;
    use geocast::overlay::churn::{ChurnEvent, ChurnSchedule};
    use geocast::sim::workload::{zipf_group_sizes, PublishWorkload};
    use std::time::Instant;

    let n: usize = opt_peers(inv, 500)?;
    let dim: usize = opt(inv, "dim", 2)?;
    let seed: u64 = opt(inv, "seed", 1)?;
    let num_groups: usize = opt(inv, "groups", 16)?;
    let subs: usize = opt(inv, "subs", 2 * n)?;
    let zipf: f64 = opt(inv, "zipf", 1.5)?;
    let batch: usize = opt(inv, "batch", 64)?;
    let ticks: usize = opt(inv, "ticks", 50)?;
    let churn_every: usize = opt(inv, "churn-every", 10)?;
    let placement_name: String = opt(inv, "placement", "clustered".to_owned())?;
    let strict = inv.options.contains_key("strict");
    let placement = match placement_name.as_str() {
        "clustered" => MembershipPlacement::Clustered,
        "scattered" => MembershipPlacement::Scattered,
        other => {
            return Err(CliError::BadValue {
                key: "placement".into(),
                value: other.into(),
            })
        }
    };
    if num_groups == 0 {
        return Err(CliError::BadValue {
            key: "groups".into(),
            value: "0".into(),
        });
    }
    if batch == 0 {
        return Err(CliError::BadValue {
            key: "batch".into(),
            value: "0".into(),
        });
    }
    if !zipf.is_finite() || zipf < 0.0 {
        return Err(CliError::BadValue {
            key: "zipf".into(),
            value: zipf.to_string(),
        });
    }

    let points = uniform_points(n, dim, 1000.0, seed);
    let store = TopologyStore::from_peers(
        PeerInfo::from_point_set(&points),
        Arc::new(EmptyRectSelection),
    );
    let mut engine = GroupEngine::new(store, Arc::new(OrthantRectPartitioner::median()));
    let mut state = seed ^ 0x0070_7562_6c69_7368; // "publish"
    let sizes = zipf_group_sizes(num_groups, subs.max(num_groups), zipf.max(1.0));
    let ids = engine.seed_groups_placed(placement, &sizes, &mut state);

    let churn_events = ticks.checked_div(churn_every).unwrap_or(0);
    let schedule = ChurnSchedule::from_pattern(
        n,
        &ChurnPattern::Mixed {
            events: churn_events,
            join_rate: 1,
            leave_rate: 1,
        },
        dim,
        1000.0,
        seed ^ 0xda7a,
    );
    let mut churn_it = schedule.events().iter();
    let workload = PublishWorkload {
        groups: num_groups,
        exponent: zipf,
        ticks,
        payloads_per_tick: batch,
    };

    let mut report = FlushReport::default();
    let mut flush_seconds = 0.0f64;
    for tick in 0..ticks {
        if churn_every > 0 && tick % churn_every == churn_every - 1 {
            match churn_it.next() {
                Some(ChurnEvent::Join(p)) => {
                    engine.join(p.clone());
                }
                Some(ChurnEvent::Leave(id)) => engine.leave(*id),
                None => {}
            }
        }
        let counts = workload.tick_payloads(seed, tick);
        // lint:allow(D002, reason = "wall-clock lines in the CLI report only; no control flow reads the clock")
        let start = Instant::now();
        for (gi, &payloads) in counts.iter().enumerate() {
            if payloads > 0 {
                engine.enqueue(ids[gi], payloads);
            }
        }
        for b in engine.flush_tick() {
            report.absorb(&b);
        }
        flush_seconds += start.elapsed().as_secs_f64();
    }
    let converged = ids.iter().all(|&g| engine.matches_reference(g));

    let mut out = String::new();
    out.push_str(&format!(
        "batched data plane: {workload} over {num_groups} groups, {n} peers \
         (D={dim}, seed {seed}, {placement_name}, churn every {churn_every} ticks)\n\n"
    ));
    out.push_str(&format!("  payloads published  : {}\n", report.payloads));
    out.push_str(&format!(
        "  flushes             : {} batches over {} ticks\n",
        report.batches, ticks
    ));
    out.push_str(&format!(
        "  data frames         : {} ({} over relays)\n",
        report.messages, report.relay_messages
    ));
    out.push_str(&format!(
        "  messages/payload    : {:.3} (sequential would pay {:.3})\n",
        report.messages_per_payload(),
        report.sequential_messages as f64 / report.payloads.max(1) as f64
    ));
    out.push_str(&format!(
        "  batching reduction  : {:.1}x\n",
        report.reduction()
    ));
    out.push_str(&format!(
        "  plan cache          : {} hits / {} misses ({:.0}% hit rate)\n",
        report.cache_hits,
        report.cache_misses,
        report.cache_hit_rate() * 100.0
    ));
    out.push_str(&format!(
        "  payload deliveries  : {} ({} stranded)\n",
        report.payload_deliveries, report.payload_strandings
    ));
    out.push_str(&format!(
        "  flush throughput    : {:.2e} payloads/s\n",
        report.payloads as f64 / flush_seconds.max(1e-9)
    ));
    out.push_str(&format!("  all == rebuild      : {converged}\n"));
    if strict && (report.payload_strandings > 0 || report.cache_hits == 0 || !converged) {
        return Err(CliError::PublishGate {
            stranded_payloads: report.payload_strandings,
            cache_hits: report.cache_hits,
            converged,
        });
    }
    Ok(out)
}

fn cmd_detect(inv: &Invocation) -> Result<String, CliError> {
    use geocast::core::detect::{run_detection, DetectionScenario};

    // CLI-scale defaults: the quick scenario (seconds of virtual time,
    // fast detector) with every knob overridable.
    let mut sc = DetectionScenario::quick();
    sc.peers = opt_peers(inv, sc.peers)?;
    sc.dim = opt(inv, "dim", sc.dim)?;
    sc.seed = opt(inv, "seed", sc.seed)?;
    sc.groups = opt(inv, "groups", sc.groups)?;
    sc.group_size = opt(inv, "group-size", sc.group_size)?;
    sc.loss = opt(inv, "loss", sc.loss)?;
    sc.crash_count = opt(inv, "crashes", sc.crash_count)?;
    sc.silent_count = opt(inv, "silent", sc.silent_count)?;
    let suspicion_ms: u64 = opt(
        inv,
        "suspicion-ms",
        sc.detector.suspicion_timeout.as_nanos() / 1_000_000,
    )?;
    sc.detector.suspicion_timeout = SimDuration::from_millis(suspicion_ms);
    let strict = inv.options.contains_key("strict");

    if sc.peers < 2 {
        return Err(CliError::BadValue {
            key: "n".into(),
            value: sc.peers.to_string(),
        });
    }
    if !(0.0..=1.0).contains(&sc.loss) {
        return Err(CliError::BadValue {
            key: "loss".into(),
            value: sc.loss.to_string(),
        });
    }
    if sc.groups == 0 || sc.group_size == 0 {
        return Err(CliError::BadValue {
            key: "groups".into(),
            value: "0".into(),
        });
    }
    if sc.crash_count + sc.silent_count >= sc.peers {
        return Err(CliError::BadValue {
            key: "crashes".into(),
            value: format!("{}+{} silent", sc.crash_count, sc.silent_count),
        });
    }
    if suspicion_ms == 0 {
        return Err(CliError::BadValue {
            key: "suspicion-ms".into(),
            value: "0".into(),
        });
    }

    let report = run_detection(&sc);

    let mut out = String::new();
    out.push_str(&format!(
        "failure detection: {} peers, {} groups of {}, loss {:.0}%, suspicion {} ms\n\n",
        sc.peers,
        sc.groups,
        sc.group_size,
        sc.loss * 100.0,
        suspicion_ms
    ));
    out.push_str(&format!(
        "  wave              : {} crash-stop + {} silent-drop at {:.0} ms\n",
        report.crashed.len(),
        report.silent.len(),
        sc.crash_at.as_secs_f64() * 1e3
    ));
    out.push_str(&format!(
        "  detected          : {}/{}\n",
        report.detected.len(),
        report.crashed.len() + report.silent.len()
    ));
    out.push_str(&format!(
        "  detection latency : mean {:.0} ms / max {:.0} ms\n",
        report.mean_detection_ms(),
        report.max_detection_ms()
    ));
    out.push_str(&format!(
        "  false positives   : {}\n",
        report.false_positives
    ));
    out.push_str(&format!(
        "  suspicions        : {} raised, {} refuted\n",
        report.suspect_events, report.refute_events
    ));
    out.push_str(&format!(
        "  coverage          : min {:.1}% / final {:.1}%\n",
        report.min_coverage * 100.0,
        report.final_coverage * 100.0
    ));
    out.push_str(&format!(
        "  recovery          : {}\n",
        report.recovered_after.map_or("never".to_owned(), |d| {
            format!("{:.0} ms after the wave", d.as_secs_f64() * 1e3)
        })
    ));
    out.push_str(&format!("  oracle convergence: {}\n", report.converged));
    if strict && !report.strict_ok() {
        return Err(CliError::DetectionGate {
            false_positives: report.false_positives,
            undetected: report.crashed.len() + report.silent.len() - report.detected.len(),
            recovered: report.final_coverage == 1.0,
            converged: report.converged,
        });
    }
    Ok(out)
}

fn cmd_figures(inv: &Invocation) -> Result<String, CliError> {
    let panel: String = opt(inv, "panel", "all".to_owned())?;
    let full = inv.options.contains_key("full");

    let fig1 = if full {
        figures::Fig1Config::default()
    } else {
        figures::Fig1Config::quick()
    };
    let fig1c = if full {
        figures::Fig1cConfig::default()
    } else {
        figures::Fig1cConfig::quick()
    };
    let stab = if full {
        figures::StabilityConfig::default()
    } else {
        figures::StabilityConfig::quick()
    };
    let claims = if full {
        figures::ClaimsConfig::default()
    } else {
        figures::ClaimsConfig::quick()
    };
    let ab = if full {
        figures::AblationConfig::default()
    } else {
        figures::AblationConfig::quick()
    };
    let base = if full {
        figures::BaselineConfig::default()
    } else {
        figures::BaselineConfig::quick()
    };
    let repair = if full {
        figures::RepairConfig::default()
    } else {
        figures::RepairConfig::quick()
    };
    let scaling = if full {
        figures::ScalingConfig::default()
    } else {
        figures::ScalingConfig::quick()
    };
    let churn = if full {
        figures::ChurnConfig::default()
    } else {
        figures::ChurnConfig::quick()
    };
    let groups = if full {
        figures::GroupsConfig::default()
    } else {
        figures::GroupsConfig::quick()
    };
    let detection = if full {
        figures::DetectionConfig::default()
    } else {
        figures::DetectionConfig::quick()
    };
    let publish = if full {
        figures::PublishConfig::default()
    } else {
        figures::PublishConfig::quick()
    };

    let mut reports = Vec::new();
    match panel.as_str() {
        "fig1a" => reports.push(figures::fig1a(&fig1)),
        "fig1b" => reports.push(figures::fig1b(&fig1)),
        "fig1c" => reports.push(figures::fig1c(&fig1c)),
        "fig1d" => reports.push(figures::fig1d(&stab)),
        "fig1e" => reports.push(figures::fig1e(&stab)),
        "claims" => {
            reports.push(figures::claims_section2(&claims));
            reports.push(figures::claims_section3(&claims));
        }
        "ablation" => reports.push(figures::ablation_partitioner(&ab)),
        "baselines" => {
            reports.push(figures::baseline_messages(&base));
            reports.push(figures::baseline_stability(&base));
        }
        "repair" => reports.push(figures::repair_cost(&repair)),
        "scaling" => reports.push(figures::overlay_scaling(&scaling)),
        "churn" => reports.push(figures::churn_panel(&churn)),
        "groups" => reports.push(figures::groups_panel(&groups)),
        "detection" => reports.push(figures::detection_panel(&detection)),
        "publish" => reports.push(figures::publish_panel(&publish)),
        "all" => {
            reports.push(figures::fig1a(&fig1));
            reports.push(figures::fig1b(&fig1));
            reports.push(figures::fig1c(&fig1c));
            let sweep = figures::stability_sweep(&stab);
            reports.push(sweep.fig1d_report());
            reports.push(sweep.fig1e_report());
            reports.push(figures::claims_section2(&claims));
            reports.push(figures::claims_section3(&claims));
            reports.push(figures::ablation_partitioner(&ab));
            reports.push(figures::baseline_messages(&base));
            reports.push(figures::baseline_stability(&base));
            reports.push(figures::repair_cost(&repair));
            reports.push(figures::overlay_scaling(&scaling));
            reports.push(figures::churn_panel(&churn));
            reports.push(figures::groups_panel(&groups));
            reports.push(figures::detection_panel(&detection));
            reports.push(figures::publish_panel(&publish));
        }
        other => {
            return Err(CliError::BadValue {
                key: "panel".into(),
                value: other.into(),
            })
        }
    }
    let mut out = String::new();
    for report in &reports {
        out.push_str(&report.to_string());
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parse_extracts_command_and_options() {
        let inv = parse_args(&args(&["tree", "--n", "50", "--pick", "median"])).unwrap();
        assert_eq!(inv.command, "tree");
        assert_eq!(inv.options.get("n").map(String::as_str), Some("50"));
        assert_eq!(inv.options.get("pick").map(String::as_str), Some("median"));
    }

    #[test]
    fn parse_rejects_empty_and_malformed() {
        assert_eq!(parse_args(&[]), Err(CliError::MissingCommand));
        assert!(matches!(
            parse_args(&args(&["tree", "stray"])),
            Err(CliError::MalformedOption(_))
        ));
        assert!(matches!(
            parse_args(&args(&["tree", "--n"])),
            Err(CliError::MalformedOption(_))
        ));
    }

    #[test]
    fn boolean_flags_need_no_value() {
        let inv = parse_args(&args(&["figures", "--full", "--panel", "fig1a"])).unwrap();
        assert_eq!(inv.options.get("full").map(String::as_str), Some("true"));
    }

    #[test]
    fn help_command_prints_usage() {
        let out = run(&parse_args(&args(&["help"])).unwrap()).unwrap();
        assert!(out.contains("USAGE"));
        for cmd in ["overlay", "tree", "stability", "session", "figures"] {
            assert!(out.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn unknown_command_is_rejected() {
        let err = run(&parse_args(&args(&["frobnicate"])).unwrap()).unwrap_err();
        assert_eq!(err, CliError::UnknownCommand("frobnicate".into()));
    }

    #[test]
    fn overlay_command_produces_profile() {
        let inv = parse_args(&args(&["overlay", "--n", "40", "--dim", "2"])).unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("connected         : true"), "{out}");
        assert!(out.contains("link symmetry     : 100.0%"), "{out}");
    }

    #[test]
    fn overlay_rejects_unknown_method() {
        let inv = parse_args(&args(&["overlay", "--method", "magic"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
    }

    #[test]
    fn tree_command_reports_n_minus_one() {
        let inv = parse_args(&args(&["tree", "--n", "60", "--seed", "3"])).unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("messages          : 59 (N-1 = 59)"), "{out}");
        assert!(out.contains("§2 claims hold    : true"), "{out}");
    }

    #[test]
    fn tree_rejects_out_of_range_root() {
        let inv = parse_args(&args(&["tree", "--n", "10", "--root", "10"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
    }

    #[test]
    fn stability_command_reports_zero_disconnections() {
        let inv = parse_args(&args(&["stability", "--n", "60", "--dim", "2", "--k", "1"])).unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("links form a tree : true"), "{out}");
        assert!(
            out.contains("disconnecting departures (full schedule): 0"),
            "{out}"
        );
    }

    #[test]
    fn session_command_reports_full_delivery() {
        let inv = parse_args(&args(&["session", "--n", "30", "--payloads", "2"])).unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("delivered to 30/30"), "{out}");
        assert!(out.contains("duplicates     : 0"), "{out}");
    }

    #[test]
    fn session_rejects_invalid_loss() {
        let inv = parse_args(&args(&["session", "--loss", "1.5"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
    }

    #[test]
    fn route_command_delivers() {
        let inv = parse_args(&args(&["route", "--n", "50", "--from", "0", "--to", "30"])).unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("delivered : true"), "{out}");
        assert!(out.contains("0 ->"), "{out}");
    }

    #[test]
    fn route_rejects_bad_endpoints() {
        let inv = parse_args(&args(&["route", "--n", "10", "--to", "10"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
    }

    #[test]
    fn churn_store_mode_reports_exact_locality() {
        let inv = parse_args(&args(&[
            "churn",
            "--n",
            "60",
            "--events",
            "20",
            "--pattern",
            "mixed",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("events applied    : 20"), "{out}");
        assert!(out.contains("connected         : true"), "{out}");
    }

    #[test]
    fn churn_live_mode_tracks_the_store() {
        let inv = parse_args(&args(&[
            "churn",
            "--n",
            "30",
            "--events",
            "10",
            "--pattern",
            "flash-crowd",
            "--mode",
            "live",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("topology == store : true"), "{out}");
    }

    #[test]
    fn churn_rejects_unknown_pattern_and_mode() {
        let inv = parse_args(&args(&["churn", "--pattern", "tsunami"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
        let inv = parse_args(&args(&["churn", "--mode", "dream"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
    }

    #[test]
    fn churn_worker_runtime_passes_the_strict_gate() {
        let inv = parse_args(&args(&[
            "churn",
            "--n",
            "80",
            "--events",
            "30",
            "--shards",
            "4",
            "--runtime",
            "workers",
            "--strict",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("runtime           : 4 shard workers"), "{out}");
        assert!(out.contains("critical path     :"), "{out}");
        assert!(
            out.contains("worker replay byte-identical to single-shard serial"),
            "{out}"
        );
    }

    #[test]
    fn churn_worker_runtime_requires_shards_and_store_mode() {
        let inv = parse_args(&args(&["churn", "--runtime", "workers"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
        let inv = parse_args(&args(&[
            "churn",
            "--runtime",
            "workers",
            "--shards",
            "4",
            "--mode",
            "live",
        ]))
        .unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
        let inv = parse_args(&args(&["churn", "--runtime", "threads"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
    }

    #[test]
    fn churn_live_mode_prints_the_gossip_consumer_ledger() {
        let inv = parse_args(&args(&[
            "churn", "--n", "25", "--events", "8", "--mode", "live",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("delta consumers   :"), "{out}");
        assert!(out.contains("| gossip |"), "{out}");
    }

    #[test]
    fn groups_command_reports_locality_and_exactness() {
        let inv = parse_args(&args(&[
            "groups",
            "--n",
            "100",
            "--groups",
            "6",
            "--subs",
            "150",
            "--events",
            "15",
            "--group-events",
            "15",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(
            out.contains("events applied      : 15 churn + 15 group ops"),
            "{out}"
        );
        assert!(out.contains("all == rebuild      : true"), "{out}");
        assert!(out.contains("affected groups"), "{out}");
    }

    #[test]
    fn groups_rejects_bad_values() {
        let inv = parse_args(&args(&["groups", "--groups", "0"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
        let inv = parse_args(&args(&["groups", "--zipf", "-1"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
        let inv = parse_args(&args(&["groups", "--placement", "teleported"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
    }

    #[test]
    fn groups_scattered_strict_coverage_passes_with_zero_stranded() {
        // The CI coverage gate: scattered membership, strict mode — the
        // relay-graft layer must leave nothing stranded, and the output
        // must say so explicitly.
        let inv = parse_args(&args(&[
            "groups",
            "--n",
            "150",
            "--groups",
            "12",
            "--subs",
            "300",
            "--events",
            "20",
            "--group-events",
            "20",
            "--placement",
            "scattered",
            "--strict-coverage",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("publish stranded    : 0"), "{out}");
        assert!(out.contains("mean coverage       : 100%"), "{out}");
        assert!(out.contains("scattered"), "{out}");
        assert!(out.contains("all == rebuild      : true"), "{out}");
    }

    #[test]
    fn publish_strict_gate_passes_on_the_clustered_scenario() {
        // The CI data-plane gate: clustered membership, strict mode —
        // batching must strand nothing and the delivery-plan cache must
        // actually serve hits.
        let inv = parse_args(&args(&[
            "publish",
            "--n",
            "120",
            "--groups",
            "8",
            "--subs",
            "200",
            "--batch",
            "32",
            "--ticks",
            "20",
            "--churn-every",
            "7",
            "--strict",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("payloads published  : 640"), "{out}");
        assert!(out.contains("(0 stranded)"), "{out}");
        assert!(out.contains("all == rebuild      : true"), "{out}");
        assert!(out.contains("batching reduction"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
    }

    #[test]
    fn publish_batch_of_one_reports_no_reduction() {
        let inv = parse_args(&args(&[
            "publish",
            "--n",
            "100",
            "--groups",
            "6",
            "--batch",
            "1",
            "--ticks",
            "10",
            "--churn-every",
            "0",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("batching reduction  : 1.0x"), "{out}");
        assert!(out.contains("(0 stranded)"), "{out}");
    }

    #[test]
    fn publish_rejects_bad_values() {
        let inv = parse_args(&args(&["publish", "--groups", "0"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
        let inv = parse_args(&args(&["publish", "--batch", "0"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
        let inv = parse_args(&args(&["publish", "--zipf", "-0.5"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
        let inv = parse_args(&args(&["publish", "--placement", "orbital"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
    }

    #[test]
    fn figures_publish_panel_runs_quick() {
        let inv = parse_args(&args(&["figures", "--panel", "publish"])).unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("## publish"), "{out}");
        assert!(out.contains("suspicion window"), "{out}");
        assert!(
            !out.contains("false"),
            "a group diverged from rebuild: {out}"
        );
    }

    #[test]
    fn detect_strict_passes_at_zero_loss() {
        // The CI detection gate: at loss 0 every injected failure must
        // be detected with zero false positives, coverage must recover
        // fully, and the topology must converge to the oracle.
        let inv = parse_args(&args(&[
            "detect",
            "--n",
            "24",
            "--crashes",
            "2",
            "--silent",
            "1",
            "--strict",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("detected          : 3/3"), "{out}");
        assert!(out.contains("false positives   : 0"), "{out}");
        assert!(out.contains("final 100.0%"), "{out}");
        assert!(out.contains("oracle convergence: true"), "{out}");
        assert!(out.contains("ms after the wave"), "{out}");
    }

    #[test]
    fn detect_rejects_bad_values() {
        let inv = parse_args(&args(&["detect", "--loss", "1.5"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
        let inv = parse_args(&args(&["detect", "--n", "4", "--crashes", "4"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
        let inv = parse_args(&args(&["detect", "--suspicion-ms", "0"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
    }

    #[test]
    fn figures_detection_panel_runs_quick() {
        let inv = parse_args(&args(&["figures", "--panel", "detection"])).unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("## detection"), "{out}");
        assert!(out.contains("oracle: true"), "{out}");
    }

    #[test]
    fn figures_groups_panel_runs_quick() {
        let inv = parse_args(&args(&["figures", "--panel", "groups"])).unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("## groups"), "{out}");
        assert!(
            !out.contains("false"),
            "a group diverged from rebuild: {out}"
        );
    }

    #[test]
    fn figures_churn_panel_runs_quick() {
        let inv = parse_args(&args(&["figures", "--panel", "churn"])).unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("## churn"), "{out}");
        assert!(out.contains("join-wave"), "{out}");
        assert!(
            !out.contains("false"),
            "a scenario diverged from rebuild: {out}"
        );
    }

    #[test]
    fn figures_single_panel_runs_quick() {
        let inv = parse_args(&args(&["figures", "--panel", "fig1a"])).unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("## fig1a"), "{out}");
    }

    #[test]
    fn bad_numeric_value_is_reported() {
        let inv = parse_args(&args(&["tree", "--n", "many"])).unwrap();
        assert_eq!(
            run(&inv).unwrap_err(),
            CliError::BadValue {
                key: "n".into(),
                value: "many".into()
            }
        );
    }

    #[test]
    fn error_display_is_informative() {
        for (err, needle) in [
            (CliError::MissingCommand, "no command"),
            (CliError::UnknownCommand("x".into()), "unknown command"),
            (CliError::MalformedOption("x".into()), "malformed"),
            (
                CliError::BadValue {
                    key: "k".into(),
                    value: "v".into(),
                },
                "invalid value",
            ),
        ] {
            assert!(err.to_string().contains(needle));
        }
    }
}
